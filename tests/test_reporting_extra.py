"""Additional edge-case tests for the reporting helpers."""

import math

from repro.experiments.reporting import format_cell, format_series, format_table


class TestFormatCell:
    def test_negative_infinity(self):
        assert format_cell(-math.inf) == "-*"

    def test_nan(self):
        assert format_cell(math.nan) == "-*"

    def test_precision(self):
        assert format_cell(3.14159, precision=2) == "3.1"

    def test_large_values_rounded(self):
        assert format_cell(123456.789) == "123457"

    def test_integers_pass_through(self):
        assert format_cell(42) == "42"

    def test_negative_float(self):
        assert format_cell(-2.5) == "-2.5"


class TestFormatTable:
    def test_empty_rows(self):
        text = format_table({}, columns=["a", "b"])
        lines = text.splitlines()
        assert len(lines) == 2  # header + rule only
        assert "a" in lines[0]

    def test_missing_columns_dash(self):
        text = format_table({"r": {}}, columns=["a"])
        assert "-" in text.splitlines()[-1]

    def test_custom_row_header(self):
        text = format_table({"r": {"a": 1}}, columns=["a"], row_header="model")
        assert text.splitlines()[0].startswith("model")

    def test_alignment_consistent(self):
        rows = {"long-technique-name": {"x": 1.0}, "s": {"x": 22.0}}
        lines = format_table(rows, columns=["x"]).splitlines()
        assert len({len(line.rstrip()) for line in lines[2:]}) <= 2


class TestFormatSeries:
    def test_empty_series(self):
        assert "(empty)" in format_series({"c": []})

    def test_single_point(self):
        text = format_series({"c": [5.0]})
        assert "0:5" in text

    def test_includes_first_and_last(self):
        text = format_series({"c": list(range(1000))}, max_points=4)
        assert "0:0" in text
        assert "999:999" in text

    def test_custom_label(self):
        text = format_series({"c": [1.0]}, label="attempt")
        assert "attempt" in text

    def test_infinite_values_marked(self):
        text = format_series({"c": [math.inf, 2.0]})
        assert "-*" in text
