"""Tests for the Fig. 15 black-box mapping-space optimizers."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.mapping.blackbox_mappers import (
    AnnealingMapper,
    BayesianMapper,
    GeneticMapper,
    MappingGenome,
    _mutate,
    _repair,
    random_genome,
)
from repro.mapping.mapping import padded_bounds
from repro.workloads.layers import LOOP_DIMS


class TestGenome:
    def test_random_genome_valid(self, conv_layer, mid_config):
        rng = random.Random(0)
        genome = random_genome(conv_layer, mid_config, rng)
        genome.to_mapping().validate_for(conv_layer)

    def test_random_genome_respects_pe_budget(self, conv_layer, mid_config):
        rng = random.Random(1)
        for _ in range(20):
            genome = random_genome(conv_layer, mid_config, rng)
            assert genome.to_mapping().pes_used <= mid_config.pes

    def test_features_length(self, conv_layer, mid_config):
        genome = random_genome(conv_layer, mid_config, random.Random(0))
        assert len(genome.features()) == len(LOOP_DIMS) * 4 + 2

    def test_repair_fixes_overflow(self, conv_layer, mid_config):
        rng = random.Random(2)
        genome = random_genome(conv_layer, mid_config, rng)
        # Force an overflowing spatial unrolling.
        splits = [list(s) for s in genome.splits]
        for s in splits:
            s[3] *= s[1]
            s[1] = 1
        bounds = padded_bounds(conv_layer)
        from repro.workloads.layers import Dim

        idx = LOOP_DIMS.index(Dim.M)
        rf, spatial, spm, dram = splits[idx]
        total = rf * spatial * spm * dram
        splits[idx] = [1, total, 1, 1]
        bad = MappingGenome(
            splits=tuple(tuple(s) for s in splits),
            dram_stationary=genome.dram_stationary,
            spm_stationary=genome.spm_stationary,
        )
        if bad.to_mapping().pes_used > mid_config.pes:
            repaired = _repair(bad, mid_config)
            assert repaired.to_mapping().pes_used <= mid_config.pes
            repaired.to_mapping().validate_for(conv_layer)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_mutation_preserves_validity(seed, conv_layer, mid_config):
    rng = random.Random(seed)
    genome = random_genome(conv_layer, mid_config, rng)
    mutated = _repair(_mutate(genome, conv_layer, mid_config, rng), mid_config)
    mutated.to_mapping().validate_for(conv_layer)
    assert mutated.to_mapping().pes_used <= mid_config.pes


@pytest.mark.parametrize(
    "mapper_cls,kwargs",
    [
        (AnnealingMapper, {"trials": 40}),
        (GeneticMapper, {"trials": 40, "population_size": 8}),
        (BayesianMapper, {"trials": 15, "initial_samples": 6}),
    ],
)
def test_mappers_return_results(mapper_cls, kwargs, conv_layer, mid_config):
    result = mapper_cls(seed=0, **kwargs)(conv_layer, mid_config)
    assert result.candidates_evaluated >= 1
    if result.feasible:
        assert math.isfinite(result.latency)
        result.mapping.validate_for(conv_layer)
    else:
        assert result.latency == math.inf


def test_mappers_reject_bad_trials():
    with pytest.raises(ValueError):
        AnnealingMapper(trials=0)


def test_annealing_deterministic(conv_layer, mid_config):
    a = AnnealingMapper(trials=30, seed=5)(conv_layer, mid_config)
    b = AnnealingMapper(trials=30, seed=5)(conv_layer, mid_config)
    assert a.latency == b.latency
