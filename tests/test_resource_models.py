"""Tests for the area / power resource bottleneck models."""

import pytest

from repro.core.bottleneck.analyzer import analyze_tree
from repro.core.bottleneck.resource_models import (
    ResourceContext,
    build_area_bottleneck_model,
    build_area_tree,
    build_power_bottleneck_model,
    build_power_tree,
)
from repro.cost.area import accelerator_area
from repro.cost.power import max_power


@pytest.fixture
def resource_context(mid_config):
    return ResourceContext(
        config=mid_config,
        area=accelerator_area(mid_config),
        power=max_power(mid_config),
    )


class TestTrees:
    def test_area_tree_matches_breakdown(self, resource_context):
        tree = build_area_tree(resource_context)
        assert tree.value == pytest.approx(resource_context.area.total_mm2)

    def test_power_tree_matches_breakdown(self, resource_context):
        tree = build_power_tree(resource_context)
        assert tree.value == pytest.approx(resource_context.power.total_w)

    def test_area_components_present(self, resource_context):
        tree = build_area_tree(resource_context)
        for name in ("area_pe_array", "area_spm", "area_noc", "area_controller"):
            assert tree.find(name) is not None


class TestMitigation:
    def test_area_model_downscales(self, resource_context, mid_point):
        model = build_area_bottleneck_model()
        predictions = model.predict(
            resource_context,
            current_values=mid_point,
            target_value=resource_context.area.total_mm2 / 2,
        )
        assert predictions
        for prediction in predictions:
            assert prediction.value < mid_point[prediction.parameter]

    def test_power_model_downscales(self, resource_context, mid_point):
        model = build_power_bottleneck_model()
        predictions = model.predict(
            resource_context,
            current_values=mid_point,
            target_value=resource_context.power.total_w / 2,
        )
        assert predictions
        for prediction in predictions:
            assert prediction.value < mid_point[prediction.parameter]

    def test_dominant_component_ranked_first(self, resource_context):
        tree = build_area_tree(resource_context)
        findings = analyze_tree(
            tree, target_value=resource_context.area.total_mm2 / 2
        )
        contributions = resource_context.area.contributions()
        dominant = max(contributions, key=contributions.get)
        assert findings[0].name == f"area_{dominant}"

    def test_controller_has_no_mitigation(self):
        model = build_area_bottleneck_model()
        assert "area_controller" not in model.affected_parameters
