"""Tests for the bottleneck-model specification API."""

import pytest

from repro.core.bottleneck.api import BottleneckModel, MitigationContext
from repro.core.bottleneck.tree import add, leaf, maximum


def _toy_model(mitigations=None):
    """Latency = max(comp, mem); comp -> units, mem -> bandwidth."""

    def build(values):
        return maximum(
            "latency", [leaf("comp", values["comp"]), leaf("mem", values["mem"])]
        )

    return BottleneckModel(
        name="toy",
        build_tree=build,
        affected_parameters={"comp": ("units",), "mem": ("bandwidth",)},
        mitigations=mitigations or {},
    )


class TestPredict:
    def test_uses_mitigation_handle(self):
        model = _toy_model(
            {"units": lambda current, ctx: current * ctx.scaling}
        )
        predictions = model.predict(
            {"comp": 100, "mem": 25}, current_values={"units": 8}
        )
        assert len(predictions) == 1
        assert predictions[0].parameter == "units"
        assert predictions[0].value == pytest.approx(8 * 4.0)
        assert predictions[0].source == "mitigation"

    def test_skips_params_without_handles(self):
        model = _toy_model({})  # no handles at all
        predictions = model.predict(
            {"comp": 100, "mem": 25}, current_values={"units": 8}
        )
        assert predictions == []

    def test_skips_unknown_current_values(self):
        model = _toy_model(
            {"units": lambda current, ctx: current * ctx.scaling}
        )
        predictions = model.predict(
            {"comp": 100, "mem": 25}, current_values={"bandwidth": 1}
        )
        assert predictions == []

    def test_none_prediction_dropped(self):
        model = _toy_model({"units": lambda current, ctx: None})
        predictions = model.predict(
            {"comp": 100, "mem": 25}, current_values={"units": 8}
        )
        assert predictions == []

    def test_parameter_appears_once(self):
        def build(values):
            return add(
                "cost",
                [
                    leaf("a", values["a"], tag=1),
                    leaf("b", values["b"], tag=2),
                ],
            )

        model = BottleneckModel(
            name="toy2",
            build_tree=build,
            affected_parameters={"a": ("p",), "b": ("p",)},
            mitigations={"p": lambda current, ctx: current + 1},
        )
        predictions = model.predict(
            {"a": 60, "b": 40}, current_values={"p": 1}, target_value=50
        )
        assert [p.parameter for p in predictions] == ["p"]

    def test_max_findings_limits_factors(self):
        def build(values):
            return add(
                "cost",
                [leaf(f"f{i}", values[f"f{i}"]) for i in range(4)],
            )

        model = BottleneckModel(
            name="toy3",
            build_tree=build,
            affected_parameters={f"f{i}": (f"p{i}",) for i in range(4)},
            mitigations={
                f"p{i}": (lambda current, ctx: current * 2) for i in range(4)
            },
        )
        values = {f"f{i}": 10.0 * (i + 1) for i in range(4)}
        current = {f"p{i}": 1 for i in range(4)}
        predictions = model.predict(
            values, current_values=current, target_value=50, max_findings=2
        )
        assert len(predictions) == 2

    def test_context_carries_execution_and_extra(self):
        captured = {}

        def handle(current, ctx: MitigationContext):
            captured["execution"] = ctx.execution
            captured["extra"] = dict(ctx.extra)
            return current

        model = _toy_model({"units": handle})
        model.predict(
            {"comp": 100, "mem": 25},
            current_values={"units": 8},
            execution="exec-info",
            extra={"config": "cfg"},
        )
        assert captured["execution"] == "exec-info"
        assert captured["extra"] == {"config": "cfg"}

    def test_prediction_describe(self):
        model = _toy_model(
            {"units": lambda current, ctx: current * ctx.scaling}
        )
        prediction = model.predict(
            {"comp": 100, "mem": 25}, current_values={"units": 8}
        )[0]
        assert "units" in prediction.describe()
