"""Unit and property tests for the mapping representation."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.mapping.mapping import (
    Level,
    Mapping,
    MappingError,
    operand_tile_elements,
    padded_bounds,
)
from repro.workloads.layers import (
    LOOP_DIMS,
    Dim,
    Operand,
    conv2d,
    gemm,
)


@pytest.fixture
def small_layer():
    return conv2d("c", 8, 16, (8, 8), kernel=(3, 3))


def _mapping_for(layer, overrides=None):
    """A simple valid mapping: everything at DRAM except overrides."""
    bounds = padded_bounds(layer)
    dram = dict(bounds)
    spm = {d: 1 for d in LOOP_DIMS}
    spatial = {d: 1 for d in LOOP_DIMS}
    rf = {d: 1 for d in LOOP_DIMS}
    for (level, dim), factor in (overrides or {}).items():
        target = {"spm": spm, "spatial": spatial, "rf": rf}[level]
        target[dim] = factor
        dram[dim] //= factor
    return Mapping.from_level_maps(dram=dram, spm=spm, spatial=spatial, rf=rf)


class TestConstruction:
    def test_from_level_maps_defaults_missing_dims(self, small_layer):
        mapping = _mapping_for(small_layer)
        for d in LOOP_DIMS:
            assert mapping.level_factor(Level.RF, d) == 1

    def test_validate_for_accepts_exact_cover(self, small_layer):
        _mapping_for(small_layer).validate_for(small_layer)

    def test_validate_for_rejects_bad_product(self, small_layer):
        mapping = _mapping_for(small_layer)
        broken = Mapping.from_level_maps(
            dram={Dim.M: 3},
            spm={},
            spatial={},
            rf={},
        )
        with pytest.raises(MappingError):
            broken.validate_for(small_layer)

    def test_rejects_bad_factor(self):
        with pytest.raises(MappingError):
            Mapping.from_level_maps(
                dram={Dim.M: 0}, spm={}, spatial={}, rf={}
            )

    def test_rejects_bad_stationary(self, small_layer):
        with pytest.raises(MappingError):
            Mapping.from_level_maps(
                dram={},
                spm={},
                spatial={},
                rf={},
                dram_stationary="weights",
            )


class TestGeometry:
    def test_pes_used(self, small_layer):
        mapping = _mapping_for(
            small_layer, {("spatial", Dim.M): 4, ("spatial", Dim.OX): 2}
        )
        assert mapping.pes_used == 8

    def test_tile_dims_combine_levels(self, small_layer):
        mapping = _mapping_for(
            small_layer, {("rf", Dim.FX): 3, ("spatial", Dim.M): 4}
        )
        assert mapping.rf_tile[Dim.FX] == 3
        assert mapping.spatial_tile[Dim.M] == 4
        assert mapping.spatial_tile[Dim.FX] == 3

    def test_temporal_iterations(self, small_layer):
        mapping = _mapping_for(small_layer, {("spm", Dim.C): 2})
        bounds = padded_bounds(small_layer)
        assert mapping.temporal_iterations(Level.SPM) == 2
        expected_dram = math.prod(bounds.values()) // 2
        assert mapping.temporal_iterations(Level.DRAM) == expected_dram

    def test_temporal_iterations_rejects_spatial(self, small_layer):
        with pytest.raises(MappingError):
            _mapping_for(small_layer).temporal_iterations(Level.SPATIAL)

    def test_describe_lists_stationaries(self, small_layer):
        text = _mapping_for(small_layer).describe()
        assert "DRAM=O" in text


class TestReuse:
    def test_stationary_operand_gets_full_irrelevant_reuse(self, small_layer):
        # All loops at DRAM, output stationary: the output tile is reused
        # across every reduction (C, FY, FX) iteration.
        mapping = _mapping_for(small_layer)
        bounds = padded_bounds(small_layer)
        expected = bounds[Dim.C] * bounds[Dim.FY] * bounds[Dim.FX]
        assert mapping.reuse_at(Level.DRAM, small_layer, Operand.O) == expected

    def test_nonstationary_reuse_excludes_stationary_dims(self, small_layer):
        # Output stationary: weights can only be reused across dims that
        # are irrelevant to both W and O -- there are none (N is 1).
        mapping = _mapping_for(small_layer)
        assert mapping.reuse_at(Level.DRAM, small_layer, Operand.W) == 1

    def test_fetches_times_reuse_equals_iterations(self, small_layer):
        mapping = _mapping_for(small_layer, {("spm", Dim.C): 2})
        for level in (Level.DRAM, Level.SPM):
            total = mapping.temporal_iterations(level)
            for op in (Operand.I, Operand.W, Operand.O):
                fetches = mapping.fetches_at(level, small_layer, op)
                reuse = mapping.reuse_at(level, small_layer, op)
                assert fetches * reuse == total

    def test_reuse_rejects_nontemporal_level(self, small_layer):
        with pytest.raises(MappingError):
            _mapping_for(small_layer).reuse_at(
                Level.SPATIAL, small_layer, Operand.I
            )

    def test_spatial_groups(self, small_layer):
        mapping = _mapping_for(
            small_layer, {("spatial", Dim.M): 4, ("spatial", Dim.OX): 2}
        )
        # W indexed by M only (of the unrolled dims): 4 groups.
        assert mapping.spatial_groups(small_layer, Operand.W) == 4
        # I indexed by OX but not M: 2 groups (M broadcast).
        assert mapping.spatial_groups(small_layer, Operand.I) == 2
        # O indexed by both: 8 groups.
        assert mapping.spatial_groups(small_layer, Operand.O) == 8


class TestOperandTiles:
    def test_input_halo_in_tiles(self, small_layer):
        tile = {d: 1 for d in LOOP_DIMS}
        tile[Dim.OY] = 4
        tile[Dim.FY] = 3
        elements = operand_tile_elements(small_layer, tile, Operand.I)
        assert elements == 1 * 1 * ((4 - 1) * 1 + 3) * 1

    def test_gemm_tiles(self):
        layer = gemm("g", 16, 32, 8)
        tile = {d: 1 for d in LOOP_DIMS}
        tile[Dim.M] = 4
        tile[Dim.C] = 8
        tile[Dim.OX] = 2
        assert operand_tile_elements(layer, tile, Operand.W) == 32
        assert operand_tile_elements(layer, tile, Operand.I) == 16
        assert operand_tile_elements(layer, tile, Operand.O) == 8


class TestPaddedBounds:
    def test_smooth_bounds_unchanged(self):
        layer = conv2d("c", 8, 16, (8, 8))
        bounds = padded_bounds(layer)
        assert bounds[Dim.M] == 16
        assert bounds[Dim.C] == 8

    def test_prime_bounds_padded(self):
        layer = gemm("g", 197, 13, 1)
        bounds = padded_bounds(layer)
        assert bounds[Dim.M] == 200
        assert bounds[Dim.C] == 14


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_random_splits_cover_padded_bounds(seed):
    """Any per-dim divisor split of the padded bound validates."""
    from repro.mapping.factorization import divisors

    layer = conv2d("c", 24, 36, (12, 12), kernel=(3, 3))
    rng = random.Random(seed)
    bounds = padded_bounds(layer)
    rf, spatial, spm, dram = {}, {}, {}, {}
    for d in LOOP_DIMS:
        rest = bounds[d]
        rf[d] = rng.choice(divisors(rest))
        rest //= rf[d]
        spatial[d] = rng.choice(divisors(rest))
        rest //= spatial[d]
        spm[d] = rng.choice(divisors(rest))
        dram[d] = rest // spm[d]
    mapping = Mapping.from_level_maps(
        dram=dram, spm=spm, spatial=spatial, rf=rf
    )
    mapping.validate_for(layer)
    for level in (Level.DRAM, Level.SPM):
        for op in (Operand.I, Operand.W, Operand.O):
            reuse = mapping.reuse_at(level, layer, op)
            assert reuse >= 1
            assert mapping.temporal_iterations(level) % reuse == 0
