"""Unit tests for the layer/workload representation."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.workloads.layers import (
    LOOP_DIMS,
    Dim,
    LayerShape,
    Operand,
    OperatorType,
    Workload,
    conv2d,
    depthwise_conv2d,
    gemm,
    operand_dims,
    validate_workload,
)


class TestLayerShape:
    def test_conv_builder_dims(self):
        layer = conv2d("c", 64, 128, (28, 28), kernel=(3, 3), stride=2)
        assert layer.dim(Dim.M) == 128
        assert layer.dim(Dim.C) == 64
        assert layer.dim(Dim.OY) == 28
        assert layer.dim(Dim.FX) == 3
        assert layer.stride == 2
        assert layer.operator is OperatorType.CONV

    def test_gemm_builder_maps_to_loop_dims(self):
        layer = gemm("g", 512, 256, 64)
        assert layer.dim(Dim.M) == 512
        assert layer.dim(Dim.C) == 256
        assert layer.dim(Dim.OX) == 64
        assert layer.dim(Dim.OY) == 1
        assert layer.dim(Dim.FY) == 1

    def test_depthwise_collapses_c(self):
        layer = depthwise_conv2d("d", 96, (56, 56))
        assert layer.dim(Dim.C) == 1
        assert layer.dim(Dim.M) == 96
        assert layer.operator is OperatorType.DWCONV

    def test_macs_is_product_of_dims(self):
        layer = conv2d("c", 4, 8, (5, 5), kernel=(3, 3))
        assert layer.macs == 1 * 8 * 4 * 5 * 5 * 3 * 3

    def test_input_halo(self):
        layer = conv2d("c", 3, 8, (10, 10), kernel=(3, 3), stride=2)
        assert layer.input_rows == (10 - 1) * 2 + 3
        assert layer.input_cols == (10 - 1) * 2 + 3

    def test_tensor_elements_weight(self):
        layer = conv2d("c", 16, 32, (8, 8), kernel=(3, 3))
        assert layer.tensor_elements(Operand.W) == 32 * 16 * 3 * 3

    def test_tensor_elements_output(self):
        layer = conv2d("c", 16, 32, (8, 8))
        assert layer.tensor_elements(Operand.O) == 32 * 8 * 8
        assert layer.tensor_elements(Operand.PSUM) == 32 * 8 * 8

    def test_tensor_elements_input_uses_halo(self):
        layer = conv2d("c", 16, 32, (8, 8), kernel=(3, 3))
        assert layer.tensor_elements(Operand.I) == 16 * 10 * 10

    def test_depthwise_input_channels_follow_m(self):
        layer = depthwise_conv2d("d", 48, (8, 8))
        assert layer.tensor_elements(Operand.I) == 48 * 10 * 10
        assert layer.tensor_elements(Operand.W) == 48 * 3 * 3

    def test_tensor_bytes_scales_with_precision(self):
        layer = conv2d("c", 4, 4, (4, 4), kernel=(1, 1))
        assert layer.tensor_bytes(Operand.O) == layer.tensor_elements(Operand.O) * 2

    def test_with_batch(self):
        layer = conv2d("c", 4, 4, (4, 4))
        assert layer.with_batch(8).dim(Dim.N) == 8
        assert layer.dim(Dim.N) == 1  # original untouched

    def test_describe_mentions_name_and_operator(self):
        layer = conv2d("my_conv", 4, 4, (4, 4))
        text = layer.describe()
        assert "my_conv" in text
        assert "CONV" in text

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            LayerShape("bad", OperatorType.CONV, (1, 0, 1, 1, 1, 1, 1))

    def test_rejects_wrong_dim_count(self):
        with pytest.raises(ValueError):
            LayerShape("bad", OperatorType.CONV, (1, 1, 1))

    def test_rejects_bad_stride_and_repeats(self):
        with pytest.raises(ValueError):
            conv2d("bad", 4, 4, (4, 4), stride=0)
        with pytest.raises(ValueError):
            conv2d("bad", 4, 4, (4, 4), repeats=0)


class TestOperandDims:
    def test_weight_dims_conv(self):
        assert operand_dims(OperatorType.CONV, Operand.W) == frozenset(
            {Dim.M, Dim.C, Dim.FY, Dim.FX}
        )

    def test_output_dims(self):
        expected = frozenset({Dim.N, Dim.M, Dim.OY, Dim.OX})
        assert operand_dims(OperatorType.CONV, Operand.O) == expected
        assert operand_dims(OperatorType.CONV, Operand.PSUM) == expected

    def test_input_dims_conv_exclude_m(self):
        dims = operand_dims(OperatorType.CONV, Operand.I)
        assert Dim.M not in dims
        assert Dim.C in dims

    def test_depthwise_weight_excludes_c(self):
        dims = operand_dims(OperatorType.DWCONV, Operand.W)
        assert Dim.C not in dims
        assert Dim.M in dims

    def test_depthwise_input_includes_m(self):
        dims = operand_dims(OperatorType.DWCONV, Operand.I)
        assert Dim.M in dims
        assert Dim.C not in dims


@given(
    m=st.integers(1, 512),
    c=st.integers(1, 512),
    o=st.integers(1, 64),
    k=st.integers(1, 7),
)
def test_macs_positive_and_consistent(m, c, o, k):
    layer = conv2d("h", c, m, (o, o), kernel=(k, k))
    assert layer.macs == m * c * o * o * k * k
    assert layer.tensor_elements(Operand.W) == m * c * k * k


@given(st.integers(1, 64), st.integers(1, 64), st.integers(1, 256))
def test_gemm_footprint_identities(rows, inner, cols):
    layer = gemm("h", rows, inner, cols)
    assert layer.tensor_elements(Operand.W) == rows * inner
    assert layer.tensor_elements(Operand.O) == rows * cols
    assert layer.tensor_elements(Operand.I) == inner * cols
    assert layer.macs == rows * inner * cols


class TestWorkload:
    def test_requires_layers(self):
        with pytest.raises(ValueError):
            Workload(name="empty", layers=(), total_layers=0)

    def test_rejects_duplicate_names(self):
        layer = conv2d("dup", 4, 4, (4, 4))
        with pytest.raises(ValueError):
            Workload(name="w", layers=(layer, layer), total_layers=2)

    def test_counts(self):
        layers = (
            conv2d("a", 4, 4, (4, 4), repeats=3),
            conv2d("b", 4, 4, (4, 4)),
        )
        w = Workload(name="w", layers=layers, total_layers=4)
        assert w.unique_layer_count == 2
        assert w.repeated_layer_count == 4

    def test_total_macs_weighs_repeats(self):
        layer = conv2d("a", 4, 4, (4, 4), repeats=3)
        w = Workload(name="w", layers=(layer,), total_layers=3)
        assert w.total_macs == 3 * layer.macs

    def test_layer_lookup(self):
        layer = conv2d("a", 4, 4, (4, 4))
        w = Workload(name="w", layers=(layer,), total_layers=1)
        assert w.layer("a") is layer
        with pytest.raises(KeyError):
            w.layer("nope")

    def test_scaled_latency(self):
        layers = (
            conv2d("a", 4, 4, (4, 4), repeats=2),
            conv2d("b", 4, 4, (4, 4)),
        )
        w = Workload(name="w", layers=layers, total_layers=3)
        assert w.scaled_latency({"a": 10.0, "b": 5.0}) == 25.0

    def test_scaled_latency_missing_layer(self):
        layer = conv2d("a", 4, 4, (4, 4))
        w = Workload(name="w", layers=(layer,), total_layers=1)
        with pytest.raises(KeyError):
            w.scaled_latency({})

    def test_validate_flags_overcount(self):
        layer = conv2d("a", 4, 4, (4, 4), repeats=5)
        w = Workload(name="w", layers=(layer,), total_layers=3)
        assert validate_workload(w)

    def test_validate_clean(self):
        layer = conv2d("a", 4, 4, (4, 4))
        w = Workload(name="w", layers=(layer,), total_layers=1)
        assert validate_workload(w) == []
