"""Unit and property tests for factorization utilities."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.mapping.factorization import (
    count_ordered_factorizations,
    divisors,
    ordered_factorizations,
    prime_factorization,
    smooth_pad,
)


class TestDivisors:
    def test_basic(self):
        assert divisors(12) == (1, 2, 3, 4, 6, 12)
        assert divisors(1) == (1,)
        assert divisors(13) == (1, 13)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            divisors(0)


class TestPrimeFactorization:
    def test_basic(self):
        assert prime_factorization(360) == ((2, 3), (3, 2), (5, 1))
        assert prime_factorization(1) == ()
        assert prime_factorization(97) == ((97, 1),)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            prime_factorization(-1)


class TestOrderedFactorizations:
    def test_single_part(self):
        assert list(ordered_factorizations(12, 1)) == [(12,)]

    def test_two_parts_of_prime(self):
        assert sorted(ordered_factorizations(5, 2)) == [(1, 5), (5, 1)]

    def test_products_are_exact(self):
        for split in ordered_factorizations(24, 3):
            assert math.prod(split) == 24

    def test_count_matches_enumeration(self):
        for n in (1, 2, 12, 36, 97, 224):
            for parts in (1, 2, 3, 4):
                assert count_ordered_factorizations(n, parts) == sum(
                    1 for _ in ordered_factorizations(n, parts)
                )

    def test_rejects_bad_parts(self):
        with pytest.raises(ValueError):
            list(ordered_factorizations(4, 0))
        with pytest.raises(ValueError):
            count_ordered_factorizations(4, 0)


@given(st.integers(1, 2000), st.integers(1, 5))
def test_count_is_multiplicative(n, parts):
    """The closed-form count equals the composition-product formula."""
    expected = 1
    for _, exp in prime_factorization(n):
        expected *= math.comb(exp + parts - 1, parts - 1)
    assert count_ordered_factorizations(n, parts) == expected


@given(st.integers(1, 300))
def test_divisors_divide(n):
    for d in divisors(n):
        assert n % d == 0
    assert divisors(n)[0] == 1
    assert divisors(n)[-1] == n


class TestSmoothPad:
    def test_smooth_numbers_unchanged(self):
        for n in (1, 2, 8, 21, 224, 1024):
            assert smooth_pad(n) == n

    def test_primes_are_padded_up(self):
        assert smooth_pad(197) == 200  # 2^3 * 5^2
        assert smooth_pad(11) == 12

    def test_custom_max_prime(self):
        assert smooth_pad(11, max_prime=11) == 11

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            smooth_pad(0)


@given(st.integers(1, 5000))
def test_smooth_pad_properties(n):
    padded = smooth_pad(n)
    assert padded >= n
    remaining = padded
    for p in (2, 3, 5, 7):
        while remaining % p == 0:
            remaining //= p
    assert remaining == 1
