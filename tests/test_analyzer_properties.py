"""Property-based tests for the bottleneck analyzer on random trees."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bottleneck.analyzer import (
    DEFAULT_SCALING,
    MAX_SCALING,
    analyze_tree,
)
from repro.core.bottleneck.tree import Node, NodeOp, add, leaf, maximum, mul


@st.composite
def random_trees(draw, depth=3, _counter=None):
    """Random bottleneck trees with positive finite leaves and names that
    are unique within the tree (so name-based path walking is exact)."""
    if _counter is None:
        _counter = [0]
    _counter[0] += 1
    uid = _counter[0]
    if depth == 0 or draw(st.booleans()):
        value = draw(
            st.floats(0.01, 1e6, allow_nan=False, allow_infinity=False)
        )
        return leaf(f"leaf{uid}", value)
    op = draw(st.sampled_from(["add", "max", "mul"]))
    n_children = draw(st.integers(2, 4))
    children = [
        draw(random_trees(depth=depth - 1, _counter=_counter))
        for _ in range(n_children)
    ]
    name = f"{op}{uid}"
    if op == "add":
        return add(name, children)
    if op == "max":
        return maximum(name, children)
    return mul(name, children)


@settings(max_examples=80, deadline=None)
@given(tree=random_trees())
def test_contributions_bounded(tree):
    for finding in analyze_tree(tree, min_contribution=0.0):
        assert 0.0 <= finding.contribution <= 1.0 + 1e-9


@settings(max_examples=80, deadline=None)
@given(tree=random_trees())
def test_scalings_bounded(tree):
    for finding in analyze_tree(tree):
        assert 1.0 < finding.scaling <= MAX_SCALING + 1e-9


@settings(max_examples=80, deadline=None)
@given(tree=random_trees())
def test_ranked_descending(tree):
    findings = analyze_tree(tree)
    contributions = [f.contribution for f in findings]
    assert contributions == sorted(contributions, reverse=True)


@settings(max_examples=80, deadline=None)
@given(tree=random_trees())
def test_paths_start_at_root(tree):
    for finding in analyze_tree(tree):
        assert finding.path[0] == tree.name
        assert finding.path[-1] == finding.name
        # Path is realizable: walking the names reaches the node.
        node = tree
        for name in finding.path[1:]:
            node = next(c for c in node.children if c.name == name)
        assert node is finding.node


@settings(max_examples=80, deadline=None)
@given(tree=random_trees(), target_ratio=st.floats(0.05, 0.45))
def test_demanding_target_only_tightens(tree, target_ratio):
    """A constraint target demanding more than the default scaling
    (value/target > DEFAULT_SCALING) can only increase the per-factor
    scalings relative to the unconstrained analysis."""
    assert 1.0 / target_ratio > DEFAULT_SCALING
    free = {f.name: f.scaling for f in analyze_tree(tree)}
    target = tree.value * target_ratio
    constrained = {
        f.name: f.scaling for f in analyze_tree(tree, target_value=target)
    }
    for name in set(free) & set(constrained):
        assert constrained[name] >= free[name] - 1e-9


@settings(max_examples=50, deadline=None)
@given(tree=random_trees())
def test_top_finding_traces_dominant_child(tree):
    """The top-ranked finding's first step is a maximal-contribution child
    of the root."""
    findings = analyze_tree(tree, min_contribution=0.0)
    if not findings or tree.op is NodeOp.LEAF:
        return
    first_step = findings[0].path[1]
    child_values = {c.name: c.value for c in tree.children}
    if tree.op is NodeOp.MAX:
        assert child_values[first_step] == pytest.approx(
            max(child_values.values())
        )
