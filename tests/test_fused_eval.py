"""Equivalence tests for the fused cross-layer evaluation fast path.

The contract under test: with ``REPRO_FUSED_EVAL`` on or off, a
campaign step over a multi-layer workload returns *bit-identical*
results — same per-layer mappings, same ``ExecutionInfo`` values and
Python types, same candidate/feasibility accounting, same design-point
costs.  The fused path concatenates every pending layer's candidate set
into one SoA block (:mod:`repro.cost.fused`) and must be
indistinguishable from the per-layer reference loop in everything but
speed.
"""

import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import build_edge_design_space, config_from_point
from repro.cost.evaluator import CostEvaluator
from repro.cost.fused import (
    evaluate_fused_block,
    search_layers_fused,
    supports_fused,
)
from repro.mapping.batch_candidates import CandidateBatch, FusedCandidateBlock
from repro.mapping.mapper import (
    FixedDataflowMapper,
    RandomSearchMapper,
    TopNMapper,
)
from repro.workloads import Workload, conv2d, depthwise_conv2d, gemm

from tests.test_batch_eval import (
    assert_outcomes_identical,
    assert_results_identical,
)


def _workload(layers) -> Workload:
    return Workload(name="fused-test", layers=tuple(layers))


# -- randomized multi-layer workloads ------------------------------------------

_conv_strategy = st.builds(
    conv2d,
    name=st.just("conv"),
    in_channels=st.sampled_from([4, 8, 16, 32]),
    out_channels=st.sampled_from([8, 16, 64]),
    output_hw=st.sampled_from([(7, 7), (14, 14), (13, 9)]),
    kernel=st.sampled_from([(1, 1), (3, 3)]),
    stride=st.sampled_from([1, 2]),
)
_dwise_strategy = st.builds(
    depthwise_conv2d,
    name=st.just("dw"),
    channels=st.sampled_from([8, 32, 64]),
    output_hw=st.sampled_from([(7, 7), (14, 14)]),
    stride=st.sampled_from([1, 2]),
)
_gemm_strategy = st.builds(
    gemm,
    name=st.just("fc"),
    rows=st.sampled_from([16, 64, 256]),
    inner=st.sampled_from([32, 128]),
    cols=st.sampled_from([1, 8]),
)
_layers_strategy = st.lists(
    st.one_of(_conv_strategy, _dwise_strategy, _gemm_strategy),
    min_size=2,
    max_size=5,
)


def _uniquify(layers):
    """Distinct names (Workload requires them) without changing shapes."""
    import dataclasses

    return [
        dataclasses.replace(layer, name=f"l{i}_{layer.name}")
        for i, layer in enumerate(layers)
    ]


@pytest.fixture(scope="module")
def tiny_config():
    return config_from_point(build_edge_design_space().minimum_point())


class TestSearchLayersFused:
    @pytest.mark.parametrize(
        "make_mapper",
        [
            lambda: TopNMapper(top_n=60),
            lambda: RandomSearchMapper(trials=40, seed=7),
        ],
        ids=["top-n", "random"],
    )
    def test_fused_matches_per_layer_search(
        self, make_mapper, mid_config, resnet18
    ):
        layers = list(resnet18.layers)
        fused, remaining = search_layers_fused(
            make_mapper(), layers, mid_config
        )
        assert remaining == []
        assert [layer for layer, _ in fused] == layers
        reference = make_mapper()
        for layer, result in fused:
            expected, _trace = reference.search_with_trace(layer, mid_config)
            assert_results_identical(expected, result)

    @given(layers=_layers_strategy)
    @settings(max_examples=25, deadline=None)
    def test_randomized_workloads_identical(self, layers, mid_config):
        layers = _uniquify(layers)
        fused, remaining = search_layers_fused(
            TopNMapper(top_n=40), layers, mid_config
        )
        assert remaining == []
        reference = TopNMapper(top_n=40)
        for layer, result in fused:
            expected, _trace = reference.search_with_trace(layer, mid_config)
            assert_results_identical(expected, result)

    @given(layers=_layers_strategy)
    @settings(max_examples=10, deadline=None)
    def test_randomized_workloads_identical_on_tiny_hw(
        self, layers, tiny_config
    ):
        """The minimum point drives many candidates infeasible, so the
        infeasibility reasons and empty-result paths are exercised."""
        layers = _uniquify(layers)
        fused, remaining = search_layers_fused(
            TopNMapper(top_n=40), layers, tiny_config
        )
        assert remaining == []
        reference = TopNMapper(top_n=40)
        for layer, result in fused:
            expected, _trace = reference.search_with_trace(layer, tiny_config)
            assert_results_identical(expected, result)

    def test_infeasibility_reasons_identical(self, tiny_config, resnet18):
        """Winner-less layers still report the scalar path's reason
        strings through the fused block's row diagnostics."""
        layer = resnet18.layer("conv3_x")
        mapper = TopNMapper(top_n=30)
        candidates, budget = mapper.candidate_plan(layer, tiny_config)
        import itertools

        batch = CandidateBatch.from_specs(
            itertools.islice(candidates, budget)
        )
        block = FusedCandidateBlock.from_layer_batches([layer], [batch])
        evaluation = evaluate_fused_block(block, tiny_config)
        from repro.cost.latency import evaluate_layer_mapping

        saw_infeasible = False
        for row in range(len(block)):
            outcome = evaluate_layer_mapping(
                layer, batch.mapping(row), tiny_config
            )
            if bool(evaluation.feasible[row]):
                assert not hasattr(outcome, "reason")
            else:
                saw_infeasible = True
                assert_outcomes_identical(outcome, evaluation.infeasibility(row))
        assert saw_infeasible  # the minimum point must reject candidates


class TestEvaluatorIntegration:
    def _evaluate(self, workload, point, **kwargs):
        evaluator = CostEvaluator(
            workload, TopNMapper(top_n=50), use_mapping_cache=False, **kwargs
        )
        try:
            return evaluator.evaluate(point), evaluator
        finally:
            evaluator.close()

    def test_design_point_costs_identical(self, resnet18, mid_point):
        reference, _ = self._evaluate(resnet18, mid_point, fused_eval=False)
        fused, evaluator = self._evaluate(resnet18, mid_point, fused_eval=True)
        assert reference.costs == fused.costs
        assert reference.mappable == fused.mappable
        for name in reference.layer_results:
            assert_results_identical(
                reference.layer_results[name], fused.layer_results[name]
            )
        stats = evaluator.batch_eval_stats
        assert stats.fused_blocks == 1
        assert stats.fused_layers == len(resnet18.layers)
        assert stats.fused_candidates > 0

    def test_env_knob_matches_explicit_override(
        self, resnet18, mid_point, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FUSED_EVAL", "1")
        via_env, _ = self._evaluate(resnet18, mid_point)
        monkeypatch.delenv("REPRO_FUSED_EVAL")
        via_flag, _ = self._evaluate(resnet18, mid_point, fused_eval=True)
        assert via_env.costs == via_flag.costs

    def test_mapping_cache_seeded_by_fused_results(self, resnet18, mid_point):
        from repro.perf.mapping_cache import MappingCache

        evaluator = CostEvaluator(
            resnet18,
            TopNMapper(top_n=50),
            mapping_cache=MappingCache(),
            fused_eval=True,
        )
        try:
            evaluator.evaluate(mid_point)
            assert evaluator.mapping_cache_misses == len(resnet18.layers)
            assert evaluator.mapping_cache.size() == len(resnet18.layers)
            # a re-evaluation of the same config is served from the cache
            evaluator2 = CostEvaluator(
                resnet18,
                TopNMapper(top_n=50),
                mapping_cache=evaluator.mapping_cache,
                fused_eval=True,
            )
            reference = CostEvaluator(
                resnet18,
                TopNMapper(top_n=50),
                use_mapping_cache=False,
                fused_eval=False,
            )
            try:
                warm = evaluator2.evaluate(mid_point)
                cold = reference.evaluate(mid_point)
                assert evaluator2.mapping_cache_hits == len(resnet18.layers)
                assert warm.costs == cold.costs
            finally:
                evaluator2.close()
                reference.close()
        finally:
            evaluator.close()

    def test_unsupported_mapper_falls_back_silently(self, resnet18, mid_point):
        fixed = FixedDataflowMapper()
        assert not supports_fused(fixed)
        evaluator = CostEvaluator(
            resnet18, fixed, use_mapping_cache=False, fused_eval=True
        )
        reference = CostEvaluator(
            resnet18, FixedDataflowMapper(), use_mapping_cache=False
        )
        try:
            assert (
                evaluator.evaluate(mid_point).costs
                == reference.evaluate(mid_point).costs
            )
        finally:
            evaluator.close()
            reference.close()

    def test_fused_failure_warns_and_uses_reference_path(
        self, resnet18, mid_point, monkeypatch
    ):
        import repro.cost.fused as fused_module

        def boom(*args, **kwargs):
            raise ValueError("injected fused defect")

        monkeypatch.setattr(fused_module, "search_layers_fused", boom)
        evaluator = CostEvaluator(
            resnet18,
            TopNMapper(top_n=50),
            use_mapping_cache=False,
            fused_eval=True,
        )
        reference = CostEvaluator(
            resnet18, TopNMapper(top_n=50), use_mapping_cache=False
        )
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                result = evaluator.evaluate(mid_point)
            assert any(
                "fused cross-layer evaluation failed" in str(w.message)
                for w in caught
            )
            assert result.costs == reference.evaluate(mid_point).costs
            assert evaluator.batch_eval_stats.fused_fallbacks == len(
                resnet18.layers
            )
        finally:
            evaluator.close()
            reference.close()

    def test_perf_summary_reports_fused_flags(self, resnet18, mid_point):
        _, evaluator = self._evaluate(resnet18, mid_point, fused_eval=True)
        section = evaluator.perf_summary()["batch_eval"]
        assert section["fused_supported"] is True
        assert section["fused_enabled"] is True
        off = CostEvaluator(
            resnet18, TopNMapper(top_n=50), use_mapping_cache=False
        )
        assert off.perf_summary()["batch_eval"]["fused_enabled"] is False
        off.close()


class TestSupportsFused:
    def test_candidate_plan_mappers_supported(self):
        assert supports_fused(TopNMapper(top_n=5))
        assert supports_fused(RandomSearchMapper(trials=5, seed=1))

    def test_non_latency_objective_unsupported(self):
        assert not supports_fused(TopNMapper(top_n=5, objective="energy"))

    def test_fixed_dataflow_unsupported(self):
        assert not supports_fused(FixedDataflowMapper())
