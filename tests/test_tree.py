"""Tests for bottleneck-model trees."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.bottleneck.tree import (
    Node,
    NodeOp,
    add,
    div,
    leaf,
    maximum,
    mul,
)


class TestConstruction:
    def test_leaf_requires_value(self):
        with pytest.raises(ValueError):
            Node(name="x", op=NodeOp.LEAF)

    def test_leaf_rejects_children(self):
        with pytest.raises(ValueError):
            Node(
                name="x",
                op=NodeOp.LEAF,
                raw_value=1.0,
                children=(leaf("y", 1),),
            )

    def test_internal_requires_children(self):
        with pytest.raises(ValueError):
            Node(name="x", op=NodeOp.ADD)

    def test_div_requires_two_children(self):
        with pytest.raises(ValueError):
            Node(name="x", op=NodeOp.DIV, children=(leaf("a", 1),))

    def test_metadata_carried(self):
        node = leaf("x", 1.0, operand="W")
        assert node.metadata["operand"] == "W"


class TestEvaluation:
    def test_leaf(self):
        assert leaf("x", 4.5).value == 4.5

    def test_add(self):
        assert add("s", [leaf("a", 1), leaf("b", 2), leaf("c", 3)]).value == 6

    def test_mul(self):
        assert mul("p", [leaf("a", 2), leaf("b", 3)]).value == 6

    def test_max(self):
        assert maximum("m", [leaf("a", 2), leaf("b", 7)]).value == 7

    def test_div(self):
        assert div("d", leaf("a", 10), leaf("b", 4)).value == 2.5

    def test_div_by_zero_is_inf(self):
        assert div("d", leaf("a", 10), leaf("b", 0)).value == math.inf

    def test_nested(self):
        tree = maximum(
            "latency",
            [
                leaf("comp", 100),
                add("dma", [leaf("i", 40), leaf("w", 80)]),
            ],
        )
        assert tree.value == 120


class TestTraversal:
    @pytest.fixture
    def tree(self):
        return maximum(
            "root",
            [leaf("a", 1), add("sum", [leaf("b", 2), leaf("c", 3)])],
        )

    def test_walk_preorder(self, tree):
        names = [n.name for n in tree.walk()]
        assert names == ["root", "a", "sum", "b", "c"]

    def test_find(self, tree):
        assert tree.find("c").value == 3
        assert tree.find("zzz") is None

    def test_render_contains_shares(self, tree):
        text = tree.render()
        assert "root" in text
        assert "%" in text


@given(st.lists(st.floats(0.1, 1e6), min_size=1, max_size=8))
def test_add_equals_sum(values):
    node = add("s", [leaf(f"v{i}", v) for i, v in enumerate(values)])
    assert node.value == pytest.approx(sum(values))


@given(st.lists(st.floats(0.1, 1e6), min_size=1, max_size=8))
def test_max_equals_max(values):
    node = maximum("m", [leaf(f"v{i}", v) for i, v in enumerate(values)])
    assert node.value == max(values)
