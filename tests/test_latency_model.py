"""Unit and property tests for the analytical latency model."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.accelerator import config_from_point
from repro.cost.execution_info import ExecutionInfo, InfeasibleMapping
from repro.cost.latency import evaluate_layer_mapping
from repro.mapping.blackbox_mappers import random_genome
from repro.mapping.dataflow import build_output_stationary_mapping
from repro.mapping.mapping import padded_bounds
from repro.workloads.layers import LOOP_DIMS, Operand, conv2d


@pytest.fixture
def layer():
    return conv2d("c", 16, 32, (14, 14), kernel=(3, 3))


@pytest.fixture
def mapping(layer, mid_config):
    mapping = build_output_stationary_mapping(layer, mid_config)
    assert mapping is not None
    return mapping


def _execution(layer, mapping, config) -> ExecutionInfo:
    outcome = evaluate_layer_mapping(layer, mapping, config)
    assert isinstance(outcome, ExecutionInfo), outcome
    return outcome


class TestFeasibilityChecks:
    def test_valid_mapping_executes(self, layer, mapping, mid_config):
        execution = _execution(layer, mapping, mid_config)
        assert execution.latency > 0

    def test_pe_overflow_rejected(self, layer, mapping, mid_point):
        point = dict(mid_point)
        point["pes"] = 64
        config = config_from_point(point)
        outcome = evaluate_layer_mapping(layer, mapping, config)
        if mapping.pes_used > 64:
            assert isinstance(outcome, InfeasibleMapping)
            assert "PEs" in outcome.reason

    def test_rf_overflow_rejected(self, layer, mapping, mid_point):
        point = dict(mid_point)
        point["l1_bytes"] = 8
        config = config_from_point(point)
        outcome = evaluate_layer_mapping(layer, mapping, config)
        # The mid-config mapping grew its RF tile beyond 8 bytes.
        assert isinstance(outcome, InfeasibleMapping)

    def test_noc_incompatibility_names_operand(self, layer, mid_point):
        point = dict(mid_point)
        for op in ("I", "W", "O", "PSUM"):
            point[f"phys_unicast_{op}"] = 1
            point[f"virt_unicast_{op}"] = 1
        tight = config_from_point(point)
        from repro.mapping.mapping import Mapping
        from repro.workloads.layers import Dim

        bounds = padded_bounds(layer)
        dram = dict(bounds)
        dram[Dim.M] //= 32
        unrolled = Mapping.from_level_maps(
            dram=dram,
            spm={},
            spatial={Dim.M: 32},
            rf={},
        )
        outcome = evaluate_layer_mapping(layer, unrolled, tight)
        assert isinstance(outcome, InfeasibleMapping)
        assert outcome.operand is not None


class TestLatencySemantics:
    def test_latency_is_max_of_factors(self, layer, mapping, mid_config):
        execution = _execution(layer, mapping, mid_config)
        assert execution.latency == max(
            execution.t_comp, execution.t_noc_max, execution.t_dma
        )

    def test_t_comp_counts_padded_iterations(self, layer, mapping, mid_config):
        execution = _execution(layer, mapping, mid_config)
        from repro.mapping.mapping import Level

        expected = (
            mapping.temporal_iterations(Level.DRAM)
            * mapping.temporal_iterations(Level.SPM)
            * mapping.temporal_iterations(Level.RF)
        )
        assert execution.t_comp == expected

    def test_dma_monotone_in_bandwidth(self, layer, mapping, mid_point):
        low = config_from_point({**mid_point, "offchip_bw_mbps": 1024})
        high = config_from_point({**mid_point, "offchip_bw_mbps": 51200})
        t_low = _execution(layer, mapping, low).t_dma
        t_high = _execution(layer, mapping, high).t_dma
        assert t_high < t_low
        assert math.isclose(t_low / t_high, 50.0, rel_tol=1e-9)

    def test_noc_monotone_in_datawidth(self, layer, mapping, mid_point):
        narrow = config_from_point({**mid_point, "noc_datawidth": 16})
        wide = config_from_point({**mid_point, "noc_datawidth": 256})
        assert (
            _execution(layer, mapping, wide).t_noc_max
            < _execution(layer, mapping, narrow).t_noc_max
        )

    def test_offchip_traffic_at_least_tensor_once(
        self, layer, mapping, mid_config
    ):
        """Each operand must cross the off-chip boundary at least once."""
        execution = _execution(layer, mapping, mid_config)
        for op in (Operand.I, Operand.W, Operand.O):
            tensor_bytes = layer.tensor_bytes(op)
            # Padding can only increase the traffic.
            assert execution.data_offchip[op] >= tensor_bytes * 0.5

    def test_psum_traffic_nonnegative(self, layer, mapping, mid_config):
        execution = _execution(layer, mapping, mid_config)
        assert execution.data_offchip[Operand.PSUM] >= 0
        assert execution.data_noc[Operand.PSUM] >= 0

    def test_utilization_in_unit_range(self, layer, mapping, mid_config):
        execution = _execution(layer, mapping, mid_config)
        assert 0 < execution.utilized_macs_fraction <= 1.0

    def test_bottleneck_factor_names_dominator(self, layer, mapping, mid_point):
        starved = config_from_point({**mid_point, "offchip_bw_mbps": 1024})
        execution = _execution(layer, mapping, starved)
        if execution.t_dma == execution.latency:
            assert execution.bottleneck_factor == "dma"


class TestExecutionInfoContract:
    def test_reuse_available_at_least_one(self, layer, mapping, mid_config):
        execution = _execution(layer, mapping, mid_config)
        for op in Operand:
            assert execution.reuse_available_rf[op] >= 1.0
            assert execution.reuse_available_spm[op] >= 1.0

    def test_groups_within_effective_links(self, layer, mapping, mid_config):
        execution = _execution(layer, mapping, mid_config)
        for op in Operand:
            assert execution.noc_groups_needed[
                op
            ] <= mid_config.effective_links(op)

    def test_psum_aliases_output_buffers(self, layer, mapping, mid_config):
        execution = _execution(layer, mapping, mid_config)
        assert execution.data_rf[Operand.PSUM] == execution.data_rf[Operand.O]
        assert (
            execution.data_spm[Operand.PSUM] == execution.data_spm[Operand.O]
        )


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_random_mappings_invariants(seed, mid_config):
    """Feasible random mappings satisfy the core latency invariants."""
    layer = conv2d("h", 12, 24, (10, 10), kernel=(3, 3))
    rng = random.Random(seed)
    genome = random_genome(layer, mid_config, rng)
    outcome = evaluate_layer_mapping(layer, genome.to_mapping(), mid_config)
    if isinstance(outcome, InfeasibleMapping):
        return
    assert outcome.latency == max(
        outcome.t_comp, outcome.t_noc_max, outcome.t_dma
    )
    assert outcome.t_comp * outcome.pes_used >= layer.macs
    assert all(v >= 0 for v in outcome.data_offchip.values())
    assert all(v >= 0 for v in outcome.data_noc.values())
