"""Tests for the fixed output-stationary dataflow builder."""

import pytest

from repro.arch.accelerator import config_from_point
from repro.cost.execution_info import ExecutionInfo
from repro.cost.latency import evaluate_layer_mapping
from repro.mapping.dataflow import (
    SPATIAL_DIMS,
    build_output_stationary_mapping,
    greedy_tile,
)
from repro.mapping.mapping import Level, padded_bounds
from repro.workloads.layers import LOOP_DIMS, Dim, Operand, conv2d, gemm


class TestGreedyTile:
    def test_respects_budget(self, conv_layer):
        bounds = padded_bounds(conv_layer)
        tile = greedy_tile(
            conv_layer,
            bounds,
            order=(Dim.C, Dim.OX),
            byte_budget=256,
            base_tile={d: 1 for d in LOOP_DIMS},
            bytes_per_element=2,
        )
        from repro.mapping.mapping import operand_tile_elements

        footprint = sum(
            operand_tile_elements(conv_layer, tile, op) * 2
            for op in (Operand.I, Operand.W, Operand.O)
        )
        assert footprint <= 256

    def test_factors_divide_bounds(self, conv_layer):
        bounds = padded_bounds(conv_layer)
        tile = greedy_tile(
            conv_layer,
            bounds,
            order=(Dim.FY, Dim.FX, Dim.C),
            byte_budget=1024,
            base_tile={d: 1 for d in LOOP_DIMS},
            bytes_per_element=2,
        )
        for d in LOOP_DIMS:
            assert bounds[d] % tile[d] == 0

    def test_zero_budget_returns_unit_tile(self, conv_layer):
        bounds = padded_bounds(conv_layer)
        tile = greedy_tile(
            conv_layer,
            bounds,
            order=(Dim.C,),
            byte_budget=0,
            base_tile={d: 1 for d in LOOP_DIMS},
            bytes_per_element=2,
        )
        assert all(f == 1 for f in tile.values())


class TestOutputStationaryMapping:
    def test_valid_for_conv(self, conv_layer, mid_config):
        mapping = build_output_stationary_mapping(conv_layer, mid_config)
        assert mapping is not None
        mapping.validate_for(conv_layer)

    def test_valid_for_gemm(self, gemm_layer, mid_config):
        mapping = build_output_stationary_mapping(gemm_layer, mid_config)
        assert mapping is not None
        mapping.validate_for(gemm_layer)

    def test_no_reduction_dims_unrolled(self, conv_layer, mid_config):
        """The template distributes data but cannot reduce across PEs."""
        mapping = build_output_stationary_mapping(conv_layer, mid_config)
        for d in (Dim.C, Dim.FY, Dim.FX):
            assert mapping.level_factor(Level.SPATIAL, d) == 1
        assert set(SPATIAL_DIMS) == {Dim.M, Dim.OY, Dim.OX, Dim.N}

    def test_spatial_fits_pes(self, conv_layer, mid_config):
        mapping = build_output_stationary_mapping(conv_layer, mid_config)
        assert mapping.pes_used <= mid_config.pes

    def test_output_stationary_ordering(self, conv_layer, mid_config):
        mapping = build_output_stationary_mapping(conv_layer, mid_config)
        assert mapping.dram_stationary is Operand.O
        assert mapping.spm_stationary is Operand.O

    def test_capacities_respected(self, conv_layer, mid_config):
        mapping = build_output_stationary_mapping(conv_layer, mid_config)
        outcome = evaluate_layer_mapping(conv_layer, mapping, mid_config)
        assert isinstance(outcome, ExecutionInfo)

    def test_adapts_to_small_buffers(self, conv_layer, mid_point):
        point = dict(mid_point)
        point["l1_bytes"] = 16
        point["l2_kb"] = 64
        config = config_from_point(point)
        mapping = build_output_stationary_mapping(conv_layer, config)
        assert mapping is not None
        outcome = evaluate_layer_mapping(conv_layer, mapping, config)
        assert isinstance(outcome, ExecutionInfo)

    def test_none_when_unit_tile_overflows(self, mid_point):
        """A huge GEMM row tile cannot fit a tiny RF even at unit factors
        -- only when the input halo itself exceeds the register file."""
        point = dict(mid_point)
        point["l1_bytes"] = 8
        config = config_from_point(point)
        # Unit tile needs I+W+O = 3 elements x 2 B = 6 <= 8: still mappable.
        layer = conv2d("c", 4, 4, (4, 4))
        assert build_output_stationary_mapping(layer, config) is not None
