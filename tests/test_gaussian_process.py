"""Tests for the minimal Gaussian-process implementation."""

import math

import numpy as np
import pytest
from scipy.stats import norm

from repro.optim.gaussian_process import (
    GaussianProcess,
    expected_improvement,
    normal_cdf,
)


class TestNormalCdf:
    def test_matches_scipy(self):
        xs = np.linspace(-4, 4, 41)
        assert np.allclose(normal_cdf(xs), norm.cdf(xs), atol=1e-6)

    def test_symmetry(self):
        assert normal_cdf(np.array([0.0]))[0] == pytest.approx(0.5)


class TestGaussianProcess:
    def test_interpolates_training_points(self):
        x = np.array([[0.0], [0.5], [1.0]])
        y = np.array([1.0, 0.0, 1.0])
        gp = GaussianProcess(noise=1e-8).fit(x, y)
        mean, _ = gp.predict(x)
        assert np.allclose(mean, y, atol=1e-2)

    def test_variance_low_at_train_high_far(self):
        x = np.array([[0.0], [1.0]])
        gp = GaussianProcess(noise=1e-8, lengthscale=0.3).fit(
            x, np.array([0.0, 1.0])
        )
        _, var_train = gp.predict(x)
        _, var_far = gp.predict(np.array([[5.0]]))
        assert var_far[0] > var_train.max()

    def test_prediction_reverts_to_mean_far_away(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([2.0, 4.0])
        gp = GaussianProcess(lengthscale=0.2).fit(x, y)
        mean, _ = gp.predict(np.array([[100.0]]))
        assert mean[0] == pytest.approx(3.0, abs=0.1)

    def test_single_point_fit(self):
        gp = GaussianProcess().fit(np.array([[0.5]]), np.array([2.0]))
        mean, var = gp.predict(np.array([[0.5]]))
        assert math.isfinite(mean[0])
        assert var[0] >= 0

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcess().fit(np.zeros((3, 2)), np.zeros(2))

    def test_median_lengthscale_heuristic(self):
        x = np.array([[0.0], [1.0], [2.0]])
        gp = GaussianProcess().fit(x, np.array([0.0, 1.0, 2.0]))
        assert gp._ls == pytest.approx(1.0)

    def test_fits_smooth_function(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, size=(40, 2))
        y = np.sin(3 * x[:, 0]) + x[:, 1] ** 2
        gp = GaussianProcess().fit(x, y)
        xq = rng.uniform(0.1, 0.9, size=(10, 2))
        mean, _ = gp.predict(xq)
        truth = np.sin(3 * xq[:, 0]) + xq[:, 1] ** 2
        assert np.mean(np.abs(mean - truth)) < 0.2


class TestExpectedImprovement:
    def test_zero_mean_improvement_positive(self):
        ei = expected_improvement(
            np.array([0.0]), np.array([1.0]), best=0.0
        )
        assert ei[0] > 0

    def test_prefers_lower_mean(self):
        var = np.array([0.5, 0.5])
        ei = expected_improvement(np.array([0.0, 2.0]), var, best=1.0)
        assert ei[0] > ei[1]

    def test_prefers_higher_variance_when_means_equal(self):
        mean = np.array([1.0, 1.0])
        ei = expected_improvement(mean, np.array([0.01, 1.0]), best=1.0)
        assert ei[1] > ei[0]
