"""Tests for the campaign state machine (service execution layer).

The load-bearing property: a campaign driven step-by-step through
:class:`CampaignStateMachine` — paused, resumed, abandoned and rebuilt
from its checkpoint — is bit-identical to a straight
``ExplainableDSE.run()``, because ``run()`` itself drives the machine.
"""

import pytest

from repro.core.dse.constraints import Constraint, Sense
from repro.core.dse.explainable import ExplainableDSE
from repro.cost.evaluator import CostEvaluator
from repro.mapping.mapper import TopNMapper
from repro.perf.mapping_cache import MappingCache
from repro.service.machine import (
    CampaignState,
    CampaignStateError,
    CampaignStateMachine,
    result_fingerprint,
)
from repro.telemetry import JsonlSink, Tracer, load_checkpoint


def _constraints():
    return [
        Constraint("area", "area_mm2", 75.0),
        Constraint("power", "power_w", 4.0),
        Constraint("throughput", "throughput", 200.0, Sense.GEQ),
    ]


def _make_evaluator(workload):
    return CostEvaluator(
        workload, TopNMapper(top_n=60), mapping_cache=MappingCache()
    )


def _make_dse(edge_space, workload, budget=16):
    return ExplainableDSE(
        edge_space,
        _make_evaluator(workload),
        _constraints(),
        max_evaluations=budget,
    )


@pytest.fixture(scope="module")
def solo(edge_space, tiny_workload, tmp_path_factory):
    """Reference run() outcome: fingerprint + raw journal bytes."""
    journal = tmp_path_factory.mktemp("solo") / "solo.jsonl"
    tracer = Tracer(JsonlSink(journal))
    result = _make_dse(edge_space, tiny_workload).run(tracer=tracer)
    tracer.close()
    return result_fingerprint(result), journal.read_bytes()


class TestStepDriven:
    def test_stepping_matches_run_exactly(
        self, edge_space, tiny_workload, tmp_path, solo
    ):
        solo_fp, solo_journal = solo
        journal = tmp_path / "stepped.jsonl"
        tracer = Tracer(JsonlSink(journal))
        machine = CampaignStateMachine(
            _make_dse(edge_space, tiny_workload), tracer=tracer
        )
        assert machine.state is CampaignState.PENDING
        machine.start()
        while machine.state is CampaignState.RUNNING:
            machine.step()
        tracer.close()
        assert machine.state is CampaignState.FINISHED
        assert machine.attempt > 1  # the loop actually iterated
        assert result_fingerprint(machine.result()) == solo_fp
        assert journal.read_bytes() == solo_journal

    def test_pause_resume_in_process_is_invisible(
        self, edge_space, tiny_workload, tmp_path, solo
    ):
        solo_fp, solo_journal = solo
        journal = tmp_path / "paused.jsonl"
        tracer = Tracer(JsonlSink(journal))
        machine = CampaignStateMachine(
            _make_dse(edge_space, tiny_workload),
            tracer=tracer,
            checkpoint_path=str(journal) + ".ckpt",
        )
        machine.start()
        while machine.state is CampaignState.RUNNING:
            machine.step()
            if machine.state is CampaignState.RUNNING:
                machine.pause()
                assert machine.state is CampaignState.CHECKPOINTED
                machine.resume()
        tracer.close()
        assert result_fingerprint(machine.result()) == solo_fp
        assert journal.read_bytes() == solo_journal

    def test_consumed_tracks_budget(self, edge_space, tiny_workload):
        machine = CampaignStateMachine(
            _make_dse(edge_space, tiny_workload, budget=8)
        )
        assert machine.consumed == 0
        machine.start()
        assert machine.consumed == 1  # initial point
        while machine.state is CampaignState.RUNNING:
            machine.step()
        assert machine.consumed == machine.result().evaluations <= 8

    def test_slo_snapshot_shape(self, edge_space, tiny_workload):
        machine = CampaignStateMachine(
            _make_dse(edge_space, tiny_workload, budget=6)
        )
        machine.start()
        snapshot = machine.slo_snapshot()
        assert set(snapshot) == {
            "breaker",
            "quarantined_trials",
            "trials",
            "attempt",
            "attempts_without_improvement",
        }
        assert snapshot["quarantined_trials"] == 0
        assert snapshot["breaker"]["tripped"] is False


class TestCheckpointHandoff:
    def test_abandon_and_rebuild_matches_uninterrupted(
        self, edge_space, tiny_workload, tmp_path, solo
    ):
        """Machine killed after 2 attempts; a fresh machine restored from
        the checkpoint finishes with the solo fingerprint."""
        solo_fp, _ = solo
        journal = tmp_path / "abandoned.jsonl"
        ckpt = str(journal) + ".ckpt"
        tracer = Tracer(JsonlSink(journal))
        machine = CampaignStateMachine(
            _make_dse(edge_space, tiny_workload),
            tracer=tracer,
            checkpoint_path=ckpt,
        )
        machine.start()
        machine.step()
        machine.step()
        assert machine.state is CampaignState.RUNNING
        del machine  # the process "dies"; no pause, no flush beyond ckpt

        checkpoint = load_checkpoint(ckpt)
        sink = JsonlSink(journal, resume_events=checkpoint.journal_events)
        resumed_tracer = Tracer(sink, seq_start=checkpoint.journal_events)
        resumed = CampaignStateMachine(
            _make_dse(edge_space, tiny_workload),
            tracer=resumed_tracer,
            checkpoint_path=ckpt,
            resume_from=checkpoint,
        )
        resumed.start()
        while resumed.state is CampaignState.RUNNING:
            resumed.step()
        resumed_tracer.close()
        assert result_fingerprint(resumed.result()) == solo_fp

    def test_resuming_finished_checkpoint_yields_result(
        self, edge_space, tiny_workload, tmp_path
    ):
        journal = tmp_path / "done.jsonl"
        ckpt = str(journal) + ".ckpt"
        tracer = Tracer(JsonlSink(journal))
        machine = CampaignStateMachine(
            _make_dse(edge_space, tiny_workload, budget=8),
            tracer=tracer,
            checkpoint_path=ckpt,
        )
        machine.start()
        while machine.state is CampaignState.RUNNING:
            machine.step()
        tracer.close()
        finished_early = machine.finished  # patience/mitigation exhaustion

        resumed = CampaignStateMachine(
            _make_dse(edge_space, tiny_workload, budget=8),
            resume_from=ckpt,
        )
        resumed.start()
        if finished_early:
            assert resumed.state is CampaignState.FINISHED
            assert (
                resumed.result().best.point == machine.result().best.point
            )
        else:
            # Budget exhaustion is not a finished checkpoint: the resumed
            # campaign re-checks its budget and terminates again.
            while resumed.state is CampaignState.RUNNING:
                resumed.step()
            assert resumed.state is CampaignState.FINISHED


class TestCancel:
    def test_cancel_leaves_prefix_journal(
        self, edge_space, tiny_workload, tmp_path, solo
    ):
        _, solo_journal = solo
        journal = tmp_path / "cancelled.jsonl"
        tracer = Tracer(JsonlSink(journal))
        machine = CampaignStateMachine(
            _make_dse(edge_space, tiny_workload),
            tracer=tracer,
            checkpoint_path=str(journal) + ".ckpt",
        )
        machine.start()
        machine.step()
        machine.cancel()
        tracer.close()
        assert machine.state is CampaignState.CANCELLED
        cancelled = journal.read_bytes()
        assert cancelled  # events up to the boundary were flushed
        assert solo_journal.startswith(cancelled)
        with pytest.raises(CampaignStateError):
            machine.result()

    def test_cancelled_checkpoint_is_resumable(
        self, edge_space, tiny_workload, tmp_path, solo
    ):
        solo_fp, _ = solo
        journal = tmp_path / "c.jsonl"
        ckpt = str(journal) + ".ckpt"
        tracer = Tracer(JsonlSink(journal))
        machine = CampaignStateMachine(
            _make_dse(edge_space, tiny_workload),
            tracer=tracer,
            checkpoint_path=ckpt,
        )
        machine.start()
        machine.step()
        machine.cancel()
        tracer.close()

        checkpoint = load_checkpoint(ckpt)
        sink = JsonlSink(journal, resume_events=checkpoint.journal_events)
        resumed_tracer = Tracer(sink, seq_start=checkpoint.journal_events)
        resumed = CampaignStateMachine(
            _make_dse(edge_space, tiny_workload),
            tracer=resumed_tracer,
            checkpoint_path=ckpt,
            resume_from=checkpoint,
        )
        resumed.start()
        while resumed.state is CampaignState.RUNNING:
            resumed.step()
        resumed_tracer.close()
        assert result_fingerprint(resumed.result()) == solo_fp


class TestTransitionGuards:
    def test_step_requires_running(self, edge_space, tiny_workload):
        machine = CampaignStateMachine(_make_dse(edge_space, tiny_workload))
        with pytest.raises(CampaignStateError):
            machine.step()

    def test_double_start_rejected(self, edge_space, tiny_workload):
        machine = CampaignStateMachine(_make_dse(edge_space, tiny_workload))
        machine.start()
        with pytest.raises(CampaignStateError):
            machine.start()

    def test_pause_requires_running(self, edge_space, tiny_workload):
        machine = CampaignStateMachine(_make_dse(edge_space, tiny_workload))
        with pytest.raises(CampaignStateError):
            machine.pause()

    def test_resume_requires_checkpointed(self, edge_space, tiny_workload):
        machine = CampaignStateMachine(_make_dse(edge_space, tiny_workload))
        machine.start()
        with pytest.raises(CampaignStateError):
            machine.resume()

    def test_cancel_terminal_rejected(self, edge_space, tiny_workload):
        machine = CampaignStateMachine(_make_dse(edge_space, tiny_workload))
        machine.start()
        machine.cancel()
        with pytest.raises(CampaignStateError):
            machine.cancel()

    def test_terminal_property(self):
        assert CampaignState.FINISHED.terminal
        assert CampaignState.CANCELLED.terminal
        assert CampaignState.FAILED.terminal
        assert not CampaignState.RUNNING.terminal
        assert not CampaignState.CHECKPOINTED.terminal
        assert not CampaignState.PENDING.terminal
