"""Tests for reference configurations and the cloud design space."""

import pytest

from repro.arch.accelerator import config_from_point
from repro.arch.templates import (
    build_cloud_design_space,
    edge_tpu_like_point,
    eyeriss_like_point,
)
from repro.cost.area import accelerator_area
from repro.cost.evaluator import CostEvaluator
from repro.cost.power import max_power
from repro.mapping.mapper import TopNMapper


class TestReferencePoints:
    def test_points_valid_in_edge_space(self, edge_space):
        edge_space.validate(eyeriss_like_point())
        edge_space.validate(edge_tpu_like_point())

    def test_eyeriss_like_is_small(self):
        config = config_from_point(eyeriss_like_point())
        assert accelerator_area(config).total_mm2 < 15.0
        assert max_power(config).total_w < 1.5

    def test_edge_tpu_like_is_larger(self):
        small = config_from_point(eyeriss_like_point())
        large = config_from_point(edge_tpu_like_point())
        assert (
            accelerator_area(large).total_mm2
            > accelerator_area(small).total_mm2
        )

    def test_reference_points_executable(self, tiny_workload):
        evaluator = CostEvaluator(tiny_workload, TopNMapper(top_n=60))
        for point in (eyeriss_like_point(), edge_tpu_like_point()):
            evaluation = evaluator.evaluate(point)
            assert evaluation.mappable

    def test_usable_as_dse_initial_point(self, edge_space, tiny_workload):
        from repro.core.dse import Constraint, ExplainableDSE

        evaluator = CostEvaluator(tiny_workload, TopNMapper(top_n=50))
        dse = ExplainableDSE(
            edge_space,
            evaluator,
            [Constraint("area", "area_mm2", 75.0)],
            max_evaluations=10,
        )
        result = dse.run(initial_point=eyeriss_like_point())
        assert result.trials[0].point == eyeriss_like_point()


class TestCloudSpace:
    def test_strictly_larger_than_edge(self, edge_space):
        cloud = build_cloud_design_space()
        assert cloud.parameter("pes").maximum > edge_space.parameter(
            "pes"
        ).maximum
        assert cloud.parameter("l2_kb").maximum > edge_space.parameter(
            "l2_kb"
        ).maximum
        assert cloud.size > edge_space.size

    def test_same_axes(self, edge_space):
        cloud = build_cloud_design_space()
        assert set(cloud.names) == set(edge_space.names)

    def test_cloud_point_exceeds_edge_budgets(self):
        cloud = build_cloud_design_space()
        config = config_from_point(cloud.maximum_point())
        assert accelerator_area(config).total_mm2 > 75.0
        assert max_power(config).total_w > 4.0

    def test_cloud_minimum_evaluable(self, tiny_workload):
        cloud = build_cloud_design_space()
        evaluator = CostEvaluator(tiny_workload, TopNMapper(top_n=40))
        evaluation = evaluator.evaluate(cloud.minimum_point())
        assert evaluation.mappable
