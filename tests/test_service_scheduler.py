"""Tests for the deterministic multi-tenant campaign scheduler."""

import pytest

from repro.service.scheduler import CampaignScheduler, SchedulerError


def _drain(scheduler, budgets):
    """Run the scheduler to completion against per-campaign step budgets;
    returns the slice sequence as ``(campaign_id, steps)`` tuples."""
    remaining = dict(budgets)
    sequence = []
    while True:
        decision = scheduler.next_slice()
        if decision is None:
            return sequence
        sequence.append((decision.campaign_id, decision.steps))
        done_steps = min(decision.steps, remaining[decision.campaign_id])
        remaining[decision.campaign_id] -= done_steps
        done = remaining[decision.campaign_id] <= 0
        scheduler.report(decision.campaign_id, done_steps, done=done)


class TestDeterminism:
    def test_same_submissions_same_slices(self):
        def build():
            s = CampaignScheduler(quantum=1, default_quota=None)
            s.submit("a1", "alice")
            s.submit("b1", "bob")
            s.submit("a2", "alice")
            return _drain(s, {"a1": 3, "b1": 2, "a2": 4})

        assert build() == build()

    def test_round_robin_interleaves_tenants(self):
        s = CampaignScheduler(quantum=1, default_quota=None)
        s.submit("a1", "alice")
        s.submit("b1", "bob")
        sequence = _drain(s, {"a1": 2, "b1": 2})
        assert [c for c, _ in sequence] == ["a1", "b1", "a1", "b1"]

    def test_campaigns_within_tenant_round_robin(self):
        s = CampaignScheduler(quantum=1, default_quota=None)
        s.submit("a1", "alice")
        s.submit("a2", "alice")
        sequence = _drain(s, {"a1": 2, "a2": 2})
        assert [c for c, _ in sequence] == ["a1", "a2", "a1", "a2"]

    def test_weight_scales_slice_size(self):
        s = CampaignScheduler(quantum=2, default_quota=None)
        s.register_tenant("alice", weight=3)
        s.register_tenant("bob", weight=1)
        s.submit("a1", "alice")
        s.submit("b1", "bob")
        sequence = _drain(s, {"a1": 10, "b1": 10})
        sizes = {c: n for c, n in sequence}
        assert sizes["a1"] == 6  # quantum 2 x weight 3
        assert sizes["b1"] == 2


class TestQuota:
    def test_quota_parks_not_fails(self):
        s = CampaignScheduler(quantum=1, default_quota=None)
        s.register_tenant("alice", quota=2)
        s.submit("a1", "alice")
        first = s.next_slice()
        s.report("a1", first.steps)
        second = s.next_slice()
        s.report("a1", second.steps)
        assert s.next_slice() is None  # parked, not removed
        assert s.starved
        assert not s.idle
        assert s.campaign_phase("a1") == "resident"
        assert s.tenant("alice").quota_exhausted

    def test_grant_quota_unparks(self):
        s = CampaignScheduler(quantum=1, default_quota=None)
        s.register_tenant("alice", quota=1)
        s.submit("a1", "alice")
        decision = s.next_slice()
        s.report("a1", decision.steps)
        assert s.next_slice() is None
        s.grant_quota("alice", 5)
        assert s.next_slice().campaign_id == "a1"

    def test_slice_clipped_to_quota_remainder(self):
        s = CampaignScheduler(quantum=5, default_quota=None)
        s.register_tenant("alice", quota=3)
        s.submit("a1", "alice")
        assert s.next_slice().steps == 3

    def test_default_quota_applies_to_new_tenants(self):
        s = CampaignScheduler(quantum=1, default_quota=4)
        s.submit("a1", "alice")
        assert s.tenant("alice").quota == 4

    def test_starved_only_when_work_blocked_on_quota(self):
        s = CampaignScheduler(quantum=1, default_quota=None)
        s.submit("a1", "alice")
        assert not s.starved  # runnable with quota
        _drain(s, {"a1": 1})
        assert not s.starved  # idle, not starved


class TestAdmission:
    def test_max_concurrent_caps_residency(self):
        s = CampaignScheduler(quantum=1, max_concurrent=2, default_quota=None)
        for i in range(4):
            s.submit(f"c{i}", "alice")
        first = s.next_slice()
        assert first.campaign_id == "c0"
        assert s.campaign_phase("c2") == "waiting"
        assert s.campaign_phase("c3") == "waiting"
        s.report("c0", 1, done=True)
        second = s.next_slice()
        assert second.campaign_id == "c1"
        s.report("c1", 1, done=True)
        # Finished campaigns free admission slots in submission order.
        assert s.next_slice().campaign_id == "c2"

    def test_submission_order_preserved_across_tenants(self):
        s = CampaignScheduler(quantum=1, max_concurrent=1, default_quota=None)
        s.submit("b1", "bob")
        s.submit("a1", "alice")
        assert s.next_slice().campaign_id == "b1"


class TestGuards:
    def test_duplicate_submit_rejected(self):
        s = CampaignScheduler(default_quota=None)
        s.submit("c", "alice")
        with pytest.raises(SchedulerError):
            s.submit("c", "bob")

    def test_unknown_campaign_rejected(self):
        s = CampaignScheduler(default_quota=None)
        with pytest.raises(SchedulerError):
            s.remove("nope")
        with pytest.raises(SchedulerError):
            s.campaign_phase("nope")

    def test_one_slice_in_flight(self):
        s = CampaignScheduler(quantum=1, default_quota=None)
        s.submit("c", "alice")
        s.next_slice()
        with pytest.raises(SchedulerError):
            s.next_slice()

    def test_report_requires_in_flight(self):
        s = CampaignScheduler(default_quota=None)
        s.submit("c", "alice")
        with pytest.raises(SchedulerError):
            s.report("c", 1)

    def test_remove_cancels_in_flight(self):
        s = CampaignScheduler(quantum=1, default_quota=None)
        s.submit("c", "alice")
        s.next_slice()
        s.remove("c")
        assert s.idle
        assert s.campaign_phase("c") == "done"
