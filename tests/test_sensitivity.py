"""Tests for one-at-a-time sensitivity analysis (§C characterization)."""

import math

import pytest

from repro.cost.evaluator import CostEvaluator
from repro.experiments.sensitivity import analyze_sensitivity
from repro.mapping.mapper import TopNMapper


@pytest.fixture(scope="module")
def report(edge_space, tiny_workload_module, mid_point_module):
    evaluator = CostEvaluator(tiny_workload_module, TopNMapper(top_n=50))
    return analyze_sensitivity(
        edge_space,
        evaluator,
        base_point=mid_point_module,
        parameters=["pes", "l2_kb", "offchip_bw_mbps", "noc_datawidth"],
        max_values_per_parameter=4,
    )


@pytest.fixture(scope="module")
def tiny_workload_module():
    from repro.workloads.layers import Workload, conv2d, gemm

    return Workload(
        name="tiny",
        layers=(
            conv2d("conv", 16, 32, (14, 14)),
            gemm("fc", 64, 32 * 14 * 14, 1),
        ),
        total_layers=2,
        task="test",
    )


@pytest.fixture(scope="module")
def mid_point_module(edge_space):
    point = edge_space.minimum_point()
    point.update(
        pes=1024,
        l1_bytes=256,
        l2_kb=512,
        offchip_bw_mbps=8192,
        noc_datawidth=128,
    )
    for op in ("I", "W", "O", "PSUM"):
        point[f"phys_unicast_{op}"] = 16
        point[f"virt_unicast_{op}"] = 64
    return point


class TestSweeps:
    def test_only_requested_parameters(self, report):
        assert set(report.sweeps) == {
            "pes",
            "l2_kb",
            "offchip_bw_mbps",
            "noc_datawidth",
        }

    def test_value_cap(self, report):
        for sweep in report.sweeps.values():
            assert len(sweep.values) <= 4

    def test_area_monotone_in_pes(self, report):
        assert report.sweeps["pes"].monotone_direction("area_mm2") == (
            "increasing"
        )

    def test_latency_sensitive_to_bandwidth_direction(self, report):
        direction = report.sweeps["offchip_bw_mbps"].monotone_direction(
            "latency_ms"
        )
        assert direction in ("decreasing", "flat", "mixed")

    def test_swing_at_least_one(self, report):
        for sweep in report.sweeps.values():
            for key in report.cost_keys:
                swing = sweep.swing(key)
                if not math.isnan(swing):
                    assert swing >= 1.0

    def test_ranking_sorted(self, report):
        ranked = report.ranked_parameters("area_mm2")
        values = [s for _, s in ranked if math.isfinite(s)]
        assert values == sorted(values, reverse=True)

    def test_format_mentions_parameters(self, report):
        text = report.format("latency_ms")
        assert "pes" in text
        assert "swing" in text


class TestValidation:
    def test_rejects_bad_base_point(self, edge_space, tiny_workload_module):
        evaluator = CostEvaluator(tiny_workload_module, TopNMapper(top_n=40))
        with pytest.raises(ValueError):
            analyze_sensitivity(
                edge_space, evaluator, base_point={"pes": 64}
            )
