"""Tests for the top-level cost evaluator."""

import math

import pytest

from repro.cost.evaluator import CostEvaluator
from repro.mapping.mapper import FixedDataflowMapper, TopNMapper


@pytest.fixture
def evaluator(tiny_workload):
    return CostEvaluator(tiny_workload, TopNMapper(top_n=60))


class TestEvaluation:
    def test_cost_keys(self, evaluator, mid_point):
        costs = evaluator.evaluate(mid_point).costs
        assert set(costs) == {
            "latency_ms",
            "area_mm2",
            "power_w",
            "energy_mj",
            "throughput",
        }

    def test_latency_positive_and_finite(self, evaluator, mid_point):
        evaluation = evaluator.evaluate(mid_point)
        assert evaluation.mappable
        assert 0 < evaluation.latency_ms < math.inf

    def test_throughput_is_inverse_latency(self, evaluator, mid_point):
        costs = evaluator.evaluate(mid_point).costs
        assert costs["throughput"] == pytest.approx(
            1000.0 / costs["latency_ms"]
        )

    def test_latency_weighs_repeats(self, tiny_workload, mid_point):
        evaluator = CostEvaluator(tiny_workload, TopNMapper(top_n=60))
        evaluation = evaluator.evaluate(mid_point)
        expected_cycles = sum(
            evaluation.layer_results[layer.name].latency * layer.repeats
            for layer in tiny_workload.layers
        )
        assert evaluation.costs["latency_ms"] == pytest.approx(
            expected_cycles / (500 * 1e3)
        )

    def test_per_layer_results_exposed(self, evaluator, mid_point, tiny_workload):
        evaluation = evaluator.evaluate(mid_point)
        assert set(evaluation.layer_results) == {
            layer.name for layer in tiny_workload.layers
        }

    def test_unmappable_yields_inf(self, tiny_workload, edge_space):
        evaluator = CostEvaluator(tiny_workload, FixedDataflowMapper())
        point = edge_space.minimum_point()
        evaluation = evaluator.evaluate(point)
        if not evaluation.mappable:
            assert evaluation.costs["latency_ms"] == math.inf
            assert evaluation.costs["throughput"] == 0.0
        # Area/power stay finite regardless of mappability.
        assert math.isfinite(evaluation.costs["area_mm2"])
        assert math.isfinite(evaluation.costs["power_w"])


class TestCachingAndCounters:
    def test_cache_hit_does_not_reevaluate(self, evaluator, mid_point):
        first = evaluator.evaluate(mid_point)
        count = evaluator.evaluations
        second = evaluator.evaluate(dict(mid_point))
        assert second is first
        assert evaluator.evaluations == count
        assert evaluator.calls == 2

    def test_distinct_points_counted(self, evaluator, mid_point):
        evaluator.evaluate(mid_point)
        other = dict(mid_point)
        other["pes"] = 2048
        evaluator.evaluate(other)
        assert evaluator.evaluations == 2
        assert evaluator.cache_size() == 2

    def test_reset_counters_keeps_cache(self, evaluator, mid_point):
        evaluator.evaluate(mid_point)
        evaluator.reset_counters()
        assert evaluator.evaluations == 0
        assert evaluator.cache_size() == 1
        evaluator.evaluate(mid_point)
        assert evaluator.evaluations == 0  # served from cache

    def test_wall_time_recorded(self, evaluator, mid_point):
        evaluator.evaluate(mid_point)
        assert evaluator.total_seconds > 0
