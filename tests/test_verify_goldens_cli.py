"""Tests for the golden traces and the `verify` CLI subcommand."""

import json

import pytest

from repro.experiments.cli import build_parser, main
from repro.verify.goldens import check_goldens, default_golden_dir


class TestGoldens:
    def test_committed_goldens_match(self, tmp_path):
        """The pinned reference traces under tests/goldens/ reproduce on
        the current code."""
        report = check_goldens(tmp_path)
        assert report.mismatches == []
        assert report.ok and not report.updated

    def test_update_then_check_round_trips(self, tmp_path):
        golden_dir = tmp_path / "goldens"
        updated = check_goldens(tmp_path / "w1", golden_dir=golden_dir,
                                update=True)
        assert updated.updated
        assert (golden_dir / "tiny_campaign.jsonl").exists()
        meta = json.loads((golden_dir / "tiny_campaign.json").read_text())
        assert meta["schema"] == 1 and meta["fingerprint"]
        checked = check_goldens(tmp_path / "w2", golden_dir=golden_dir)
        assert checked.ok

    def test_missing_goldens_reported(self, tmp_path):
        report = check_goldens(tmp_path / "w", golden_dir=tmp_path / "empty")
        assert not report.ok
        assert any("missing" in m for m in report.mismatches)

    def test_tampered_journal_detected(self, tmp_path):
        golden_dir = tmp_path / "goldens"
        check_goldens(tmp_path / "w1", golden_dir=golden_dir, update=True)
        journal = golden_dir / "tiny_campaign.jsonl"
        journal.write_bytes(journal.read_bytes().replace(b"0", b"1", 1))
        report = check_goldens(tmp_path / "w2", golden_dir=golden_dir)
        assert any("journal differs" in m for m in report.mismatches)

    def test_tampered_fingerprint_detected(self, tmp_path):
        golden_dir = tmp_path / "goldens"
        check_goldens(tmp_path / "w1", golden_dir=golden_dir, update=True)
        meta_path = golden_dir / "tiny_campaign.json"
        meta = json.loads(meta_path.read_text())
        meta["fingerprint"] = "tampered"
        meta_path.write_text(json.dumps(meta))
        report = check_goldens(tmp_path / "w2", golden_dir=golden_dir)
        assert any("fingerprint differs" in m for m in report.mismatches)

    def test_default_golden_dir_is_committed(self):
        golden_dir = default_golden_dir()
        assert (golden_dir / "tiny_campaign.jsonl").is_file()
        assert (golden_dir / "tiny_campaign.json").is_file()


class TestVerifyCli:
    def test_parser_accepts_verify(self):
        args = build_parser().parse_args(
            ["verify", "--fuzz-iters", "10", "--seed", "3"]
        )
        assert args.command == "verify"
        assert args.fuzz_iters == 10
        assert args.seed == 3
        assert not args.update_goldens

    def test_verify_exits_zero_when_green(self, tmp_path, capsys):
        """Acceptance criterion: the verify entry point runs the whole
        pipeline and exits 0."""
        code = main(
            [
                "verify",
                "--fuzz-iters", "40",
                "--failures-dir", str(tmp_path / "failures"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "VERIFY PASS" in out
        assert "sweep:" in out and "differential:" in out and "fuzz:" in out

    def test_verify_exits_nonzero_on_failure(self, tmp_path, capsys,
                                             monkeypatch):
        """A seeded divergence must turn the exit code red."""
        import repro.verify.fuzzer as fuzzer_module

        monkeypatch.setattr(
            fuzzer_module,
            "compare_layer",
            lambda layer, mapping, config: ["seeded divergence"],
        )
        code = main(
            [
                "verify",
                "--fuzz-iters", "3",
                "--failures-dir", str(tmp_path / "failures"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "VERIFY FAIL" in out
        assert (tmp_path / "failures").is_dir()
