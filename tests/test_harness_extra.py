"""Additional harness / experiment-module coverage."""

import math

import pytest

from repro.experiments import fig10, fig11, fig12
from repro.experiments.harness import ComparisonRunner, TechniqueSpec


@pytest.fixture(scope="module")
def runner():
    return ComparisonRunner(iterations=5, top_n=40, random_mapping_trials=15)


SPECS = (
    TechniqueSpec("Random Search-FixDF", "random", "fixed"),
    TechniqueSpec("ExplainableDSE-Codesign", "explainable", "codesign"),
)


class TestFig10Extras:
    def test_mean_time_ratio(self, runner):
        result = fig10.run(runner, models=["resnet18"], techniques=SPECS)
        ratios = result.mean_time_ratio_vs("ExplainableDSE-Codesign")
        assert ratios["ExplainableDSE-Codesign"] == pytest.approx(1.0)
        assert all(r > 0 for r in ratios.values() if not math.isnan(r))

    def test_format_contains_models(self, runner):
        result = fig10.run(runner, models=["resnet18"], techniques=SPECS)
        assert "resnet18" in result.format()


class TestFig11Extras:
    def test_custom_model_and_technique_subset(self, runner):
        result = fig11.run(
            runner,
            models=("resnet18",),
            technique_labels=("Random Search-FixDF",),
        )
        assert set(result.trajectories) == {"resnet18"}
        assert set(result.trajectories["resnet18"]) == {
            "Random Search-FixDF"
        }

    def test_final_latency_matches_trajectory(self, runner):
        result = fig11.run(
            runner,
            models=("resnet18",),
            technique_labels=("Random Search-FixDF",),
        )
        series = result.trajectories["resnet18"]["Random Search-FixDF"]
        assert result.final_latency(
            "resnet18", "Random Search-FixDF"
        ) == series[-1]


class TestFig12Extras:
    def test_all_leq_area_power(self, runner):
        result = fig12.run(runner, models=["resnet18"], techniques=SPECS)
        for technique in result.area_power_fraction:
            for model in result.area_power_fraction[technique]:
                assert (
                    result.all_constraints_fraction[technique][model]
                    <= result.area_power_fraction[technique][model] + 1e-9
                )


class TestRunnerIsolation:
    def test_distinct_models_distinct_results(self, runner):
        spec = SPECS[0]
        a = runner.run(spec, "resnet18")
        b = runner.run(spec, "bert")
        assert a is not b
        assert a.model == "resnet18"
        assert b.model == "bert"

    def test_run_matrix_reuses_cache(self, runner):
        first = runner.run(SPECS[0], "resnet18")
        matrix = runner.run_matrix([SPECS[0]], models=["resnet18"])
        assert matrix["Random Search-FixDF"]["resnet18"] is first
