"""Tests for the oracle cost model and its differential checks."""

import dataclasses

import pytest

from repro.arch.accelerator import config_from_point
from repro.cost.evaluator import CostEvaluator
from repro.mapping.mapper import TopNMapper
from repro.verify.checks import (
    compare_config_models,
    compare_evaluation,
    compare_layer,
    exhaustive_tiny_sweep,
)
from repro.verify.corpus import (
    structured_mappings,
    tiny_space,
    tiny_verify_workload,
)
from repro.verify.oracle import (
    OracleCapacityError,
    OracleInfeasible,
    oracle_layer,
)
from repro.workloads.layers import conv2d


class TestExhaustiveSweep:
    def test_sweep_is_exact(self):
        """Acceptance criterion: the oracle agrees with repro.cost on the
        whole tiny space, bit for bit, on every mapping of the corpus."""
        report = exhaustive_tiny_sweep()
        assert report.points == 64
        assert report.comparisons == report.points * 4 * 9
        assert report.feasible > 0
        assert report.infeasible > 0
        assert report.mismatches == []
        assert report.ok

    def test_sweep_covers_most_infeasibility_gates(self):
        """The corpus trips the PE, RF, and NoC gates on its own (the SPM
        gate needs a crafted case — the tiny tensors never overflow the
        sweep's scratchpads, and the RF gate shadows it in the reference's
        gate order)."""
        kinds = set()
        workload = tiny_verify_workload()
        for point in tiny_space().grid(2):
            config = config_from_point(point)
            for layer in workload.layers:
                for mapping in structured_mappings(layer):
                    outcome = oracle_layer(layer, mapping, config)
                    if isinstance(outcome, OracleInfeasible):
                        kinds.add(outcome.kind)
        assert kinds == {"pes", "rf", "noc"}

    def test_spm_gate_agrees_on_crafted_overflow(self):
        """An all-SPM mapping of a mid-size layer on a 1 KB scratchpad
        trips the SPM gate in both models, with matching diagnostics."""
        from repro.verify.corpus import _single_level_mapping

        layer = conv2d("spmtest", 8, 16, (8, 8))
        mapping = _single_level_mapping(layer, "spm")
        config = config_from_point(next(tiny_space().grid(1)))
        config = dataclasses.replace(config, l2_kb=1)
        outcome = oracle_layer(layer, mapping, config)
        assert isinstance(outcome, OracleInfeasible)
        assert outcome.kind == "spm"
        assert compare_layer(layer, mapping, config) == []


class TestDirectComparisons:
    def test_compare_layer_random_seed_variation(self):
        """A different mapping seed than the sweep's still agrees exactly."""
        config = config_from_point(next(tiny_space().grid(1)))
        for layer in tiny_verify_workload().layers:
            for mapping in structured_mappings(layer, count=4, seed=99):
                assert compare_layer(layer, mapping, config) == []

    def test_compare_config_models_exact(self):
        for point in tiny_space().grid(2):
            assert compare_config_models(config_from_point(point)) == []

    def test_compare_full_evaluation(self):
        """Model-level aggregation (cycles -> ms -> throughput, energy sum
        in workload order) matches the production evaluator exactly."""
        workload = tiny_verify_workload()
        evaluator = CostEvaluator(workload, TopNMapper(top_n=20))
        try:
            for point in list(tiny_space().grid(2))[:6]:
                evaluation = evaluator.evaluate(point)
                assert compare_evaluation(evaluation, workload) == []
        finally:
            evaluator.close()


class TestOracleLimits:
    def test_capacity_error_on_large_layers(self):
        """The oracle refuses walks it cannot finish instead of hanging."""
        layer = conv2d("big", 64, 64, (112, 112))
        config = config_from_point(next(tiny_space().grid(1)))
        mapping = structured_mappings(layer, count=0)[0]
        with pytest.raises(OracleCapacityError):
            oracle_layer(layer, mapping, config)
