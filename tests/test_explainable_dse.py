"""End-to-end tests for the Explainable-DSE framework."""

import math

import pytest

from repro.core.dse.constraints import Constraint, Sense, all_satisfied
from repro.core.dse.explainable import ExplainableDSE
from repro.cost.evaluator import CostEvaluator
from repro.mapping.mapper import FixedDataflowMapper, TopNMapper


@pytest.fixture
def dse_setup(edge_space, tiny_workload):
    evaluator = CostEvaluator(tiny_workload, TopNMapper(top_n=80))
    constraints = [
        Constraint("area", "area_mm2", 75.0),
        Constraint("power", "power_w", 4.0),
        Constraint("throughput", "throughput", 200.0, Sense.GEQ),
    ]
    dse = ExplainableDSE(
        edge_space, evaluator, constraints, max_evaluations=40
    )
    return dse, evaluator, constraints


class TestRun:
    def test_finds_feasible_solution(self, dse_setup):
        dse, _, constraints = dse_setup
        result = dse.run()
        assert result.found_feasible
        assert all_satisfied(result.best.costs, constraints)

    def test_respects_evaluation_budget(self, dse_setup):
        dse, evaluator, _ = dse_setup
        result = dse.run()
        assert result.evaluations <= 40
        assert len(result.trials) == result.evaluations

    def test_improves_over_initial_point(self, dse_setup, edge_space):
        dse, _, _ = dse_setup
        result = dse.run()
        initial_latency = result.trials[0].costs["latency_ms"]
        assert result.best_objective < initial_latency

    def test_explanations_logged(self, dse_setup):
        dse, _, _ = dse_setup
        result = dse.run()
        assert result.explanations
        assert any("critical cost" in line for line in result.explanations)
        assert any("attempt" in line for line in result.explanations)

    def test_technique_label(self, dse_setup):
        dse, _, _ = dse_setup
        assert dse.run().technique == "explainable"

    def test_deterministic(self, edge_space, tiny_workload):
        constraints = [Constraint("area", "area_mm2", 75.0)]

        def _run():
            evaluator = CostEvaluator(tiny_workload, TopNMapper(top_n=60))
            dse = ExplainableDSE(
                edge_space, evaluator, constraints, max_evaluations=20
            )
            return dse.run()

        a, b = _run(), _run()
        assert [t.point for t in a.trials] == [t.point for t in b.trials]

    def test_custom_initial_point(self, dse_setup, mid_point):
        dse, _, _ = dse_setup
        result = dse.run(initial_point=mid_point)
        assert result.trials[0].point == mid_point

    def test_invalid_initial_point_rejected(self, dse_setup, mid_point):
        dse, _, _ = dse_setup
        bad = dict(mid_point)
        bad["pes"] = 100  # not a Table 1 value
        with pytest.raises(ValueError):
            dse.run(initial_point=bad)


class TestConstraintHandling:
    def test_once_feasible_stays_feasible(self, dse_setup):
        """'Once Explainable-DSE achieved a solution that met all
        constraints, it always ensured to optimize further with a
        feasible solution' (§6.3)."""
        dse, _, constraints = dse_setup
        result = dse.run()
        best_so_far = math.inf
        seen_feasible = False
        for trial in result.trials:
            if trial.feasible:
                seen_feasible = True
                best_so_far = min(best_so_far, trial.objective)
        assert seen_feasible
        assert result.best_objective == best_so_far

    def test_area_violation_triggers_downscaling(
        self, edge_space, tiny_workload
    ):
        """Starting from the maximum point (over area/power budget), the
        DSE must move toward smaller configurations."""
        evaluator = CostEvaluator(tiny_workload, TopNMapper(top_n=60))
        constraints = [
            Constraint("area", "area_mm2", 75.0),
            Constraint("power", "power_w", 4.0),
        ]
        dse = ExplainableDSE(
            edge_space, evaluator, constraints, max_evaluations=30
        )
        result = dse.run(initial_point=edge_space.maximum_point())
        assert result.found_feasible
        assert result.best.costs["area_mm2"] <= 75.0
        assert result.best.costs["power_w"] <= 4.0

    def test_unmappable_fixed_dataflow_recovers(
        self, edge_space, tiny_workload
    ):
        """With a fixed dataflow the minimum point cannot map; the DSE's
        compatibility mitigation must raise NoC limits until it can."""
        evaluator = CostEvaluator(tiny_workload, FixedDataflowMapper())
        constraints = [Constraint("area", "area_mm2", 75.0)]
        dse = ExplainableDSE(
            edge_space, evaluator, constraints, max_evaluations=30
        )
        result = dse.run()
        assert any(t.mappable for t in result.trials)


class TestAcquisition:
    def test_candidates_change_single_param_or_noc_bundle(self, dse_setup):
        dse, _, _ = dse_setup
        result = dse.run()
        # Each non-initial trial is S with one parameter changed, except
        # the NoC capability / compatibility bundles, which only touch
        # unicast parameters together.
        points = [t.point for t in result.trials]
        bundle_params = tuple(
            f"{kind}_unicast_{op}"
            for kind in ("virt", "phys")
            for op in ("I", "W", "O", "PSUM")
        )
        for i, point in enumerate(points[1:], start=1):
            diff_sets = [
                {k for k in point if point[k] != other[k]}
                for other in points[:i]
            ]
            smallest = min(diff_sets, key=len)
            assert len(smallest) <= 1 or all(
                k in bundle_params for k in smallest
            ), smallest

    def test_no_duplicate_acquisitions(self, dse_setup, edge_space):
        dse, _, _ = dse_setup
        result = dse.run()
        keys = [edge_space.point_key(t.point) for t in result.trials]
        assert len(keys) == len(set(keys))
