"""Tests for the bottleneck analyzer (contributions, scalings)."""

import math

import pytest

from repro.core.bottleneck.analyzer import (
    DEFAULT_SCALING,
    MAX_SCALING,
    analyze_tree,
)
from repro.core.bottleneck.tree import add, div, leaf, maximum, mul


def _by_name(findings):
    return {f.name: f for f in findings}


class TestMaxNodes:
    def test_argmax_child_dominates(self):
        tree = maximum("root", [leaf("comp", 100), leaf("dma", 400)])
        findings = _by_name(analyze_tree(tree))
        assert findings["dma"].contribution == pytest.approx(1.0)
        assert "comp" not in findings

    def test_fig8_scaling_example(self):
        """Fig. 8: DMA dominates; comm at 25.9% -> s = 1/0.259 = 3.85x."""
        tree = maximum(
            "latency",
            [leaf("comp", 24.4), leaf("comm", 25.9), leaf("dma", 100.0)],
        )
        findings = _by_name(analyze_tree(tree))
        assert findings["dma"].scaling == pytest.approx(100.0 / 25.9, rel=1e-6)

    def test_single_child_gets_default_scaling(self):
        tree = maximum("root", [leaf("only", 10)])
        findings = _by_name(analyze_tree(tree))
        assert findings["only"].scaling == DEFAULT_SCALING


class TestAddNodes:
    def test_contributions_proportional(self):
        tree = add("root", [leaf("a", 30), leaf("b", 70)])
        findings = _by_name(analyze_tree(tree, target_value=50))
        assert findings["a"].contribution == pytest.approx(0.3)
        assert findings["b"].contribution == pytest.approx(0.7)

    def test_scaling_absorbs_excess(self):
        # Total 100 with target 50: excess 50; child b (70) must shrink to
        # 20 -> scaling 3.5; child a (30) cannot absorb it -> max scaling.
        tree = add("root", [leaf("a", 30), leaf("b", 70)])
        findings = _by_name(analyze_tree(tree, target_value=50))
        assert findings["b"].scaling == pytest.approx(70 / 20)
        assert findings["a"].scaling == MAX_SCALING

    def test_contributions_sum_to_one(self):
        tree = add("root", [leaf(f"x{i}", i + 1.0) for i in range(5)])
        findings = analyze_tree(tree, min_contribution=0.0)
        total = sum(f.contribution for f in findings if f.name.startswith("x"))
        assert total == pytest.approx(1.0)


class TestMulDivNodes:
    def test_mul_children_inherit(self):
        tree = maximum(
            "root",
            [mul("work", [leaf("a", 5), leaf("b", 4)]), leaf("other", 10)],
        )
        findings = _by_name(analyze_tree(tree))
        assert findings["a"].contribution == pytest.approx(1.0)
        assert findings["a"].scaling == findings["work"].scaling

    def test_div_denominator_is_inverse(self):
        tree = maximum(
            "root",
            [div("dma", leaf("bytes", 100), leaf("bw", 2)), leaf("x", 10)],
        )
        findings = _by_name(analyze_tree(tree))
        assert not findings["bytes"].inverse
        assert findings["bw"].inverse


class TestRankingAndFiltering:
    def test_ranked_by_contribution(self):
        tree = add("root", [leaf("small", 10), leaf("big", 90)])
        findings = analyze_tree(tree, target_value=50)
        assert findings[0].name == "big"

    def test_min_contribution_filters(self):
        tree = add("root", [leaf("tiny", 0.1), leaf("big", 99.9)])
        names = {f.name for f in analyze_tree(tree, min_contribution=0.05)}
        assert "tiny" not in names
        assert "big" in names

    def test_root_excluded(self):
        tree = maximum("root", [leaf("a", 5)])
        assert all(f.name != "root" for f in analyze_tree(tree))

    def test_empty_for_zero_total(self):
        tree = add("root", [leaf("a", 0.0)])
        assert analyze_tree(tree) == []

    def test_empty_for_infinite_total(self):
        tree = add("root", [leaf("a", math.inf)])
        assert analyze_tree(tree) == []


class TestScalingClamps:
    def test_scaling_capped(self):
        tree = maximum("root", [leaf("huge", 1e12), leaf("tiny", 1e-9)])
        findings = _by_name(analyze_tree(tree))
        assert findings["huge"].scaling == MAX_SCALING

    def test_target_value_drives_root_scaling(self):
        tree = maximum("root", [leaf("a", 80), leaf("b", 60)])
        findings = _by_name(analyze_tree(tree, target_value=20))
        # Root scaling 80/20 = 4 exceeds sibling balance 80/60.
        assert findings["a"].scaling == pytest.approx(4.0)

    def test_describe_is_informative(self):
        tree = maximum("root", [leaf("a", 80), leaf("b", 60)])
        finding = analyze_tree(tree)[0]
        text = finding.describe()
        assert "a" in text
        assert "%" in text
