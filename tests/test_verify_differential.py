"""Tests for the fast-path differential campaign matrix."""

from repro.telemetry import RunSummary, read_journal
from repro.verify.differential import _canonical_journal, run_differential

#: Matrix columns, in execution order (one per accelerated path plus the
#: serial/scalar/cold/recursive reference and the everything-on combo).
ALL_VARIANTS = [
    "baseline",
    "batch",
    "jobs2",
    "warm-cache",
    "resume",
    "fused",
    "shm",
    "compiled-tree",
    "cache-plane",
    "all-on",
]


class TestDifferentialMatrix:
    def test_full_matrix_is_identical(self, tmp_path):
        """Acceptance criterion: batch, parallel, warm-cache, resumed,
        fused, shm-sharded, compiled-tree, and cache-plane campaigns all
        reproduce the serial reference — results exactly, journals up to
        RunSummary perf counters (raw bytes for jobs2 and compiled-tree)."""
        report = run_differential(tmp_path, max_evaluations=12)
        assert report.variants == ALL_VARIANTS
        assert report.mismatches == []
        assert report.ok

    def test_every_variant_journal_written(self, tmp_path):
        run_differential(tmp_path, max_evaluations=12)
        for name in ALL_VARIANTS:
            journal = tmp_path / f"{name}.jsonl"
            assert journal.exists() and journal.stat().st_size > 0

    def test_canonical_journal_strips_only_counters(self, tmp_path):
        """The canonicalization must keep every event (same count, same
        types) and only empty the RunSummary counters."""
        run_differential(tmp_path, max_evaluations=12)
        journal = tmp_path / "baseline.jsonl"
        events = read_journal(journal)
        canonical = _canonical_journal(journal).decode("utf-8").splitlines()
        assert len(canonical) == len(events)
        # the raw journal really carries counters (so stripping matters)...
        assert any(isinstance(e, RunSummary) and e.counters for e in events)
        # ...and no canonical line retains any of them.
        import json

        for line in canonical:
            payload = json.loads(line)
            if "counters" in payload:
                assert payload["counters"] == {}
