"""Tests for the consolidated report generator."""

import pytest

from repro.experiments.harness import ComparisonRunner
from repro.experiments.report_all import generate_report


@pytest.fixture(scope="module")
def report():
    runner = ComparisonRunner(
        iterations=5, top_n=40, random_mapping_trials=15
    )
    return generate_report(
        runner, models=["resnet18"], include_case_studies=False
    )


class TestReport:
    def test_core_sections_present(self, report):
        titles = list(report.sections)
        for fragment in ("Fig. 3", "Fig. 9", "Table 2", "Table 7"):
            assert any(fragment in t for t in titles), fragment

    def test_case_studies_skippable(self, report):
        assert not any("Edge TPU" in t for t in report.sections)

    def test_format_is_markdown(self, report):
        text = report.format()
        assert text.startswith("# Explainable-DSE reproduction report")
        assert "## Fig. 9" in text
        assert "```" in text

    def test_metadata(self, report):
        assert report.iterations == 5
        assert report.total_seconds > 0

    def test_cli_experiment_all(self, tmp_path, capsys):
        from repro.experiments.cli import main

        out = tmp_path / "report.md"
        code = main(
            [
                "experiment",
                "all",
                "--iterations",
                "4",
                "--models",
                "resnet18",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        assert "reproduction report" in out.read_text()
