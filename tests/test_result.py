"""Tests for DSE result records."""

import math

import pytest

from repro.core.dse.constraints import Constraint, Sense
from repro.core.dse.result import DSEResult, TrialRecord, select_best


def _trial(index, latency, area=50.0, feasible=None, utilizations=None):
    costs = {"latency_ms": latency, "area_mm2": area}
    if feasible is None:
        feasible = area <= 75.0 and math.isfinite(latency)
    return TrialRecord(
        index=index,
        point={"pes": 64},
        costs=costs,
        feasible=feasible,
        mappable=math.isfinite(latency),
        utilizations=utilizations or {"area": area / 75.0},
    )


def _result(trials, best=None):
    return DSEResult(
        technique="test",
        model="m",
        trials=trials,
        best=best,
        evaluations=len(trials),
        wall_seconds=1.0,
    )


class TestTrialRecord:
    def test_objective(self):
        assert _trial(0, 5.0).objective == 5.0

    def test_meets_subset(self):
        t = _trial(0, 5.0, utilizations={"area": 0.5, "power": 2.0})
        assert t.meets(["area"])
        assert not t.meets(["area", "power"])
        assert not t.meets(["missing"])


class TestDSEResult:
    def test_best_objective_inf_when_none(self):
        result = _result([_trial(0, math.inf, feasible=False)])
        assert result.best_objective == math.inf
        assert not result.found_feasible

    def test_feasibility_fraction(self):
        trials = [
            _trial(0, 5.0, feasible=True),
            _trial(1, 5.0, feasible=False),
            _trial(2, 5.0, feasible=True),
            _trial(3, 5.0, feasible=False),
        ]
        assert _result(trials).feasibility_fraction() == 0.5

    def test_feasibility_fraction_subset(self):
        trials = [
            _trial(0, 5.0, utilizations={"area": 0.5, "power": 2.0}),
            _trial(1, 5.0, utilizations={"area": 1.5, "power": 0.5}),
        ]
        assert _result(trials).feasibility_fraction(["area"]) == 0.5
        assert _result(trials).feasibility_fraction(["power"]) == 0.5
        assert _result(trials).feasibility_fraction(["area", "power"]) == 0.0

    def test_empty_trials(self):
        assert _result([]).feasibility_fraction() == 0.0
        assert _result([]).best_so_far_trajectory() == []
        assert _result([]).per_attempt_reduction() == 0.0

    def test_trajectory_monotone_nonincreasing(self):
        trials = [
            _trial(0, 10.0),
            _trial(1, 12.0),
            _trial(2, 6.0),
            _trial(3, 8.0),
        ]
        trajectory = _result(trials).best_so_far_trajectory()
        assert trajectory == [10.0, 10.0, 6.0, 6.0]

    def test_trajectory_inf_until_first_feasible(self):
        trials = [_trial(0, 10.0, feasible=False), _trial(1, 8.0)]
        trajectory = _result(trials).best_so_far_trajectory()
        assert trajectory[0] == math.inf
        assert trajectory[1] == 8.0

    def test_per_attempt_reduction(self):
        # 100 -> 50 -> 25: 50% reduction per attempt.
        trials = [_trial(0, 100.0), _trial(1, 50.0), _trial(2, 25.0)]
        assert _result(trials).per_attempt_reduction() == pytest.approx(0.5)

    def test_per_attempt_reduction_no_progress(self):
        trials = [_trial(0, 100.0), _trial(1, 100.0)]
        assert _result(trials).per_attempt_reduction() == pytest.approx(0.0)


class TestSelectBest:
    def test_picks_lowest_feasible(self):
        constraints = [Constraint("area", "area_mm2", 75.0)]
        trials = [
            _trial(0, 10.0, area=50),
            _trial(1, 5.0, area=80),  # infeasible
            _trial(2, 7.0, area=60),
        ]
        best = select_best(trials, constraints)
        assert best.index == 2

    def test_none_when_all_infeasible(self):
        constraints = [Constraint("area", "area_mm2", 75.0)]
        trials = [_trial(0, 1.0, area=100)]
        assert select_best(trials, constraints) is None
