"""Equivalence and property tests for the vectorized batch evaluator.

The contract under test: with ``REPRO_BATCH_EVAL`` on or off, every
built-in mapper returns *bit-identical* results — same mappings, same
``ExecutionInfo`` values **and Python types**, same infeasibility
reasons, same candidate counts, same re-scorable traces.
"""

import itertools
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import build_edge_design_space, config_from_point
from repro.cost.batch import (
    batch_eval_enabled,
    evaluate_layer_batch,
    evaluate_layer_mappings_batch,
    int64_safe,
)
from repro.cost.evaluator import CostEvaluator
from repro.cost.execution_info import ExecutionInfo, InfeasibleMapping
from repro.cost.latency import evaluate_layer_mapping
from repro.mapping.batch_candidates import CandidateBatch, CandidateSpec
from repro.mapping.mapper import (
    FixedDataflowMapper,
    MAPPING_OBJECTIVES,
    RandomSearchMapper,
    TopNMapper,
    rescore_trace,
)
from repro.mapping.mapping import padded_bounds, padded_bounds_tuple
from repro.perf.instrumentation import BatchEvalStats
from repro.workloads.layers import (
    LOOP_DIMS,
    conv2d,
    depthwise_conv2d,
    gemm,
)

# Deterministic property-test inputs: one layer per operator type and a
# small and a mid-range hardware point, so both feasible and every
# infeasible branch are exercised.
_LAYERS = (
    conv2d("conv", 16, 32, (14, 14)),
    conv2d("strided", 8, 16, (7, 7), stride=2),
    depthwise_conv2d("dw", 32, (14, 14)),
    gemm("fc", 64, 128, 1),
)


def _tiny_config():
    return config_from_point(build_edge_design_space().minimum_point())


_CONFIGS = None


def _configs():
    global _CONFIGS
    if _CONFIGS is None:
        space = build_edge_design_space()
        mid = space.minimum_point()
        mid.update(
            pes=1024, l1_bytes=256, l2_kb=512,
            offchip_bw_mbps=8192, noc_datawidth=128,
        )
        for op in ("I", "W", "O", "PSUM"):
            mid[f"phys_unicast_{op}"] = 16
            mid[f"virt_unicast_{op}"] = 64
        _CONFIGS = (
            config_from_point(space.minimum_point()),
            config_from_point(mid),
        )
    return _CONFIGS


def assert_outcomes_identical(scalar, batch):
    """Outcome equality including Python types and dict insertion order."""
    assert type(scalar) is type(batch)
    if isinstance(scalar, InfeasibleMapping):
        assert scalar.reason == batch.reason
        assert scalar.operand == batch.operand
        return
    for field, sv in scalar.__dict__.items():
        bv = batch.__dict__[field]
        assert type(sv) is type(bv), field
        if isinstance(sv, dict):
            assert list(sv) == list(bv), field
            for key in sv:
                assert type(sv[key]) is type(bv[key]), (field, key)
                assert sv[key] == bv[key], (field, key)
        else:
            assert sv == bv, field


def assert_results_identical(scalar, batch):
    assert scalar.candidates_evaluated == batch.candidates_evaluated
    assert scalar.feasible_candidates == batch.feasible_candidates
    assert (scalar.mapping is None) == (batch.mapping is None)
    if scalar.mapping is not None:
        assert scalar.mapping == batch.mapping
        assert_outcomes_identical(scalar.execution, batch.execution)


def _spec_grid():
    """~200 deterministic candidate specs spanning all stationarities."""
    factor_sets = [(1, 1, 2, 2, 2, 1, 1), (1, 4, 4, 1, 1, 1, 1),
                   (2, 2, 2, 2, 2, 2, 2), (1, 8, 1, 4, 4, 1, 1)]
    specs = []
    for dram, spm, spatial, rf in itertools.islice(
        itertools.product(factor_sets, repeat=4), 64
    ):
        for dram_code, spm_code in itertools.product(range(3), range(3)):
            specs.append(CandidateSpec(dram, spm, spatial, rf,
                                       dram_code, spm_code))
    return specs


_spec_strategy = st.builds(
    CandidateSpec,
    dram=st.tuples(*[st.integers(1, 4)] * 7),
    spm=st.tuples(*[st.integers(1, 4)] * 7),
    spatial=st.tuples(*[st.integers(1, 6)] * 7),
    rf=st.tuples(*[st.integers(1, 4)] * 7),
    dram_code=st.integers(0, 2),
    spm_code=st.integers(0, 2),
)


class TestScalarBatchEquivalence:
    @pytest.mark.parametrize("objective", sorted(MAPPING_OBJECTIVES))
    @pytest.mark.parametrize(
        "make_mapper",
        [
            lambda obj, be: TopNMapper(top_n=80, objective=obj,
                                       batch_eval=be),
            lambda obj, be: RandomSearchMapper(trials=60, seed=3,
                                               objective=obj, batch_eval=be),
        ],
        ids=["top-n", "random"],
    )
    def test_mapper_results_and_traces_identical(
        self, make_mapper, objective, conv_layer, mid_config
    ):
        s_res, s_trace = make_mapper(objective, False).search_with_trace(
            conv_layer, mid_config
        )
        b_res, b_trace = make_mapper(objective, True).search_with_trace(
            conv_layer, mid_config
        )
        assert_results_identical(s_res, b_res)
        assert s_trace.candidates_evaluated == b_trace.candidates_evaluated
        assert len(s_trace.feasible) == len(b_trace.feasible)
        for (sm, se), (bm, be) in zip(s_trace.feasible, b_trace.feasible):
            assert sm == bm
            assert_outcomes_identical(se, be)

    def test_gemm_layer_identical(self, gemm_layer, mid_config):
        scalar = TopNMapper(top_n=80, batch_eval=False)(gemm_layer, mid_config)
        batch = TopNMapper(top_n=80, batch_eval=True)(gemm_layer, mid_config)
        assert_results_identical(scalar, batch)

    def test_env_knob_matches_explicit_override(
        self, conv_layer, mid_config, monkeypatch
    ):
        monkeypatch.setenv("REPRO_BATCH_EVAL", "0")
        via_env = TopNMapper(top_n=40)(conv_layer, mid_config)
        monkeypatch.setenv("REPRO_BATCH_EVAL", "1")
        via_batch = TopNMapper(top_n=40)(conv_layer, mid_config)
        assert_results_identical(via_env, via_batch)

    def test_rescore_trace_parity_across_paths(
        self, mid_point, conv_layer, mid_config
    ):
        """Traces from either path re-score identically on new bandwidth,
        and match a cold search there — the mapping-cache contract."""
        shifted_point = dict(mid_point, offchip_bw_mbps=2048)
        shifted = config_from_point(shifted_point)
        for objective in sorted(MAPPING_OBJECTIVES):
            _, s_trace = TopNMapper(
                top_n=80, objective=objective, batch_eval=False
            ).search_with_trace(conv_layer, mid_config)
            _, b_trace = TopNMapper(
                top_n=80, objective=objective, batch_eval=True
            ).search_with_trace(conv_layer, mid_config)
            s_rescored = rescore_trace(conv_layer, shifted, s_trace, objective)
            b_rescored = rescore_trace(conv_layer, shifted, b_trace, objective)
            assert_results_identical(s_rescored, b_rescored)
            cold = TopNMapper(top_n=80, objective=objective, batch_eval=True)(
                conv_layer, shifted
            )
            assert_results_identical(cold, b_rescored)

    def test_deterministic_spec_grid_outcomes(self):
        specs = _spec_grid()
        mappings = [spec.to_mapping() for spec in specs]
        for layer in _LAYERS:
            for config in _configs():
                batched = evaluate_layer_mappings_batch(
                    layer, mappings, config
                )
                assert len(batched) == len(mappings)
                for mapping, outcome in zip(mappings, batched):
                    scalar = evaluate_layer_mapping(layer, mapping, config)
                    assert_outcomes_identical(scalar, outcome)

    @settings(max_examples=60, deadline=None)
    @given(spec=_spec_strategy, layer_index=st.integers(0, len(_LAYERS) - 1),
           config_index=st.integers(0, 1))
    def test_property_random_specs(self, spec, layer_index, config_index):
        layer = _LAYERS[layer_index]
        config = _configs()[config_index]
        mapping = spec.to_mapping()
        scalar = evaluate_layer_mapping(layer, mapping, config)
        batch = evaluate_layer_mappings_batch(layer, [mapping], config)[0]
        assert_outcomes_identical(scalar, batch)


class TestBatchPrimitives:
    def test_empty_batch(self, conv_layer, mid_config):
        batch = CandidateBatch.from_specs(())
        assert len(batch) == 0
        assert int64_safe(batch, mid_config)
        evaluation = evaluate_layer_batch(conv_layer, batch, mid_config)
        assert len(evaluation) == 0
        assert evaluation.feasible_indices.size == 0
        assert evaluate_layer_mappings_batch(conv_layer, [], mid_config) == []

    def test_round_trip_through_mappings(self):
        specs = _spec_grid()[:30]
        mappings = [spec.to_mapping() for spec in specs]
        batch = CandidateBatch.from_mappings(mappings)
        assert len(batch) == len(mappings)
        for i, mapping in enumerate(mappings):
            assert batch.mapping(i) == mapping
        assert batch.specs == tuple(specs)

    def test_int64_safe_rejects_huge_factors(self, mid_config):
        huge = (2 ** 12,) * 7
        batch = CandidateBatch.from_specs(
            [CandidateSpec(huge, huge, huge, huge, 0, 0)]
        )
        assert not int64_safe(batch, mid_config)

    def test_int64_fallback_still_identical(self, conv_layer, mid_config):
        """An unsafe batch silently falls back to the scalar path."""
        huge = (2 ** 12,) * 7
        specs = [CandidateSpec(huge, huge, huge, huge, 0, 0)]
        specs += _spec_grid()[:20]
        mapper = TopNMapper(top_n=80, batch_eval=True)

        import repro.mapping.mapper as mapper_mod

        result, trace = mapper_mod._best_of_traced(
            conv_layer, mid_config, iter(specs), budget=len(specs),
            stats=mapper.batch_stats,
        )
        assert mapper.batch_stats.int64_fallbacks == 1
        assert mapper.batch_stats.scalar_searches == 1
        scalar_result, scalar_trace = mapper_mod._best_of_traced(
            conv_layer, mid_config, iter(specs), budget=len(specs),
            batch_eval=False,
        )
        assert_results_identical(scalar_result, result)
        assert trace.candidates_evaluated == scalar_trace.candidates_evaluated

    def test_batch_eval_enabled_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_EVAL", raising=False)
        assert batch_eval_enabled()
        monkeypatch.setenv("REPRO_BATCH_EVAL", "0")
        assert not batch_eval_enabled()
        assert batch_eval_enabled(True)
        monkeypatch.setenv("REPRO_BATCH_EVAL", "1")
        assert batch_eval_enabled()
        assert not batch_eval_enabled(False)


class TestPaddedBoundsMemo:
    def test_memoized_and_read_only(self, conv_layer):
        first = padded_bounds(conv_layer)
        assert padded_bounds(conv_layer) is first
        with pytest.raises(TypeError):
            first[LOOP_DIMS[0]] = 99
        assert tuple(first[d] for d in LOOP_DIMS) == padded_bounds_tuple(
            conv_layer
        )
        assert padded_bounds_tuple(conv_layer) is padded_bounds_tuple(
            conv_layer
        )


class TestObjectiveValidation:
    @pytest.mark.parametrize(
        "build",
        [
            lambda: TopNMapper(objective="thrughput"),
            lambda: RandomSearchMapper(objective="thrughput"),
        ],
        ids=["top-n", "random"],
    )
    def test_ctor_error_lists_choices(self, build):
        with pytest.raises(ValueError, match="edp.*energy.*latency"):
            build()

    def test_rescore_trace_rejects_unknown(self, conv_layer, mid_config):
        _, trace = TopNMapper(top_n=20).search_with_trace(
            conv_layer, mid_config
        )
        with pytest.raises(ValueError, match="unknown mapping objective"):
            rescore_trace(conv_layer, mid_config, trace, objective="speed")

    def test_make_evaluator_rejects_unknown(self):
        from repro.experiments.setup import make_evaluator

        with pytest.raises(ValueError, match="unknown mapping objective"):
            make_evaluator("resnet18", objective="speed")

    def test_cli_rejects_unknown_objective(self, capsys):
        from repro.experiments.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["explore", "resnet18", "--objective", "speed"]
            )
        assert "--objective" in capsys.readouterr().err

    def test_cli_batch_eval_flag_sets_env(self, monkeypatch):
        from repro.experiments.cli import _apply_batch_eval, build_parser

        monkeypatch.delenv("REPRO_BATCH_EVAL", raising=False)
        args = build_parser().parse_args(
            ["explore", "resnet18", "--batch-eval", "off"]
        )
        _apply_batch_eval(args)
        assert batch_eval_enabled() is False
        args = build_parser().parse_args(
            ["explore", "resnet18", "--batch-eval", "on"]
        )
        _apply_batch_eval(args)
        assert batch_eval_enabled() is True


class TestStatsAndSummary:
    def test_counters_and_merge(self):
        stats = BatchEvalStats()
        stats.record_batch(100, 40, 0.5)
        stats.record_scalar(50, 2.0)
        stats.record_fallback()
        assert stats.batches == 1
        assert stats.batch_candidates_per_second == pytest.approx(200.0)
        assert stats.scalar_candidates_per_second == pytest.approx(25.0)
        other = BatchEvalStats()
        other.record_batch(10, 5, 0.1)
        stats.merge(other)
        assert stats.batches == 2
        assert stats.batch_candidates == 110
        as_dict = stats.as_dict()
        assert as_dict["int64_fallbacks"] == 1
        assert as_dict["scalar_searches"] == 1
        stats.reset()
        assert stats.as_dict()["batches"] == 0
        assert stats.batch_candidates_per_second == 0.0

    def test_stats_pickle(self):
        stats = BatchEvalStats()
        stats.record_batch(7, 3, 0.25)
        clone = pickle.loads(pickle.dumps(stats))
        assert clone.as_dict() == stats.as_dict()

    def test_mapper_records_batch_path(self, conv_layer, mid_config):
        mapper = TopNMapper(top_n=40, batch_eval=True)
        result = mapper(conv_layer, mid_config)
        assert mapper.batch_stats.batches == 1
        assert mapper.batch_stats.batch_candidates == (
            result.candidates_evaluated
        )
        assert mapper.batch_stats.batch_feasible == (
            result.feasible_candidates
        )
        assert mapper.batch_stats.scalar_searches == 0

    def test_mapper_records_scalar_path(self, conv_layer, mid_config):
        mapper = TopNMapper(top_n=40, batch_eval=False)
        result = mapper(conv_layer, mid_config)
        assert mapper.batch_stats.batches == 0
        assert mapper.batch_stats.scalar_searches == 1
        assert mapper.batch_stats.scalar_candidates == (
            result.candidates_evaluated
        )

    def test_batch_eval_not_in_cache_signature(self):
        assert TopNMapper(batch_eval=True).signature() == TopNMapper(
            batch_eval=False
        ).signature()

    def test_perf_summary_section(self, tiny_workload, mid_point):
        evaluator = CostEvaluator(
            tiny_workload, TopNMapper(top_n=40, batch_eval=True)
        )
        evaluator.evaluate(mid_point)
        section = evaluator.perf_summary()["batch_eval"]
        assert section["supported"] is True
        assert section["enabled"] is True
        assert section["batches"] >= 1
        assert section["batch_candidates"] > 0
        evaluator.reset_counters()
        assert evaluator.perf_summary()["batch_eval"]["batches"] == 0

    @pytest.mark.parametrize("executor_mode", ["process", "thread"])
    def test_worker_pool_stats_flow_back(
        self, tiny_workload, mid_point, executor_mode
    ):
        """Batch counters from pool workers reach the parent exactly once."""
        serial = CostEvaluator(
            tiny_workload,
            TopNMapper(top_n=40, batch_eval=True),
            use_mapping_cache=False,
        )
        serial.evaluate(mid_point)
        pooled = CostEvaluator(
            tiny_workload,
            TopNMapper(top_n=40, batch_eval=True),
            jobs=2,
            executor_mode=executor_mode,
            use_mapping_cache=False,
        )
        pooled.evaluate(mid_point)
        expected = serial.batch_eval_stats
        got = pooled.batch_eval_stats
        assert got.batches == expected.batches
        assert got.batch_candidates == expected.batch_candidates
        assert got.batch_feasible == expected.batch_feasible
        assert got.scalar_searches == expected.scalar_searches

    def test_perf_summary_unsupported_mapper(self, tiny_workload, mid_point):
        evaluator = CostEvaluator(tiny_workload, FixedDataflowMapper())
        evaluator.evaluate(mid_point)
        section = evaluator.perf_summary()["batch_eval"]
        assert section["supported"] is False
        assert "batches" not in section
