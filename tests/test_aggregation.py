"""Tests for multi-sub-function prediction aggregation (§4.4)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.bottleneck.analyzer import BottleneckFinding
from repro.core.bottleneck.api import ParameterPrediction
from repro.core.bottleneck.tree import leaf
from repro.core.dse.aggregation import (
    SubFunctionPredictions,
    aggregate_parameter_values,
    default_threshold,
    select_bottleneck_subfunctions,
)


def _prediction(parameter, value):
    finding = BottleneckFinding(
        node=leaf("factor", 1.0),
        path=("cost", "factor"),
        contribution=1.0,
        scaling=2.0,
    )
    return ParameterPrediction(
        parameter=parameter, value=value, finding=finding, source="mitigation"
    )


def _subfunction(name, weight, predictions):
    return SubFunctionPredictions(
        name=name, weight=weight, predictions=tuple(predictions)
    )


class TestThreshold:
    def test_paper_formula(self):
        """threshold = 0.5 * (1 / l): with 18 layers -> ~2.8%."""
        assert default_threshold(18) == pytest.approx(0.5 / 18)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            default_threshold(0)


class TestSelection:
    def test_filters_below_threshold(self):
        subs = [
            _subfunction("heavy", 0.5, []),
            _subfunction("light", 0.01, []),
        ]
        selected = select_bottleneck_subfunctions(subs, threshold=0.1)
        assert [s.name for s in selected] == ["heavy"]

    def test_top_k_limits(self):
        subs = [_subfunction(f"l{i}", 0.2, []) for i in range(10)]
        assert len(select_bottleneck_subfunctions(subs, top_k=5)) == 5

    def test_sorted_by_weight(self):
        subs = [
            _subfunction("a", 0.2, []),
            _subfunction("b", 0.6, []),
            _subfunction("c", 0.4, []),
        ]
        selected = select_bottleneck_subfunctions(subs, threshold=0.0)
        assert [s.name for s in selected] == ["b", "c", "a"]


class TestAggregation:
    def test_minimum_rule(self):
        """§4.4(i): the minimum predicted value wins."""
        subs = [
            _subfunction("a", 0.5, [_prediction("pes", 1024)]),
            _subfunction("b", 0.4, [_prediction("pes", 256)]),
        ]
        aggregated = aggregate_parameter_values(subs, threshold=0.0)
        assert len(aggregated) == 1
        assert aggregated[0].value == 256
        assert set(aggregated[0].candidate_values) == {1024, 256}

    def test_provenance_tracked(self):
        subs = [
            _subfunction("a", 0.5, [_prediction("pes", 1024)]),
            _subfunction("b", 0.4, [_prediction("pes", 256)]),
        ]
        aggregated = aggregate_parameter_values(subs, threshold=0.0)[0]
        assert set(aggregated.contributing_subfunctions) == {"a", "b"}

    def test_excluded_subfunctions_do_not_vote(self):
        subs = [
            _subfunction("heavy", 0.9, [_prediction("pes", 1024)]),
            _subfunction("tiny", 0.001, [_prediction("pes", 128)]),
        ]
        aggregated = aggregate_parameter_values(subs, threshold=0.1)
        assert aggregated[0].value == 1024

    def test_ordered_by_heaviest_proposer(self):
        subs = [
            _subfunction("heavy", 0.8, [_prediction("bw", 2048)]),
            _subfunction("light", 0.2, [_prediction("pes", 512)]),
        ]
        aggregated = aggregate_parameter_values(subs, threshold=0.0)
        assert [a.parameter for a in aggregated] == ["bw", "pes"]

    def test_empty_input(self):
        assert aggregate_parameter_values([], threshold=0.0) == []


@given(
    values=st.lists(st.floats(1, 1e6), min_size=1, max_size=10),
)
def test_minimum_rule_property(values):
    subs = [
        _subfunction(f"l{i}", 1.0, [_prediction("p", v)])
        for i, v in enumerate(values)
    ]
    aggregated = aggregate_parameter_values(subs, top_k=len(values), threshold=0.0)
    assert aggregated[0].value == min(values)
