"""Tests for the greedy local-search baseline (§4.5's foil)."""

import pytest

from repro.core.dse.constraints import Constraint
from repro.cost.evaluator import CostEvaluator
from repro.mapping.mapper import TopNMapper
from repro.optim.local_search import LocalSearch


@pytest.fixture
def make_local_search(edge_space, tiny_workload):
    def factory(budget=20, **kwargs):
        evaluator = CostEvaluator(tiny_workload, TopNMapper(top_n=50))
        return LocalSearch(
            edge_space,
            evaluator,
            [Constraint("area", "area_mm2", 75.0)],
            max_evaluations=budget,
            seed=2,
            **kwargs,
        )

    return factory


def test_respects_budget(make_local_search):
    result = make_local_search(budget=15).run()
    assert result.evaluations <= 15
    assert result.technique == "local-search"


def test_rejects_negative_restarts(make_local_search):
    with pytest.raises(ValueError):
        make_local_search(restarts=-1)


def test_moves_are_neighbors(make_local_search, edge_space):
    """Every accepted move is one index step in one parameter — the
    limitation §4.5 contrasts with bottleneck-predicted large steps."""
    result = make_local_search(budget=25, restarts=0).run()
    starts = [t for t in result.trials if t.note == "ls-start"]
    assert starts
    for trial in result.trials:
        if trial.note != "ls-neighbor":
            continue
        # Each neighbour differs from some other trial by one index step.
        diffs = []
        for other in result.trials:
            if other is trial:
                continue
            changed = [
                k for k in trial.point if trial.point[k] != other.point[k]
            ]
            if len(changed) == 1:
                p = edge_space.parameter(changed[0])
                step = abs(
                    p.index_of(trial.point[changed[0]])
                    - p.index_of(other.point[changed[0]])
                )
                diffs.append(step)
        assert 1 in diffs


def test_restarts_consume_remaining_budget(make_local_search):
    # Each greedy step costs ~2p neighbour evaluations for p parameters,
    # so the budget must cover at least one full climb plus a restart.
    result = make_local_search(budget=300, restarts=5).run()
    start_count = sum(1 for t in result.trials if t.note == "ls-start")
    assert start_count >= 2  # the initial climb plus at least one restart


def test_descends_from_start(make_local_search):
    from repro.optim.base import penalized_objective

    result = make_local_search(budget=40, restarts=0).run()
    scores = [
        penalized_objective(
            t.costs,
            [Constraint("area", "area_mm2", 75.0)],
        )
        for t in result.trials
        if t.note == "ls-start"
    ]
    # Greedy descent should find something no worse than the start.
    best = min(
        penalized_objective(t.costs, [Constraint("area", "area_mm2", 75.0)])
        for t in result.trials
    )
    assert best <= scores[0]
