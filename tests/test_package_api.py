"""Tests for the top-level package surface."""

import importlib

import pytest

import repro


class TestPackage:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_explore_wrapper(self):
        result = repro.explore("resnet18", iterations=6)
        assert result.model == "resnet18"
        assert result.evaluations <= 6

    def test_all_subpackages_import(self):
        for module in (
            "repro.arch",
            "repro.workloads",
            "repro.mapping",
            "repro.cost",
            "repro.core",
            "repro.core.bottleneck",
            "repro.core.dse",
            "repro.optim",
            "repro.experiments",
        ):
            importlib.import_module(module)

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.arch",
            "repro.workloads",
            "repro.mapping",
            "repro.cost",
            "repro.core.bottleneck",
            "repro.core.dse",
            "repro.optim",
            "repro.experiments",
        ],
    )
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_import_order_independence(self):
        """Entering through any subpackage must not trip import cycles."""
        import subprocess
        import sys

        for entry in ("repro.mapping", "repro.cost", "repro.core"):
            proc = subprocess.run(
                [sys.executable, "-c", f"import {entry}"],
                capture_output=True,
                text=True,
            )
            assert proc.returncode == 0, proc.stderr
