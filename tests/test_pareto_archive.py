"""Property tests for the multi-objective Pareto archive.

Hypothesis drives random cost streams through :class:`ParetoArchive` and
checks the structural invariants the rest of the system leans on:

* the *unbounded* frontier set is invariant under insertion order;
* after every insert (and its evictions) no frontier entry dominates
  another, and no rejected-but-dominating vector survives outside;
* a journal replay rebuilds the live archive bit-identically, including
  through capacity-pruned (crowding) evictions and torn trailing writes.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optim.archive import DEFAULT_OBJECTIVES, ParetoArchive

# Small value grids force plenty of domination/equality collisions.
_COST = st.sampled_from([1.0, 2.0, 3.0, 5.0, 8.0])
_VECTOR = st.tuples(_COST, _COST, _COST, _COST)
_STREAM = st.lists(_VECTOR, min_size=0, max_size=24)


def _costs(vector):
    return dict(zip(DEFAULT_OBJECTIVES, vector))


def _point(index):
    return {"id": index}


def _fill(archive, stream):
    for index, vector in enumerate(stream):
        archive.insert(_point(index), _costs(vector))
    return archive


def _frontier_vectors(archive):
    return sorted(entry.vector for entry in archive.frontier())


@settings(max_examples=200, deadline=None)
@given(stream=_STREAM, seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_frontier_set_is_insertion_order_invariant(stream, seed):
    import random

    shuffled = list(enumerate(stream))
    random.Random(seed).shuffle(shuffled)
    a = ParetoArchive(capacity=None)
    for index, vector in enumerate(stream):
        a.insert(_point(index), _costs(vector))
    b = ParetoArchive(capacity=None)
    for index, vector in shuffled:
        b.insert(_point(index), _costs(vector))
    assert _frontier_vectors(a) == _frontier_vectors(b)


@settings(max_examples=200, deadline=None)
@given(stream=_STREAM, capacity=st.integers(min_value=1, max_value=6))
def test_non_domination_invariant_after_every_insert(stream, capacity):
    archive = ParetoArchive(capacity=capacity)
    for index, vector in enumerate(stream):
        archive.insert(_point(index), _costs(vector))
        entries = archive.frontier()
        assert len(entries) <= capacity
        for a in entries:
            for b in entries:
                if a.seq == b.seq:
                    continue
                # No entry dominates (or equals) another.
                assert a.vector != b.vector
                assert not all(
                    x <= y for x, y in zip(a.vector, b.vector)
                ) or all(x == y for x, y in zip(a.vector, b.vector))


@settings(max_examples=200, deadline=None)
@given(stream=_STREAM, capacity=st.integers(min_value=1, max_value=6))
def test_journal_replay_rebuilds_live_archive(tmp_path_factory, stream, capacity):
    workdir = tmp_path_factory.mktemp("archive")
    journal = workdir / "frontier.jsonl"
    live = ParetoArchive(capacity=capacity, journal_path=journal, truncate=True)
    _fill(live, stream)
    live.flush()
    rebuilt = ParetoArchive.replay(journal, capacity=capacity)
    assert rebuilt.snapshot() == live.snapshot()


def test_duplicate_point_is_idempotent():
    archive = ParetoArchive(capacity=None)
    assert archive.insert({"x": 1}, _costs((1.0, 2.0, 3.0, 4.0)))
    assert not archive.insert({"x": 1}, _costs((1.0, 2.0, 3.0, 4.0)))
    assert len(archive) == 1


def test_equal_vector_earliest_wins():
    archive = ParetoArchive(capacity=None)
    assert archive.insert({"x": 1}, _costs((1.0, 2.0, 3.0, 4.0)))
    assert not archive.insert({"x": 2}, _costs((1.0, 2.0, 3.0, 4.0)))
    assert [entry.point for entry in archive.frontier()] == [{"x": 1}]


def test_dominating_insert_evicts_dominated():
    archive = ParetoArchive(capacity=None)
    archive.insert({"x": 1}, _costs((2.0, 2.0, 2.0, 2.0)))
    archive.insert({"x": 2}, _costs((1.0, 1.0, 1.0, 1.0)))
    assert [entry.point for entry in archive.frontier()] == [{"x": 2}]


def test_non_finite_vector_rejected():
    archive = ParetoArchive(capacity=None)
    costs = _costs((1.0, 2.0, 3.0, 4.0))
    costs["latency_ms"] = math.inf
    assert not archive.insert({"x": 1}, costs)
    assert not archive.insert({"x": 2}, {})  # all axes default to inf
    assert len(archive) == 0


def test_torn_trailing_journal_line_tolerated(tmp_path):
    journal = tmp_path / "frontier.jsonl"
    live = ParetoArchive(capacity=None, journal_path=journal, truncate=True)
    live.insert({"x": 1}, _costs((1.0, 2.0, 3.0, 4.0)))
    live.insert({"x": 2}, _costs((2.0, 1.0, 3.0, 4.0)))
    live.flush()
    with open(journal, "a") as handle:
        handle.write('{"op": "insert", "seq": 99')  # interrupted write
    rebuilt = ParetoArchive.replay(journal)
    assert rebuilt.snapshot() == live.snapshot()


def test_torn_interior_journal_line_raises(tmp_path):
    journal = tmp_path / "frontier.jsonl"
    live = ParetoArchive(capacity=None, journal_path=journal, truncate=True)
    live.insert({"x": 1}, _costs((1.0, 2.0, 3.0, 4.0)))
    live.flush()
    lines = journal.read_text().splitlines()
    journal.write_text("{broken\n" + "\n".join(lines) + "\n")
    with pytest.raises(json.JSONDecodeError):
        ParetoArchive.replay(journal)


def test_capacity_validation():
    with pytest.raises(ValueError):
        ParetoArchive(capacity=0)
    with pytest.raises(ValueError):
        ParetoArchive(objectives=())


def test_insert_trial_requires_feasible_and_mappable():
    from repro.core.dse.result import TrialRecord

    archive = ParetoArchive(capacity=None)
    costs = _costs((1.0, 2.0, 3.0, 4.0))
    infeasible = TrialRecord(
        index=0, point={"x": 1}, costs=costs, feasible=False, mappable=True
    )
    feasible = TrialRecord(
        index=1, point={"x": 2}, costs=costs, feasible=True, mappable=True
    )
    assert not archive.insert_trial(infeasible)
    assert archive.insert_trial(feasible)
