"""Tests for the per-figure experiment modules and reporting helpers."""

import math

import pytest

from repro.experiments import fig4, fig9, fig14, table2, table7
from repro.experiments.harness import ComparisonRunner, TechniqueSpec
from repro.experiments.reporting import format_cell, format_series, format_table


class TestReporting:
    def test_format_cell(self):
        assert format_cell(None) == "-"
        assert format_cell(math.inf) == "-*"
        assert format_cell(0.0) == "0"
        assert format_cell(1234.5) == "1234"
        assert format_cell("text") == "text"

    def test_format_table_alignment(self):
        rows = {"a": {"x": 1.0, "y": None}, "bb": {"x": 2.0, "y": 3.0}}
        text = format_table(rows, columns=["x", "y"])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "technique" in lines[0]
        assert "-" in lines[2]  # the None cell

    def test_format_series_subsamples(self):
        series = {"curve": list(range(100))}
        text = format_series(series, max_points=5)
        assert "curve" in text
        assert "99" in text  # last point always shown


@pytest.fixture(scope="module")
def small_runner():
    return ComparisonRunner(iterations=6, top_n=40, random_mapping_trials=20)


SMALL_TECHNIQUES = (
    TechniqueSpec("Random Search-FixDF", "random", "fixed"),
    TechniqueSpec("ExplainableDSE-Codesign", "explainable", "codesign"),
)


class TestFig9:
    def test_structure_and_format(self, small_runner):
        result = fig9.run(
            small_runner, models=["resnet18"], techniques=SMALL_TECHNIQUES
        )
        assert set(result.latency_ms) == {s.label for s in SMALL_TECHNIQUES}
        text = result.format()
        assert "Fig. 9" in text
        assert "resnet18" in text

    def test_geomean_vs_reference(self, small_runner):
        result = fig9.run(
            small_runner, models=["resnet18"], techniques=SMALL_TECHNIQUES
        )
        ratio = result.geomean_speedup_over("Random Search-FixDF")
        assert ratio > 0 or math.isinf(ratio)


class TestTable2:
    def test_cells_render_paper_markers(self, small_runner):
        result = table2.run(
            small_runner, models=["resnet18"], techniques=SMALL_TECHNIQUES
        )
        cell = result.cell("Random Search-FixDF", "resnet18")
        assert cell in ("-", "-*") or float(cell) > 0
        assert "Table 2" in result.format()


class TestTable7:
    def test_runs_for_all_models(self):
        result = table7.run(samples=10)
        assert len(result.rows) == 11
        assert "Table 7" in result.format()

    def test_layers_exist(self):
        from repro.workloads.registry import load_workload

        for model, layer_name in table7.TABLE7_LAYERS.items():
            load_workload(model).layer(layer_name)


class TestFig4:
    def test_toy_space_has_two_free_parameters(self):
        space, pinned = fig4.build_toy_space()
        assert space.parameter("pes").cardinality == 7
        assert space.parameter("l2_kb").cardinality == 7
        for name in pinned:
            assert space.parameter(name).cardinality == 1

    def test_trajectories_recorded(self):
        result = fig4.run(iterations=8, top_n=40)
        assert result.explainable_path
        assert result.hypermapper_path
        assert result.explanations
        assert "Fig. 4" in result.format()

    def test_explainable_improves_latency(self):
        result = fig4.run(iterations=10, top_n=60)
        start = result.explainable_path[0][2]
        best = min(step[2] for step in result.explainable_path)
        assert best < start


class TestFig14:
    def test_reference_constants_sane(self):
        assert fig14.EDGE_TPU.area_mm2 > 0
        assert fig14.EYERISS.power_w < 1.0
        assert fig14.EDGE_TPU.energy_efficiency("mobilenetv2") > 0
        assert fig14.EYERISS.area_efficiency("nonexistent") is None

    def test_run_single_model(self):
        result = fig14.run(models=("resnet18",), iterations=10, top_n=40)
        assert "resnet18" in result.rows
        assert "Fig. 14" in result.format()
