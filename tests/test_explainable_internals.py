"""Unit tests for Explainable-DSE's internal steps (acquire / update /
analyze) using a stub cost model, isolating the framework logic from the
accelerator substrate."""

import math

import pytest

from repro.arch.design_space import DesignSpace
from repro.arch.parameters import Parameter
from repro.core.dse.aggregation import AggregatedPrediction
from repro.core.dse.constraints import Constraint, Sense
from repro.core.dse.explainable import ExplainableDSE, _Candidate


class _StubEvaluation:
    """Minimal stand-in for repro.cost.Evaluation."""

    def __init__(self, point, costs, mappable=True):
        self.point = dict(point)
        self.costs = dict(costs)
        self.mappable = mappable
        self.config = None
        self.layer_results = {}
        self.area = None
        self.power = None


class _StubEvaluator:
    """Cost model: latency = 1000/(a*b); 'area' = a + b."""

    class _Workload:
        name = "stub"
        layers = ()

    workload = _Workload()

    def __init__(self):
        self.evaluations = 0
        self.calls = 0

    def evaluate(self, point):
        self.calls += 1
        self.evaluations += 1
        a, b = point["a"], point["b"]
        latency = 1000.0 / (a * b)
        return _StubEvaluation(
            point, {"latency_ms": latency, "area_mm2": float(a + b)}
        )


@pytest.fixture
def space():
    return DesignSpace(
        [
            Parameter("a", (1, 2, 4, 8, 16)),
            Parameter("b", (1, 2, 4, 8, 16)),
        ]
    )


@pytest.fixture
def dse(space):
    return ExplainableDSE(
        space,
        _StubEvaluator(),
        [Constraint("area", "area_mm2", 20.0)],
        max_evaluations=20,
    )


def _agg(parameter, value):
    return AggregatedPrediction(
        parameter=parameter,
        value=value,
        contributing_subfunctions=("stub",),
        candidate_values=(value,),
    )


class TestAcquire:
    def test_rounds_up_between_values(self, dse, space):
        current = {"a": 2, "b": 2}
        candidates = dse._acquire(current, [_agg("a", 5.0)], set(), set())
        assert candidates[0].value == 8

    def test_rounds_down_for_decreases(self, dse):
        current = {"a": 8, "b": 2}
        candidates = dse._acquire(current, [_agg("a", 3.0)], set(), set())
        assert candidates[0].value == 2

    def test_noop_prediction_falls_back_to_neighbor(self, dse):
        current = {"a": 2, "b": 2}
        # Prediction rounds to the current value -> one-step neighbour up.
        candidates = dse._acquire(current, [_agg("a", 2.0)], set(), set())
        assert candidates == [] or candidates[0].value == 4

    def test_exhausted_parameters_skipped(self, dse):
        current = {"a": 2, "b": 2}
        candidates = dse._acquire(
            current, [_agg("a", 16.0)], {"a"}, set()
        )
        assert candidates == []

    def test_tried_points_skipped(self, dse, space):
        current = {"a": 2, "b": 2}
        tried = {space.point_key({"a": 16, "b": 2})}
        candidates = dse._acquire(current, [_agg("a", 16.0)], set(), tried)
        assert all(c.point != {"a": 16, "b": 2} for c in candidates)

    def test_candidate_cap(self, space):
        dse = ExplainableDSE(
            space,
            _StubEvaluator(),
            [],
            max_candidates=1,
        )
        current = {"a": 2, "b": 2}
        predictions = [_agg("a", 16.0), _agg("b", 16.0)]
        assert len(dse._acquire(current, predictions, set(), set())) == 1


class TestUpdate:
    def _cand(self, dse, current, param, value):
        point = dse.space.with_value(current, param, value)
        return _Candidate(parameter=param, value=value, point=point, reason="")

    def test_feasible_improvement_wins(self, dse):
        current = {"a": 2, "b": 2}
        current_eval = dse.evaluator.evaluate(current)
        cand = self._cand(dse, current, "a", 8)
        cand_eval = dse.evaluator.evaluate(cand.point)
        point, _, note = dse._update(
            current, current_eval, [(cand, cand_eval)], set()
        )
        assert point == cand.point
        assert "updated" in note

    def test_feasible_regression_keeps_incumbent(self, dse):
        current = {"a": 8, "b": 2}
        current_eval = dse.evaluator.evaluate(current)
        worse = self._cand(dse, current, "a", 4)
        worse_eval = dse.evaluator.evaluate(worse.point)
        point, _, note = dse._update(
            current, current_eval, [(worse, worse_eval)], set()
        )
        assert point == current
        assert "kept incumbent" in note

    def test_infeasible_phase_moves_to_least_budget(self, space):
        dse = ExplainableDSE(
            space,
            _StubEvaluator(),
            [Constraint("area", "area_mm2", 3.0)],  # only (1,1)/(1,2) feasible
        )
        current = {"a": 16, "b": 16}
        current_eval = dse.evaluator.evaluate(current)
        closer = self._cand(dse, current, "a", 4)
        closer_eval = dse.evaluator.evaluate(closer.point)
        point, _, note = dse._update(
            current, current_eval, [(closer, closer_eval)], set()
        )
        assert point == closer.point
        assert "feasibility" in note

    def test_monomodal_exhaustion_marks_parameter(self, space):
        dse = ExplainableDSE(
            space,
            _StubEvaluator(),
            [Constraint("area", "area_mm2", 10.0)],
        )
        current = {"a": 4, "b": 4}  # area 8, feasible
        current_eval = dse.evaluator.evaluate(current)
        violator = self._cand(dse, current, "a", 16)  # area 20, violates
        violator_eval = dse.evaluator.evaluate(violator.point)
        exhausted = set()
        dse._update(current, current_eval, [(violator, violator_eval)], exhausted)
        assert "a" in exhausted


class TestNeighborFallback:
    def test_generates_neighbor_moves(self, dse, space):
        current = {"a": 4, "b": 4}
        candidates = dse._neighbor_fallback(current, set())
        assert candidates
        for candidate in candidates:
            diffs = [
                k for k in current if candidate.point[k] != current[k]
            ]
            assert len(diffs) == 1

    def test_skips_tried(self, dse, space):
        current = {"a": 4, "b": 4}
        all_neighbors = {
            space.point_key(p) for p in space.neighbors(current)
        }
        candidates = dse._neighbor_fallback(current, all_neighbors)
        assert candidates == []


class TestEndToEndStub:
    def test_converges_to_constrained_optimum(self, space):
        """With latency = 1000/(a*b) and a+b <= 20, the optimum is
        a = b = 8 (product 64 within the area budget... among powers of 2,
        (16, 4) ties (4, 16) and (8, 8) at product 64)."""
        dse = ExplainableDSE(
            space,
            _StubEvaluator(),
            [Constraint("area", "area_mm2", 20.0)],
            max_evaluations=30,
        )
        result = dse.run()
        assert result.found_feasible
        best = result.best.point
        assert best["a"] * best["b"] >= 32
        assert best["a"] + best["b"] <= 20
