"""Tests for the deterministic design-point/mapping fuzzer."""

import json

import pytest

import repro.verify.fuzzer as fuzzer_module
from repro.verify.fuzzer import (
    case_from_json,
    case_to_json,
    generate_case,
    replay,
    run_fuzz,
    shrink_case,
)
from repro.workloads.layers import Dim


class TestGeneration:
    def test_generation_is_deterministic(self):
        for index in (0, 7, 123):
            assert generate_case(5, index) == generate_case(5, index)

    def test_different_indices_differ(self):
        cases = {repr(generate_case(0, i)) for i in range(20)}
        assert len(cases) > 1

    def test_case_round_trips_through_json(self):
        case = generate_case(3, 11)
        data = case_to_json(case, "oracle-diff", ["example"])
        restored = case_from_json(json.loads(json.dumps(data)))
        assert restored.layer == case.layer
        assert restored.mapping == case.mapping
        assert restored.config == case.config


class TestCleanRun:
    def test_fuzz_run_is_clean(self, tmp_path):
        report = run_fuzz(120, seed=0, failures_dir=tmp_path)
        assert report.cases == 120
        assert report.feasible + report.infeasible + report.skipped == 120
        assert report.feasible > 0
        assert report.failures == []
        assert report.ok
        assert list(tmp_path.iterdir()) == []  # no repro files on success

    def test_time_budget_stops_early(self, tmp_path):
        report = run_fuzz(10_000, seed=0, failures_dir=tmp_path,
                          time_budget_s=0.0)
        assert report.cases < 10_000


class TestFailurePath:
    @pytest.fixture
    def broken_compare(self, monkeypatch):
        """Seed a fake divergence: any layer with FY > 1 'mismatches'."""

        def fake_compare(layer, mapping, config):
            if layer.dim(Dim.FY) > 1:
                return [f"seeded divergence (FY={layer.dim(Dim.FY)})"]
            return []

        monkeypatch.setattr(fuzzer_module, "compare_layer", fake_compare)

    def test_failures_are_shrunk_and_written(self, tmp_path, broken_compare):
        report = run_fuzz(40, seed=0, failures_dir=tmp_path)
        assert not report.ok
        assert report.failures
        for failure in report.failures:
            assert failure.stage == "oracle-diff"
            path = tmp_path / f"case_{failure.seed}_{failure.index}.json"
            assert str(path) == failure.repro_path
            data = json.loads(path.read_text())
            assert data["stage"] == "oracle-diff"
            assert data["messages"]
            # shrinking collapsed everything irrelevant to the trigger:
            # only FY (the seeded trigger) stays > 1.
            dims = data["layer"]["dims"]
            assert dims[5] > 1  # FY
            assert all(d == 1 for i, d in enumerate(dims) if i != 5)

    def test_shrunk_repro_replays(self, tmp_path, broken_compare):
        report = run_fuzz(40, seed=0, failures_dir=tmp_path)
        messages = replay(report.failures[0].repro_path)
        assert messages
        assert "oracle-diff" in messages[0]

    def test_shrink_preserves_failure(self, broken_compare):
        failing = next(
            generate_case(0, i)
            for i in range(200)
            if generate_case(0, i).layer.dim(Dim.FY) > 1
        )
        shrunk, steps = shrink_case(failing, "oracle-diff")
        assert steps > 0
        assert shrunk.layer.dim(Dim.FY) > 1
        assert shrunk.layer.macs <= failing.layer.macs

    def test_repro_replays_clean_after_fix(self, tmp_path):
        """Once the seeded bug is gone (no monkeypatch), the written repro
        replays clean — the triage workflow's exit condition."""
        case = generate_case(0, 1)
        path = tmp_path / "case.json"
        path.write_text(json.dumps(case_to_json(case, "oracle-diff", ["x"])))
        assert replay(path) == []
