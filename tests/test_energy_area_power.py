"""Tests for the energy / area / max-power models."""

import math

import pytest

from repro.arch.accelerator import config_from_point
from repro.cost.area import accelerator_area
from repro.cost.energy import EnergyBreakdown, layer_energy
from repro.cost.latency import evaluate_layer_mapping
from repro.cost.power import max_power
from repro.cost.technology import TECH_45NM, TechnologyModel
from repro.mapping.dataflow import build_output_stationary_mapping


@pytest.fixture
def execution(conv_layer, mid_config):
    mapping = build_output_stationary_mapping(conv_layer, mid_config)
    return evaluate_layer_mapping(conv_layer, mapping, mid_config)


class TestTechnologyModel:
    def test_rf_energy_scales_with_size(self):
        tech = TECH_45NM
        assert tech.rf_energy_per_byte(1024) > tech.rf_energy_per_byte(64)

    def test_rf_energy_floor(self):
        assert TECH_45NM.rf_energy_per_byte(1) >= 0.03

    def test_spm_energy_scales_with_size(self):
        tech = TECH_45NM
        assert tech.spm_energy_per_byte(4 << 20) > tech.spm_energy_per_byte(
            64 << 10
        )

    def test_pe_area_includes_rf(self):
        tech = TECH_45NM
        assert tech.pe_area(1024) > tech.pe_area(8)

    def test_spm_area_banking(self):
        tech = TECH_45NM
        one_bank = tech.spm_area(64 * 1024)
        two_banks = tech.spm_area(128 * 1024)
        assert two_banks > one_bank

    def test_noc_area_proportional(self):
        tech = TECH_45NM
        assert tech.noc_area(100, 64) == pytest.approx(
            2 * tech.noc_area(100, 32)
        )


class TestEnergy:
    def test_breakdown_sums(self, execution, mid_config):
        energy = layer_energy(execution, mid_config)
        assert energy.total_pj == pytest.approx(
            energy.mac_pj
            + energy.rf_pj
            + energy.noc_pj
            + energy.spm_pj
            + energy.dram_pj
        )

    def test_all_components_positive(self, execution, mid_config):
        energy = layer_energy(execution, mid_config)
        assert energy.mac_pj > 0
        assert energy.rf_pj > 0
        assert energy.noc_pj > 0
        assert energy.spm_pj > 0
        assert energy.dram_pj > 0

    def test_mac_energy_counts_true_macs(self, execution, mid_config, conv_layer):
        energy = layer_energy(execution, mid_config)
        assert energy.mac_pj == conv_layer.macs * TECH_45NM.mac_energy_pj

    def test_scaled(self, execution, mid_config):
        energy = layer_energy(execution, mid_config)
        assert energy.scaled(3).total_pj == pytest.approx(3 * energy.total_pj)

    def test_addition_and_zero(self, execution, mid_config):
        energy = layer_energy(execution, mid_config)
        assert (EnergyBreakdown.zero() + energy).total_pj == pytest.approx(
            energy.total_pj
        )

    def test_total_mj_conversion(self, execution, mid_config):
        energy = layer_energy(execution, mid_config)
        assert energy.total_mj == pytest.approx(energy.total_pj * 1e-9)


class TestArea:
    def test_total_sums_components(self, mid_config):
        area = accelerator_area(mid_config)
        assert area.total_mm2 == pytest.approx(
            area.pe_array_mm2
            + area.spm_mm2
            + area.noc_mm2
            + area.controller_mm2
        )

    def test_contributions_sum_to_one(self, mid_config):
        assert sum(accelerator_area(mid_config).contributions().values()) == (
            pytest.approx(1.0)
        )

    def test_monotone_in_pes(self, mid_point):
        small = accelerator_area(config_from_point({**mid_point, "pes": 64}))
        large = accelerator_area(config_from_point({**mid_point, "pes": 4096}))
        assert large.total_mm2 > small.total_mm2

    def test_monotone_in_l2(self, mid_point):
        small = accelerator_area(config_from_point({**mid_point, "l2_kb": 64}))
        large = accelerator_area(
            config_from_point({**mid_point, "l2_kb": 4096})
        )
        assert large.spm_mm2 > small.spm_mm2

    def test_max_config_exceeds_edge_budget(self, edge_space):
        """The constraint must bind: the biggest configuration overflows
        the 75 mm^2 edge budget."""
        area = accelerator_area(config_from_point(edge_space.maximum_point()))
        assert area.total_mm2 > 75.0


class TestPower:
    def test_total_sums_components(self, mid_config):
        power = max_power(mid_config)
        assert power.total_w == pytest.approx(
            power.pe_w + power.noc_w + power.spm_w + power.offchip_w
        )

    def test_contributions_sum_to_one(self, mid_config):
        assert sum(max_power(mid_config).contributions().values()) == (
            pytest.approx(1.0)
        )

    def test_monotone_in_pes(self, mid_point):
        small = max_power(config_from_point({**mid_point, "pes": 64}))
        large = max_power(config_from_point({**mid_point, "pes": 4096}))
        assert large.pe_w > small.pe_w

    def test_monotone_in_bandwidth(self, mid_point):
        slow = max_power(
            config_from_point({**mid_point, "offchip_bw_mbps": 1024})
        )
        fast = max_power(
            config_from_point({**mid_point, "offchip_bw_mbps": 51200})
        )
        assert fast.offchip_w > slow.offchip_w

    def test_max_config_exceeds_edge_budget(self, edge_space):
        power = max_power(config_from_point(edge_space.maximum_point()))
        assert power.total_w > 4.0

    def test_min_config_within_budget(self, edge_space):
        power = max_power(config_from_point(edge_space.minimum_point()))
        assert power.total_w < 4.0
