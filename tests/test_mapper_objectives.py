"""Tests for mapper objectives (latency / energy / EDP)."""

import math

import pytest

from repro.cost.energy import layer_energy
from repro.mapping.mapper import (
    MAPPING_OBJECTIVES,
    RandomSearchMapper,
    TopNMapper,
)


class TestObjectiveRegistry:
    def test_three_objectives(self):
        assert set(MAPPING_OBJECTIVES) == {"latency", "energy", "edp"}

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError):
            TopNMapper(objective="throughput")
        with pytest.raises(ValueError):
            RandomSearchMapper(objective="throughput")


class TestObjectiveBehaviour:
    def test_latency_mapper_minimizes_latency(self, conv_layer, mid_config):
        latency_best = TopNMapper(top_n=150, objective="latency")(
            conv_layer, mid_config
        )
        energy_best = TopNMapper(top_n=150, objective="energy")(
            conv_layer, mid_config
        )
        assert latency_best.latency <= energy_best.latency + 1e-9

    def test_energy_mapper_minimizes_energy(self, conv_layer, mid_config):
        latency_best = TopNMapper(top_n=150, objective="latency")(
            conv_layer, mid_config
        )
        energy_best = TopNMapper(top_n=150, objective="energy")(
            conv_layer, mid_config
        )
        e_latency = layer_energy(latency_best.execution, mid_config).total_pj
        e_energy = layer_energy(energy_best.execution, mid_config).total_pj
        assert e_energy <= e_latency + 1e-6

    def test_edp_between_extremes(self, conv_layer, mid_config):
        results = {
            objective: TopNMapper(top_n=150, objective=objective)(
                conv_layer, mid_config
            )
            for objective in ("latency", "energy", "edp")
        }

        def edp(result):
            return result.latency * layer_energy(
                result.execution, mid_config
            ).total_pj

        assert edp(results["edp"]) <= edp(results["latency"]) + 1e-6
        assert edp(results["edp"]) <= edp(results["energy"]) + 1e-6

    def test_random_mapper_objective(self, conv_layer, mid_config):
        result = RandomSearchMapper(trials=60, seed=0, objective="energy")(
            conv_layer, mid_config
        )
        assert result.feasible
        assert math.isfinite(result.latency)
