"""Tests for JSON workload import/export."""

import json

import pytest

from repro.workloads.io import (
    WorkloadSpecError,
    load_workload_json,
    save_workload_json,
    workload_from_dict,
    workload_to_dict,
)
from repro.workloads.layers import Dim, OperatorType
from repro.workloads.registry import load_workload

SPEC = {
    "name": "toy",
    "task": "cv",
    "layers": [
        {
            "name": "conv1",
            "op": "conv",
            "in": 3,
            "out": 64,
            "output": [112, 112],
            "kernel": [7, 7],
            "stride": 2,
        },
        {"name": "dw", "op": "dwconv", "channels": 64, "output": [56, 56]},
        {
            "name": "fc",
            "op": "gemm",
            "rows": 1000,
            "inner": 64,
            "cols": 1,
            "repeats": 2,
        },
    ],
}


class TestFromDict:
    def test_builds_layers(self):
        workload = workload_from_dict(SPEC)
        assert workload.name == "toy"
        assert workload.unique_layer_count == 3
        conv = workload.layer("conv1")
        assert conv.operator is OperatorType.CONV
        assert conv.dim(Dim.M) == 64
        assert conv.stride == 2

    def test_total_layers_defaults_to_repeat_sum(self):
        workload = workload_from_dict(SPEC)
        assert workload.total_layers == 4  # 1 + 1 + 2

    def test_depthwise(self):
        workload = workload_from_dict(SPEC)
        dw = workload.layer("dw")
        assert dw.operator is OperatorType.DWCONV
        assert dw.dim(Dim.C) == 1

    def test_gemm_repeats(self):
        assert workload_from_dict(SPEC).layer("fc").repeats == 2

    def test_rejects_missing_fields(self):
        with pytest.raises(WorkloadSpecError):
            workload_from_dict({"name": "x"})
        with pytest.raises(WorkloadSpecError):
            workload_from_dict({"name": "x", "layers": []})
        with pytest.raises(WorkloadSpecError):
            workload_from_dict(
                {"name": "x", "layers": [{"name": "a", "op": "conv"}]}
            )

    def test_rejects_unknown_operator(self):
        with pytest.raises(WorkloadSpecError):
            workload_from_dict(
                {
                    "name": "x",
                    "layers": [{"name": "a", "op": "attention"}],
                }
            )


class TestRoundTrip:
    def test_dict_roundtrip(self):
        workload = workload_from_dict(SPEC)
        again = workload_from_dict(workload_to_dict(workload))
        assert again.name == workload.name
        for a, b in zip(again.layers, workload.layers):
            assert a == b

    def test_file_roundtrip(self, tmp_path):
        workload = workload_from_dict(SPEC)
        path = tmp_path / "toy.json"
        save_workload_json(workload, path)
        again = load_workload_json(path)
        assert again.layers == workload.layers

    def test_registry_models_roundtrip(self):
        """Every benchmark model survives an export/import cycle."""
        for model in ("resnet18", "mobilenetv2", "bert"):
            workload = load_workload(model)
            again = workload_from_dict(workload_to_dict(workload))
            assert again.layers == workload.layers
            assert again.total_layers == workload.total_layers

    def test_written_file_is_valid_json(self, tmp_path):
        path = tmp_path / "w.json"
        save_workload_json(workload_from_dict(SPEC), path)
        with open(path) as handle:
            json.load(handle)
