"""Unit and property tests for the design space."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.design_space import DesignSpace
from repro.arch.parameters import Parameter


@pytest.fixture
def small_space():
    return DesignSpace(
        [
            Parameter("a", (1, 2, 4)),
            Parameter("b", (10, 20)),
            Parameter("c", (5, 6, 7, 8)),
        ]
    )


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DesignSpace([])

    def test_rejects_duplicate_names(self):
        p = Parameter("a", (1, 2))
        with pytest.raises(ValueError):
            DesignSpace([p, p])

    def test_size(self, small_space):
        assert small_space.size == 3 * 2 * 4
        assert math.isclose(
            small_space.log10_size, math.log10(24), rel_tol=1e-9
        )

    def test_names_and_contains(self, small_space):
        assert small_space.names == ("a", "b", "c")
        assert "a" in small_space
        assert "z" not in small_space
        assert len(small_space) == 3

    def test_parameter_lookup(self, small_space):
        assert small_space.parameter("b").values == (10, 20)
        with pytest.raises(KeyError):
            small_space.parameter("z")


class TestPoints:
    def test_minimum_maximum(self, small_space):
        assert small_space.minimum_point() == {"a": 1, "b": 10, "c": 5}
        assert small_space.maximum_point() == {"a": 4, "b": 20, "c": 8}

    def test_validate_accepts_valid(self, small_space):
        small_space.validate({"a": 2, "b": 20, "c": 7})

    def test_validate_rejects_missing(self, small_space):
        with pytest.raises(ValueError, match="missing"):
            small_space.validate({"a": 2})

    def test_validate_rejects_unknown(self, small_space):
        with pytest.raises(ValueError, match="unknown"):
            small_space.validate({"a": 2, "b": 20, "c": 7, "z": 1})

    def test_validate_rejects_bad_value(self, small_space):
        with pytest.raises(ValueError, match="invalid"):
            small_space.validate({"a": 3, "b": 20, "c": 7})

    def test_index_roundtrip(self, small_space):
        point = {"a": 4, "b": 10, "c": 6}
        assert small_space.from_indices(small_space.to_indices(point)) == point

    def test_from_indices_bounds(self, small_space):
        with pytest.raises(ValueError):
            small_space.from_indices((0, 0))
        with pytest.raises(ValueError):
            small_space.from_indices((0, 5, 0))

    def test_clip_indices(self, small_space):
        assert small_space.clip_indices((-3, 1.6, 99)) == (0, 1, 3)

    def test_with_value(self, small_space):
        point = small_space.minimum_point()
        moved = small_space.with_value(point, "a", 4)
        assert moved["a"] == 4
        assert point["a"] == 1
        with pytest.raises(ValueError):
            small_space.with_value(point, "a", 3)

    def test_point_key_hashable(self, small_space):
        key = small_space.point_key(small_space.minimum_point())
        assert hash(key) is not None


class TestSamplingAndMoves:
    def test_random_point_valid_and_seeded(self, small_space):
        a = small_space.random_point(random.Random(7))
        b = small_space.random_point(random.Random(7))
        small_space.validate(a)
        assert a == b

    def test_neighbors_differ_by_one_param(self, small_space):
        point = {"a": 2, "b": 10, "c": 6}
        neighbours = list(small_space.neighbors(point))
        assert neighbours
        for n in neighbours:
            diffs = [k for k in point if n[k] != point[k]]
            assert len(diffs) == 1

    def test_grid_covers_extremes(self, small_space):
        points = list(small_space.grid(2))
        assert len(points) == 2 * 2 * 2
        assert small_space.minimum_point() in points
        assert small_space.maximum_point() in points

    def test_grid_full_resolution(self, small_space):
        assert len(list(small_space.grid(10))) == small_space.size

    def test_grid_rejects_bad_arg(self, small_space):
        with pytest.raises(ValueError):
            list(small_space.grid(0))


@settings(max_examples=50)
@given(data=st.data())
def test_index_roundtrip_property(data):
    axes = data.draw(
        st.lists(
            st.lists(st.integers(0, 100), min_size=1, max_size=6, unique=True),
            min_size=1,
            max_size=5,
        )
    )
    params = [
        Parameter(f"p{i}", tuple(sorted(vals))) for i, vals in enumerate(axes)
    ]
    space = DesignSpace(params)
    indices = tuple(
        data.draw(st.integers(0, p.cardinality - 1)) for p in params
    )
    point = space.from_indices(indices)
    assert space.to_indices(point) == indices


def test_edge_space_matches_table1(edge_space):
    """Table 1: 7*8*7*10*16 options plus 64^4 x 4^4 NoC settings."""
    assert edge_space.parameter("pes").cardinality == 7
    assert edge_space.parameter("l1_bytes").cardinality == 8
    assert edge_space.parameter("l2_kb").cardinality == 7
    assert edge_space.parameter("offchip_bw_mbps").cardinality == 10
    assert edge_space.parameter("noc_datawidth").cardinality == 16
    for op in ("I", "W", "O", "PSUM"):
        assert edge_space.parameter(f"phys_unicast_{op}").cardinality == 64
        assert edge_space.parameter(f"virt_unicast_{op}").values == (
            1,
            8,
            64,
            512,
        )
    expected = 7 * 8 * 7 * 10 * 16 * 64**4 * 4**4
    assert edge_space.size == expected
