"""Tests for the parallel evaluation pipeline (repro.perf.parallel).

Parallel paths must be bit-identical to the serial fallback, and the
random mapper's "deterministic" stream must actually be deterministic
across processes (PYTHONHASHSEED randomization).
"""

import os
import subprocess
import sys

import pytest

from repro.cost.evaluator import CostEvaluator
from repro.experiments.harness import PAPER_TECHNIQUES, ComparisonRunner
from repro.mapping.mapper import TopNMapper, _stable_seed
from repro.perf import MappingCache, WorkerPool, parallel_map, resolve_jobs


def _square(x):
    return x * x


class TestResolveJobs:
    def test_explicit_values(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs(-3) == 1

    def test_auto_uses_cpu_count(self):
        assert resolve_jobs("auto") == (os.cpu_count() or 1)
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3
        monkeypatch.setenv("REPRO_JOBS", "nonsense")
        assert resolve_jobs() == 1


class TestParallelMap:
    def test_serial_path_is_plain_map(self):
        # Unpicklable fn is fine serially: no executor is ever created.
        assert parallel_map(lambda x: x + 1, [1, 2, 3], jobs=1) == [2, 3, 4]

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_parallel_order_preserved(self, mode):
        items = list(range(10))
        assert parallel_map(_square, items, jobs=2, mode=mode) == [
            x * x for x in items
        ]

    def test_pool_reuse_and_close(self):
        with WorkerPool(jobs=2, mode="thread") as pool:
            assert pool.parallel
            assert pool.map(_square, [1, 2]) == [1, 4]
            assert pool.map(_square, [3]) == [9]  # serial short-circuit
        assert pool._executor is None

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(jobs=2, mode="coroutine")


class TestParallelEvaluatorIdentity:
    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_parallel_costs_identical_to_serial(
        self, mode, tiny_workload, mid_point
    ):
        """Property: serial and parallel CostEvaluator produce identical
        Evaluation.costs for the same points."""
        serial = CostEvaluator(
            tiny_workload, TopNMapper(top_n=30), jobs=1,
            use_mapping_cache=False,
        )
        parallel = CostEvaluator(
            tiny_workload, TopNMapper(top_n=30), jobs=2, executor_mode=mode,
            use_mapping_cache=False,
        )
        points = []
        for pes in (512, 1024):
            p = dict(mid_point)
            p["pes"] = pes
            points.append(p)
        try:
            for point in points:
                a = serial.evaluate(point)
                b = parallel.evaluate(point)
                assert a.costs == b.costs
                assert list(a.layer_results) == list(b.layer_results)
        finally:
            parallel.close()

    def test_parallel_workers_seed_parent_cache(
        self, tiny_workload, mid_point
    ):
        evaluator = CostEvaluator(
            tiny_workload, TopNMapper(top_n=30), jobs=2,
            executor_mode="thread", mapping_cache=MappingCache(),
        )
        try:
            evaluator.evaluate(mid_point)
            assert evaluator.mapping_cache_misses == len(tiny_workload.layers)
            assert evaluator.mapping_cache_size() == len(tiny_workload.layers)
            evaluator.evaluate(dict(mid_point))  # point-cache hit
            variant = dict(mid_point)
            variant["offchip_bw_mbps"] = 1024
            evaluator.evaluate(variant)  # re-score hits, no new searches
            assert evaluator.mapping_cache_hits == len(tiny_workload.layers)
        finally:
            evaluator.close()


class TestParallelHarnessIdentity:
    def test_run_matrix_parallel_matches_serial(self):
        techniques = [
            spec
            for spec in PAPER_TECHNIQUES
            if spec.label in ("Grid Search-FixDF", "Random Search-FixDF")
        ]
        kwargs = dict(iterations=3, top_n=8, random_mapping_trials=6)
        serial = ComparisonRunner(jobs=1, **kwargs)
        parallel = ComparisonRunner(jobs=2, **kwargs)
        a = serial.run_matrix(techniques, models=["resnet18"])
        b = parallel.run_matrix(techniques, models=["resnet18"])
        for spec in techniques:
            ra = a[spec.label]["resnet18"]
            rb = b[spec.label]["resnet18"]
            assert ra.evaluations == rb.evaluations
            assert ra.best_objective == rb.best_objective
            assert [t.costs for t in ra.trials] == [t.costs for t in rb.trials]

    def test_parallel_results_are_memoized(self):
        runner = ComparisonRunner(
            iterations=2, top_n=8, random_mapping_trials=6, jobs=2
        )
        techniques = [
            spec
            for spec in PAPER_TECHNIQUES
            if spec.label in ("Grid Search-FixDF", "Random Search-FixDF")
        ]
        first = runner.run_matrix(techniques, models=["resnet18"])
        second = runner.run_matrix(techniques, models=["resnet18"])
        for spec in techniques:
            assert first[spec.label]["resnet18"] is second[spec.label]["resnet18"]


#: Snippet that prints the random mapper's search outcome; run under
#: different PYTHONHASHSEED values it must print the same line.
_DETERMINISM_SNIPPET = """
from repro.arch.accelerator import build_edge_design_space, config_from_point
from repro.mapping.mapper import RandomSearchMapper
from repro.workloads.layers import conv2d

point = build_edge_design_space().minimum_point()
point.update(pes=1024, l1_bytes=256, l2_kb=512, offchip_bw_mbps=8192,
             noc_datawidth=128)
for op in ("I", "W", "O", "PSUM"):
    point[f"phys_unicast_{op}"] = 16
    point[f"virt_unicast_{op}"] = 64
layer = conv2d("probe", 16, 32, (14, 14))
result = RandomSearchMapper(trials=25, seed=5)(layer, config_from_point(point))
print(repr(result.latency), result.candidates_evaluated,
      result.feasible_candidates)
"""


class TestCrossProcessDeterminism:
    def _run(self, hashseed: str) -> str:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, "-c", _DETERMINISM_SNIPPET],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        return proc.stdout.strip()

    def test_random_mapper_stable_across_hash_seeds(self):
        """The random mapper's stream must not depend on PYTHONHASHSEED
        (tuple.__hash__ over str members does; the crc32 digest does not)."""
        outputs = {self._run(seed) for seed in ("0", "1", "31337")}
        assert len(outputs) == 1, outputs

    def test_stable_seed_digest_properties(self):
        assert _stable_seed(0, "conv", 1024, 256) == _stable_seed(
            0, "conv", 1024, 256
        )
        assert _stable_seed(0, "conv", 1024, 256) != _stable_seed(
            1, "conv", 1024, 256
        )
        assert _stable_seed(0, "a", 1) != _stable_seed(0, "b", 1)
        # Known crc32 value: pins the stream so refactors cannot silently
        # change every random-mapper experiment.
        import zlib

        expected = zlib.crc32("|".join(["0", "'conv'", "1024", "256"]).encode())
        assert _stable_seed(0, "conv", 1024, 256) == expected
