"""Consistency tests for the 11-model benchmark zoo."""

import pytest

from repro.workloads.layers import OperatorType, validate_workload
from repro.workloads.registry import (
    MODEL_NAMES,
    PAPER_LAYER_COUNTS,
    available_models,
    load_all_workloads,
    load_workload,
    paper_layer_counts,
)


@pytest.fixture(scope="module")
def all_workloads():
    return load_all_workloads()


def test_registry_has_eleven_models():
    assert len(MODEL_NAMES) == 11
    assert set(available_models()) == set(MODEL_NAMES)


def test_unknown_model_raises():
    with pytest.raises(KeyError):
        load_workload("alexnet")


def test_lookup_is_case_insensitive():
    assert load_workload("ResNet18").name == "resnet18"


def test_loading_is_cached():
    assert load_workload("resnet18") is load_workload("resnet18")


@pytest.mark.parametrize("model", MODEL_NAMES)
def test_layer_counts_match_paper(all_workloads, model):
    """Section 5: DNN layers are 18, 53, 82, 16, 54, 86, 79, 60, 163,
    85, and 109 respectively."""
    workload = all_workloads[model]
    assert workload.repeated_layer_count == PAPER_LAYER_COUNTS[model]
    assert workload.total_layers == PAPER_LAYER_COUNTS[model]


@pytest.mark.parametrize("model", MODEL_NAMES)
def test_workloads_validate_clean(all_workloads, model):
    assert validate_workload(all_workloads[model]) == []


@pytest.mark.parametrize("model", MODEL_NAMES)
def test_single_stream_batch(all_workloads, model):
    """Edge inference is single-stream (batch 1) throughout."""
    for layer in all_workloads[model].layers:
        assert layer.dims[0] == 1


def test_paper_layer_counts_copy():
    counts = paper_layer_counts()
    counts["resnet18"] = 0
    assert PAPER_LAYER_COUNTS["resnet18"] == 18


def test_mac_count_sanity():
    """Published MAC counts (within a factor ~1.4 for shape folding)."""
    approx = {
        "resnet18": 1.8e9,
        "vgg16": 15.5e9,
        "mobilenetv2": 0.3e9,
        "resnet50": 4.1e9,
    }
    for model, expected in approx.items():
        actual = load_workload(model).total_macs
        assert expected / 1.4 <= actual <= expected * 1.4, model


def test_nlp_models_are_gemm_dominated():
    for model in ("transformer", "bert"):
        workload = load_workload(model)
        assert all(
            layer.operator is OperatorType.GEMM for layer in workload.layers
        )


def test_mobilenet_contains_depthwise():
    workload = load_workload("mobilenetv2")
    assert any(
        layer.operator is OperatorType.DWCONV for layer in workload.layers
    )


def test_transformer_has_output_projection():
    """Table 7 singles out decoder.output_projection."""
    layer = load_workload("transformer").layer("decoder.output_projection")
    assert layer.macs > 1e8  # the dominant GEMM


def test_bert_has_table7_layer():
    load_workload("bert").layer("encoder.layer.0.output.dense")


def test_unique_layers_are_deduplicated(all_workloads):
    for workload in all_workloads.values():
        shapes = [
            (layer.operator, layer.dims, layer.stride)
            for layer in workload.layers
        ]
        # Shape duplicates should have been folded into repeats; models
        # keep some same-shape operators separate on purpose (encoder vs
        # decoder positions, per-stage block names), so allow a bounded
        # number of intentional duplicates.
        duplicates = len(shapes) - len(set(shapes))
        assert duplicates <= 15, workload.name
