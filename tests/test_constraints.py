"""Tests for constraints and budget accounting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.dse.constraints import (
    Constraint,
    Sense,
    all_satisfied,
    constraints_budget,
    violated_constraints,
)


@pytest.fixture
def constraints():
    return [
        Constraint("area", "area_mm2", 75.0),
        Constraint("power", "power_w", 4.0),
        Constraint("throughput", "throughput", 40.0, Sense.GEQ),
    ]


class TestConstraint:
    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            Constraint("bad", "x", 0.0)

    def test_leq_utilization(self):
        c = Constraint("area", "area_mm2", 75.0)
        assert c.utilization({"area_mm2": 37.5}) == pytest.approx(0.5)
        assert c.satisfied({"area_mm2": 75.0})
        assert not c.satisfied({"area_mm2": 76.0})

    def test_geq_utilization(self):
        c = Constraint("throughput", "throughput", 40.0, Sense.GEQ)
        assert c.utilization({"throughput": 80.0}) == pytest.approx(0.5)
        assert c.satisfied({"throughput": 40.0})
        assert not c.satisfied({"throughput": 20.0})

    def test_geq_zero_cost_is_infinite_utilization(self):
        c = Constraint("throughput", "throughput", 40.0, Sense.GEQ)
        assert c.utilization({"throughput": 0.0}) == math.inf
        assert c.utilization({"throughput": math.inf}) == math.inf

    def test_describe(self):
        c = Constraint("area", "area_mm2", 75.0)
        assert "area_mm2 <= 75" in c.describe()


class TestHelpers:
    def test_all_satisfied(self, constraints):
        good = {"area_mm2": 50, "power_w": 3, "throughput": 60}
        bad = {"area_mm2": 50, "power_w": 5, "throughput": 60}
        assert all_satisfied(good, constraints)
        assert not all_satisfied(bad, constraints)

    def test_violated_sorted_by_severity(self, constraints):
        costs = {"area_mm2": 150, "power_w": 40, "throughput": 60}
        violated = violated_constraints(costs, constraints)
        assert [c.name for c in violated] == ["power", "area"]

    def test_budget_is_mean_utilization(self, constraints):
        costs = {"area_mm2": 37.5, "power_w": 2.0, "throughput": 80.0}
        assert constraints_budget(costs, constraints) == pytest.approx(0.5)

    def test_budget_empty_constraints(self):
        assert constraints_budget({"x": 1}, []) == 0.0


@given(
    area=st.floats(0.1, 1000),
    power=st.floats(0.1, 100),
    throughput=st.floats(0.1, 10_000),
)
def test_budget_feasibility_relation(area, power, throughput):
    constraints = [
        Constraint("area", "area_mm2", 75.0),
        Constraint("power", "power_w", 4.0),
        Constraint("throughput", "throughput", 40.0, Sense.GEQ),
    ]
    costs = {"area_mm2": area, "power_w": power, "throughput": throughput}
    budget = constraints_budget(costs, constraints)
    if all_satisfied(costs, constraints):
        assert budget <= 1.0
    if budget < 1.0 / len(constraints):
        # A budget below 1/n means every utilization is under 1.
        assert all_satisfied(costs, constraints)
