"""Shared fixtures: design space, mid-range configs, small workloads."""

from __future__ import annotations

import pytest

from repro.arch import build_edge_design_space, config_from_point
from repro.core.dse import Constraint, Sense
from repro.workloads import Workload, conv2d, gemm, load_workload


@pytest.fixture(scope="session")
def edge_space():
    return build_edge_design_space()


@pytest.fixture(scope="session")
def mid_point(edge_space):
    """A mid-range Table 1 design point used across tests."""
    point = edge_space.minimum_point()
    point.update(
        pes=1024,
        l1_bytes=256,
        l2_kb=512,
        offchip_bw_mbps=8192,
        noc_datawidth=128,
    )
    for op in ("I", "W", "O", "PSUM"):
        point[f"phys_unicast_{op}"] = 16
        point[f"virt_unicast_{op}"] = 64
    return point


@pytest.fixture(scope="session")
def mid_config(mid_point):
    return config_from_point(mid_point)


@pytest.fixture(scope="session")
def resnet18():
    return load_workload("resnet18")


@pytest.fixture(scope="session")
def conv_layer(resnet18):
    """A mid-size 3x3 convolution (ResNet18 conv3_x: 128x128 @28x28)."""
    return resnet18.layer("conv3_x")


@pytest.fixture(scope="session")
def gemm_layer(resnet18):
    return resnet18.layer("fc")


@pytest.fixture(scope="session")
def tiny_workload():
    """A two-layer workload small enough for end-to-end DSE tests."""
    return Workload(
        name="tiny",
        layers=(
            conv2d("conv", 16, 32, (14, 14)),
            gemm("fc", 64, 32 * 14 * 14, 1),
        ),
        total_layers=2,
        task="test",
    )


@pytest.fixture(scope="session")
def edge_constraints_resnet():
    return [
        Constraint("area", "area_mm2", 75.0),
        Constraint("power", "power_w", 4.0),
        Constraint("throughput", "throughput", 40.0, Sense.GEQ),
    ]
