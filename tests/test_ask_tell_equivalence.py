"""Ask/tell protocol equivalence: DriverLoop vs legacy ``run()``.

Every engine (the eight black-box baselines and Explainable-DSE) must
produce a bit-identical campaign — result fingerprint and canonical
journal — whether it drives its own loop (``run()``) or is driven
externally through :class:`repro.optim.DriverLoop`, across cold/warm
mapping caches and serial/parallel (two-worker) mapping search.  Plus
the protocol's negative paths: ``ask(n <= 0)`` and stale tells raise
``ValueError``.
"""

import pytest

from repro.core.dse.constraints import Constraint
from repro.core.dse.explainable import ExplainableDSE
from repro.cost.evaluator import CostEvaluator
from repro.mapping.mapper import TopNMapper
from repro.optim import (
    BayesianOptimization,
    DriverLoop,
    EvalResult,
    ExplainableEngine,
    GeneticAlgorithm,
    GridSearch,
    HyperMapperDSE,
    LocalSearch,
    RandomSearch,
    ReinforcementLearningDSE,
    SearchEngine,
    SimulatedAnnealing,
)
from repro.perf.mapping_cache import MappingCache
from repro.service.machine import result_fingerprint
from repro.telemetry import JsonlSink, Tracer
from repro.verify.differential import _canonical_journal

BUDGET = 8
SEED = 3

BASELINES = [
    GridSearch,
    RandomSearch,
    SimulatedAnnealing,
    GeneticAlgorithm,
    BayesianOptimization,
    HyperMapperDSE,
    ReinforcementLearningDSE,
    LocalSearch,
]

#: (id, warm mapping cache?, mapping-search workers or None).  The jobs
#: cells take the same evaluator path REPRO_JOBS=2 selects.
CELLS = [
    ("cold-serial", False, None),
    ("warm-serial", True, None),
    ("cold-jobs2", False, 2),
    ("warm-jobs2", True, 2),
]


def _constraints():
    return [
        Constraint("area", "area_mm2", 75.0),
        Constraint("power", "power_w", 4.0),
    ]


def _evaluator(workload, cache, jobs):
    kwargs = {"mapping_cache": cache}
    if jobs is not None:
        kwargs.update(jobs=jobs, executor_mode="thread")
    return CostEvaluator(workload, TopNMapper(top_n=50), **kwargs)


def _outcome(journal, runner):
    """(fingerprint, canonical journal) of one traced campaign."""
    tracer = Tracer(JsonlSink(journal))
    try:
        result = runner(tracer)
    finally:
        tracer.close()
    return result_fingerprint(result), _canonical_journal(journal)


@pytest.mark.parametrize(
    "cell,warm,jobs", CELLS, ids=[cell[0] for cell in CELLS]
)
@pytest.mark.parametrize("cls", BASELINES, ids=[cls.name for cls in BASELINES])
def test_baseline_protocol_matches_legacy(
    tmp_path, edge_space, tiny_workload, cls, cell, warm, jobs
):
    cache = MappingCache()

    def build(tracer):
        return cls(
            edge_space,
            _evaluator(tiny_workload, cache, jobs),
            _constraints(),
            max_evaluations=BUDGET,
            seed=SEED,
            tracer=tracer,
        )

    if warm:
        build(None).run()
    legacy = _outcome(tmp_path / "legacy.jsonl", lambda t: build(t).run())
    proto = _outcome(
        tmp_path / "proto.jsonl", lambda t: DriverLoop(build(t)).run(None)
    )
    assert legacy[0] == proto[0], "result fingerprint diverged"
    assert legacy[1] == proto[1], "canonical journal diverged"


@pytest.mark.parametrize(
    "cell,warm,jobs", CELLS, ids=[cell[0] for cell in CELLS]
)
def test_explainable_protocol_matches_legacy(
    tmp_path, edge_space, tiny_workload, cell, warm, jobs
):
    cache = MappingCache()

    def build():
        return ExplainableDSE(
            edge_space,
            _evaluator(tiny_workload, cache, jobs),
            _constraints(),
            max_evaluations=BUDGET,
        )

    if warm:
        build().run()
    legacy = _outcome(
        tmp_path / "legacy.jsonl", lambda t: build().run(tracer=t)
    )
    proto = _outcome(
        tmp_path / "proto.jsonl",
        lambda t: DriverLoop(ExplainableEngine(build(), tracer=t)).run(None),
    )
    assert legacy[0] == proto[0], "result fingerprint diverged"
    assert legacy[1] == proto[1], "canonical journal diverged"


def test_batched_driver_matches_legacy(edge_space, tiny_workload, tmp_path):
    """A batch_size > 1 driver serves the same FIFO stream, so the
    campaign is unchanged."""

    def build(tracer=None):
        return RandomSearch(
            edge_space,
            _evaluator(tiny_workload, MappingCache(), None),
            _constraints(),
            max_evaluations=BUDGET,
            seed=SEED,
        )

    legacy = build().run()
    batched = DriverLoop(build(), batch_size=3).run(None)
    assert result_fingerprint(legacy) == result_fingerprint(batched)


class TestProtocolGuards:
    def _engine(self, edge_space, tiny_workload, cls=RandomSearch):
        engine = cls(
            edge_space,
            _evaluator(tiny_workload, MappingCache(), None),
            _constraints(),
            max_evaluations=BUDGET,
            seed=SEED,
        )
        engine.start(None)
        return engine

    @pytest.mark.parametrize("n", [0, -1])
    def test_baseline_ask_nonpositive_raises(
        self, edge_space, tiny_workload, n
    ):
        engine = self._engine(edge_space, tiny_workload)
        with pytest.raises(ValueError):
            engine.ask(n)

    @pytest.mark.parametrize("n", [0, -3])
    def test_explainable_ask_nonpositive_raises(
        self, edge_space, tiny_workload, n
    ):
        dse = ExplainableDSE(
            edge_space,
            _evaluator(tiny_workload, MappingCache(), None),
            _constraints(),
            max_evaluations=BUDGET,
        )
        engine = ExplainableEngine(dse)
        engine.start(None)
        with pytest.raises(ValueError):
            engine.ask(n)

    def test_stale_tell_raises(self, edge_space, tiny_workload):
        engine = self._engine(edge_space, tiny_workload)
        points = engine.ask(1)
        assert points
        stale = dict(points[0])
        name = edge_space.parameters[0].name
        options = list(edge_space.parameters[0].values)
        stale[name] = next(o for o in options if o != stale[name])
        evaluation = engine.evaluator.evaluate(points[0])
        with pytest.raises(ValueError, match="stale tell"):
            engine.tell([EvalResult(point=stale, evaluation=evaluation)])

    def test_tell_never_asked_raises(self, edge_space, tiny_workload):
        engine = self._engine(edge_space, tiny_workload)
        point = edge_space.minimum_point()
        evaluation = engine.evaluator.evaluate(point)
        with pytest.raises(ValueError):
            engine.tell([EvalResult(point=point, evaluation=evaluation)])

    def test_tell_excess_results_raises(self, edge_space, tiny_workload):
        engine = self._engine(edge_space, tiny_workload)
        points = engine.ask(1)
        evaluation = engine.evaluator.evaluate(points[0])
        results = [
            EvalResult(point=points[0], evaluation=evaluation),
            EvalResult(point=points[0], evaluation=evaluation),
        ]
        with pytest.raises(ValueError):
            engine.tell(results)

    def test_explainable_stale_tell_raises(self, edge_space, tiny_workload):
        dse = ExplainableDSE(
            edge_space,
            _evaluator(tiny_workload, MappingCache(), None),
            _constraints(),
            max_evaluations=BUDGET,
        )
        engine = ExplainableEngine(dse)
        engine.start(None)
        points = engine.ask(1)
        assert points
        stale = dict(points[0])
        name = edge_space.parameters[0].name
        options = list(edge_space.parameters[0].values)
        stale[name] = next(o for o in options if o != stale[name])
        evaluation = engine.evaluator.evaluate(points[0])
        with pytest.raises(ValueError, match="stale tell"):
            engine.tell([EvalResult(point=stale, evaluation=evaluation)])

    def test_driver_rejects_bad_batch_size(self, edge_space, tiny_workload):
        engine = self._engine(edge_space, tiny_workload)
        with pytest.raises(ValueError):
            DriverLoop(engine, batch_size=0)


class _FlakyEvaluator:
    """Delegates to a real evaluator, raising on chosen call indices."""

    def __init__(self, inner, fail_on):
        self.inner = inner
        self.fail_on = set(fail_on)
        self.calls = 0

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def evaluate(self, point):
        self.calls += 1
        if self.calls in self.fail_on:
            raise RuntimeError(f"injected failure on call {self.calls}")
        return self.inner.evaluate(point)


class _StallingEngine(SearchEngine):
    """Violates the protocol: ask() returns [] while not finished."""

    evaluator = None

    def start(self, initial_point=None):
        pass

    def ask(self, n):
        return []

    def tell(self, results):
        pass

    @property
    def finished(self):
        return False

    def result(self):
        raise AssertionError("unreachable")


class TestDriverLoopPaths:
    def _dse(self, edge_space, tiny_workload):
        return ExplainableDSE(
            edge_space,
            _evaluator(tiny_workload, MappingCache(), None),
            _constraints(),
            max_evaluations=BUDGET,
        )

    def test_eval_result_ok(self):
        assert EvalResult(point={}).ok
        assert not EvalResult(point={}, error=RuntimeError("x")).ok

    def test_driver_quarantines_captured_failures(
        self, edge_space, tiny_workload
    ):
        """An evaluation exception under a captures_failures engine is
        delivered as an EvalResult error and quarantined, not raised."""
        dse = self._dse(edge_space, tiny_workload)
        flaky = _FlakyEvaluator(dse.evaluator, fail_on={2})
        result = DriverLoop(ExplainableEngine(dse), evaluator=flaky).run(None)
        quarantined = [
            t for t in result.trials if t.note.startswith("quarantined")
        ]
        assert len(quarantined) == 1
        assert not quarantined[0].feasible
        assert flaky.calls >= 2

    def test_driver_propagates_uncaptured_failures(
        self, edge_space, tiny_workload
    ):
        engine = RandomSearch(
            edge_space,
            _evaluator(tiny_workload, MappingCache(), None),
            _constraints(),
            max_evaluations=BUDGET,
            seed=SEED,
        )
        flaky = _FlakyEvaluator(engine.evaluator, fail_on={1})
        with pytest.raises(RuntimeError, match="injected failure"):
            DriverLoop(engine, evaluator=flaky).run(None)

    def test_driver_feeds_archive(self, edge_space, tiny_workload):
        from repro.experiments.pareto import archive_from_results
        from repro.optim import ParetoArchive

        def build():
            return self._dse(edge_space, tiny_workload)

        reference = build().run()
        archive = ParetoArchive()
        driven = DriverLoop(
            ExplainableEngine(build()), archive=archive
        ).run(None)
        expected = archive_from_results([reference])
        assert archive.snapshot() == expected.snapshot()
        assert result_fingerprint(driven) == result_fingerprint(reference)

    def test_driver_detects_protocol_stall(self):
        with pytest.raises(RuntimeError, match="stall"):
            DriverLoop(_StallingEngine(), evaluator=object()).run(None)

    def test_explainable_guards_before_start(self, edge_space, tiny_workload):
        engine = ExplainableEngine(self._dse(edge_space, tiny_workload))
        assert not engine.finished
        assert engine.step_hint == 0
        with pytest.raises(RuntimeError, match="start"):
            engine.ask(1)
        with pytest.raises(RuntimeError, match="start"):
            engine.tell([EvalResult(point={})])
        with pytest.raises(RuntimeError, match="start"):
            engine.result()

    def test_explainable_empty_tell_is_noop(self, edge_space, tiny_workload):
        engine = ExplainableEngine(self._dse(edge_space, tiny_workload))
        engine.start(None)
        points = engine.ask(1)
        assert points
        engine.tell([])
        evaluation = engine.evaluator.evaluate(points[0])
        engine.tell([EvalResult(point=points[0], evaluation=evaluation)])
