"""Additional coverage for the §4.7 mitigation subroutines."""

import math

import pytest

from repro.core.bottleneck.analyzer import BottleneckFinding
from repro.core.bottleneck.api import MitigationContext
from repro.core.bottleneck.latency_model import (
    LayerExecutionContext,
    mitigate_phys_unicast,
    mitigate_pes,
    mitigate_rf_size,
    mitigate_spm_size,
    mitigate_virt_unicast,
)
from repro.core.bottleneck.tree import leaf
from repro.cost.latency import evaluate_layer_mapping
from repro.mapping.dataflow import build_output_stationary_mapping
from repro.workloads.layers import Operand


@pytest.fixture
def context(conv_layer, mid_config):
    mapping = build_output_stationary_mapping(conv_layer, mid_config)
    execution = evaluate_layer_mapping(conv_layer, mapping, mid_config)
    return LayerExecutionContext(
        layer=conv_layer, execution=execution, config=mid_config
    )


def _ctx(context, node_name, scaling=4.0, operand=None):
    metadata = {"operand": operand} if operand else {}
    finding = BottleneckFinding(
        node=leaf(node_name, 1.0, **metadata),
        path=("latency", node_name),
        contribution=1.0,
        scaling=scaling,
    )
    return MitigationContext(
        scaling=scaling,
        finding=finding,
        execution=context.execution,
        extra={"config": context.config},
    )


class TestComputeBoundLinkMitigations:
    def test_underutilized_array_scales_virt(self, context):
        ctx = _ctx(context, "t_comp", scaling=8.0)
        if context.execution.pes_used < 0.9 * context.config.pes:
            assert mitigate_virt_unicast(8, ctx) == pytest.approx(64.0)
            assert mitigate_phys_unicast(4, ctx) == pytest.approx(32.0)
        else:
            assert mitigate_virt_unicast(8, ctx) is None

    def test_phys_multiplier_clamped_at_64(self, context):
        ctx = _ctx(context, "t_comp", scaling=64.0)
        if context.execution.pes_used < 0.9 * context.config.pes:
            assert mitigate_phys_unicast(32, ctx) == 64.0

    def test_fully_utilized_array_skips_links(
        self, conv_layer, mid_point
    ):
        """When pes_used ~ pes, links are not the limiter -> None."""
        from repro.arch.accelerator import config_from_point

        point = dict(mid_point)
        point["pes"] = 64  # tiny array: the dataflow fills it
        config = config_from_point(point)
        mapping = build_output_stationary_mapping(conv_layer, config)
        execution = evaluate_layer_mapping(conv_layer, mapping, config)
        if execution.pes_used >= 0.9 * config.pes:
            context = LayerExecutionContext(
                layer=conv_layer, execution=execution, config=config
            )
            ctx = _ctx(context, "t_comp", scaling=4.0)
            assert mitigate_virt_unicast(8, ctx) is None


class TestNocBoundLinkMitigations:
    def test_virt_covers_demanded_rounds(self, context):
        ctx = _ctx(context, "t_noc_W", operand=Operand.W)
        groups = context.execution.noc_groups_needed[Operand.W]
        links = context.config.physical_links(Operand.W)
        assert mitigate_virt_unicast(8, ctx) == math.ceil(groups / links)

    def test_phys_links_clamped_to_groups(self, context):
        ctx = _ctx(context, "t_noc_W", scaling=64.0, operand=Operand.W)
        value = mitigate_phys_unicast(16, ctx)
        groups = context.execution.noc_groups_needed[Operand.W]
        implied_links = value * context.config.pes / 64.0
        assert implied_links <= max(groups, 1) + 1e-9

    def test_operand_fallback_uses_worst_noc(self, context):
        """A finding without operand metadata resolves to the slowest NoC."""
        ctx = _ctx(context, "t_noc")  # no operand metadata
        value = mitigate_virt_unicast(8, ctx)
        worst = max(
            context.execution.t_noc, key=context.execution.t_noc.get
        )
        groups = context.execution.noc_groups_needed[worst]
        links = context.config.physical_links(worst)
        assert value == math.ceil(groups / links)


class TestBufferSizing:
    def test_rf_no_growth_without_remaining_reuse(self, context):
        """target_scaling clamps at the remaining reuse: if none, keep."""
        execution = context.execution
        op = Operand.W
        if execution.reuse_available_rf[op] <= 1.0:
            ctx = _ctx(context, "t_noc_W", operand=op)
            assert mitigate_rf_size(256, ctx) == 256

    def test_spm_scaling_monotone_in_s(self, context):
        small = mitigate_spm_size(
            512, _ctx(context, "dma_W", scaling=2.0, operand=Operand.W)
        )
        large = mitigate_spm_size(
            512, _ctx(context, "dma_W", scaling=16.0, operand=Operand.W)
        )
        assert large >= small - 1e-9

    def test_pes_mitigation_is_pure_scaling(self, context):
        assert mitigate_pes(7, _ctx(context, "t_comp", scaling=3.0)) == 21.0
