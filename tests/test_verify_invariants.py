"""Tests for the bottleneck-tree invariant checker, including the
mutation-style sweep over every combinator (satellite: each seeded
mutant must be caught)."""

import pytest

from repro.core.bottleneck.analyzer import BottleneckFinding, analyze_tree
from repro.core.bottleneck.tree import (
    Node,
    NodeOp,
    add,
    div,
    leaf,
    maximum,
    mul,
)
from repro.verify.invariants import (
    InvariantViolation,
    assert_tree_invariants,
    check_all,
    check_findings,
    check_mitigation,
    check_tree,
    recompute_value,
    scale_at_path,
)
from repro.verify.runner import check_campaign_invariants


def _sample_tree() -> Node:
    """A tree exercising all four combinators with distinct leaf values,
    chosen so every perturbed combinator yields a *different* value (no
    mutant can hide behind a numerical coincidence)."""
    return maximum(
        "latency",
        [
            mul("t_comp", [leaf("dram_iters", 24.0), leaf("inner_cycles", 7.0)]),
            add(
                "t_noc",
                [
                    leaf("t_noc_I", 40.0),
                    leaf("t_noc_W", 90.0),
                    leaf("t_noc_O", 11.0),
                ],
            ),
            div("t_dma", leaf("offchip_bytes", 600.0), leaf("dram_bpc", 4.0)),
        ],
    )


class TestCheckTree:
    def test_honest_tree_is_clean(self):
        assert check_tree(_sample_tree()) == []

    def test_real_campaign_trees_are_clean(self):
        trees, violations = check_campaign_invariants(points=2, seed=3)
        assert trees > 0
        assert violations == []

    def test_recompute_matches_node_value(self):
        tree = _sample_tree()
        for node in tree.walk():
            assert recompute_value(node) == node.value

    def test_negative_leaf_flagged(self):
        tree = add("cost", [leaf("good", 5.0), leaf("bad", -1.0)])
        violations = check_tree(tree)
        assert any("negative" in v for v in violations)

    def test_assert_wrapper_raises(self):
        tree = add("cost", [leaf("good", 5.0), leaf("bad", -1.0)])
        with pytest.raises(InvariantViolation):
            assert_tree_invariants(tree)


class _MutantNode(Node):
    """A node whose combinator evaluation was perturbed — the seeded
    mutants of the mutation test.  ``max`` becomes ``min``, ``add`` gains
    an off-by-one, ``mul`` degrades to ``sum`` and ``div`` to ``mul``."""

    @property
    def value(self) -> float:
        if self.op is NodeOp.LEAF:
            return float(self.raw_value)
        values = [c.value for c in self.children]
        if self.op is NodeOp.MAX:
            return min(values)
        if self.op is NodeOp.ADD:
            return sum(values) + 1.0
        if self.op is NodeOp.MUL:
            return sum(values)
        numerator, denominator = values
        return numerator * denominator


def _mutate_node(root: Node, target: Node) -> Node:
    """Clone the tree with ``target`` replaced by its mutant twin."""
    if root is target:
        return _MutantNode(
            name=root.name,
            op=root.op,
            children=root.children,
            raw_value=root.raw_value,
        )
    if not root.children:
        return root
    return Node(
        name=root.name,
        op=root.op,
        children=tuple(_mutate_node(c, target) for c in root.children),
        raw_value=root.raw_value,
    )


class TestCombinatorMutants:
    def test_every_seeded_mutant_is_caught(self):
        """Perturbing any single combinator anywhere in the tree must be
        detected by the recomputation invariant."""
        honest = _sample_tree()
        internal = [n for n in honest.walk() if n.op is not NodeOp.LEAF]
        assert {n.op for n in internal} == {
            NodeOp.MAX,
            NodeOp.ADD,
            NodeOp.MUL,
            NodeOp.DIV,
        }
        for target in internal:
            mutant_tree = _mutate_node(honest, target)
            # the perturbation must actually change the node's value...
            assert mutant_tree.find(target.name).value != target.value
            # ...and the checker must flag exactly that node.
            violations = check_tree(mutant_tree)
            assert violations, f"mutant at {target.name!r} not caught"
            assert any(target.name in v for v in violations)

    def test_mutant_detected_via_assert_wrapper(self):
        honest = _sample_tree()
        target = next(n for n in honest.walk() if n.op is NodeOp.MUL)
        with pytest.raises(InvariantViolation):
            assert_tree_invariants(_mutate_node(honest, target))


class TestFindings:
    def test_findings_of_sample_tree_are_clean(self):
        tree = _sample_tree()
        assert check_findings(tree) == []
        for finding in analyze_tree(tree):
            assert check_mitigation(tree, finding) == []

    def test_bogus_path_flagged(self):
        tree = _sample_tree()
        findings = analyze_tree(tree)
        bogus = BottleneckFinding(
            node=findings[0].node,
            path=("latency", "no_such_child"),
            contribution=findings[0].contribution,
            scaling=findings[0].scaling,
        )
        violations = check_findings(tree, [bogus])
        assert any("does not exist" in v for v in violations)

    def test_off_bottleneck_path_flagged(self):
        """A finding pointing at a far-from-dominant max child violates
        the argmax invariant."""
        tree = _sample_tree()
        weak = tree.find("t_dma")
        assert weak.value < 0.99 * tree.value
        finding = BottleneckFinding(
            node=weak, path=("latency", "t_dma"), contribution=0.5, scaling=2.0
        )
        violations = check_findings(tree, [finding])
        assert any("tie window" in v for v in violations)

    def test_out_of_range_scaling_flagged(self):
        tree = _sample_tree()
        honest = analyze_tree(tree)[0]
        bad = BottleneckFinding(
            node=honest.node,
            path=honest.path,
            contribution=honest.contribution,
            scaling=1.0,  # "no change" is not a mitigation
        )
        violations = check_findings(tree, [bad])
        assert any("scaling" in v for v in violations)


class TestScaleAtPath:
    def test_scaling_the_bottleneck_reduces_the_root(self):
        tree = _sample_tree()
        finding = analyze_tree(tree)[0]
        scaled = scale_at_path(tree, finding.path, 0.5)
        assert scaled.value <= tree.value
        assert scaled.find(finding.path[-1]).value == finding.node.value * 0.5

    def test_unknown_path_raises(self):
        with pytest.raises(InvariantViolation):
            scale_at_path(_sample_tree(), ("latency", "nope"), 0.5)

    def test_check_all_composes(self):
        assert check_all(_sample_tree()) == []
