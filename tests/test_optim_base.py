"""Tests for the baseline optimizer base class and penalized objective."""

import math

import pytest

from repro.core.dse.constraints import Constraint, Sense
from repro.cost.evaluator import CostEvaluator
from repro.mapping.mapper import TopNMapper
from repro.optim.base import BaselineOptimizer, penalized_objective
from repro.optim.random_search import RandomSearch


class TestPenalizedObjective:
    CONSTRAINTS = [
        Constraint("area", "area_mm2", 75.0),
        Constraint("throughput", "throughput", 40.0, Sense.GEQ),
    ]

    def test_feasible_is_log_latency(self):
        costs = {"latency_ms": 10.0, "area_mm2": 50, "throughput": 100}
        assert penalized_objective(costs, self.CONSTRAINTS) == pytest.approx(
            math.log(10.0)
        )

    def test_violation_adds_penalty(self):
        feasible = {"latency_ms": 10.0, "area_mm2": 50, "throughput": 100}
        violated = {"latency_ms": 10.0, "area_mm2": 150, "throughput": 100}
        assert penalized_objective(
            violated, self.CONSTRAINTS
        ) > penalized_objective(feasible, self.CONSTRAINTS)

    def test_worse_violation_scores_worse(self):
        a = {"latency_ms": 10.0, "area_mm2": 100, "throughput": 100}
        b = {"latency_ms": 10.0, "area_mm2": 200, "throughput": 100}
        assert penalized_objective(b, self.CONSTRAINTS) > penalized_objective(
            a, self.CONSTRAINTS
        )

    def test_unmappable_is_finite(self):
        costs = {"latency_ms": math.inf, "area_mm2": 50, "throughput": 0.0}
        score = penalized_objective(costs, self.CONSTRAINTS)
        assert math.isfinite(score)
        assert score > penalized_objective(
            {"latency_ms": 10.0, "area_mm2": 50, "throughput": 100},
            self.CONSTRAINTS,
        )


class TestBudgetEnforcement:
    def test_rejects_bad_budget(self, edge_space, tiny_workload):
        evaluator = CostEvaluator(tiny_workload, TopNMapper(top_n=40))
        with pytest.raises(ValueError):
            RandomSearch(edge_space, evaluator, [], max_evaluations=0)

    def test_budget_is_hard_cap(self, edge_space, tiny_workload):
        evaluator = CostEvaluator(tiny_workload, TopNMapper(top_n=40))
        optimizer = RandomSearch(
            edge_space, evaluator, [], max_evaluations=7, seed=1
        )
        result = optimizer.run()
        assert result.evaluations == 7
        assert len(result.trials) == 7

    def test_cached_reevaluations_free(self, edge_space, tiny_workload):
        evaluator = CostEvaluator(tiny_workload, TopNMapper(top_n=40))
        optimizer = RandomSearch(
            edge_space, evaluator, [], max_evaluations=5, seed=1
        )
        optimizer.run()
        # A second run with the same seed replays the same points; the
        # cached ones are free, so the budget buys strictly more trials.
        second = RandomSearch(
            edge_space, evaluator, [], max_evaluations=5, seed=1
        ).run()
        assert second.evaluations <= 5
        assert len(second.trials) >= 5 + second.evaluations

    def test_result_records_constraint_utilizations(
        self, edge_space, tiny_workload
    ):
        evaluator = CostEvaluator(tiny_workload, TopNMapper(top_n=40))
        constraints = [Constraint("area", "area_mm2", 75.0)]
        result = RandomSearch(
            edge_space, evaluator, constraints, max_evaluations=3, seed=1
        ).run()
        for trial in result.trials:
            assert "area" in trial.utilizations
