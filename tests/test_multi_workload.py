"""Tests for multi-workload composition (§4.4's multiple-workload case)."""

import pytest

from repro.core.dse.constraints import Constraint
from repro.core.dse.explainable import ExplainableDSE
from repro.cost.evaluator import CostEvaluator
from repro.mapping.mapper import TopNMapper
from repro.workloads.layers import Workload, conv2d
from repro.workloads.multi import (
    combine_workloads,
    load_combined_workload,
    per_model_latency,
)
from repro.workloads.registry import load_workload


class TestCombination:
    def test_layer_names_prefixed(self):
        combined = load_combined_workload(["resnet18", "bert"])
        names = [layer.name for layer in combined.layers]
        assert "resnet18/conv1" in names
        assert any(name.startswith("bert/") for name in names)

    def test_counts_sum(self):
        a = load_workload("resnet18")
        b = load_workload("bert")
        combined = combine_workloads([a, b])
        assert combined.total_layers == a.total_layers + b.total_layers
        assert (
            combined.repeated_layer_count
            == a.repeated_layer_count + b.repeated_layer_count
        )
        assert combined.total_macs == a.total_macs + b.total_macs

    def test_custom_name(self):
        combined = load_combined_workload(["resnet18", "bert"], name="pair")
        assert combined.name == "pair"

    def test_default_name(self):
        combined = load_combined_workload(["resnet18", "bert"])
        assert combined.name == "resnet18+bert"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            combine_workloads([])

    def test_rejects_duplicates(self):
        w = load_workload("resnet18")
        with pytest.raises(ValueError):
            combine_workloads([w, w])


class TestPerModelSplit:
    def test_split_sums_back(self):
        a = Workload(
            "a", (conv2d("x", 4, 4, (4, 4), repeats=2),), total_layers=2
        )
        b = Workload("b", (conv2d("y", 4, 4, (4, 4)),), total_layers=1)
        combined = combine_workloads([a, b])
        latencies = {"a/x": 10.0, "b/y": 5.0}
        split = per_model_latency(combined, latencies)
        assert split == {"a": 20.0, "b": 5.0}


class TestMultiWorkloadDSE:
    def test_explainable_dse_on_combined(self, edge_space):
        """One hardware point optimized for two DNNs at once."""
        combined = combine_workloads(
            [
                Workload(
                    "small_conv",
                    (conv2d("c", 16, 32, (14, 14)),),
                    total_layers=1,
                ),
                Workload(
                    "small_gemm",
                    (conv2d("g", 32, 64, (7, 7), kernel=(1, 1)),),
                    total_layers=1,
                ),
            ]
        )
        evaluator = CostEvaluator(combined, TopNMapper(top_n=50))
        dse = ExplainableDSE(
            edge_space,
            evaluator,
            [Constraint("area", "area_mm2", 75.0)],
            max_evaluations=20,
        )
        result = dse.run()
        assert result.found_feasible
        # Bottleneck layers from both models appear in the explanations.
        text = "\n".join(result.explanations)
        assert "small_conv/c" in text or "small_gemm/g" in text
