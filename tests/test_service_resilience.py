"""Service-grade resilience: admission control and shedding, deadline
expiry and extension, HTTP request hardening, the idempotent retrying
client, and the service-layer fault-injection sites.

White-box shed tests pin ``service._loop_task`` to a sentinel task so
nothing drains the scheduler between submissions — the queue/in-flight
counts the shed decisions see are then exact, not racy.
"""

import asyncio
import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.arch import build_edge_design_space
from repro.core.dse.constraints import Constraint, Sense
from repro.core.dse.explainable import ExplainableDSE
from repro.cost.evaluator import CostEvaluator
from repro.mapping.mapper import TopNMapper
from repro.perf.mapping_cache import MappingCache
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.http import ServiceEndpoint
from repro.service.machine import result_fingerprint
from repro.service.service import (
    CampaignService,
    CampaignSpec,
    ServiceError,
    ServiceOverloadError,
    UnknownCampaignError,
)
from repro.telemetry import JsonlSink, Tracer


def _constraints():
    return [
        Constraint("area", "area_mm2", 75.0),
        Constraint("power", "power_w", 4.0),
        Constraint("throughput", "throughput", 200.0, Sense.GEQ),
    ]


@pytest.fixture(scope="module")
def factory(tiny_workload):
    def build(spec):
        return ExplainableDSE(
            build_edge_design_space(),
            CostEvaluator(
                tiny_workload,
                TopNMapper(top_n=60),
                mapping_cache=MappingCache(),
            ),
            _constraints(),
            max_evaluations=spec.iterations,
        )

    return build


@pytest.fixture(scope="module")
def solo(factory, tmp_path_factory):
    """Solo run() references keyed by iteration budget."""
    references = {}

    def reference(budget):
        if budget not in references:
            journal = (
                tmp_path_factory.mktemp("solo") / f"solo-{budget}.jsonl"
            )
            tracer = Tracer(JsonlSink(journal))
            result = factory(
                CampaignSpec(model="tiny", iterations=budget)
            ).run(tracer=tracer)
            tracer.close()
            references[budget] = (
                result_fingerprint(result),
                journal.read_bytes(),
            )
        return references[budget]

    return reference


def _parked_service(tmp_path, factory, **kwargs):
    """A service whose scheduler never drains: submissions pile up
    exactly where admission control counts them."""
    service = CampaignService(
        tmp_path / "spool", campaign_factory=factory, **kwargs
    )
    service.spool.mkdir(parents=True, exist_ok=True)
    service._wake = asyncio.Event()
    service._loop_task = asyncio.current_task()  # sentinel: "running"
    return service


class TestAdmissionControl:
    def test_tenant_inflight_cap_sheds_429(self, factory, tmp_path):
        async def run():
            service = _parked_service(
                tmp_path, factory, tenant_inflight=2, max_queue=100
            )
            for _ in range(2):
                await service.submit(
                    CampaignSpec(model="tiny", tenant="alice", iterations=4)
                )
            with pytest.raises(ServiceOverloadError) as shed:
                await service.submit(
                    CampaignSpec(model="tiny", tenant="alice", iterations=4)
                )
            # Another tenant is unaffected by alice's backlog.
            await service.submit(
                CampaignSpec(model="tiny", tenant="bob", iterations=4)
            )
            return service, shed.value

        service, exc = asyncio.run(run())
        assert exc.http_status == 429
        assert exc.retry_after >= 1.0
        assert service.counters["shed_429"] == 1
        assert service.healthz()["counters"]["shed_429"] == 1

    def test_full_queue_sheds_503(self, factory, tmp_path):
        async def run():
            service = _parked_service(
                tmp_path, factory, tenant_inflight=100, max_queue=2
            )
            for tenant in ("a", "b"):
                await service.submit(
                    CampaignSpec(model="tiny", tenant=tenant, iterations=4)
                )
            with pytest.raises(ServiceOverloadError) as shed:
                await service.submit(
                    CampaignSpec(model="tiny", tenant="c", iterations=4)
                )
            return service, shed.value

        service, exc = asyncio.run(run())
        assert exc.http_status == 503
        assert exc.retry_after >= 1.0
        assert service.counters["shed_503"] == 1

    def test_idempotent_submit_dedups(self, factory, tmp_path):
        async def run():
            service = _parked_service(tmp_path, factory)
            spec = CampaignSpec(
                model="tiny", iterations=4, idempotency_key="job-1"
            )
            first = await service.submit(spec)
            second = await service.submit(spec)
            other = await service.submit(
                CampaignSpec(
                    model="tiny", iterations=4, idempotency_key="job-2"
                )
            )
            return service, first, second, other

        service, first, second, other = asyncio.run(run())
        assert first == second
        assert other != first
        assert service.counters["dedup_hits"] == 1

    def test_overload_pressure_clamps_quantum(self, factory, tmp_path):
        async def run():
            service = _parked_service(
                tmp_path, factory, quantum=4, overload_slice_s=0.5
            )
            record = type("R", (), {"elapsed_s": 0.0})()
            service._charge_slice(record, 2.0)  # way over the watermark
            assert service.scheduler.pressure is True
            assert service.healthz()["status"] == "overloaded"
            # Recovery: fast slices pull the EWMA back under.
            for _ in range(20):
                service._charge_slice(record, 0.01)
            assert service.scheduler.pressure is False
            return service

        asyncio.run(run())

    def test_unknown_campaign_is_its_own_error(self, factory, tmp_path):
        async def run():
            service = _parked_service(tmp_path, factory)
            with pytest.raises(UnknownCampaignError) as missing:
                service.status("c9999")
            assert missing.value.http_status == 404
            assert isinstance(missing.value, ServiceError)

        asyncio.run(run())


class TestDeadlines:
    def test_expire_then_extend_matches_straight_run(
        self, factory, solo, tmp_path
    ):
        """A campaign that blows an impossibly small deadline settles as
        ``expired`` through a forced checkpoint; extending the deadline
        finishes it bit-identically to a straight run."""

        async def run():
            service = CampaignService(
                tmp_path / "spool", campaign_factory=factory, quantum=1
            )
            await service.start()
            cid = await service.submit(
                CampaignSpec(model="tiny", iterations=8, deadline_s=1e-6)
            )
            expired = await service.wait(cid)
            assert expired["status"] == "expired"
            assert expired["deadline_remaining_s"] == 0.0
            # The forced checkpoint is on disk and result() refuses.
            assert (tmp_path / "spool" / cid / "journal.jsonl.ckpt").exists()
            with pytest.raises(ServiceError):
                service.result(cid)
            service.extend_deadline(cid, 3600.0)
            final = await service.wait(cid)
            result = service.result(cid)
            await service.stop()
            return service, cid, final, result

        service, cid, final, result = asyncio.run(run())
        assert final["status"] == "finished"
        assert service.counters["expired"] == 1
        assert service.counters["deadline_extensions"] == 1
        expected_fp, expected_journal = solo(8)
        assert result["fingerprint"] == expected_fp
        # Canonical journals (RunSummary perf counters stripped — wall
        # time legitimately differs across expire/resume) must match.
        from repro.verify.differential import _canonical_journal

        journal = tmp_path / "spool" / cid / "journal.jsonl"
        solo_journal = tmp_path / "solo-ref.jsonl"
        solo_journal.write_bytes(expected_journal)
        assert _canonical_journal(journal) == _canonical_journal(
            solo_journal
        )

    def test_expired_survives_restart_then_extension(
        self, factory, solo, tmp_path
    ):
        """``expired`` is spooled: a fresh service reports it, and an
        extension there resumes it (the scheduler never saw it)."""

        async def phase1():
            service = CampaignService(
                tmp_path / "spool", campaign_factory=factory, quantum=1
            )
            await service.start()
            cid = await service.submit(
                CampaignSpec(model="tiny", iterations=8, deadline_s=1e-6)
            )
            await service.wait(cid)
            await service.stop()
            return cid

        async def phase2(cid):
            service = CampaignService(
                tmp_path / "spool", campaign_factory=factory, quantum=1
            )
            await service.start()
            assert service.status(cid)["status"] == "expired"
            service.extend_deadline(cid, 3600.0)
            final = await service.wait(cid)
            result = service.result(cid)
            await service.stop()
            return final, result

        cid = asyncio.run(phase1())
        final, result = asyncio.run(phase2(cid))
        assert final["status"] == "finished"
        assert result["fingerprint"] == solo(8)[0]

    def test_deadline_header_applies_when_body_has_none(
        self, factory, tmp_path
    ):
        async def run():
            service = CampaignService(
                tmp_path / "spool", campaign_factory=factory, quantum=1
            )
            await service.start()
            endpoint = ServiceEndpoint(service)
            await endpoint.start()
            base = f"http://127.0.0.1:{endpoint.port}"
            client = ServiceClient(base)

            def submit_with_header():
                request = urllib.request.Request(
                    f"{base}/v1/campaigns",
                    data=json.dumps(
                        {"model": "tiny", "iterations": 8}
                    ).encode(),
                    headers={
                        "Content-Type": "application/json",
                        "X-Repro-Deadline": "1e-6",
                    },
                    method="POST",
                )
                with urllib.request.urlopen(request, timeout=30) as resp:
                    return json.loads(resp.read().decode())["campaign_id"]

            cid = await asyncio.to_thread(submit_with_header)
            expired = await asyncio.to_thread(client.wait, cid, 300)
            assert expired["status"] == "expired"
            assert expired["deadline_s"] == pytest.approx(1e-6)
            extended = await asyncio.to_thread(
                client.extend_deadline, cid, 3600.0
            )
            assert extended["status"] in ("queued", "running", "finished")
            final = await asyncio.to_thread(client.wait, cid, 300)
            assert final["status"] == "finished"
            await endpoint.stop()
            await service.stop()

        asyncio.run(run())


def _raw_http(port, payload: bytes, timeout: float = 10.0) -> bytes:
    """One raw TCP exchange with the endpoint; returns whatever the
    server sent back (empty if it just closed the connection)."""
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as s:
        s.sendall(payload)
        s.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            data = s.recv(65536)
            if not data:
                break
            chunks.append(data)
    return b"".join(chunks)


class TestHttpHardening:
    @pytest.fixture()
    def endpoint(self, factory, tmp_path):
        """A started service+endpoint pair torn down after the test."""
        state = {}

        async def start():
            service = CampaignService(
                tmp_path / "spool", campaign_factory=factory, quantum=1
            )
            await service.start()
            endpoint = ServiceEndpoint(service)
            await endpoint.start()
            state.update(service=service, endpoint=endpoint)

        async def stop():
            await state["endpoint"].stop()
            await state["service"].stop()

        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        asyncio.run_coroutine_threadsafe(start(), loop).result(60)
        try:
            yield state["endpoint"]
        finally:
            asyncio.run_coroutine_threadsafe(stop(), loop).result(60)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(10)
            loop.close()

    def test_oversized_body_rejected(self, endpoint):
        reply = _raw_http(
            endpoint.port,
            b"POST /v1/campaigns HTTP/1.1\r\n"
            b"Content-Length: 1048577\r\n\r\n",
        )
        assert reply.startswith(b"HTTP/1.1 400")
        assert b"too large" in reply

    def test_malformed_json_body_rejected(self, endpoint):
        body = b"{not json"
        reply = _raw_http(
            endpoint.port,
            b"POST /v1/campaigns HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body,
        )
        assert reply.startswith(b"HTTP/1.1 400")
        assert b"not valid JSON" in reply

    def test_truncated_request_line_rejected(self, endpoint):
        reply = _raw_http(endpoint.port, b"GET\r\n\r\n")
        assert reply.startswith(b"HTTP/1.1 400")
        assert b"malformed request line" in reply

    def test_unknown_method_and_path(self, endpoint):
        reply = _raw_http(
            endpoint.port, b"BREW /v1/campaigns HTTP/1.1\r\n\r\n"
        )
        assert reply.startswith(b"HTTP/1.1 405")
        reply = _raw_http(endpoint.port, b"GET /v2/nope HTTP/1.1\r\n\r\n")
        assert reply.startswith(b"HTTP/1.1 404")

    def test_bad_content_length_rejected(self, endpoint):
        reply = _raw_http(
            endpoint.port,
            b"POST /v1/campaigns HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        )
        assert reply.startswith(b"HTTP/1.1 400")

    def test_shed_response_carries_retry_after(self, factory, tmp_path):
        async def run():
            service = _parked_service(
                tmp_path, factory, tenant_inflight=1, max_queue=100
            )
            endpoint = ServiceEndpoint(service)
            await endpoint.start()
            base = f"http://127.0.0.1:{endpoint.port}"

            def submit():
                request = urllib.request.Request(
                    f"{base}/v1/campaigns",
                    data=json.dumps(
                        {"model": "tiny", "tenant": "t", "iterations": 4}
                    ).encode(),
                    headers={"Content-Type": "application/json"},
                    method="POST",
                )
                with urllib.request.urlopen(request, timeout=30) as resp:
                    return json.loads(resp.read().decode())

            await asyncio.to_thread(submit)
            try:
                await asyncio.to_thread(submit)
                raise AssertionError("second submit was not shed")
            except urllib.error.HTTPError as exc:
                assert exc.code == 429
                assert int(exc.headers["Retry-After"]) >= 1
            await endpoint.stop()

        asyncio.run(run())


class _ScriptedServer:
    """A one-thread TCP server that plays a fixed per-connection script:
    ``"reset"`` closes without answering, an int answers that HTTP
    status, a dict answers 200 with that JSON body.  Records every
    request body it manages to read."""

    def __init__(self, script):
        self.script = list(script)
        self.requests = []
        self._sock = socket.create_server(("127.0.0.1", 0))
        self._sock.settimeout(30)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        for step in self.script:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            with conn:
                conn.settimeout(10)
                raw = b""
                try:
                    while b"\r\n\r\n" not in raw:
                        raw += conn.recv(65536)
                    head, _, body = raw.partition(b"\r\n\r\n")
                    length = 0
                    for line in head.split(b"\r\n"):
                        if line.lower().startswith(b"content-length:"):
                            length = int(line.split(b":", 1)[1])
                    while len(body) < length:
                        body += conn.recv(65536)
                    self.requests.append(body)
                except OSError:
                    pass
                if step == "reset":
                    continue  # close without a response
                if isinstance(step, int):
                    payload = json.dumps({"error": "scripted"}).encode()
                    status = step
                    extra = b"Retry-After: 0\r\n" if step in (429, 503) else b""
                else:
                    payload = json.dumps(step).encode()
                    status = 200
                    extra = b""
                conn.sendall(
                    b"HTTP/1.1 %d X\r\nContent-Type: application/json\r\n"
                    b"Content-Length: %d\r\n%sConnection: close\r\n\r\n%s"
                    % (status, len(payload), extra, payload)
                )
        self._sock.close()

    def close(self):
        try:
            self._sock.close()
        except OSError:
            pass


class TestClientResilience:
    def test_connection_refused_wraps_as_client_error(self):
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # now guaranteed closed
        client = ServiceClient(
            f"http://127.0.0.1:{port}", timeout=2, retries=0
        )
        with pytest.raises(ServiceClientError) as err:
            client.healthz()
        assert err.value.status is None
        assert err.value.retryable is True

    def test_idempotent_submit_survives_flaky_transport(self):
        server = _ScriptedServer(["reset", 503, {"campaign_id": "c0042"}])
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{server.port}",
                timeout=5,
                retries=3,
                backoff=0.01,
            )
            cid = client.submit(
                {"model": "tiny", "iterations": 4},
                idempotency_key="retry-me",
            )
        finally:
            server.close()
        assert cid == "c0042"
        # The dropped connection never delivered a body; both retries
        # replayed the same idempotency key.
        bodies = [json.loads(b) for b in server.requests if b]
        assert len(bodies) >= 2
        assert {b["idempotency_key"] for b in bodies} == {"retry-me"}

    def test_submit_without_key_never_retries(self):
        server = _ScriptedServer(["reset", {"campaign_id": "c9999"}])
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{server.port}",
                timeout=5,
                retries=3,
                backoff=0.01,
            )
            with pytest.raises(ServiceClientError) as err:
                client.submit({"model": "tiny", "iterations": 4})
        finally:
            server.close()
        assert err.value.status is None
        assert err.value.retryable is True  # retryable, but not idempotent

    def test_non_retryable_status_fails_fast(self):
        server = _ScriptedServer([404])
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{server.port}",
                timeout=5,
                retries=3,
                backoff=0.01,
            )
            with pytest.raises(ServiceClientError) as err:
                client.status("c0000")
        finally:
            server.close()
        assert err.value.status == 404
        assert err.value.retryable is False
        assert len(server.requests) == 1

    def test_wait_polls_with_exponential_backoff(self, monkeypatch):
        client = ServiceClient("http://example.invalid")
        statuses = iter(
            [{"status": "running"}] * 4 + [{"status": "finished"}]
        )
        monkeypatch.setattr(
            client, "status", lambda cid: next(statuses)
        )
        delays = []
        monkeypatch.setattr(time, "sleep", delays.append)
        final = client.wait("c0001", timeout=60, poll=0.2, poll_max=2.0)
        assert final["status"] == "finished"
        assert delays == [0.2, 0.4, 0.8, 1.6]

    def test_wait_returns_on_expired(self, monkeypatch):
        client = ServiceClient("http://example.invalid")
        monkeypatch.setattr(
            client, "status", lambda cid: {"status": "expired"}
        )
        assert client.wait("c0001", timeout=5)["status"] == "expired"


class TestServiceFaultSites:
    def test_injected_slice_crash_is_absorbed(
        self, factory, solo, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT", "crash:slice:step=1:seed=101"
        )

        async def run():
            service = CampaignService(
                tmp_path / "spool", campaign_factory=factory, quantum=1
            )
            await service.start()
            cid = await service.submit(
                CampaignSpec(model="tiny", iterations=8)
            )
            final = await service.wait(cid)
            result = service.result(cid)
            await service.stop()
            return service, final, result

        service, final, result = asyncio.run(run())
        assert final["status"] == "finished"
        assert service.counters["slice_faults"] == 1
        assert result["fingerprint"] == solo(8)[0]

    def test_injected_spool_write_crash_is_absorbed(
        self, factory, solo, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT", "crash:spool-write:step=2:seed=102"
        )

        async def run():
            service = CampaignService(
                tmp_path / "spool", campaign_factory=factory, quantum=1
            )
            await service.start()
            cid = await service.submit(
                CampaignSpec(model="tiny", iterations=8)
            )
            final = await service.wait(cid)
            result = service.result(cid)
            await service.stop()
            return service, final, result

        service, final, result = asyncio.run(run())
        assert final["status"] == "finished"
        assert service.counters["spool_write_faults"] == 1
        assert result["fingerprint"] == solo(8)[0]

    def test_submit_crash_then_idempotent_retry_dedups(
        self, factory, tmp_path, monkeypatch
    ):
        """A crash after the submission record is durable answers 500;
        the client's idempotent retry lands on the dedup path and gets
        the already-created campaign id."""
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT", "crash:submit:step=1:seed=103"
        )

        async def run():
            service = CampaignService(
                tmp_path / "spool", campaign_factory=factory, quantum=1
            )
            await service.start()
            endpoint = ServiceEndpoint(service)
            await endpoint.start()
            client = ServiceClient(
                f"http://127.0.0.1:{endpoint.port}",
                retries=3,
                backoff=0.01,
            )
            cid = await asyncio.to_thread(
                client.submit,
                {"model": "tiny", "iterations": 8},
                idempotency_key="faulty-submit",
            )
            final = await asyncio.to_thread(client.wait, cid, 300)
            await endpoint.stop()
            await service.stop()
            return service, final

        service, final = asyncio.run(run())
        assert final["status"] == "finished"
        assert service.counters["dedup_hits"] == 1

    def test_http_response_crash_then_get_retry(
        self, factory, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT", "crash:http-response:step=1:seed=104"
        )

        async def run():
            service = _parked_service(tmp_path, factory)
            endpoint = ServiceEndpoint(service)
            await endpoint.start()
            client = ServiceClient(
                f"http://127.0.0.1:{endpoint.port}",
                retries=3,
                backoff=0.01,
            )
            health = await asyncio.to_thread(client.healthz)
            await endpoint.stop()
            return health

        health = asyncio.run(run())
        assert health["ok"] is True
