"""Validation tests for the fast-path environment knobs.

``REPRO_FUSED_EVAL``, ``REPRO_TREE_COMPILE``, and ``REPRO_CACHE_PLANE``
follow the ``resolve_jobs`` contract: junk values never raise — they
warn once (per knob, per value) and fall back to the safe path.
"""

import warnings

import pytest

from repro.perf import knobs


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    for name in ("REPRO_FUSED_EVAL", "REPRO_TREE_COMPILE", "REPRO_CACHE_PLANE"):
        monkeypatch.delenv(name, raising=False)


class TestEnvFlag:
    def test_defaults(self):
        assert knobs.fused_eval_enabled() is False  # opt-in
        assert knobs.tree_compile_enabled() is True  # default on

    @pytest.mark.parametrize("raw", ["1", "true", "ON", "Yes"])
    def test_true_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_FUSED_EVAL", raw)
        assert knobs.fused_eval_enabled() is True

    @pytest.mark.parametrize("raw", ["0", "false", "OFF", "no"])
    def test_false_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TREE_COMPILE", raw)
        assert knobs.tree_compile_enabled() is False

    def test_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSED_EVAL", "0")
        assert knobs.fused_eval_enabled(override=True) is True
        monkeypatch.setenv("REPRO_TREE_COMPILE", "1")
        assert knobs.tree_compile_enabled(override=False) is False

    def test_junk_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSED_EVAL", "turbo")
        knobs._WARNED.clear()
        with pytest.warns(RuntimeWarning, match="REPRO_FUSED_EVAL"):
            assert knobs.fused_eval_enabled() is False  # safe default

    def test_junk_preserves_on_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TREE_COMPILE", "sideways")
        knobs._WARNED.clear()
        with pytest.warns(RuntimeWarning, match="REPRO_TREE_COMPILE"):
            assert knobs.tree_compile_enabled() is True  # default stays on

    def test_junk_warns_only_once_per_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSED_EVAL", "banana")
        knobs._WARNED.clear()
        with pytest.warns(RuntimeWarning):
            knobs.fused_eval_enabled()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert knobs.fused_eval_enabled() is False  # silent repeat


class TestCachePlaneDir:
    def test_unset_disables(self):
        assert knobs.cache_plane_dir() is None

    @pytest.mark.parametrize("raw", ["", "  ", "0", "off", "false", "no"])
    def test_empty_and_false_spellings_disable(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_CACHE_PLANE", raw)
        assert knobs.cache_plane_dir() is None

    def test_directory_is_created_and_returned(self, monkeypatch, tmp_path):
        target = tmp_path / "plane" / "nested"
        monkeypatch.setenv("REPRO_CACHE_PLANE", str(target))
        assert knobs.cache_plane_dir() == str(target)
        assert target.is_dir()

    def test_existing_file_warns_and_disables(self, monkeypatch, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        monkeypatch.setenv("REPRO_CACHE_PLANE", str(blocker))
        knobs._WARNED.clear()
        with pytest.warns(RuntimeWarning, match="REPRO_CACHE_PLANE"):
            assert knobs.cache_plane_dir() is None

    def test_uncreatable_path_warns_and_disables(self, monkeypatch, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("occupied")
        monkeypatch.setenv("REPRO_CACHE_PLANE", str(blocker / "child"))
        knobs._WARNED.clear()
        with pytest.warns(RuntimeWarning, match="REPRO_CACHE_PLANE"):
            assert knobs.cache_plane_dir() is None
