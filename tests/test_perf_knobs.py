"""Validation tests for the fast-path environment knobs.

``REPRO_FUSED_EVAL``, ``REPRO_TREE_COMPILE``, ``REPRO_CACHE_PLANE``,
``REPRO_SHM_EVAL``, ``REPRO_FUSED_SHARDS``, and ``REPRO_SHM_MIN_ROWS``
follow the ``resolve_jobs`` contract: junk values never raise — they
warn once (per knob, per value) and fall back to the safe path.  Valid
values are memoized per raw string (hot paths re-read knobs), junk
values are not (clearing ``_WARNED`` must re-warn).
"""

import warnings

import pytest

from repro.perf import knobs


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    for name in (
        "REPRO_FUSED_EVAL",
        "REPRO_TREE_COMPILE",
        "REPRO_CACHE_PLANE",
        "REPRO_SHM_EVAL",
        "REPRO_FUSED_SHARDS",
        "REPRO_SHM_MIN_ROWS",
        "REPRO_JOBS",
        "REPRO_SERVICE_MAX_CONCURRENT",
        "REPRO_SERVICE_STEP_QUANTUM",
        "REPRO_TENANT_QUOTA",
    ):
        monkeypatch.delenv(name, raising=False)


class TestEnvFlag:
    def test_defaults(self):
        assert knobs.fused_eval_enabled() is False  # opt-in
        assert knobs.tree_compile_enabled() is True  # default on

    @pytest.mark.parametrize("raw", ["1", "true", "ON", "Yes"])
    def test_true_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_FUSED_EVAL", raw)
        assert knobs.fused_eval_enabled() is True

    @pytest.mark.parametrize("raw", ["0", "false", "OFF", "no"])
    def test_false_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TREE_COMPILE", raw)
        assert knobs.tree_compile_enabled() is False

    def test_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSED_EVAL", "0")
        assert knobs.fused_eval_enabled(override=True) is True
        monkeypatch.setenv("REPRO_TREE_COMPILE", "1")
        assert knobs.tree_compile_enabled(override=False) is False

    def test_junk_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSED_EVAL", "turbo")
        knobs._WARNED.clear()
        with pytest.warns(RuntimeWarning, match="REPRO_FUSED_EVAL"):
            assert knobs.fused_eval_enabled() is False  # safe default

    def test_junk_preserves_on_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TREE_COMPILE", "sideways")
        knobs._WARNED.clear()
        with pytest.warns(RuntimeWarning, match="REPRO_TREE_COMPILE"):
            assert knobs.tree_compile_enabled() is True  # default stays on

    def test_junk_warns_only_once_per_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSED_EVAL", "banana")
        knobs._WARNED.clear()
        with pytest.warns(RuntimeWarning):
            knobs.fused_eval_enabled()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert knobs.fused_eval_enabled() is False  # silent repeat

    def test_junk_rewarns_after_warned_reset(self, monkeypatch):
        """The valid-value memo must not swallow junk: clearing the
        warn-once ledger re-warns (junk parses are never cached)."""
        monkeypatch.setenv("REPRO_FUSED_EVAL", "sideways-again")
        knobs._WARNED.clear()
        with pytest.warns(RuntimeWarning, match="REPRO_FUSED_EVAL"):
            knobs.fused_eval_enabled()
        knobs._WARNED.clear()
        with pytest.warns(RuntimeWarning, match="REPRO_FUSED_EVAL"):
            knobs.fused_eval_enabled()

    def test_valid_values_tracked_across_env_changes(self, monkeypatch):
        """The memo is keyed by raw value, so flipping the environment is
        picked up immediately."""
        monkeypatch.setenv("REPRO_FUSED_EVAL", "1")
        assert knobs.fused_eval_enabled() is True
        monkeypatch.setenv("REPRO_FUSED_EVAL", "0")
        assert knobs.fused_eval_enabled() is False
        monkeypatch.delenv("REPRO_FUSED_EVAL")
        assert knobs.fused_eval_enabled() is False


class TestShmKnobs:
    def test_shm_eval_defaults_off(self):
        assert knobs.shm_eval_enabled() is False

    def test_shm_eval_env_and_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_EVAL", "1")
        assert knobs.shm_eval_enabled() is True
        assert knobs.shm_eval_enabled(override=False) is False

    def test_shm_eval_junk_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_EVAL", "warp-speed")
        knobs._WARNED.clear()
        with pytest.warns(RuntimeWarning, match="REPRO_SHM_EVAL"):
            assert knobs.shm_eval_enabled() is False

    def test_fused_shards_defaults_to_resolved_jobs(self, monkeypatch):
        assert knobs.fused_shards() == 1  # REPRO_JOBS default is serial
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert knobs.fused_shards() == 3

    def test_fused_shards_env_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSED_SHARDS", "5")
        assert knobs.fused_shards() == 5

    @pytest.mark.parametrize("raw", ["auto", "0", "AUTO"])
    def test_fused_shards_auto_selects_cpu_count(self, monkeypatch, raw):
        import os

        monkeypatch.setenv("REPRO_FUSED_SHARDS", raw)
        assert knobs.fused_shards() == max(1, os.cpu_count() or 1)

    def test_fused_shards_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSED_SHARDS", "5")
        assert knobs.fused_shards(2) == 2
        assert knobs.fused_shards(0) == 1  # clamped to at least one

    def test_fused_shards_junk_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSED_SHARDS", "many")
        monkeypatch.setenv("REPRO_JOBS", "2")
        knobs._WARNED.clear()
        with pytest.warns(RuntimeWarning, match="REPRO_FUSED_SHARDS"):
            assert knobs.fused_shards() == 2

    def test_fused_shards_negative_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSED_SHARDS", "-4")
        knobs._WARNED.clear()
        with pytest.warns(RuntimeWarning, match="REPRO_FUSED_SHARDS"):
            assert knobs.fused_shards() == 1

    def test_min_rows_default(self):
        assert knobs.shm_min_shard_rows() == 4096

    def test_min_rows_env_and_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_ROWS", "128")
        assert knobs.shm_min_shard_rows() == 128
        assert knobs.shm_min_shard_rows(7) == 7
        assert knobs.shm_min_shard_rows(0) == 1  # clamped

    @pytest.mark.parametrize("raw", ["tiny", "-1", "0"])
    def test_min_rows_junk_warns_and_falls_back(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SHM_MIN_ROWS", raw)
        knobs._WARNED.clear()
        with pytest.warns(RuntimeWarning, match="REPRO_SHM_MIN_ROWS"):
            assert knobs.shm_min_shard_rows() == 4096


class TestServiceKnobs:
    def test_defaults(self):
        assert knobs.service_max_concurrent() == 4
        assert knobs.service_step_quantum() == 1
        assert knobs.tenant_step_quota() is None  # unlimited

    def test_env_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_MAX_CONCURRENT", "8")
        monkeypatch.setenv("REPRO_SERVICE_STEP_QUANTUM", "3")
        monkeypatch.setenv("REPRO_TENANT_QUOTA", "50")
        assert knobs.service_max_concurrent() == 8
        assert knobs.service_step_quantum() == 3
        assert knobs.tenant_step_quota() == 50

    def test_overrides_win(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_MAX_CONCURRENT", "8")
        monkeypatch.setenv("REPRO_SERVICE_STEP_QUANTUM", "3")
        assert knobs.service_max_concurrent(2) == 2
        assert knobs.service_step_quantum(5) == 5
        assert knobs.tenant_step_quota(9) == 9
        assert knobs.tenant_step_quota(None) is None

    @pytest.mark.parametrize("raw", ["0", "none", "unlimited", "NONE", ""])
    def test_quota_unlimited_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TENANT_QUOTA", raw)
        assert knobs.tenant_step_quota() is None

    @pytest.mark.parametrize(
        "name,func,fallback",
        [
            ("REPRO_SERVICE_MAX_CONCURRENT", "service_max_concurrent", 4),
            ("REPRO_SERVICE_STEP_QUANTUM", "service_step_quantum", 1),
        ],
    )
    def test_junk_warns_and_falls_back(
        self, monkeypatch, name, func, fallback
    ):
        monkeypatch.setenv(name, "lots")
        knobs._WARNED.clear()
        with pytest.warns(RuntimeWarning, match=name):
            assert getattr(knobs, func)() == fallback

    def test_quota_junk_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_TENANT_QUOTA", "infinite")
        knobs._WARNED.clear()
        with pytest.warns(RuntimeWarning, match="REPRO_TENANT_QUOTA"):
            assert knobs.tenant_step_quota() is None

    def test_junk_warns_once_per_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_STEP_QUANTUM", "-2")
        knobs._WARNED.clear()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            knobs.service_step_quantum()
            knobs.service_step_quantum()
        assert len(caught) == 1

    def test_valid_values_memoized(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_MAX_CONCURRENT", "6")
        knobs._INT_CACHE.clear()
        assert knobs.service_max_concurrent() == 6
        assert ("REPRO_SERVICE_MAX_CONCURRENT", "6") in knobs._INT_CACHE
        # Junk is never cached: it keeps flowing through warn-once.
        monkeypatch.setenv("REPRO_SERVICE_MAX_CONCURRENT", "junk")
        knobs._WARNED.clear()
        with pytest.warns(RuntimeWarning):
            knobs.service_max_concurrent()
        assert (
            "REPRO_SERVICE_MAX_CONCURRENT",
            "junk",
        ) not in knobs._INT_CACHE


class TestCachePlaneDir:
    def test_unset_disables(self):
        assert knobs.cache_plane_dir() is None

    @pytest.mark.parametrize("raw", ["", "  ", "0", "off", "false", "no"])
    def test_empty_and_false_spellings_disable(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_CACHE_PLANE", raw)
        assert knobs.cache_plane_dir() is None

    def test_directory_is_created_and_returned(self, monkeypatch, tmp_path):
        target = tmp_path / "plane" / "nested"
        monkeypatch.setenv("REPRO_CACHE_PLANE", str(target))
        assert knobs.cache_plane_dir() == str(target)
        assert target.is_dir()

    def test_existing_file_warns_and_disables(self, monkeypatch, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        monkeypatch.setenv("REPRO_CACHE_PLANE", str(blocker))
        knobs._WARNED.clear()
        with pytest.warns(RuntimeWarning, match="REPRO_CACHE_PLANE"):
            assert knobs.cache_plane_dir() is None

    def test_uncreatable_path_warns_and_disables(self, monkeypatch, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("occupied")
        monkeypatch.setenv("REPRO_CACHE_PLANE", str(blocker / "child"))
        knobs._WARNED.clear()
        with pytest.warns(RuntimeWarning, match="REPRO_CACHE_PLANE"):
            assert knobs.cache_plane_dir() is None
