"""Tests for the telemetry subsystem: events, sinks, tracer, reports."""

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dse.constraints import Constraint, Sense
from repro.core.dse.explainable import ExplainableDSE
from repro.cost.evaluator import CostEvaluator
from repro.mapping.mapper import TopNMapper
from repro.perf.mapping_cache import MappingCache
from repro.telemetry import (
    BottleneckIdentified,
    BudgetExhausted,
    CandidateEvaluated,
    CandidateGenerated,
    IncumbentUpdated,
    JsonlSink,
    MitigationPredicted,
    NullSink,
    RingBufferSink,
    RunSummary,
    StepStarted,
    TraceEventError,
    Tracer,
    decode_event,
    deterministic_perf_counters,
    encode_event,
    read_journal,
    render_json,
    render_markdown,
)

# -- hypothesis strategies over the event model -------------------------------

_step = st.integers(min_value=0, max_value=10**6)
_index = st.integers(min_value=-1, max_value=10**4)
_floats = st.floats(allow_nan=False)
_name = st.text(min_size=1, max_size=12)
_scalar = st.one_of(
    st.integers(-(10**9), 10**9), _floats, st.booleans(), st.text(max_size=8)
)
_point = st.dictionaries(_name, _scalar, max_size=5)
_costs = st.dictionaries(_name, _floats, max_size=5)

EVENTS = st.one_of(
    st.builds(
        StepStarted,
        step=_step,
        incumbent=_point,
        objective=_floats,
        feasible=st.booleans(),
        candidate_index=_index,
    ),
    st.builds(
        BottleneckIdentified,
        step=_step,
        critical_cost=_name,
        kind=st.sampled_from(("objective", "constraint", "incompatibility")),
        model=_name,
        dominant=st.lists(
            st.fixed_dictionaries(
                {"name": _name, "share": st.floats(0, 1)}
            ),
            max_size=3,
        ),
        detail=st.text(max_size=40),
        scaling=st.none() | _floats,
        candidate_index=_index,
    ),
    st.builds(
        MitigationPredicted,
        step=_step,
        parameter=_name,
        value=_floats,
        subfunctions=st.lists(_name, max_size=3),
        candidate_index=_index,
    ),
    st.builds(
        CandidateGenerated,
        step=_step,
        candidate_index=_index,
        parameter=_name,
        value=_scalar,
        reason=st.text(max_size=30),
    ),
    st.builds(
        CandidateEvaluated,
        step=_step,
        candidate_index=_index,
        point=_point,
        costs=_costs,
        feasible=st.booleans(),
        mappable=st.booleans(),
        note=st.text(max_size=20),
    ),
    st.builds(
        IncumbentUpdated,
        step=_step,
        point=_point,
        objective=_floats,
        decision=st.text(max_size=30),
        improved=st.booleans(),
        candidate_index=_index,
    ),
    st.builds(
        BudgetExhausted,
        step=_step,
        consumed=_step,
        budget=_step,
        candidate_index=_index,
    ),
    st.builds(
        RunSummary,
        step=_step,
        technique=_name,
        model=_name,
        evaluations=_step,
        best_objective=_floats,
        found_feasible=st.booleans(),
        counters=st.dictionaries(_name, st.integers(0, 100), max_size=3),
        candidate_index=_index,
    ),
)


class TestEventCodec:
    @given(event=EVENTS)
    @settings(max_examples=200, deadline=None)
    def test_jsonl_roundtrip(self, event):
        """event == decode(json-line(encode(event))) for any event."""
        line = json.dumps(encode_event(event))
        assert decode_event(json.loads(line)) == event

    def test_nonfinite_floats_roundtrip(self):
        event = CandidateEvaluated(
            step=1,
            candidate_index=0,
            point={"pes": 64},
            costs={"latency_ms": math.inf, "energy_mj": -math.inf},
            feasible=False,
            mappable=False,
        )
        back = decode_event(json.loads(json.dumps(encode_event(event))))
        assert back == event
        assert back.costs["latency_ms"] == math.inf

    def test_nan_roundtrip(self):
        event = IncumbentUpdated(
            step=2,
            point={},
            objective=math.nan,
            decision="x",
            improved=False,
        )
        back = decode_event(json.loads(json.dumps(encode_event(event))))
        assert math.isnan(back.objective)

    def test_rejects_wrong_schema(self):
        record = encode_event(BudgetExhausted(step=1, consumed=5, budget=5))
        record["schema"] = 999
        with pytest.raises(TraceEventError):
            decode_event(record)

    def test_rejects_unknown_kind(self):
        with pytest.raises(TraceEventError):
            decode_event({"schema": 1, "kind": "Nope", "data": {}})

    def test_rejects_missing_fields(self):
        with pytest.raises(TraceEventError):
            decode_event(
                {"schema": 1, "kind": "StepStarted", "data": {"step": 1}}
            )

    def test_rejects_non_event(self):
        with pytest.raises(TraceEventError):
            encode_event({"step": 1})


class TestSinks:
    def test_ring_buffer_canonical_order(self):
        sink = RingBufferSink()
        trailing = IncumbentUpdated(
            step=1, point={}, objective=1.0, decision="kept", improved=False
        )
        late_candidate = CandidateEvaluated(
            step=1, candidate_index=2, point={}, costs={}, feasible=True,
            mappable=True,
        )
        early_candidate = CandidateEvaluated(
            step=1, candidate_index=0, point={}, costs={}, feasible=True,
            mappable=True,
        )
        # recorded in a "parallel completion" order
        sink.record(1, trailing)
        sink.record(2, late_candidate)
        sink.record(3, early_candidate)
        assert sink.events() == [early_candidate, late_candidate, trailing]

    def test_ring_buffer_capacity(self):
        sink = RingBufferSink(capacity=3)
        for step in range(10):
            sink.record(step, BudgetExhausted(step=step, consumed=0, budget=0))
        assert len(sink) == 3
        assert [e.step for e in sink.events()] == [7, 8, 9]

    def test_jsonl_sink_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        events = [
            StepStarted(step=1, incumbent={"pes": 64}, objective=math.inf,
                        feasible=False),
            CandidateEvaluated(step=1, candidate_index=0, point={"pes": 128},
                               costs={"latency_ms": 2.5}, feasible=True,
                               mappable=True),
            IncumbentUpdated(step=1, point={"pes": 128}, objective=2.5,
                             decision="improved", improved=True),
        ]
        sink = JsonlSink(path)
        for seq, event in enumerate(events):
            sink.record(seq, event)
        sink.flush(checkpoint=True)
        assert read_journal(path) == events
        assert sink.events_written == len(events)

    def test_jsonl_sink_sorts_at_flush(self, tmp_path):
        path = tmp_path / "j.jsonl"
        sink = JsonlSink(path)
        b = CandidateEvaluated(step=1, candidate_index=1, point={}, costs={},
                               feasible=True, mappable=True)
        a = CandidateEvaluated(step=1, candidate_index=0, point={}, costs={},
                               feasible=True, mappable=True)
        sink.record(1, b)
        sink.record(2, a)
        sink.close()
        assert read_journal(path) == [a, b]

    def test_jsonl_resume_truncates(self, tmp_path):
        path = tmp_path / "j.jsonl"
        sink = JsonlSink(path)
        for step in range(5):
            sink.record(step, BudgetExhausted(step=step, consumed=0, budget=0))
        sink.close()
        resumed = JsonlSink(path, resume_events=3)
        assert resumed.events_written == 3
        assert [e.step for e in read_journal(path)] == [0, 1, 2]

    def test_jsonl_resume_missing_file(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(tmp_path / "missing.jsonl", resume_events=2)

    def test_jsonl_resume_short_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        sink = JsonlSink(path)
        sink.record(1, BudgetExhausted(step=1, consumed=0, budget=0))
        sink.close()
        with pytest.raises(ValueError):
            JsonlSink(path, resume_events=5)

    def test_read_journal_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TraceEventError):
            read_journal(path)


class TestTracer:
    def test_null_tracer_disabled(self):
        tracer = Tracer()
        tracer.emit(BudgetExhausted(step=1, consumed=0, budget=0))
        assert not tracer.enabled
        assert tracer.events_emitted == 0

    def test_null_sink_keeps_tracer_disabled(self):
        tracer = Tracer(NullSink())
        tracer.emit(BudgetExhausted(step=1, consumed=0, budget=0))
        assert not tracer.enabled
        assert tracer.events_emitted == 0

    def test_span_records_timings_only_when_enabled(self):
        disabled = Tracer()
        with disabled.span("work"):
            pass
        assert "work" not in disabled.timings.as_dict()
        enabled = Tracer(RingBufferSink())
        with enabled.span("work"):
            pass
        assert enabled.timings.as_dict()["work"]["calls"] == 1

    def test_seq_start_offsets_ordering(self):
        tracer = Tracer(RingBufferSink(), seq_start=10)
        tracer.emit(BudgetExhausted(step=1, consumed=0, budget=0))
        assert tracer.events_emitted == 11


class TestDeterministicCounters:
    def test_drops_volatile_keys(self):
        summary = {
            "evaluations": 4,
            "total_seconds": 1.5,
            "evaluations_per_second": 2.7,
            "jobs": 8,
            "executor": "thread",
            "stages": {"mapping": {}},
            "mapping_cache": {"hits": 3, "seconds_saved": 0.2},
        }
        counters = deterministic_perf_counters(summary)
        assert counters == {
            "evaluations": 4,
            "mapping_cache": {"hits": 3},
        }


# -- end-to-end determinism over a real campaign ------------------------------


def _constraints():
    return [
        Constraint("area", "area_mm2", 75.0),
        Constraint("power", "power_w", 4.0),
        Constraint("throughput", "throughput", 200.0, Sense.GEQ),
    ]


def _make_evaluator(workload, **kwargs):
    # A private MappingCache per evaluator: the process-wide shared cache
    # would couple the compared runs.
    return CostEvaluator(
        workload,
        TopNMapper(top_n=60),
        mapping_cache=MappingCache(),
        **kwargs,
    )


def _result_fingerprint(result):
    return (
        [t.point for t in result.trials],
        [t.costs for t in result.trials],
        result.explanations,
        result.best.point if result.best else None,
        result.evaluations,
    )


class TestCampaignDeterminism:
    def test_null_sink_run_bit_identical_to_untraced(
        self, edge_space, tiny_workload
    ):
        untraced = ExplainableDSE(
            edge_space, _make_evaluator(tiny_workload), _constraints(),
            max_evaluations=15,
        ).run()
        null_traced = ExplainableDSE(
            edge_space, _make_evaluator(tiny_workload), _constraints(),
            max_evaluations=15,
        ).run(tracer=Tracer(NullSink()))
        assert _result_fingerprint(untraced) == _result_fingerprint(
            null_traced
        )

    def test_ring_traced_run_bit_identical_to_untraced(
        self, edge_space, tiny_workload
    ):
        untraced = ExplainableDSE(
            edge_space, _make_evaluator(tiny_workload), _constraints(),
            max_evaluations=15,
        ).run()
        tracer = Tracer(RingBufferSink())
        traced = ExplainableDSE(
            edge_space, _make_evaluator(tiny_workload), _constraints(),
            max_evaluations=15,
        ).run(tracer=tracer)
        assert _result_fingerprint(untraced) == _result_fingerprint(traced)
        assert tracer.events_emitted > 0

    def _journal_bytes(self, tmp_path, name, tiny_workload, edge_space,
                       jobs, executor):
        journal = tmp_path / f"{name}.jsonl"
        evaluator = _make_evaluator(
            tiny_workload, jobs=jobs, executor_mode=executor
        )
        tracer = Tracer(JsonlSink(journal))
        try:
            ExplainableDSE(
                edge_space, evaluator, _constraints(), max_evaluations=15
            ).run(tracer=tracer)
        finally:
            tracer.close()
            evaluator.close()
        return journal.read_bytes()

    def test_parallel_journal_byte_identical_to_serial(
        self, tmp_path, edge_space, tiny_workload
    ):
        """REPRO_JOBS>1 must not change the journal (satellite 1)."""
        serial = self._journal_bytes(
            tmp_path, "serial", tiny_workload, edge_space, 1, None
        )
        parallel = self._journal_bytes(
            tmp_path, "parallel", tiny_workload, edge_space, 2, "thread"
        )
        assert serial == parallel

    def test_run_summary_carries_perf_counters(
        self, tmp_path, edge_space, tiny_workload
    ):
        """perf_summary() counters reach the journal (satellite 2)."""
        journal = tmp_path / "run.jsonl"
        evaluator = _make_evaluator(tiny_workload)
        tracer = Tracer(JsonlSink(journal))
        ExplainableDSE(
            edge_space, evaluator, _constraints(), max_evaluations=10
        ).run(tracer=tracer)
        tracer.close()
        summaries = [
            e for e in read_journal(journal) if isinstance(e, RunSummary)
        ]
        assert len(summaries) == 1
        counters = summaries[0].counters
        assert counters["evaluations"] == summaries[0].evaluations > 0
        assert "mapping_cache" in counters
        assert "batch_eval" in counters
        # no wall-clock or worker-pool config in the journal
        flat = json.dumps(counters)
        assert "second" not in flat
        assert "jobs" not in counters and "executor" not in counters


class TestReport:
    @pytest.fixture()
    def journal_events(self, edge_space, tiny_workload):
        # A throughput requirement the minimum point misses, so step 1 is
        # a scaling-bearing bottleneck analysis (paper Fig. 7 shape).
        constraints = [
            Constraint("area", "area_mm2", 75.0),
            Constraint("power", "power_w", 4.0),
            Constraint("throughput", "throughput", 5000.0, Sense.GEQ),
        ]
        tracer = Tracer(RingBufferSink(capacity=100000))
        ExplainableDSE(
            edge_space, _make_evaluator(tiny_workload), constraints,
            max_evaluations=15,
        ).run(tracer=tracer)
        return tracer.events()

    def test_markdown_names_bottleneck_scaling_prediction(
        self, journal_events
    ):
        text = render_markdown(journal_events)
        assert "dominated by" in text
        assert "scaling s=" in text
        assert "proposed" in text
        assert "## Step 1" in text

    def test_json_report_structure(self, journal_events):
        data = render_json(journal_events)
        steps = [s for s in data["steps"] if s["step"] >= 1]
        assert steps
        first = steps[0]
        assert first["critical_cost"]
        assert first["predictions"]
        assert "narrative" in first
        assert data["summary"]["technique"] == "explainable"
