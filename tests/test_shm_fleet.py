"""Tests for the persistent shared-memory sharded evaluation fleet.

The contract under test mirrors the fused path's: with ``REPRO_SHM_EVAL``
on, campaign results are *bit-identical* to the single-process fused
path (which is itself bit-identical to the scalar per-layer loop) — the
fleet can change wall-clock time, never results.  On top of that this
file covers the supervision ladder (injected worker crashes and real
SIGKILLs resolve through resubmission to siblings and, once the retry
budget drains, an in-parent serial fallback), adaptive shard sizing,
warm-worker reuse, and — via a subprocess — shared-memory teardown
hygiene: no resource-tracker leak warnings at interpreter shutdown even
after a worker was SIGKILLed while holding live segment attachments.
"""

import itertools
import os
import subprocess
import sys
import textwrap
from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.cost.evaluator import CostEvaluator
from repro.cost.fused import (
    FusedBlockEvaluation,
    ShardedBlockEvaluation,
    search_layers_fused,
)
from repro.mapping.batch_candidates import CandidateBatch, FusedCandidateBlock
from repro.mapping.mapper import TopNMapper
from repro.perf.shm_fleet import (
    _IN_FIELDS,
    _OUT_FIELDS,
    FleetStats,
    ShmFleet,
    _check_header,
    _create_segment,
    _destroy_segment,
    _field_views,
    _layout,
)

from tests.test_batch_eval import (
    assert_outcomes_identical,
    assert_results_identical,
)
from tests.test_fused_eval import _layers_strategy, _uniquify

_SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
    monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)


@pytest.fixture(scope="module")
def fleet():
    """One warm fleet shared by the non-chaos tests in this module."""
    instance = ShmFleet()
    yield instance
    instance.shutdown()


@contextmanager
def _env(**values):
    """Set environment variables for the duration of a block (hypothesis
    tests cannot use the function-scoped ``monkeypatch`` fixture)."""
    saved = {name: os.environ.get(name) for name in values}
    os.environ.update(values)
    try:
        yield
    finally:
        for name, old in saved.items():
            if old is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = old


def _block_for(layers, config, top_n=40):
    """The same SoA block ``search_layers_fused`` would build."""
    mapper = TopNMapper(top_n=top_n)
    batches = []
    for layer in layers:
        candidates, budget = mapper.candidate_plan(layer, config)
        batches.append(
            CandidateBatch.from_specs(itertools.islice(candidates, budget))
        )
    return FusedCandidateBlock.from_layer_batches(list(layers), batches)


def _assert_same_decisions(block, config, sharded):
    """The sharded decision arrays are bitwise equal to the inline fused
    evaluation's, including per-row infeasibility diagnostics."""
    inline = FusedBlockEvaluation(block, config)
    assert isinstance(sharded, ShardedBlockEvaluation)
    for name in ("latency", "fail_code", "feasible"):
        ours, theirs = getattr(sharded, name), getattr(inline, name)
        assert ours.dtype == theirs.dtype
        assert np.array_equal(ours, theirs)
    for row in range(len(block)):
        if not bool(inline.feasible[row]):
            assert_outcomes_identical(
                inline.infeasibility(row), sharded.infeasibility(row)
            )


# -- segment framing -----------------------------------------------------------


class TestSegmentFraming:
    @pytest.mark.parametrize("fields", [_IN_FIELDS, _OUT_FIELDS])
    @pytest.mark.parametrize("n", [1, 7, 1024])
    def test_layout_is_aligned_and_sized(self, fields, n):
        table, total = _layout(fields, n)
        assert set(table) == {name for name, _dtype, _cols in fields}
        for name, (offset, dtype, ncols) in table.items():
            assert offset % 8 == 0
            assert offset + np.dtype(dtype).itemsize * n * ncols <= total

    def test_layout_deterministic_in_row_count(self):
        assert _layout(_IN_FIELDS, 64) == _layout(_IN_FIELDS, 64)

    def test_header_roundtrip_and_mismatch(self):
        shm = _create_segment(_OUT_FIELDS, 16)
        try:
            _check_header(shm.buf, 16)
            with pytest.raises(RuntimeError, match="header mismatch"):
                _check_header(shm.buf, 17)
        finally:
            _destroy_segment(shm)

    def test_field_views_roundtrip(self):
        n = 9
        shm = _create_segment(_IN_FIELDS, n)
        try:

            def _write():
                views = _field_views(shm.buf, _IN_FIELDS, n)
                for i, (name, _dtype, _cols) in enumerate(_IN_FIELDS):
                    views[name][:] = i % 2

            def _read():
                views = _field_views(shm.buf, _IN_FIELDS, n)
                for i, (name, _dtype, _cols) in enumerate(_IN_FIELDS):
                    assert np.all(views[name] == i % 2)

            _write()
            _read()
        finally:
            _destroy_segment(shm)

    def test_destroy_is_idempotent(self):
        shm = _create_segment(_OUT_FIELDS, 4)
        _destroy_segment(shm)
        _destroy_segment(shm)  # second destroy must not raise


# -- bit-identity --------------------------------------------------------------


class TestShardedEquivalence:
    def test_decision_arrays_bitwise_identical(
        self, fleet, resnet18, mid_config
    ):
        block = _block_for(resnet18.layers[:4], mid_config, top_n=60)
        stats = FleetStats()
        sharded = fleet.evaluate_block(
            block, mid_config, shards=4, min_rows=1, stats=stats
        )
        assert sharded is not None
        assert stats.blocks_sharded == 1
        assert stats.shards_dispatched >= 4
        assert stats.shm_bytes > 0
        _assert_same_decisions(block, mid_config, sharded)

    def test_winner_rows_match_inline_fused(self, fleet, resnet18, mid_config):
        layers = list(resnet18.layers[:3])
        block = _block_for(layers, mid_config)
        sharded = fleet.evaluate_block(block, mid_config, shards=3, min_rows=1)
        inline = FusedBlockEvaluation(block, mid_config)
        for index, _layer in enumerate(layers):
            expected = inline.layer_result(index)
            actual = sharded.layer_result(index)
            assert_results_identical(expected, actual)

    @given(layers=_layers_strategy, k=st.integers(min_value=1, max_value=8))
    @settings(max_examples=12, deadline=None)
    def test_sharded_fused_scalar_identical(
        self, layers, k, fleet, mid_config
    ):
        """The tentpole property: sharded-fused == single-process-fused ==
        scalar reference across random workloads and shard counts 1..8."""
        layers = _uniquify(layers)
        seen = []

        def sharder(block, config):
            result = fleet.evaluate_block(
                block, config, shards=k, min_rows=1
            )
            seen.append(result)
            return result

        fused, remaining = search_layers_fused(
            TopNMapper(top_n=40), layers, mid_config, sharder=sharder
        )
        assert remaining == []
        assert len(seen) == 1
        if k == 1:  # adaptive sizing declines, search falls back inline
            assert seen[0] is None
        else:
            assert isinstance(seen[0], ShardedBlockEvaluation)
        reference = TopNMapper(top_n=40)
        for layer, result in fused:
            expected, _trace = reference.search_with_trace(layer, mid_config)
            assert_results_identical(expected, result)

    @given(layers=_layers_strategy)
    @settings(max_examples=5, deadline=None)
    def test_crash_mid_shard_results_identical(self, layers, mid_config):
        """A worker crashing mid-shard (injected, every attempt) drains
        the retry ledger into the serial fallback without changing a
        single decision array bit."""
        layers = _uniquify(layers)
        block = _block_for(layers, mid_config)
        with _env(
            REPRO_FAULT_INJECT="crash:shm:1.0:match=shard-0-",
            REPRO_RETRY_BACKOFF="0.001",
        ):
            chaos_fleet = ShmFleet()
            try:
                stats = FleetStats()
                sharded = chaos_fleet.evaluate_block(
                    block, mid_config, shards=2, min_rows=1, stats=stats
                )
            finally:
                chaos_fleet.shutdown()
        assert sharded is not None
        assert stats.shard_fallbacks == 1
        assert stats.shard_resubmissions >= 1
        assert stats.worker_crashes >= 1
        _assert_same_decisions(block, mid_config, sharded)


# -- supervision ladder --------------------------------------------------------


class TestSupervision:
    def _chaos_block(self, resnet18, mid_config):
        return _block_for(resnet18.layers[:3], mid_config)

    def test_crash_ladder_counts(self, resnet18, mid_config, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT", "crash:shm:1.0:match=shard-0-"
        )
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.001")
        monkeypatch.setenv("REPRO_MAX_RETRIES", "3")
        block = self._chaos_block(resnet18, mid_config)
        chaos_fleet = ShmFleet()
        try:
            stats = FleetStats()
            sharded = chaos_fleet.evaluate_block(
                block, mid_config, shards=3, min_rows=1, stats=stats
            )
        finally:
            chaos_fleet.shutdown()
        # rate=1.0 fires on every attempt: 3 resubmissions burn the retry
        # budget, the 4th failure goes to the in-parent serial fallback.
        assert stats.shard_resubmissions == 3
        assert stats.shard_fallbacks == 1
        assert stats.worker_crashes == 4
        _assert_same_decisions(block, mid_config, sharded)

    def test_sigkill_ladder_resubmits_to_siblings(
        self, resnet18, mid_config, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "kill:shm:1.0:match=shard-0-")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.001")
        block = self._chaos_block(resnet18, mid_config)
        chaos_fleet = ShmFleet()
        try:
            stats = FleetStats()
            sharded = chaos_fleet.evaluate_block(
                block, mid_config, shards=3, min_rows=1, stats=stats
            )
        finally:
            chaos_fleet.shutdown()
        # Real SIGKILLs: the victim worker dies holding live segment
        # attachments; siblings pick up the resubmissions and the other
        # shards' results are untouched.
        assert stats.worker_crashes >= 1
        assert stats.shard_resubmissions == 3
        assert stats.shard_fallbacks == 1
        _assert_same_decisions(block, mid_config, sharded)

    def test_unhealthy_fleet_declines_with_warning(
        self, resnet18, mid_config, monkeypatch
    ):
        block = self._chaos_block(resnet18, mid_config)
        broken = ShmFleet()
        monkeypatch.setattr(
            broken, "_evaluate_sharded", lambda *a, **k: (_ for _ in ()).throw(
                RuntimeError("segment trouble")
            )
        )
        stats = FleetStats()
        with pytest.warns(RuntimeWarning, match="sharded evaluation failed"):
            result = broken.evaluate_block(
                block, mid_config, shards=2, min_rows=1, stats=stats
            )
        assert result is None
        assert stats.block_fallbacks == 1
        broken.shutdown()


# -- adaptive sizing and warmth ------------------------------------------------


class TestFleetLifecycle:
    def test_small_block_stays_inline(self, fleet, resnet18, mid_config):
        block = _block_for(resnet18.layers[:1], mid_config, top_n=10)
        stats = FleetStats()
        assert (
            fleet.evaluate_block(
                block, mid_config, shards=4, min_rows=10**6, stats=stats
            )
            is None
        )
        assert stats.blocks_inline == 1
        assert stats.shards_dispatched == 0

    def test_single_shard_declines(self, fleet, resnet18, mid_config):
        block = _block_for(resnet18.layers[:1], mid_config, top_n=10)
        stats = FleetStats()
        assert (
            fleet.evaluate_block(
                block, mid_config, shards=1, min_rows=1, stats=stats
            )
            is None
        )
        assert stats.blocks_inline == 1

    def test_warm_workers_reused_across_blocks(self, resnet18, mid_config):
        warm_fleet = ShmFleet()
        try:
            block = _block_for(resnet18.layers[:2], mid_config)
            stats = FleetStats()
            warm_fleet.evaluate_block(
                block, mid_config, shards=2, min_rows=1, stats=stats
            )
            first_round_warm = stats.warm_hits
            spawned = stats.cold_spawns
            warm_fleet.evaluate_block(
                block, mid_config, shards=2, min_rows=1, stats=stats
            )
            assert stats.warm_hits > first_round_warm
            assert stats.cold_spawns == spawned  # nobody respawned
        finally:
            warm_fleet.shutdown()

    def test_ensure_prunes_and_respawns(self):
        instance = ShmFleet()
        try:
            stats = FleetStats()
            assert instance.ensure(2, stats) == 2
            victim = instance._workers[0]
            victim.process.kill()
            victim.process.join(timeout=5.0)
            assert instance.ensure(2, stats) == 2
            assert stats.cold_spawns == 3
        finally:
            instance.shutdown()
        assert len(instance) == 0

    def test_shutdown_is_idempotent(self):
        instance = ShmFleet()
        instance.ensure(1)
        instance.shutdown()
        instance.shutdown()
        assert len(instance) == 0


# -- teardown hygiene ----------------------------------------------------------


class TestTeardownHygiene:
    def test_no_resource_tracker_leaks_after_killed_worker(self):
        """End-to-end in a subprocess: a clean block, then a block whose
        shard-0 worker is SIGKILLed on every attempt while holding live
        segment attachments.  Interpreter shutdown must print no
        resource-tracker leak warnings and no tracker KeyError noise."""
        script = textwrap.dedent(
            """
            import itertools, os
            os.environ["REPRO_RETRY_BACKOFF"] = "0.001"

            from repro.arch import build_edge_design_space, config_from_point
            from repro.mapping.batch_candidates import (
                CandidateBatch, FusedCandidateBlock,
            )
            from repro.mapping.mapper import TopNMapper
            from repro.perf.shm_fleet import ShmFleet
            from repro.workloads import conv2d

            point = build_edge_design_space().minimum_point()
            point.update(pes=1024, l1_bytes=256, l2_kb=512)
            config = config_from_point(point)
            layer = conv2d("c", 16, 32, (14, 14))
            mapper = TopNMapper(top_n=60)
            candidates, budget = mapper.candidate_plan(layer, config)
            batch = CandidateBatch.from_specs(
                itertools.islice(candidates, budget)
            )
            block = FusedCandidateBlock.from_layer_batches([layer], [batch])

            fleet = ShmFleet()
            # Warm the fleet before any segment exists: forked workers
            # must still share the parent's resource tracker.
            fleet.ensure(2)
            clean = fleet.evaluate_block(block, config, shards=2, min_rows=1)
            assert clean is not None

            os.environ["REPRO_FAULT_INJECT"] = "kill:shm:1.0:match=shard-0-"
            chaos_fleet = ShmFleet()
            chaotic = chaos_fleet.evaluate_block(
                block, config, shards=2, min_rows=1
            )
            assert chaotic is not None
            import numpy as np
            assert np.array_equal(clean.latency, chaotic.latency)
            assert np.array_equal(clean.fail_code, chaotic.fail_code)
            assert np.array_equal(clean.feasible, chaotic.feasible)
            chaos_fleet.shutdown()
            fleet.shutdown()
            print("HYGIENE-OK")
            """
        )
        env = dict(os.environ)
        env.pop("REPRO_FAULT_INJECT", None)
        env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "HYGIENE-OK" in proc.stdout
        lowered = proc.stderr.lower()
        assert "resource_tracker" not in lowered, proc.stderr
        assert "leaked" not in lowered, proc.stderr


# -- evaluator integration -----------------------------------------------------


class TestEvaluatorIntegration:
    def _evaluate(self, workload, point, **kwargs):
        evaluator = CostEvaluator(
            workload, TopNMapper(top_n=50), use_mapping_cache=False, **kwargs
        )
        try:
            return evaluator.evaluate(point), evaluator
        finally:
            evaluator.close()

    def test_shm_results_identical_to_fused_and_reference(
        self, resnet18, mid_point
    ):
        private = ShmFleet()
        try:
            reference, _ = self._evaluate(resnet18, mid_point)
            fused, _ = self._evaluate(resnet18, mid_point, fused_eval=True)
            shm, evaluator = self._evaluate(
                resnet18,
                mid_point,
                shm_eval=True,
                fused_shards=2,
                shm_min_rows=1,
                shm_fleet=private,
            )
        finally:
            private.shutdown()
        assert reference.costs == fused.costs == shm.costs
        assert reference.mappable == shm.mappable
        for name in reference.layer_results:
            assert_results_identical(
                reference.layer_results[name], shm.layer_results[name]
            )
        section = evaluator.perf_summary()["shm_fleet"]
        assert section["enabled"] is True
        assert section["shards"] == 2
        assert section["min_shard_rows"] == 1
        assert section["blocks_sharded"] == 1
        assert section["shards_dispatched"] >= 2
        assert section["shm_bytes"] > 0

    def test_shm_implies_fused_path(self, resnet18, mid_point):
        """``shm_eval`` alone routes through the fused path (the fleet
        shards fused blocks; there is nothing else to shard)."""
        private = ShmFleet()
        try:
            result, evaluator = self._evaluate(
                resnet18,
                mid_point,
                shm_eval=True,
                fused_shards=2,
                shm_min_rows=1,
                shm_fleet=private,
            )
        finally:
            private.shutdown()
        assert evaluator.batch_eval_stats.fused_blocks == 1
        reference, _ = self._evaluate(resnet18, mid_point)
        assert result.costs == reference.costs

    def test_summary_has_no_shm_section_when_off(self, resnet18, mid_point):
        _, evaluator = self._evaluate(resnet18, mid_point, fused_eval=True)
        assert "shm_fleet" not in evaluator.perf_summary()

    def test_reset_counters_clears_fleet_stats(self, resnet18, mid_point):
        private = ShmFleet()
        try:
            _, evaluator = self._evaluate(
                resnet18,
                mid_point,
                shm_eval=True,
                fused_shards=2,
                shm_min_rows=1,
                shm_fleet=private,
            )
        finally:
            private.shutdown()
        assert evaluator.perf_summary()["shm_fleet"]["blocks_sharded"] == 1
        evaluator.reset_counters()
        section = evaluator.perf_summary()["shm_fleet"]
        assert section["blocks_sharded"] == 0
        assert section["shards_dispatched"] == 0

    def test_deterministic_counters_drop_shm_wall_clock(
        self, resnet18, mid_point
    ):
        from repro.telemetry.events import deterministic_perf_counters

        private = ShmFleet()
        try:
            _, evaluator = self._evaluate(
                resnet18,
                mid_point,
                shm_eval=True,
                fused_shards=2,
                shm_min_rows=1,
                shm_fleet=private,
            )
        finally:
            private.shutdown()
        counters = deterministic_perf_counters(evaluator.perf_summary())
        section = counters["shm_fleet"]
        assert "shm_seconds" not in section
        assert section["blocks_sharded"] == 1
