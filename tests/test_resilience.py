"""Tests for the resilience layer (repro.resilience).

Covers the fault taxonomy, the deterministic fault-injection harness,
worker supervision (retry / timeout / SIGKILL / serial fallback),
self-healing cache persistence, DSE candidate quarantine, and the
campaign circuit breaker.
"""

import os
import pickle
import signal
import time
import warnings

import pytest

from repro.core.dse.constraints import Constraint, Sense
from repro.core.dse.explainable import ExplainableDSE
from repro.cost.evaluator import CostEvaluator
from repro.mapping.mapper import TopNMapper
from repro.perf.mapping_cache import PERSIST_VERSION, MappingCache
from repro.perf.parallel import WorkerPool, resolve_jobs
from repro.resilience import (
    CacheCorruptionError,
    EvaluationError,
    FailureRateBreaker,
    FaultSpecError,
    InjectedCrash,
    MapperFailureError,
    ReproError,
    RetryPolicy,
    SystemicFaultError,
    WorkerCrashError,
    WorkerTimeoutError,
    as_repro_error,
    attempt_scope,
    current_attempt,
    inject,
    is_retryable,
    parse_fault_plan,
    resolve_task_timeout,
)
from repro.resilience.fault_injection import FaultSpec
from repro.telemetry import (
    CandidateFailed,
    JsonlSink,
    Tracer,
    default_checkpoint_path,
    load_checkpoint,
    read_journal,
    verify_against_journal,
)


@pytest.fixture(autouse=True)
def _clean_resilience_env(monkeypatch):
    """Resilience env knobs never leak between tests."""
    for name in (
        "REPRO_FAULT_INJECT",
        "REPRO_TASK_TIMEOUT",
        "REPRO_MAX_RETRIES",
        "REPRO_RETRY_BACKOFF",
        "REPRO_MAX_FAILURE_RATE",
    ):
        monkeypatch.delenv(name, raising=False)
    yield


def _constraints():
    return [
        Constraint("area", "area_mm2", 75.0),
        Constraint("power", "power_w", 4.0),
        Constraint("throughput", "throughput", 200.0, Sense.GEQ),
    ]


def _make_evaluator(workload, cls=CostEvaluator, **kwargs):
    return cls(
        workload,
        TopNMapper(top_n=60),
        mapping_cache=MappingCache(),
        **kwargs,
    )


# -- error taxonomy -----------------------------------------------------------


class TestTaxonomy:
    def test_retryable_defaults(self):
        assert WorkerCrashError("x").retryable
        assert WorkerTimeoutError("x").retryable
        assert not MapperFailureError("x").retryable
        assert not EvaluationError("x").retryable
        assert not CacheCorruptionError("x").retryable
        assert not SystemicFaultError("x").retryable

    def test_explicit_flag_overrides_default(self):
        assert not WorkerCrashError("x", retryable=False).retryable
        assert EvaluationError("x", retryable=True).retryable

    def test_str_renders_sorted_context(self):
        error = MapperFailureError("search failed", layer="conv1", zz=1)
        assert str(error) == "search failed [layer='conv1', zz=1]"
        assert str(MapperFailureError("bare")) == "bare"

    def test_none_context_values_dropped(self):
        error = EvaluationError("x", layer=None, attempts=2)
        assert error.context == {"attempts": 2}

    def test_pickle_roundtrip_preserves_everything(self):
        error = WorkerTimeoutError(
            "task hung", retryable=False, task_index=3, attempts=4
        )
        clone = pickle.loads(pickle.dumps(error))
        assert type(clone) is WorkerTimeoutError
        assert clone.message == "task hung"
        assert clone.retryable is False
        assert clone.context == {"task_index": 3, "attempts": 4}

    def test_with_context_does_not_overwrite(self):
        error = EvaluationError("x", layer="conv1")
        error.with_context(layer="other", point={"pes": 64})
        assert error.context["layer"] == "conv1"
        assert error.context["point"] == {"pes": 64}

    def test_as_repro_error_passthrough_and_wrap(self):
        original = WorkerCrashError("boom")
        assert as_repro_error(original, point={"pes": 1}) is original
        assert original.context["point"] == {"pes": 1}

        wrapped = as_repro_error(ValueError("bad shape"), "eval failed")
        assert isinstance(wrapped, EvaluationError)
        assert not wrapped.retryable
        assert wrapped.context["cause"] == "ValueError"
        assert "bad shape" in wrapped.message

    def test_is_retryable(self):
        from concurrent.futures import BrokenExecutor
        from concurrent.futures import TimeoutError as FutTimeout

        assert is_retryable(WorkerCrashError("x"))
        assert not is_retryable(MapperFailureError("x"))
        assert is_retryable(BrokenExecutor())
        assert is_retryable(FutTimeout())
        assert not is_retryable(ValueError("x"))


# -- fault spec grammar -------------------------------------------------------


class TestFaultSpecGrammar:
    def test_parse_full_spec(self):
        plan = parse_fault_plan("crash:evaluate:0.05:seed=7")
        (spec,) = plan.specs
        assert spec.kind == "crash"
        assert spec.site == "evaluate"
        assert spec.rate == 0.05
        assert spec.seed == 7

    def test_parse_multiple_specs(self):
        plan = parse_fault_plan(
            "crash:evaluate:0.05:seed=7, hang:mapper:0.02:for=5,"
            "corrupt:cache-load:step=1"
        )
        assert [s.kind for s in plan.specs] == ["crash", "hang", "corrupt"]
        assert plan.specs[1].duration == 5.0
        assert plan.specs[2].step == 1
        assert plan.sites() == ("cache-load", "evaluate", "mapper")

    @pytest.mark.parametrize(
        "text",
        [
            "crash",  # too few tokens
            "explode:evaluate:0.5",  # unknown kind
            "crash:nowhere:0.5",  # unknown site
            "crash:evaluate:2.0",  # rate out of range
            "crash:evaluate:junk",  # unparsable rate
            "crash:evaluate:0.5:bogus=1",  # unknown parameter
            "crash:evaluate:0.5:seed=xyz",  # bad parameter value
            "crash:evaluate",  # never fires
        ],
    )
    def test_bad_specs_rejected(self, text):
        with pytest.raises(FaultSpecError):
            parse_fault_plan(text)

    def test_decision_is_deterministic(self):
        spec = FaultSpec(kind="crash", site="evaluate", rate=0.3, seed=7)
        keys = [f"pes={n}" for n in range(200)]
        first = [spec.should_fire(k, 0, i) for i, k in enumerate(keys)]
        second = [spec.should_fire(k, 0, i) for i, k in enumerate(keys)]
        assert first == second
        # The rate actually thins the firing set.
        assert 0 < sum(first) < len(keys)

    def test_retry_rerolls_the_decision(self):
        spec = FaultSpec(kind="crash", site="evaluate", rate=0.3, seed=7)
        rerolled = [
            spec.should_fire(f"pes={n}", 0, 0)
            != spec.should_fire(f"pes={n}", 1, 0)
            for n in range(200)
        ]
        assert any(rerolled)

    def test_rate_one_fires_every_attempt(self):
        spec = FaultSpec(kind="crash", site="evaluate", rate=1.0)
        assert all(spec.should_fire("k", attempt, 0) for attempt in range(5))

    def test_match_filter(self):
        spec = FaultSpec(
            kind="crash", site="mapper", rate=1.0, match="conv"
        )
        assert spec.should_fire("conv3_x", 0, 0)
        assert not spec.should_fire("fc1", 0, 0)

    def test_step_fires_on_exact_invocation(self):
        spec = FaultSpec(kind="crash", site="mapper", step=2)
        assert [spec.should_fire("k", 0, i) for i in (1, 2, 3)] == [
            False,
            True,
            False,
        ]


class TestInject:
    def test_noop_without_env(self):
        inject("evaluate", key="anything")  # must not raise

    def test_injected_crash(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:evaluate:1.0")
        with pytest.raises(InjectedCrash) as info:
            inject("evaluate", key="pes=64")
        assert info.value.retryable
        assert info.value.context["key"] == "pes=64"
        # Other sites stay clean.
        inject("mapper", key="conv1")

    def test_attempt_scope_feeds_the_decision(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:evaluate:1.0")
        with attempt_scope(2):
            assert current_attempt() == 2
            with pytest.raises(InjectedCrash) as info:
                inject("evaluate", key="k")
            assert info.value.context["attempt"] == 2
        assert current_attempt() == 0

    def test_kill_degrades_to_crash_outside_workers(self, monkeypatch):
        """An injected kill must never SIGKILL the campaign parent."""
        monkeypatch.setenv("REPRO_FAULT_INJECT", "kill:evaluate:1.0")
        with pytest.raises(InjectedCrash):
            inject("evaluate", key="k")

    def test_corrupt_kind(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "corrupt:cache-load:1.0")
        with pytest.raises(CacheCorruptionError):
            inject("cache-load", key="/tmp/x.pkl")


# -- supervision policy -------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_doubles(self):
        policy = RetryPolicy(max_retries=3, backoff_base=0.05)
        first = policy.backoff_seconds("task-1", 1)
        assert first == policy.backoff_seconds("task-1", 1)
        for attempt in (1, 2, 3):
            base = 0.05 * 2 ** (attempt - 1)
            delay = policy.backoff_seconds("task-1", attempt)
            assert base <= delay <= base * 1.25
        assert policy.backoff_seconds("task-1", 1) != policy.backoff_seconds(
            "task-2", 1
        )

    def test_zero_base_never_sleeps(self):
        policy = RetryPolicy(max_retries=3, backoff_base=0.0)
        assert policy.backoff_seconds("x", 2) == 0.0

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "5")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.2")
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "7.5")
        policy = RetryPolicy.from_env()
        assert policy.max_retries == 5
        assert policy.backoff_base == 0.2
        assert policy.task_timeout == 7.5

    def test_explicit_args_win_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "5")
        assert RetryPolicy.from_env(max_retries=1).max_retries == 1

    def test_resolve_task_timeout(self, monkeypatch):
        assert resolve_task_timeout() is None  # unset
        assert resolve_task_timeout(0) is None
        assert resolve_task_timeout(2.5) == 2.5
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "0")
        assert resolve_task_timeout() is None


class TestFailureRateBreaker:
    def test_needs_minimum_failures(self):
        breaker = FailureRateBreaker(max_failure_rate=0.5)
        breaker.record_failure()
        breaker.record_failure()
        assert not breaker.tripped  # below BREAKER_MIN_FAILURES
        breaker.record_failure()
        assert breaker.tripped

    def test_rate_threshold(self):
        breaker = FailureRateBreaker(max_failure_rate=0.5)
        for _ in range(3):
            breaker.record_failure()
        for _ in range(5):
            breaker.record_success()
        assert breaker.failure_rate == pytest.approx(3 / 8)
        assert not breaker.tripped

    def test_disabled_at_one(self):
        breaker = FailureRateBreaker(max_failure_rate=1.0)
        for _ in range(50):
            breaker.record_failure()
        assert not breaker.enabled
        assert not breaker.tripped

    def test_systemic_fault_error(self):
        breaker = FailureRateBreaker(max_failure_rate=0.5)
        for _ in range(4):
            breaker.record_failure()
        error = breaker.systemic_fault(attempt=7)
        assert isinstance(error, SystemicFaultError)
        assert error.context["failures"] == 4
        assert error.context["attempt"] == 7
        assert breaker.as_dict()["tripped"] is True


# -- worker pool supervision --------------------------------------------------
#
# Task functions are module-level so process pools can pickle them; they
# key their behaviour off the ambient retry attempt, which the pool's
# supervision wrapper sets inside the worker.


def _double(x):
    return x * 2


def _kill_self_on_first_attempt(x):
    if current_attempt() == 0:
        os.kill(os.getpid(), signal.SIGKILL)
    return x * 2


def _crash_below_attempt_2(x):
    if current_attempt() < 2:
        raise InjectedCrash(f"transient fault on {x}")
    return x + 100


def _always_crash(x):
    raise InjectedCrash(f"permanent fault on {x}")


def _sleep_on_first_attempt(x):
    if current_attempt() == 0:
        time.sleep(10)
    return x * 3


def _always_sleep(x):
    time.sleep(10)
    return x


class TestWorkerPoolSupervision:
    def test_serial_path_untouched(self):
        pool = WorkerPool(jobs=1)
        assert pool.map(_double, [1, 2, 3]) == [2, 4, 6]
        assert pool._executor is None
        assert all(v == 0 for v in pool.supervision.values())

    def test_retryable_crash_is_retried(self):
        with WorkerPool(jobs=2, mode="thread", max_retries=3) as pool:
            pool.retry_policy = RetryPolicy(max_retries=3, backoff_base=0.0)
            assert pool.map(_crash_below_attempt_2, [1, 2, 3]) == [
                101,
                102,
                103,
            ]
            assert pool.supervision["retries"] >= 3

    def test_sigkilled_worker_rebuilt_and_retried(self):
        with WorkerPool(jobs=2, mode="process", max_retries=3) as pool:
            pool.retry_policy = RetryPolicy(max_retries=3, backoff_base=0.0)
            assert pool.map(_kill_self_on_first_attempt, [1, 2, 3]) == [
                2,
                4,
                6,
            ]
            assert pool.supervision["pool_rebuilds"] >= 1

    def test_hung_worker_times_out_and_retries(self):
        with WorkerPool(
            jobs=2, mode="process", task_timeout=1.0, max_retries=2
        ) as pool:
            pool.retry_policy = RetryPolicy(
                max_retries=2, backoff_base=0.0, task_timeout=1.0
            )
            assert pool.map(_sleep_on_first_attempt, [7, 8]) == [21, 24]
            assert pool.supervision["timeouts"] >= 1

    def test_permanent_hang_raises_timeout_error(self):
        with WorkerPool(
            jobs=2, mode="process", task_timeout=0.4, max_retries=1
        ) as pool:
            pool.retry_policy = RetryPolicy(
                max_retries=1, backoff_base=0.0, task_timeout=0.4
            )
            with pytest.raises(WorkerTimeoutError) as info:
                pool.map(_always_sleep, [1, 2])
            assert not info.value.retryable  # budget spent: quarantine

    def test_retry_then_quarantine(self):
        """A task failing in every worker AND the serial fallback raises a
        non-retryable error carrying the attempt count."""
        with WorkerPool(jobs=2, mode="thread", max_retries=1) as pool:
            pool.retry_policy = RetryPolicy(max_retries=1, backoff_base=0.0)
            with pytest.raises(WorkerCrashError) as info:
                pool.map(_always_crash, [1, 2])
            assert not info.value.retryable
            assert info.value.context["attempts"] >= 2
            assert pool.supervision["serial_fallbacks"] >= 1

    def test_serial_fallback_recovers(self):
        """When the retry budget is exhausted the task gets one last run in
        the parent; success there completes the map."""
        with WorkerPool(jobs=2, mode="thread", max_retries=1) as pool:
            pool.retry_policy = RetryPolicy(max_retries=1, backoff_base=0.0)
            assert pool.map(_crash_below_attempt_2, [5, 6]) == [105, 106]
            assert pool.supervision["serial_fallbacks"] == 2

    def test_shutdown_idempotent_and_context_manager(self):
        pool = WorkerPool(jobs=2, mode="thread")
        pool.map(_double, [1, 2])
        pool.shutdown()
        pool.shutdown()  # idempotent
        assert pool._executor is None
        with WorkerPool(jobs=2, mode="thread") as ctx_pool:
            assert ctx_pool.map(_double, [3, 4]) == [6, 8]
        assert ctx_pool._executor is None

    def test_junk_jobs_value_warns_once(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "three-ish")
        with pytest.warns(RuntimeWarning, match="REPRO_JOBS"):
            assert resolve_jobs() == 1
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_jobs() == 1  # second resolve is silent


# -- evaluator-level retries --------------------------------------------------


class TestEvaluatorSupervision:
    def test_injected_evaluate_crash_retried_to_success(
        self, tiny_workload, mid_point, monkeypatch
    ):
        """rate=1.0 on attempt 0 only (via match of the re-rolled hash) is
        hard to express, so instead: a 50% rate with retries enabled must
        still evaluate every point (retries re-roll the hash)."""
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        monkeypatch.setenv("REPRO_MAX_RETRIES", "8")
        clean = _make_evaluator(tiny_workload).evaluate(mid_point)
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:evaluate:0.5:seed=3")
        faulty = _make_evaluator(tiny_workload).evaluate(mid_point)
        assert faulty.costs == clean.costs

    def test_injected_evaluate_crash_quarantines_at_rate_one(
        self, tiny_workload, mid_point, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        monkeypatch.setenv("REPRO_MAX_RETRIES", "2")
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:evaluate:1.0")
        evaluator = _make_evaluator(tiny_workload)
        with pytest.raises(WorkerCrashError) as info:
            evaluator.evaluate(mid_point)
        assert not info.value.retryable
        assert info.value.context["attempts"] == 3
        assert info.value.context["point"] == dict(mid_point)
        # The failure was never cached; evaluations never counted it.
        assert evaluator.evaluations == 0
        assert evaluator.cache_size() == 0

    def test_mapper_failure_carries_layer_context(
        self, tiny_workload, mid_point, monkeypatch
    ):
        layer = tiny_workload.layers[0].name
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT", f"crash:mapper:1.0:match={layer}"
        )
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        monkeypatch.setenv("REPRO_MAX_RETRIES", "0")
        evaluator = _make_evaluator(tiny_workload)
        with pytest.raises(ReproError) as info:
            evaluator.evaluate(mid_point)
        assert info.value.context.get("key") == layer

    def test_evaluator_context_manager(self, tiny_workload):
        with _make_evaluator(tiny_workload) as evaluator:
            assert evaluator.retry_policy.max_retries >= 0
        assert evaluator._pool._executor is None


# -- self-healing cache persistence ------------------------------------------


class TestCacheSelfHealing:
    def test_corrupt_file_quarantined_and_cold(self, tmp_path):
        path = tmp_path / "cache.pkl"
        path.write_bytes(b"\x00this is not a pickle")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            cache = MappingCache(persist_path=str(path))
        assert cache.size() == 0
        assert not path.exists()
        assert (tmp_path / "cache.pkl.corrupt").exists()
        # The next cold start finds no file at all: no warning, no load.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            MappingCache(persist_path=str(path))

    def test_stale_version_ignored_quietly(self, tmp_path):
        path = tmp_path / "cache.pkl"
        with open(path, "wb") as handle:
            pickle.dump(
                {"version": PERSIST_VERSION + 1, "results": {}, "traces": {}},
                handle,
            )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cache = MappingCache(persist_path=str(path))
        assert cache.size() == 0
        assert path.exists()  # format evolution, not corruption

    def test_injected_load_corruption(self, tmp_path, monkeypatch):
        path = tmp_path / "cache.pkl"
        cache = MappingCache(persist_path=str(path))
        cache.put_result(("k",), "value")
        cache.save()
        monkeypatch.setenv("REPRO_FAULT_INJECT", "corrupt:cache-load:1.0")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            reloaded = MappingCache(persist_path=str(path))
        assert reloaded.size() == 0
        assert (tmp_path / "cache.pkl.corrupt").exists()

    def test_injected_save_failure_raises(self, tmp_path, monkeypatch):
        cache = MappingCache(persist_path=str(tmp_path / "cache.pkl"))
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:cache-save:1.0")
        with pytest.raises(WorkerCrashError):
            cache.save()

    def test_roundtrip_still_works(self, tmp_path):
        path = tmp_path / "cache.pkl"
        cache = MappingCache(persist_path=str(path))
        cache.put_result(("key",), "result")
        cache.save()
        reloaded = MappingCache(persist_path=str(path))
        assert reloaded.get_result(("key",)) == "result"


# -- DSE quarantine and circuit breaker ---------------------------------------


class FailOnceEvaluator(CostEvaluator):
    """The 3rd unique evaluation raises a (non-retryable) cost-model bug."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.failed_once = False

    def _evaluate_uncached(self, point):
        if not self.failed_once and self.evaluations >= 2:
            self.failed_once = True
            raise RuntimeError("injected cost-model bug")
        return super()._evaluate_uncached(point)


class BrokenAfterEvaluator(CostEvaluator):
    """Every evaluation after the Nth unique one fails (systemic fault)."""

    break_after = 2

    def _evaluate_uncached(self, point):
        if self.evaluations >= self.break_after:
            raise RuntimeError("systemic cost-model fault")
        return super()._evaluate_uncached(point)


class TestCandidateQuarantine:
    def test_failed_candidate_is_quarantined_and_campaign_continues(
        self, tmp_path, edge_space, tiny_workload
    ):
        journal = tmp_path / "run.jsonl"
        ckpt = default_checkpoint_path(journal)
        tracer = Tracer(JsonlSink(journal))
        evaluator = _make_evaluator(tiny_workload, cls=FailOnceEvaluator)
        result = ExplainableDSE(
            edge_space, evaluator, _constraints(), max_evaluations=25
        ).run(tracer=tracer, checkpoint_path=ckpt)
        tracer.close()

        quarantined = [
            t for t in result.trials if t.note.startswith("quarantined")
        ]
        assert len(quarantined) == 1
        trial = quarantined[0]
        assert not trial.feasible
        assert not trial.mappable
        assert trial.costs["latency_ms"] == float("inf")
        assert trial.costs["throughput"] == 0.0

        failures = [
            e for e in read_journal(journal) if isinstance(e, CandidateFailed)
        ]
        assert len(failures) == 1
        assert failures[0].error == "EvaluationError"
        assert "RuntimeError" in failures[0].message
        # A quarantined candidate can never be the returned best.
        assert result.best is not None
        assert result.best.point != trial.point
        # verify_against_journal counts CandidateFailed alongside
        # CandidateEvaluated when checking the trial ledger.
        verify_against_journal(load_checkpoint(ckpt), journal)

    def test_env_injected_fault_becomes_retried_then_quarantined_trial(
        self, tmp_path, edge_space, tiny_workload, monkeypatch
    ):
        """End-to-end acceptance path: a fault that fires on every retry
        of one candidate (rate=1.0 + match) surfaces as a quarantined
        trial with a CandidateFailed journal event recording the retry
        count — never an unhandled traceback — and the campaign
        completes around it."""
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT", "crash:evaluate:1.0:match=pes=128"
        )
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        monkeypatch.setenv("REPRO_MAX_RETRIES", "2")
        monkeypatch.setenv("REPRO_MAX_FAILURE_RATE", "1")
        journal = tmp_path / "run.jsonl"
        tracer = Tracer(JsonlSink(journal))
        result = ExplainableDSE(
            edge_space,
            _make_evaluator(tiny_workload),
            _constraints(),
            max_evaluations=20,
        ).run(tracer=tracer)
        tracer.close()

        failures = [
            e for e in read_journal(journal) if isinstance(e, CandidateFailed)
        ]
        assert failures
        assert all(f.point["pes"] == 128 for f in failures)
        assert all(f.attempts == 3 for f in failures)  # 1 try + 2 retries
        assert result.best is not None
        assert result.best.point["pes"] != 128

    def test_fault_free_run_has_no_failure_events(
        self, tmp_path, edge_space, tiny_workload
    ):
        journal = tmp_path / "clean.jsonl"
        tracer = Tracer(JsonlSink(journal))
        ExplainableDSE(
            edge_space,
            _make_evaluator(tiny_workload),
            _constraints(),
            max_evaluations=10,
        ).run(tracer=tracer)
        tracer.close()
        assert not any(
            isinstance(e, CandidateFailed) for e in read_journal(journal)
        )


class TestCircuitBreaker:
    def test_systemic_failures_trip_the_breaker(
        self, tmp_path, edge_space, tiny_workload, monkeypatch
    ):
        monkeypatch.setenv("REPRO_MAX_FAILURE_RATE", "0.5")
        ckpt = tmp_path / "broken.ckpt"
        evaluator = _make_evaluator(tiny_workload, cls=BrokenAfterEvaluator)
        with pytest.raises(SystemicFaultError) as info:
            ExplainableDSE(
                edge_space, evaluator, _constraints(), max_evaluations=25
            ).run(checkpoint_path=str(ckpt))
        assert info.value.context["failures"] >= 3
        assert info.value.context["checkpoint"] == str(ckpt)
        # The abort went through the checkpoint path: state is resumable.
        checkpoint = load_checkpoint(ckpt)
        assert not checkpoint.finished
        assert checkpoint.trials  # quarantined trials are in the ledger

    def test_breaker_disabled_lets_campaign_degrade(
        self, edge_space, tiny_workload, monkeypatch
    ):
        monkeypatch.setenv("REPRO_MAX_FAILURE_RATE", "1")
        evaluator = _make_evaluator(tiny_workload, cls=BrokenAfterEvaluator)
        result = ExplainableDSE(
            edge_space, evaluator, _constraints(), max_evaluations=25
        ).run()
        # Patience terminates the campaign; the early successes survive.
        assert result.best is not None
        assert any(t.note.startswith("quarantined") for t in result.trials)


class TestChaosIdentity:
    def test_injected_faults_with_retries_preserve_the_campaign(
        self, tmp_path, edge_space, tiny_workload, monkeypatch
    ):
        """With a 5% injected crash rate and retries enabled, the campaign
        trajectory (trials, incumbent, journal) is identical to the
        fault-free run — the acceptance criterion at test scale."""
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        ref_journal = tmp_path / "ref.jsonl"
        tracer = Tracer(JsonlSink(ref_journal))
        reference = ExplainableDSE(
            edge_space,
            _make_evaluator(tiny_workload),
            _constraints(),
            max_evaluations=20,
        ).run(tracer=tracer)
        tracer.close()

        monkeypatch.setenv(
            "REPRO_FAULT_INJECT", "crash:evaluate:0.05:seed=7"
        )
        chaos_journal = tmp_path / "chaos.jsonl"
        tracer = Tracer(JsonlSink(chaos_journal))
        chaos = ExplainableDSE(
            edge_space,
            _make_evaluator(tiny_workload),
            _constraints(),
            max_evaluations=20,
        ).run(tracer=tracer)
        tracer.close()

        assert chaos.best.point == reference.best.point
        assert chaos.best.costs == reference.best.costs
        assert [t.costs for t in chaos.trials] == [
            t.costs for t in reference.trials
        ]
        assert chaos_journal.read_bytes() == ref_journal.read_bytes()
