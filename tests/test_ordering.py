"""Tests for the loop-ordering / unique-reuse analysis."""

import itertools

import pytest

from repro.mapping.ordering import (
    count_unique_reuse_orderings,
    maximal_reuse_orderings,
    reuse_signature,
    unique_reuse_signatures,
)
from repro.mapping.space_size import UNIQUE_REUSE_ORDERINGS
from repro.workloads.layers import (
    LOOP_DIMS,
    Dim,
    Operand,
    OperatorType,
    operand_dims,
)


class TestSignature:
    def test_output_stationary_ordering(self):
        """Reduction loops innermost: output reused across all of them."""
        ordering = (Dim.N, Dim.M, Dim.OY, Dim.OX, Dim.C, Dim.FY, Dim.FX)
        sig = reuse_signature(ordering, OperatorType.CONV)
        # Signature order: (I, W, O).
        assert sig[2] == frozenset({Dim.C, Dim.FY, Dim.FX})

    def test_weight_stationary_ordering(self):
        ordering = (Dim.M, Dim.C, Dim.FY, Dim.FX, Dim.N, Dim.OY, Dim.OX)
        sig = reuse_signature(ordering, OperatorType.CONV)
        assert sig[1] == frozenset({Dim.N, Dim.OY, Dim.OX})

    def test_innermost_relevant_loop_blocks_reuse(self):
        ordering = (Dim.N, Dim.C, Dim.FY, Dim.FX, Dim.OY, Dim.OX, Dim.M)
        sig = reuse_signature(ordering, OperatorType.CONV)
        # Innermost loop M is relevant to W: no weight reuse at all.
        assert sig[1] == frozenset()


class TestCounts:
    def test_paper_counts_derived(self):
        """Table 7 column E falls out of the signature analysis."""
        assert count_unique_reuse_orderings(OperatorType.CONV) == 15
        assert count_unique_reuse_orderings(OperatorType.DWCONV) == 15
        assert count_unique_reuse_orderings(OperatorType.GEMM) == 3

    def test_constants_match_derivation(self):
        for operator, expected in UNIQUE_REUSE_ORDERINGS.items():
            assert count_unique_reuse_orderings(operator) == expected

    def test_signatures_are_distinct(self):
        signatures = unique_reuse_signatures(OperatorType.CONV)
        assert len(signatures) == len(set(signatures))

    def test_far_fewer_than_permutations(self):
        """The pruning claim: 15 classes vs 7! = 5040 orderings."""
        import math

        assert count_unique_reuse_orderings(OperatorType.CONV) < math.factorial(
            len(LOOP_DIMS)
        ) / 100


class TestMaximalReuse:
    def test_three_per_operator(self):
        for operator in OperatorType:
            assert len(maximal_reuse_orderings(operator)) == 3

    def test_stationary_operand_gets_all_irrelevant_dims(self):
        for ordering in maximal_reuse_orderings(OperatorType.CONV):
            relevant = operand_dims(OperatorType.CONV, ordering.stationary)
            expected = frozenset(d for d in LOOP_DIMS if d not in relevant)
            assert ordering.reuse_dims == expected

    def test_representative_ordering_realizes_signature(self):
        for mro in maximal_reuse_orderings(OperatorType.CONV):
            sig = reuse_signature(mro.ordering, OperatorType.CONV)
            index = [Operand.I, Operand.W, Operand.O].index(mro.stationary)
            assert sig[index] == mro.reuse_dims

    def test_maximal_signatures_among_unique_set(self):
        signatures = set(unique_reuse_signatures(OperatorType.CONV))
        for mro in maximal_reuse_orderings(OperatorType.CONV):
            assert reuse_signature(mro.ordering, OperatorType.CONV) in signatures
