"""Tests for crash-safe checkpointing and campaign resume."""

import dataclasses
import json
import math

import pytest

from repro.core.dse.constraints import Constraint, Sense
from repro.core.dse.explainable import ExplainableDSE
from repro.cost.evaluator import CostEvaluator
from repro.mapping.mapper import TopNMapper
from repro.perf.mapping_cache import MappingCache
from repro.resilience import SystemicFaultError
from repro.telemetry import (
    CampaignCheckpoint,
    CheckpointError,
    JsonlSink,
    RunSummary,
    Tracer,
    default_checkpoint_path,
    load_checkpoint,
    read_journal,
    save_checkpoint,
    verify_against_journal,
)


def _constraints():
    return [
        Constraint("area", "area_mm2", 75.0),
        Constraint("power", "power_w", 4.0),
        Constraint("throughput", "throughput", 200.0, Sense.GEQ),
    ]


def _make_evaluator(workload, cls=CostEvaluator, **kwargs):
    return cls(
        workload,
        TopNMapper(top_n=60),
        mapping_cache=MappingCache(),
        **kwargs,
    )


def _fingerprint(result):
    return (
        [t.point for t in result.trials],
        [t.costs for t in result.trials],
        result.explanations,
        result.best.point if result.best else None,
        result.best.costs if result.best else None,
        result.evaluations,
    )


class KillableEvaluator(CostEvaluator):
    """Simulates a hard mid-step kill: the Nth uncached evaluation dies."""

    kill_at = None

    def _evaluate_uncached(self, point):
        if self.kill_at is not None and self.evaluations >= self.kill_at:
            raise KeyboardInterrupt("simulated kill")
        return super()._evaluate_uncached(point)


class FlakyEvaluator(CostEvaluator):
    """Simulates a systemic fault: every evaluation from the Nth fails."""

    fail_from = None

    def _evaluate_uncached(self, point):
        if self.fail_from is not None and self.evaluations >= self.fail_from:
            raise RuntimeError("injected systemic fault")
        return super()._evaluate_uncached(point)


def _sample_checkpoint(**overrides):
    base = dict(
        model="tiny",
        objective="latency_ms",
        max_evaluations=25,
        consumed=12,
        attempt=2,
        attempts_without_improvement=0,
        finished=False,
        current_point={"pes": 128},
        exhausted=["l1_bytes"],
        tried_keys=[[0, 1], [0, 2]],
        trials=[],
        explanations=["[attempt 1] ..."],
        journal_events=42,
    )
    base.update(overrides)
    return CampaignCheckpoint(**base)


class TestCheckpointFile:
    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "run.ckpt"
        checkpoint = _sample_checkpoint()
        save_checkpoint(checkpoint, path)
        assert load_checkpoint(path) == checkpoint

    def test_save_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_checkpoint(_sample_checkpoint(), path)
        save_checkpoint(_sample_checkpoint(consumed=13), path)
        assert [p.name for p in tmp_path.iterdir()] == ["run.ckpt"]
        assert load_checkpoint(path).consumed == 13

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "missing.ckpt")

    def test_load_corrupt_raises(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_text("{ not json")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_load_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_checkpoint(_sample_checkpoint(), path)
        data = json.loads(path.read_text())
        data["schema"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_default_checkpoint_path(self):
        assert default_checkpoint_path("a/b.jsonl") == "a/b.jsonl.ckpt"


class TestResume:
    def _run_reference(self, edge_space, tiny_workload, budget=25):
        evaluator = _make_evaluator(tiny_workload)
        return ExplainableDSE(
            edge_space, evaluator, _constraints(), max_evaluations=budget
        ).run()

    def test_resume_after_mid_step_kill_matches_uninterrupted(
        self, tmp_path, edge_space, tiny_workload
    ):
        """A SIGKILL-style death mid-attempt loses nothing that matters:
        resuming from the last checkpoint reproduces the uninterrupted
        campaign exactly (acceptance criterion)."""
        reference = self._run_reference(edge_space, tiny_workload)

        journal = tmp_path / "run.jsonl"
        ckpt = default_checkpoint_path(journal)
        evaluator = _make_evaluator(tiny_workload, cls=KillableEvaluator)
        evaluator.kill_at = 14
        tracer = Tracer(JsonlSink(journal))
        with pytest.raises(KeyboardInterrupt):
            ExplainableDSE(
                edge_space, evaluator, _constraints(), max_evaluations=25
            ).run(tracer=tracer, checkpoint_path=ckpt)

        checkpoint = load_checkpoint(ckpt)
        assert not checkpoint.finished
        assert checkpoint.consumed < 25
        verify_against_journal(checkpoint, journal)

        sink = JsonlSink(journal, resume_events=checkpoint.journal_events)
        resumed_tracer = Tracer(sink, seq_start=checkpoint.journal_events)
        evaluator2 = _make_evaluator(tiny_workload)
        resumed = ExplainableDSE(
            edge_space, evaluator2, _constraints(), max_evaluations=25
        ).run(tracer=resumed_tracer, checkpoint_path=ckpt, resume_from=ckpt)
        resumed_tracer.close()

        assert _fingerprint(resumed) == _fingerprint(reference)
        # Budget accounting: the incumbent re-evaluation on resume does
        # not count as a trial or consume budget.
        assert resumed.evaluations == reference.evaluations

    def test_resumed_journal_matches_uninterrupted_journal(
        self, tmp_path, edge_space, tiny_workload
    ):
        """The stitched journal (checkpoint prefix + resumed suffix) holds
        the same events an uninterrupted traced run writes, up to the
        evaluator-local counters in RunSummary."""
        ref_journal = tmp_path / "ref.jsonl"
        ref_tracer = Tracer(JsonlSink(ref_journal))
        ExplainableDSE(
            edge_space, _make_evaluator(tiny_workload), _constraints(),
            max_evaluations=25,
        ).run(tracer=ref_tracer)
        ref_tracer.close()

        journal = tmp_path / "killed.jsonl"
        ckpt = default_checkpoint_path(journal)
        evaluator = _make_evaluator(tiny_workload, cls=KillableEvaluator)
        evaluator.kill_at = 14
        tracer = Tracer(JsonlSink(journal))
        with pytest.raises(KeyboardInterrupt):
            ExplainableDSE(
                edge_space, evaluator, _constraints(), max_evaluations=25
            ).run(tracer=tracer, checkpoint_path=ckpt)
        checkpoint = load_checkpoint(ckpt)
        sink = JsonlSink(journal, resume_events=checkpoint.journal_events)
        ExplainableDSE(
            edge_space, _make_evaluator(tiny_workload), _constraints(),
            max_evaluations=25,
        ).run(
            tracer=Tracer(sink, seq_start=checkpoint.journal_events),
            checkpoint_path=ckpt,
            resume_from=ckpt,
        )
        sink.close()

        def strip_counters(events):
            return [
                dataclasses.replace(e, counters={})
                if isinstance(e, RunSummary)
                else e
                for e in events
            ]

        assert strip_counters(read_journal(journal)) == strip_counters(
            read_journal(ref_journal)
        )

    def test_resume_finished_campaign_returns_stored_result(
        self, tmp_path, edge_space, tiny_workload
    ):
        """A campaign that terminated (patience/mitigation exhaustion) is
        not re-explored on resume."""
        ckpt = tmp_path / "done.ckpt"
        evaluator = _make_evaluator(tiny_workload)
        # Budget far beyond what the tiny space needs, so the run ends by
        # termination, not budget exhaustion.
        finished = ExplainableDSE(
            edge_space, evaluator, _constraints(), max_evaluations=500
        ).run(checkpoint_path=str(ckpt))
        assert load_checkpoint(ckpt).finished

        evaluator2 = _make_evaluator(tiny_workload)
        resumed = ExplainableDSE(
            edge_space, evaluator2, _constraints(), max_evaluations=500
        ).run(resume_from=str(ckpt))
        assert evaluator2.evaluations == 0
        assert _fingerprint(resumed) == _fingerprint(finished)

    def test_resume_with_larger_budget_continues(
        self, tmp_path, edge_space, tiny_workload
    ):
        ckpt = tmp_path / "short.ckpt"
        short = ExplainableDSE(
            edge_space, _make_evaluator(tiny_workload), _constraints(),
            max_evaluations=8,
        ).run(checkpoint_path=str(ckpt))
        assert short.evaluations == 8  # budget-limited
        evaluator = _make_evaluator(tiny_workload)
        longer = ExplainableDSE(
            edge_space, evaluator, _constraints(), max_evaluations=20
        ).run(resume_from=str(ckpt))
        assert longer.evaluations > 8
        assert longer.trials[:8] == short.trials[:8]

    def test_resume_after_breaker_abort_completes(
        self, tmp_path, edge_space, tiny_workload, monkeypatch
    ):
        """A circuit-breaker abort (too many candidate failures) leaves a
        resumable checkpoint/journal pair; resuming with a healthy
        evaluator finishes the campaign."""
        monkeypatch.setenv("REPRO_MAX_FAILURE_RATE", "0.2")
        journal = tmp_path / "flaky.jsonl"
        ckpt = default_checkpoint_path(journal)
        evaluator = _make_evaluator(tiny_workload, cls=FlakyEvaluator)
        evaluator.fail_from = 13
        tracer = Tracer(JsonlSink(journal))
        with pytest.raises(SystemicFaultError) as info:
            ExplainableDSE(
                edge_space, evaluator, _constraints(), max_evaluations=40
            ).run(tracer=tracer, checkpoint_path=ckpt)
        tracer.close()
        assert info.value.context["checkpoint"] == ckpt

        checkpoint = load_checkpoint(ckpt)
        assert not checkpoint.finished
        verify_against_journal(checkpoint, journal)
        assert any(
            "quarantined" in t.get("note", "") for t in checkpoint.trials
        )

        monkeypatch.delenv("REPRO_MAX_FAILURE_RATE")
        sink = JsonlSink(journal, resume_events=checkpoint.journal_events)
        resumed = ExplainableDSE(
            edge_space, _make_evaluator(tiny_workload), _constraints(),
            max_evaluations=40,
        ).run(
            tracer=Tracer(sink, seq_start=checkpoint.journal_events),
            checkpoint_path=ckpt,
            resume_from=ckpt,
        )
        sink.close()

        assert resumed.best is not None
        final = load_checkpoint(ckpt)
        assert final.finished or final.consumed == 40
        verify_against_journal(final, journal)

    def test_model_mismatch_rejected(
        self, tmp_path, edge_space, tiny_workload, resnet18
    ):
        ckpt = tmp_path / "tiny.ckpt"
        ExplainableDSE(
            edge_space, _make_evaluator(tiny_workload), _constraints(),
            max_evaluations=5,
        ).run(checkpoint_path=str(ckpt))
        other = _make_evaluator(resnet18)
        with pytest.raises(CheckpointError):
            ExplainableDSE(
                edge_space, other, _constraints(), max_evaluations=5
            ).run(resume_from=str(ckpt))

    def test_objective_mismatch_rejected(self, edge_space, tiny_workload):
        checkpoint = _sample_checkpoint(objective="energy_mj")
        with pytest.raises(CheckpointError):
            ExplainableDSE(
                edge_space, _make_evaluator(tiny_workload), _constraints(),
                max_evaluations=5,
            ).run(resume_from=checkpoint)


class TestJournalVerification:
    def _traced_run(self, tmp_path, edge_space, tiny_workload):
        journal = tmp_path / "run.jsonl"
        ckpt = default_checkpoint_path(journal)
        tracer = Tracer(JsonlSink(journal))
        ExplainableDSE(
            edge_space, _make_evaluator(tiny_workload), _constraints(),
            max_evaluations=10,
        ).run(tracer=tracer, checkpoint_path=ckpt)
        tracer.close()
        return journal, load_checkpoint(ckpt)

    def test_consistent_pair_verifies(
        self, tmp_path, edge_space, tiny_workload
    ):
        journal, checkpoint = self._traced_run(
            tmp_path, edge_space, tiny_workload
        )
        verify_against_journal(checkpoint, journal)

    def test_truncated_journal_rejected(
        self, tmp_path, edge_space, tiny_workload
    ):
        journal, checkpoint = self._traced_run(
            tmp_path, edge_space, tiny_workload
        )
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[: len(lines) // 2]) + "\n")
        with pytest.raises(CheckpointError):
            verify_against_journal(checkpoint, journal)

    def test_tampered_incumbent_rejected(
        self, tmp_path, edge_space, tiny_workload
    ):
        journal, checkpoint = self._traced_run(
            tmp_path, edge_space, tiny_workload
        )
        checkpoint.current_point = dict(
            checkpoint.current_point, pes=999999
        )
        with pytest.raises(CheckpointError):
            verify_against_journal(checkpoint, journal)

    def test_missing_journal_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            verify_against_journal(
                _sample_checkpoint(), tmp_path / "none.jsonl"
            )


class TestResumeUnderCacheFaults:
    """Checkpoint-resume combined with mapping-cache persistence faults
    (``REPRO_FAULT_INJECT`` at the ``cache-save`` site).

    A campaign that dies mid-step *and* fails to persist its warm mapping
    cache must still resume exactly: the cache is a pure accelerator, so
    a cold (or quarantined-corrupt) cache changes wall-clock, never
    results."""

    def _reference(self, edge_space, tiny_workload):
        return ExplainableDSE(
            edge_space,
            _make_evaluator(tiny_workload),
            _constraints(),
            max_evaluations=25,
        ).run()

    def _killed_run(self, journal, cache, edge_space, tiny_workload):
        ckpt = default_checkpoint_path(journal)
        evaluator = KillableEvaluator(
            tiny_workload, TopNMapper(top_n=60), mapping_cache=cache
        )
        evaluator.kill_at = 14
        tracer = Tracer(JsonlSink(journal))
        with pytest.raises(KeyboardInterrupt):
            ExplainableDSE(
                edge_space, evaluator, _constraints(), max_evaluations=25
            ).run(tracer=tracer, checkpoint_path=ckpt)
        return ckpt

    def _resume(self, journal, ckpt, cache, edge_space, tiny_workload):
        checkpoint = load_checkpoint(ckpt)
        sink = JsonlSink(journal, resume_events=checkpoint.journal_events)
        tracer = Tracer(sink, seq_start=checkpoint.journal_events)
        evaluator = CostEvaluator(
            tiny_workload, TopNMapper(top_n=60), mapping_cache=cache
        )
        resumed = ExplainableDSE(
            edge_space, evaluator, _constraints(), max_evaluations=25
        ).run(tracer=tracer, checkpoint_path=ckpt, resume_from=ckpt)
        tracer.close()
        return resumed

    def test_injected_save_corruption_then_resume_matches(
        self, tmp_path, edge_space, tiny_workload, monkeypatch
    ):
        """The warm cache dies with the campaign (its save is corrupted);
        resuming from the checkpoint with a cold cache still reproduces
        the uninterrupted campaign exactly."""
        from repro.resilience.fault_injection import InjectedCorruption

        reference = self._reference(edge_space, tiny_workload)

        cache_path = tmp_path / "mapping_cache.pkl"
        journal = tmp_path / "run.jsonl"
        cache = MappingCache(persist_path=str(cache_path))
        ckpt = self._killed_run(journal, cache, edge_space, tiny_workload)

        monkeypatch.setenv("REPRO_FAULT_INJECT", "corrupt:cache-save:1.0")
        with pytest.raises(InjectedCorruption):
            cache.save()
        assert not cache_path.exists()
        monkeypatch.delenv("REPRO_FAULT_INJECT")

        # Warm-start attempt finds nothing on disk -> cold cache.
        resume_cache = MappingCache(persist_path=str(cache_path))
        resumed = self._resume(
            journal, ckpt, resume_cache, edge_space, tiny_workload
        )
        assert _fingerprint(resumed) == _fingerprint(reference)

    def test_corrupt_cache_file_quarantined_on_resume_and_matches(
        self, tmp_path, edge_space, tiny_workload
    ):
        """A cache file corrupted on disk between kill and resume is
        quarantined with a warning; the resumed campaign still matches."""
        reference = self._reference(edge_space, tiny_workload)

        cache_path = tmp_path / "mapping_cache.pkl"
        journal = tmp_path / "run.jsonl"
        ckpt = self._killed_run(
            journal,
            MappingCache(persist_path=str(cache_path)),
            edge_space,
            tiny_workload,
        )
        cache_path.write_bytes(b"\x80\x04 this is not a pickle")

        with pytest.warns(RuntimeWarning, match="corrupt"):
            resume_cache = MappingCache(persist_path=str(cache_path))
        assert (tmp_path / "mapping_cache.pkl.corrupt").exists()
        assert not cache_path.exists()

        resumed = self._resume(
            journal, ckpt, resume_cache, edge_space, tiny_workload
        )
        assert _fingerprint(resumed) == _fingerprint(reference)
