"""Tests for the fixed / top-N / random mappers."""

import pytest

from repro.arch.accelerator import config_from_point
from repro.mapping.mapper import (
    FixedDataflowMapper,
    RandomSearchMapper,
    TopNMapper,
    _log_spaced,
    enumerate_spatial_unrollings,
)
from repro.workloads.layers import LOOP_DIMS, Dim


class TestLogSpaced:
    def test_empty_values(self):
        assert _log_spaced([], keep=4) == ()
        assert _log_spaced([], keep=0) == ()

    def test_keep_at_most_one_keeps_largest(self):
        assert _log_spaced([2, 4, 8, 16], keep=1) == (16,)
        assert _log_spaced([2, 4, 8, 16], keep=0) == (16,)
        assert _log_spaced([2, 4, 8, 16], keep=-3) == (16,)

    def test_small_input_passes_through(self):
        assert _log_spaced([3, 5], keep=4) == (3, 5)

    def test_thins_to_budget_keeping_endpoints(self):
        values = list(range(1, 101))
        picked = _log_spaced(values, keep=5)
        assert len(picked) == 5
        assert picked[0] == values[0]
        assert picked[-1] == values[-1]
        assert list(picked) == sorted(picked)


class TestSpatialEnumeration:
    def test_fits_pe_budget(self, conv_layer, mid_config):
        for spatial in enumerate_spatial_unrollings(conv_layer, mid_config):
            used = 1
            for d in LOOP_DIMS:
                used *= spatial[d]
            assert used <= mid_config.pes

    def test_includes_temporal_fallback(self, conv_layer, mid_config):
        unrollings = enumerate_spatial_unrollings(conv_layer, mid_config)
        assert {d: 1 for d in LOOP_DIMS} in unrollings

    def test_no_reduction_dims(self, conv_layer, mid_config):
        for spatial in enumerate_spatial_unrollings(conv_layer, mid_config):
            for d in (Dim.C, Dim.FY, Dim.FX):
                assert spatial[d] == 1

    def test_spans_utilization_tiers(self, conv_layer, mid_config):
        """Both wide and narrow unrollings survive the tiered pruning."""
        unrollings = enumerate_spatial_unrollings(conv_layer, mid_config)
        pes_used = sorted(
            {
                eval_used(spatial)
                for spatial in unrollings
            }
        )
        assert pes_used[0] == 1
        assert pes_used[-1] >= mid_config.pes // 4
        assert len(pes_used) >= 3


def eval_used(spatial):
    used = 1
    for f in spatial.values():
        used *= f
    return used


class TestFixedDataflowMapper:
    def test_single_candidate(self, conv_layer, mid_config):
        result = FixedDataflowMapper()(conv_layer, mid_config)
        assert result.candidates_evaluated == 1
        assert result.feasible

    def test_incompatible_hardware_fails(self, conv_layer, mid_point):
        """Fixed dataflows cannot adapt around missing unicast links."""
        point = dict(mid_point)
        for op in ("I", "W", "O", "PSUM"):
            point[f"phys_unicast_{op}"] = 1
            point[f"virt_unicast_{op}"] = 1
        result = FixedDataflowMapper()(conv_layer, config_from_point(point))
        assert not result.feasible
        assert result.latency == float("inf")


class TestTopNMapper:
    def test_respects_budget(self, conv_layer, mid_config):
        result = TopNMapper(top_n=37)(conv_layer, mid_config)
        assert result.candidates_evaluated <= 37

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            TopNMapper(top_n=0)

    def test_beats_or_matches_fixed_dataflow(self, conv_layer, mid_config):
        fixed = FixedDataflowMapper()(conv_layer, mid_config)
        searched = TopNMapper(top_n=200)(conv_layer, mid_config)
        assert searched.latency <= fixed.latency

    def test_always_maps_on_any_hardware(self, conv_layer, edge_space):
        """The temporal fallback executes even on the minimum point."""
        config = config_from_point(edge_space.minimum_point())
        result = TopNMapper(top_n=120)(conv_layer, config)
        assert result.feasible

    def test_more_budget_never_hurts(self, conv_layer, mid_config):
        small = TopNMapper(top_n=30)(conv_layer, mid_config)
        large = TopNMapper(top_n=300)(conv_layer, mid_config)
        assert large.latency <= small.latency


class TestRandomSearchMapper:
    def test_respects_trials(self, conv_layer, mid_config):
        result = RandomSearchMapper(trials=25, seed=3)(conv_layer, mid_config)
        assert result.candidates_evaluated <= 25

    def test_deterministic_per_seed(self, conv_layer, mid_config):
        a = RandomSearchMapper(trials=40, seed=7)(conv_layer, mid_config)
        b = RandomSearchMapper(trials=40, seed=7)(conv_layer, mid_config)
        assert a.latency == b.latency

    def test_rejects_bad_trials(self):
        with pytest.raises(ValueError):
            RandomSearchMapper(trials=0)

    def test_usually_finds_feasible(self, conv_layer, mid_config):
        result = RandomSearchMapper(trials=100, seed=0)(
            conv_layer, mid_config
        )
        assert result.feasible
        assert result.feasible_candidates >= 1
