"""End-to-end tests for the campaign service, HTTP endpoint, and the
per-campaign journal routing (one campaign per journal file, exclusive
lock against collisions)."""

import asyncio
import json
import subprocess
import sys

import pytest

from repro.arch import build_edge_design_space
from repro.core.dse.constraints import Constraint, Sense
from repro.core.dse.explainable import ExplainableDSE
from repro.cost.evaluator import CostEvaluator
from repro.mapping.mapper import TopNMapper
from repro.perf.mapping_cache import MappingCache
from repro.service.machine import result_fingerprint
from repro.service.service import CampaignService, CampaignSpec, ServiceError
from repro.telemetry import JsonlSink, Tracer
from repro.telemetry.sinks import JournalLockedError


def _constraints():
    return [
        Constraint("area", "area_mm2", 75.0),
        Constraint("power", "power_w", 4.0),
        Constraint("throughput", "throughput", 200.0, Sense.GEQ),
    ]


@pytest.fixture(scope="module")
def factory(tiny_workload):
    def build(spec):
        return ExplainableDSE(
            build_edge_design_space(),
            CostEvaluator(
                tiny_workload,
                TopNMapper(top_n=60),
                mapping_cache=MappingCache(),
            ),
            _constraints(),
            max_evaluations=spec.iterations,
        )

    return build


@pytest.fixture(scope="module")
def solo(factory, tmp_path_factory):
    """Solo run() references keyed by iteration budget."""
    references = {}

    def reference(budget):
        if budget not in references:
            journal = (
                tmp_path_factory.mktemp("solo") / f"solo-{budget}.jsonl"
            )
            tracer = Tracer(JsonlSink(journal))
            result = factory(
                CampaignSpec(model="tiny", iterations=budget)
            ).run(tracer=tracer)
            tracer.close()
            references[budget] = (
                result_fingerprint(result),
                journal.read_bytes(),
            )
        return references[budget]

    return reference


class TestServiceLifecycle:
    def test_interleaved_campaigns_match_solo(
        self, factory, solo, tmp_path
    ):
        async def run():
            service = CampaignService(
                tmp_path / "spool", campaign_factory=factory, quantum=1
            )
            await service.start()
            ids = [
                await service.submit(
                    CampaignSpec(model="tiny", tenant=t, iterations=12)
                )
                for t in ("alice", "bob", "alice")
            ]
            statuses = [await service.wait(cid) for cid in ids]
            await service.stop()
            return service, ids, statuses

        service, ids, statuses = asyncio.run(run())
        expected_fp, expected_journal = solo(12)
        assert [s["status"] for s in statuses] == ["finished"] * 3
        for cid in ids:
            assert service.result(cid)["fingerprint"] == expected_fp
            journal = tmp_path / "spool" / cid / "journal.jsonl"
            # Identical config => byte-identical journal, per campaign,
            # despite the interleaving.
            assert journal.read_bytes() == expected_journal
        # The scheduler actually interleaved the two tenants.
        first_two = {cid for cid, _ in service.slice_log[:2]}
        assert len(first_two) == 2

    def test_restart_resumes_from_checkpoint(
        self, factory, solo, tmp_path
    ):
        """Service stopped mid-run; a fresh service on the same spool
        finishes every campaign with the solo fingerprint."""

        async def phase1():
            service = CampaignService(
                tmp_path / "spool", campaign_factory=factory, quantum=1
            )
            await service.start()
            ids = [
                await service.submit(
                    CampaignSpec(model="tiny", tenant=t, iterations=12)
                )
                for t in ("alice", "bob")
            ]
            while len(service.slice_log) < 3:
                await asyncio.sleep(0.01)
            await service.stop()
            return ids, [service.status(c)["status"] for c in ids]

        async def phase2(ids):
            service = CampaignService(
                tmp_path / "spool", campaign_factory=factory, quantum=1
            )
            await service.start()
            for cid in ids:
                await service.wait(cid)
            results = {cid: service.result(cid) for cid in ids}
            await service.stop()
            return results

        ids, mid_statuses = asyncio.run(phase1())
        assert any(s in ("checkpointed", "queued") for s in mid_statuses)
        results = asyncio.run(phase2(ids))
        expected_fp, _ = solo(12)
        for cid in ids:
            assert results[cid]["fingerprint"] == expected_fp

    def test_cancel_running_campaign(self, factory, tmp_path):
        async def run():
            service = CampaignService(
                tmp_path / "spool", campaign_factory=factory, quantum=1
            )
            await service.start()
            keep = await service.submit(
                CampaignSpec(model="tiny", tenant="alice", iterations=12)
            )
            victim = await service.submit(
                CampaignSpec(model="tiny", tenant="bob", iterations=12)
            )
            while len(service.slice_log) < 2:
                await asyncio.sleep(0.01)
            await service.cancel(victim)
            victim_status = await service.wait(victim)
            keep_status = await service.wait(keep)
            await service.stop()
            return service, keep, victim, keep_status, victim_status

        service, keep, victim, keep_status, victim_status = asyncio.run(
            run()
        )
        assert victim_status["status"] == "cancelled"
        assert keep_status["status"] == "finished"
        with pytest.raises(ServiceError):
            service.result(victim)

    def test_quota_starves_visibly(self, factory, tmp_path):
        async def run():
            service = CampaignService(
                tmp_path / "spool",
                campaign_factory=factory,
                quantum=1,
                default_quota=None,
            )
            await service.start()
            cid = await service.submit(
                CampaignSpec(
                    model="tiny",
                    tenant="alice",
                    iterations=12,
                    tenant_quota=1,
                )
            )
            for _ in range(400):
                await asyncio.sleep(0.01)
                if service.status(cid)["status"] == "starved":
                    break
            starved = service.status(cid)
            service.grant_quota("alice", 100)
            final = await service.wait(cid)
            await service.stop()
            return starved, final

        starved, final = asyncio.run(run())
        assert starved["status"] == "starved"
        assert starved["tenant_state"]["quota_exhausted"] is True
        assert final["status"] == "finished"

    def test_status_carries_slo_state(self, factory, tmp_path):
        async def run():
            service = CampaignService(
                tmp_path / "spool", campaign_factory=factory, quantum=1
            )
            await service.start()
            cid = await service.submit(
                CampaignSpec(model="tiny", tenant="alice", iterations=10)
            )
            final = await service.wait(cid)
            await service.stop()
            return final

        final = asyncio.run(run())
        assert final["slo"]["breaker"]["tripped"] is False
        assert final["slo"]["quarantined_trials"] == 0
        assert final["tenant_state"]["tenant"] == "alice"

    def test_unknown_campaign_raises(self, factory, tmp_path):
        async def run():
            service = CampaignService(
                tmp_path / "spool", campaign_factory=factory
            )
            await service.start()
            try:
                with pytest.raises(ServiceError):
                    service.status("c9999")
                with pytest.raises(ServiceError):
                    service.result("c9999")
            finally:
                await service.stop()

        asyncio.run(run())


class TestHttpEndpoint:
    def test_full_http_round_trip(self, factory, solo, tmp_path):
        from repro.service.client import ServiceClient, ServiceClientError
        from repro.service.http import ServiceEndpoint

        async def run():
            service = CampaignService(
                tmp_path / "spool", campaign_factory=factory, quantum=1
            )
            await service.start()
            endpoint = ServiceEndpoint(service)  # port 0: pick free port
            await endpoint.start()
            client = ServiceClient(f"http://127.0.0.1:{endpoint.port}")

            health = await asyncio.to_thread(client.healthz)
            assert health["ok"] is True
            assert health["status"] == "ok"
            assert health["counters"]["shed_429"] == 0
            cid = await asyncio.to_thread(
                client.submit,
                {"model": "tiny", "tenant": "alice", "iterations": 10},
            )
            final = await asyncio.to_thread(client.wait, cid, 300)
            assert final["status"] == "finished"
            result = await asyncio.to_thread(client.result, cid)
            listed = await asyncio.to_thread(client.list_campaigns)
            assert [c["campaign_id"] for c in listed] == [cid]
            journal_lines = await asyncio.to_thread(client.journal, cid)
            with pytest.raises(ServiceClientError) as missing:
                await asyncio.to_thread(client.status, "c9999")
            assert missing.value.status == 404

            await endpoint.stop()
            await service.stop()
            return cid, result, journal_lines

        cid, result, journal_lines = asyncio.run(run())
        expected_fp, expected_journal = solo(10)
        assert result["fingerprint"] == expected_fp
        # The journal stream serves exactly the solo journal's records.
        assert journal_lines == (
            expected_journal.decode().strip().splitlines()
        )

    def test_journal_offset_and_bad_requests(self, factory, tmp_path):
        import urllib.request

        from repro.service.client import ServiceClient, ServiceClientError
        from repro.service.http import ServiceEndpoint

        async def run():
            service = CampaignService(
                tmp_path / "spool", campaign_factory=factory, quantum=1
            )
            await service.start()
            endpoint = ServiceEndpoint(service)
            await endpoint.start()
            base = f"http://127.0.0.1:{endpoint.port}"
            client = ServiceClient(base)
            cid = await asyncio.to_thread(
                client.submit, {"model": "tiny", "iterations": 8}
            )
            await asyncio.to_thread(client.wait, cid, 300)
            full = await asyncio.to_thread(client.journal, cid)
            tail = await asyncio.to_thread(client.journal, cid, 5)
            assert tail == full[5:]

            with pytest.raises(ServiceClientError) as bad:
                await asyncio.to_thread(client.submit, {"tenant": "x"})
            assert bad.value.status == 400

            def bad_route():
                try:
                    urllib.request.urlopen(f"{base}/v1/nope", timeout=10)
                except urllib.error.HTTPError as exc:
                    return exc.code

            assert (await asyncio.to_thread(bad_route)) == 404
            await endpoint.stop()
            await service.stop()

        asyncio.run(run())


class TestFrontierEndpoint:
    """GET /v1/campaigns/{id}/frontier: the journaled Pareto archive."""

    def _expected_frontier(self, factory, budget):
        """The frontier a solo run's trial ledger produces."""
        from repro.experiments.pareto import archive_from_results

        result = factory(CampaignSpec(model="tiny", iterations=budget)).run()
        return archive_from_results([result]).snapshot()

    def test_frontier_http_round_trip(self, factory, tmp_path):
        from repro.service.client import ServiceClient
        from repro.service.http import ServiceEndpoint

        async def run():
            service = CampaignService(
                tmp_path / "spool", campaign_factory=factory, quantum=1
            )
            await service.start()
            endpoint = ServiceEndpoint(service)
            await endpoint.start()
            client = ServiceClient(f"http://127.0.0.1:{endpoint.port}")
            cid = await asyncio.to_thread(
                client.submit, {"model": "tiny", "iterations": 12}
            )
            await asyncio.to_thread(client.wait, cid, 300)
            payload = await asyncio.to_thread(client.frontier, cid)
            await endpoint.stop()
            await service.stop()
            return cid, payload

        cid, payload = asyncio.run(run())
        assert payload["campaign_id"] == cid
        assert payload["objectives"] == [
            "latency_ms",
            "energy_mj",
            "area_mm2",
            "power_w",
        ]
        expected = self._expected_frontier(factory, 12)
        assert payload["size"] == len(expected) > 0
        assert payload["frontier"] == expected
        assert (tmp_path / "spool" / cid / "frontier.jsonl").exists()

    def test_empty_frontier_is_200(self, tiny_workload, tmp_path):
        """A campaign with no feasible design serves an empty frontier,
        not an error."""
        from repro.service.client import ServiceClient
        from repro.service.http import ServiceEndpoint

        def hopeless_factory(spec):
            return ExplainableDSE(
                build_edge_design_space(),
                CostEvaluator(
                    tiny_workload,
                    TopNMapper(top_n=60),
                    mapping_cache=MappingCache(),
                ),
                [Constraint("area", "area_mm2", 1e-6)],
                max_evaluations=spec.iterations,
            )

        async def run():
            service = CampaignService(
                tmp_path / "spool",
                campaign_factory=hopeless_factory,
                quantum=1,
            )
            await service.start()
            endpoint = ServiceEndpoint(service)
            await endpoint.start()
            client = ServiceClient(f"http://127.0.0.1:{endpoint.port}")
            cid = await asyncio.to_thread(
                client.submit, {"model": "tiny", "iterations": 6}
            )
            await asyncio.to_thread(client.wait, cid, 300)
            payload = await asyncio.to_thread(client.frontier, cid)
            await endpoint.stop()
            await service.stop()
            return payload

        payload = asyncio.run(run())
        assert payload["size"] == 0
        assert payload["frontier"] == []

    def test_frontier_unknown_campaign_404(self, factory, tmp_path):
        from repro.service.client import ServiceClient, ServiceClientError
        from repro.service.http import ServiceEndpoint

        async def run():
            service = CampaignService(
                tmp_path / "spool", campaign_factory=factory
            )
            await service.start()
            endpoint = ServiceEndpoint(service)
            await endpoint.start()
            client = ServiceClient(f"http://127.0.0.1:{endpoint.port}")
            with pytest.raises(ServiceClientError) as missing:
                await asyncio.to_thread(client.frontier, "c9999")
            await endpoint.stop()
            await service.stop()
            return missing.value.status

        assert asyncio.run(run()) == 404

    def test_frontier_identical_across_restart(self, factory, tmp_path):
        """Kill the service mid-campaign; the resumed run — and a later
        cold recovery serving from frontier.jsonl — produce the exact
        frontier an uninterrupted run would."""

        async def phase1():
            service = CampaignService(
                tmp_path / "spool", campaign_factory=factory, quantum=1
            )
            await service.start()
            cid = await service.submit(
                CampaignSpec(model="tiny", tenant="alice", iterations=12)
            )
            while len(service.slice_log) < 2:
                await asyncio.sleep(0.01)
            await service.stop()
            return cid

        async def phase2(cid):
            service = CampaignService(
                tmp_path / "spool", campaign_factory=factory, quantum=1
            )
            await service.start()
            await service.wait(cid)
            frontier = service.frontier(cid)
            await service.stop()
            return frontier

        async def phase3(cid):
            # A third service on the same spool recovers the campaign as
            # settled (no live machine) and must serve the identical
            # frontier by replaying frontier.jsonl.
            service = CampaignService(
                tmp_path / "spool", campaign_factory=factory, quantum=1
            )
            await service.start()
            frontier = service.frontier(cid)
            await service.stop()
            return frontier

        cid = asyncio.run(phase1())
        resumed = asyncio.run(phase2(cid))
        recovered = asyncio.run(phase3(cid))
        expected = self._expected_frontier(factory, 12)
        assert resumed["frontier"] == expected
        assert recovered["frontier"] == expected


class TestJournalExclusivity:
    def test_second_sink_on_same_journal_rejected(self, tmp_path):
        journal = tmp_path / "one.jsonl"
        sink = JsonlSink(journal, exclusive=True)
        with pytest.raises(JournalLockedError):
            JsonlSink(journal, exclusive=True)
        sink.close()
        # Lock released on close: the path is reusable.
        JsonlSink(journal, exclusive=True).close()

    def test_stale_lock_from_dead_process_is_stolen(self, tmp_path):
        journal = tmp_path / "stale.jsonl"
        # A real pid that is certainly dead by the time we check.
        proc = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True,
            text=True,
            check=True,
        )
        dead_pid = int(proc.stdout.strip())
        (tmp_path / "stale.jsonl.lock").write_text(str(dead_pid))
        sink = JsonlSink(journal, exclusive=True)  # steals, no raise
        sink.close()

    def test_unreadable_lock_is_stolen(self, tmp_path):
        journal = tmp_path / "junk.jsonl"
        (tmp_path / "junk.jsonl.lock").write_text("not-a-pid")
        JsonlSink(journal, exclusive=True).close()

    def test_service_routes_journals_per_campaign(self, factory, tmp_path):
        async def run():
            service = CampaignService(
                tmp_path / "spool", campaign_factory=factory, quantum=1
            )
            await service.start()
            ids = [
                await service.submit(
                    CampaignSpec(model="tiny", tenant="t", iterations=8)
                )
                for _ in range(2)
            ]
            for cid in ids:
                await service.wait(cid)
            await service.stop()
            return ids

        ids = asyncio.run(run())
        journals = [
            tmp_path / "spool" / cid / "journal.jsonl" for cid in ids
        ]
        assert all(j.exists() for j in journals)
        assert len({str(j) for j in journals}) == 2
        # Each journal decodes cleanly on its own — no interleaving.
        for journal in journals:
            for line in journal.read_text().splitlines():
                json.loads(line)


class TestSpecRoundTrip:
    def test_spec_dict_round_trip(self):
        spec = CampaignSpec(
            model="resnet18",
            tenant="alice",
            iterations=7,
            tenant_weight=2,
            tenant_quota=30,
            shm_eval=False,
        )
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_ignores_unknown_keys(self):
        spec = CampaignSpec.from_dict({"model": "m", "bogus": 1})
        assert spec.model == "m"
