"""Roofline validation of the latency model (property-based)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cost.execution_info import InfeasibleMapping
from repro.cost.latency import evaluate_layer_mapping
from repro.cost.validation import (
    roofline_bounds,
    validate_execution,
)
from repro.mapping.blackbox_mappers import random_genome
from repro.mapping.dataflow import build_output_stationary_mapping
from repro.mapping.mapper import TopNMapper
from repro.workloads.layers import conv2d, gemm
from repro.workloads.registry import load_workload


class TestRooflineBounds:
    def test_compute_bound(self, conv_layer, mid_config):
        bounds = roofline_bounds(conv_layer, mid_config)
        assert bounds.compute_cycles == conv_layer.macs / mid_config.pes

    def test_bandwidth_bound(self, conv_layer, mid_config):
        bounds = roofline_bounds(conv_layer, mid_config)
        expected = (
            conv_layer.total_footprint_bytes / mid_config.dram_bytes_per_cycle
        )
        assert bounds.bandwidth_cycles == pytest.approx(expected)

    def test_latency_bound_is_max(self, conv_layer, mid_config):
        bounds = roofline_bounds(conv_layer, mid_config)
        assert bounds.latency_cycles == max(
            bounds.compute_cycles, bounds.bandwidth_cycles
        )


class TestModelAgainstRoofline:
    def test_fixed_dataflow_respects_rooflines(self, mid_config):
        for model in ("resnet18", "bert"):
            for layer in load_workload(model).layers:
                mapping = build_output_stationary_mapping(layer, mid_config)
                if mapping is None:
                    continue
                outcome = evaluate_layer_mapping(layer, mapping, mid_config)
                if isinstance(outcome, InfeasibleMapping):
                    continue
                assert validate_execution(layer, outcome, mid_config) == []

    def test_optimized_mappings_respect_rooflines(self, mid_config):
        mapper = TopNMapper(top_n=120)
        for layer in load_workload("resnet18").layers:
            result = mapper(layer, mid_config)
            assert result.feasible
            assert (
                validate_execution(layer, result.execution, mid_config) == []
            )


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_random_mappings_respect_rooflines(seed, mid_config):
    layer = conv2d("h", 12, 24, (10, 10), kernel=(3, 3))
    genome = random_genome(layer, mid_config, random.Random(seed))
    outcome = evaluate_layer_mapping(layer, genome.to_mapping(), mid_config)
    if isinstance(outcome, InfeasibleMapping):
        return
    assert validate_execution(layer, outcome, mid_config) == []


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_gemm_mappings_respect_rooflines(seed, mid_config):
    layer = gemm("g", 96, 64, 48)
    genome = random_genome(layer, mid_config, random.Random(seed))
    outcome = evaluate_layer_mapping(layer, genome.to_mapping(), mid_config)
    if isinstance(outcome, InfeasibleMapping):
        return
    assert validate_execution(layer, outcome, mid_config) == []
