"""Synthetic-data tests for figure-module helper math (no DSE runs)."""

import math

import pytest

from repro.experiments.fig9 import Fig9Result, REFERENCE_TECHNIQUE
from repro.experiments.fig10 import Fig10Result
from repro.experiments.fig12 import Fig12Result
from repro.experiments.fig14 import EDGE_TPU, EYERISS, Fig14Result
from repro.experiments.table2 import Table2Result
from repro.experiments.table3 import Table3Result


class TestFig9Math:
    def _result(self, reference, other):
        return Fig9Result(
            latency_ms={
                REFERENCE_TECHNIQUE: reference,
                "Baseline": other,
            },
            iterations=100,
        )

    def test_geomean_ratio(self):
        result = self._result(
            {"m1": 1.0, "m2": 2.0}, {"m1": 4.0, "m2": 2.0}
        )
        # ratios 4 and 1 -> geomean 2.
        assert result.geomean_speedup_over("Baseline") == pytest.approx(2.0)

    def test_infeasible_models_excluded(self):
        result = self._result(
            {"m1": 1.0, "m2": 2.0}, {"m1": 3.0, "m2": math.inf}
        )
        assert result.geomean_speedup_over("Baseline") == pytest.approx(3.0)

    def test_no_overlap_is_inf(self):
        result = self._result({"m1": math.inf}, {"m1": math.inf})
        assert math.isinf(result.geomean_speedup_over("Baseline"))


class TestFig10Math:
    def test_time_ratio_and_mean_evals(self):
        result = Fig10Result(
            seconds={"A": {"m": 10.0}, "B": {"m": 2.0}},
            evaluations={"A": {"m": 100}, "B": {"m": 50}},
            iterations=100,
        )
        ratios = result.mean_time_ratio_vs("B")
        assert ratios["A"] == pytest.approx(5.0)
        assert result.mean_evaluations() == {"A": 100.0, "B": 50.0}


class TestFig12Math:
    def test_mean_fractions(self):
        result = Fig12Result(
            area_power_fraction={"A": {"m1": 0.8, "m2": 0.4}},
            all_constraints_fraction={"A": {"m1": 0.2, "m2": 0.0}},
        )
        means = result.mean_fractions()
        assert means["A"]["area+power"] == pytest.approx(0.6)
        assert means["A"]["all constraints"] == pytest.approx(0.1)


class TestTable2Cells:
    def test_cell_markers(self):
        result = Table2Result(
            latency_ms={"A": {"m": 5.0, "n": math.inf, "o": math.inf}},
            met_all={"A": {"m": True, "n": False, "o": False}},
            found_area_power={"A": {"m": True, "n": True, "o": False}},
            iterations=100,
        )
        assert result.cell("A", "m") == "5"
        assert result.cell("A", "n") == "-"
        assert result.cell("A", "o") == "-*"


class TestTable3Average:
    def test_average_skips_na(self):
        result = Table3Result(
            reduction={"A": {"m": 0.2, "n": None, "o": 0.4}}
        )
        assert result.average("A") == pytest.approx(0.3)

    def test_all_na_is_none(self):
        result = Table3Result(reduction={"A": {"m": None}})
        assert result.average("A") is None


class TestFig14Math:
    def test_reference_efficiencies(self):
        assert EDGE_TPU.area_efficiency("mobilenetv2") == pytest.approx(
            EDGE_TPU.fps["mobilenetv2"] / EDGE_TPU.area_mm2
        )
        assert EYERISS.energy_efficiency("vgg16") == pytest.approx(
            0.7 / 0.278
        )

    def test_geomean_skips_missing(self):
        result = Fig14Result(
            rows={
                "m1": {"dse fps": 100.0, "edge-tpu fps": 50.0},
                "m2": {"dse fps": math.nan, "edge-tpu fps": 10.0},
                "m3": {"dse fps": 10.0, "edge-tpu fps": None},
            }
        )
        assert result.geomean_throughput_ratio("edge-tpu") == pytest.approx(
            2.0
        )

    def test_geomean_empty_is_nan(self):
        result = Fig14Result(rows={"m": {"dse fps": None}})
        assert math.isnan(result.geomean_throughput_ratio("edge-tpu"))
