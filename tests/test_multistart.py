"""Tests for multi-start Explainable-DSE (paper §C exploration variant)."""

import pytest

from repro.core.dse.constraints import Constraint
from repro.core.dse.explainable import ExplainableDSE
from repro.cost.evaluator import CostEvaluator
from repro.mapping.mapper import TopNMapper


@pytest.fixture
def dse(edge_space, tiny_workload):
    evaluator = CostEvaluator(tiny_workload, TopNMapper(top_n=50))
    return ExplainableDSE(
        edge_space,
        evaluator,
        [Constraint("area", "area_mm2", 75.0)],
        max_evaluations=30,
    )


class TestMultiStart:
    def test_budget_split_across_starts(self, dse):
        result = dse.run_multi_start(starts=3, seed=1)
        assert result.evaluations <= 30
        assert result.technique == "explainable-multistart"

    def test_budget_restored_after_run(self, dse):
        dse.run_multi_start(starts=3, seed=1)
        assert dse.max_evaluations == 30

    def test_best_at_least_single_start(self, dse, edge_space):
        multi = dse.run_multi_start(starts=3, seed=1)
        dse.max_evaluations = 10
        single = dse.run(edge_space.minimum_point())
        # The first start IS the single run (shared cache, same point),
        # so the merged best can only be equal or better.
        assert multi.best_objective <= single.best_objective

    def test_explicit_initial_points(self, dse, edge_space, mid_point):
        result = dse.run_multi_start(
            initial_points=[edge_space.minimum_point(), mid_point]
        )
        notes = {t.note.split(":")[0] for t in result.trials}
        assert notes == {"start0", "start1"}

    def test_trial_indices_contiguous(self, dse):
        result = dse.run_multi_start(starts=2, seed=0)
        assert [t.index for t in result.trials] == list(
            range(len(result.trials))
        )

    def test_explanations_mark_starts(self, dse):
        result = dse.run_multi_start(starts=2, seed=0)
        assert any("=== start 0" in line for line in result.explanations)
        assert any("=== start 1" in line for line in result.explanations)
