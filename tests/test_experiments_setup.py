"""Tests for the experiment setup and harness plumbing."""

import pytest

from repro.core.dse.constraints import Sense
from repro.experiments.harness import (
    DYNAMIC_TECHNIQUES,
    PAPER_TECHNIQUES,
    ComparisonRunner,
    TechniqueSpec,
)
from repro.experiments.setup import (
    BASELINE_TECHNIQUES,
    THROUGHPUT_REQUIREMENTS,
    edge_constraints,
    make_evaluator,
    run_baseline,
    run_explainable_dse,
)
from repro.mapping.mapper import (
    FixedDataflowMapper,
    RandomSearchMapper,
    TopNMapper,
)
from repro.workloads.registry import MODEL_NAMES


class TestConstraints:
    def test_every_model_has_requirements(self):
        assert set(THROUGHPUT_REQUIREMENTS) == set(MODEL_NAMES)

    def test_constraint_structure(self):
        constraints = edge_constraints("resnet18")
        by_name = {c.name: c for c in constraints}
        assert by_name["area"].bound == 75.0
        assert by_name["power"].bound == 4.0
        assert by_name["throughput"].sense is Sense.GEQ
        assert by_name["throughput"].bound == 40.0

    def test_large_vision_threshold(self):
        by_name = {c.name: c for c in edge_constraints("vgg16")}
        assert by_name["throughput"].bound == 10.0

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            edge_constraints("alexnet")


class TestEvaluatorFactory:
    def test_fixed_mode(self):
        evaluator = make_evaluator("resnet18", mapping_mode="fixed")
        assert isinstance(evaluator.mapper, FixedDataflowMapper)

    def test_codesign_mode(self):
        evaluator = make_evaluator("resnet18", mapping_mode="codesign", top_n=42)
        assert isinstance(evaluator.mapper, TopNMapper)
        assert evaluator.mapper.top_n == 42

    def test_random_mapper_mode(self):
        evaluator = make_evaluator(
            "resnet18", mapping_mode="random-mapper", random_mapping_trials=17
        )
        assert isinstance(evaluator.mapper, RandomSearchMapper)
        assert evaluator.mapper.trials == 17

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            make_evaluator("resnet18", mapping_mode="magic")


class TestRunners:
    def test_run_explainable_small(self):
        result = run_explainable_dse(
            "resnet18", iterations=8, mapping_mode="codesign", top_n=40
        )
        assert result.technique == "explainable-codesign"
        assert 1 <= result.evaluations <= 8

    def test_run_baseline_small(self):
        result = run_baseline(
            "random", "resnet18", iterations=6, mapping_mode="fixed", seed=1
        )
        assert result.technique == "random-fixdf"
        assert result.evaluations <= 6

    def test_unknown_baseline_raises(self):
        with pytest.raises(KeyError):
            run_baseline("gradient-descent", "resnet18")

    def test_all_registered_techniques_exist(self):
        assert set(BASELINE_TECHNIQUES) == {
            "grid",
            "random",
            "annealing",
            "genetic",
            "bayesian",
            "hypermapper",
            "reinforcement",
            "local-search",
        }


class TestHarness:
    def test_technique_specs_cover_paper_rows(self):
        labels = {spec.label for spec in PAPER_TECHNIQUES}
        assert "ExplainableDSE-Codesign" in labels
        assert "HyperMapper 2.0-FixDF" in labels
        assert len(PAPER_TECHNIQUES) == 11
        assert len(DYNAMIC_TECHNIQUES) == 10

    def test_spec_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            TechniqueSpec("x", "newton", "fixed")

    def test_runner_memoizes(self):
        runner = ComparisonRunner(
            iterations=5, top_n=40, random_mapping_trials=20
        )
        spec = TechniqueSpec("Random Search-FixDF", "random", "fixed")
        a = runner.run(spec, "resnet18")
        b = runner.run(spec, "resnet18")
        assert a is b

    def test_run_matrix_shape(self):
        runner = ComparisonRunner(
            iterations=4, top_n=40, random_mapping_trials=20
        )
        specs = [TechniqueSpec("Random Search-FixDF", "random", "fixed")]
        matrix = runner.run_matrix(specs, models=["resnet18", "bert"])
        assert set(matrix) == {"Random Search-FixDF"}
        assert set(matrix["Random Search-FixDF"]) == {"resnet18", "bert"}
