"""Equivalence and memoization tests for compiled bottleneck trees.

The contract under test: with ``REPRO_TREE_COMPILE`` on or off, every
tree evaluates to *bit-identical* values — the compiled postfix program
replays the recursive walk's exact operation order, so even rounding
behaviour matches.  The structure memo must hit for structurally equal
trees regardless of leaf values, and the counters must surface through
``CostEvaluator.perf_summary()``.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bottleneck import compile as tree_compile
from repro.core.bottleneck.analyzer import analyze_tree
from repro.core.bottleneck.tree import (
    Node,
    NodeOp,
    add,
    div,
    leaf,
    maximum,
    mul,
)
from repro.verify.invariants import check_tree, recompute_value

from tests.test_verify_invariants import (
    _MutantNode,
    _mutate_node,
    _sample_tree,
)


def _recursive_value(node: Node) -> float:
    """The recursive reference walk, independent of ``Node.value``."""
    if node.op is NodeOp.LEAF:
        return float(node.raw_value)
    values = [_recursive_value(child) for child in node.children]
    if node.op is NodeOp.MAX:
        return max(values)
    if node.op is NodeOp.ADD:
        return sum(values)
    if node.op is NodeOp.MUL:
        acc = 1.0
        for value in values:
            acc *= value
        return acc
    numerator, denominator = values
    if denominator == 0:
        return math.inf
    return numerator / denominator


# -- random tree strategy ------------------------------------------------------

_leaf_values = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)


def _tree_strategy() -> st.SearchStrategy:
    def extend(children: st.SearchStrategy) -> st.SearchStrategy:
        lists = st.lists(children, min_size=1, max_size=4)
        return st.one_of(
            st.builds(lambda cs: add("a", cs), lists),
            st.builds(lambda cs: mul("m", cs), lists),
            st.builds(lambda cs: maximum("x", cs), lists),
            st.builds(lambda n, d: div("d", n, d), children, children),
        )

    return st.recursive(
        st.builds(lambda v: leaf("l", v), _leaf_values), extend, max_leaves=24
    )


class TestCompiledEquivalence:
    @given(tree=_tree_strategy())
    @settings(max_examples=120, deadline=None)
    def test_compiled_matches_recursive_walk(self, tree):
        def same(a, b):
            # bit-identical incl. inf; nan==nan (inf/inf in both paths)
            return a == b or (math.isnan(a) and math.isnan(b))

        compiled = tree_compile.evaluate_node(tree)
        assert same(compiled, _recursive_value(tree))
        # id-keyed bulk evaluation agrees on every node, not just the root
        values = tree_compile.evaluate_all(tree)
        for node in tree.walk():
            assert same(values[id(node)], _recursive_value(node))

    def test_division_by_zero_is_inf_exactly(self):
        tree = div("d", leaf("n", 5.0), leaf("z", 0.0))
        assert tree_compile.evaluate_node(tree) == math.inf

    def test_node_value_identical_across_knob(self, monkeypatch):
        tree = _sample_tree()
        monkeypatch.setenv("REPRO_TREE_COMPILE", "0")
        recursive = [node.value for node in tree.walk()]
        monkeypatch.setenv("REPRO_TREE_COMPILE", "1")
        compiled = [node.value for node in tree.walk()]
        assert recursive == compiled

    def test_analyze_tree_identical_across_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_TREE_COMPILE", "0")
        recursive = [
            (f.path, f.contribution, f.scaling)
            for f in analyze_tree(_sample_tree())
        ]
        monkeypatch.setenv("REPRO_TREE_COMPILE", "1")
        compiled = [
            (f.path, f.contribution, f.scaling)
            for f in analyze_tree(_sample_tree())
        ]
        assert recursive == compiled


class TestMutantDetectionUnderCompile:
    """The compiled path must not mask the invariant checker: every
    seeded combinator mutant of the verify mutation harness stays caught
    with ``REPRO_TREE_COMPILE=1`` (``recompute_value`` is deliberately
    recursive, so compiled evaluation is cross-checked independently)."""

    def test_every_seeded_mutant_still_caught(self, monkeypatch):
        monkeypatch.setenv("REPRO_TREE_COMPILE", "1")
        honest = _sample_tree()
        internal = [n for n in honest.walk() if n.op is not NodeOp.LEAF]
        for target in internal:
            mutant_tree = _mutate_node(honest, target)
            assert mutant_tree.find(target.name).value != target.value
            violations = check_tree(mutant_tree)
            assert violations, f"mutant at {target.name!r} not caught"

    def test_recompute_value_stays_recursive_reference(self, monkeypatch):
        """``recompute_value`` must agree with the compiled walk on an
        honest tree (that agreement is what catches mutants)."""
        monkeypatch.setenv("REPRO_TREE_COMPILE", "1")
        tree = _sample_tree()
        for node in tree.walk():
            assert recompute_value(node) == node.value

    def test_mutant_subclass_value_wins_over_compile(self, monkeypatch):
        """A ``value`` override on a Node subclass is honored: compiled
        evaluation reads ``node.value``-equivalent semantics only for
        plain nodes."""
        monkeypatch.setenv("REPRO_TREE_COMPILE", "1")
        mutant = _MutantNode(
            name="x",
            op=NodeOp.MAX,
            children=(leaf("a", 1.0), leaf("b", 9.0)),
            raw_value=None,
        )
        assert mutant.value == 1.0  # min(), per the mutant's perturbation


class TestStructureMemo:
    def setup_method(self):
        # the memo is process-global; start each test from a blank slate
        tree_compile.clear_memo()
        tree_compile.reset_stats()

    def test_same_structure_different_leaves_hits(self):
        first = add("s", [leaf("a", 1.0), mul("p", [leaf("b", 2.0), leaf("c", 3.0)])])
        second = add("s", [leaf("a", 8.0), mul("p", [leaf("b", 5.0), leaf("c", 7.0)])])
        tree_compile.evaluate_node(first)
        stats = tree_compile.stats()
        assert stats.misses == 1
        tree_compile.evaluate_node(second)
        assert stats.misses == 1  # structure memo hit despite new leaves
        assert stats.hits == 1
        assert tree_compile.evaluate_node(second) == 43.0

    def test_different_structure_misses(self):
        tree_compile.evaluate_node(add("s", [leaf("a", 1.0), leaf("b", 2.0)]))
        before = tree_compile.stats().misses
        tree_compile.evaluate_node(
            mul("p", [leaf("a", 1.0), leaf("b", 2.0), leaf("c", 3.0)])
        )
        assert tree_compile.stats().misses == before + 1

    def test_hit_rate_and_reset(self):
        tree_compile.reset_stats()
        tree = add("s", [leaf("a", 1.0)])
        tree_compile.evaluate_node(tree)
        tree_compile.evaluate_node(tree)
        stats = tree_compile.stats()
        assert 0.0 < stats.hit_rate <= 1.0
        assert stats.evaluations == 2
        tree_compile.reset_stats()
        assert tree_compile.stats().evaluations == 0


class TestPerfSummaryCounters:
    def test_tree_compile_section_in_perf_summary(self, tiny_workload):
        from repro.cost.evaluator import CostEvaluator
        from repro.mapping.mapper import TopNMapper

        evaluator = CostEvaluator(tiny_workload, TopNMapper(top_n=10))
        section = evaluator.perf_summary()["tree_compile"]
        assert set(section) >= {
            "enabled",
            "hits",
            "misses",
            "compiled",
            "evaluations",
            "hit_rate",
        }

    def test_section_is_journal_volatile(self):
        from repro.telemetry.events import deterministic_perf_counters

        summary = {"evaluations": 3, "tree_compile": {"hits": 9}}
        assert "tree_compile" not in deterministic_perf_counters(summary)

    def test_enabled_tracks_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_TREE_COMPILE", "0")
        assert not tree_compile.enabled()
        monkeypatch.setenv("REPRO_TREE_COMPILE", "1")
        assert tree_compile.enabled()
