"""Tests for the command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_explore_args(self):
        args = build_parser().parse_args(
            ["explore", "resnet18", "--iterations", "9", "--mapping", "fixed"]
        )
        assert args.model == "resnet18"
        assert args.iterations == 9
        assert args.mapping == "fixed"

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explore", "alexnet"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table7"])
        assert args.name == "table7"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_trace_and_resume_mutually_exclusive(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["explore", "resnet18", "--trace", "a.jsonl",
                 "--resume", "b.jsonl"]
            )
        assert excinfo.value.code == 2

    def test_report_args(self):
        args = build_parser().parse_args(
            ["report", "run.jsonl", "--format", "json"]
        )
        assert args.journal == "run.jsonl"
        assert args.format == "json"


class TestCommands:
    def test_list_models(self, capsys):
        assert main(["list-models"]) == 0
        out = capsys.readouterr().out
        assert "resnet18" in out
        assert "wav2vec2" in out

    def test_explore_small(self, capsys):
        code = main(["explore", "resnet18", "--iterations", "12"])
        out = capsys.readouterr().out
        assert "evaluations" in out
        assert code in (0, 1)

    def test_experiment_table7(self, capsys):
        assert main(["experiment", "table7"]) == 0
        assert "Table 7" in capsys.readouterr().out

    def test_experiment_matrix_with_model_subset(self, capsys):
        code = main(
            [
                "experiment",
                "fig9",
                "--iterations",
                "5",
                "--models",
                "resnet18",
            ]
        )
        assert code == 0
        assert "Fig. 9" in capsys.readouterr().out


class TestTraceResumeReport:
    def test_trace_then_report_then_resume(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        code = main(
            ["explore", "resnet18", "--iterations", "8",
             "--trace", str(journal)]
        )
        assert code in (0, 1)
        assert journal.exists()
        assert (tmp_path / "run.jsonl.ckpt").exists()
        assert "trace journal" in capsys.readouterr().out

        assert main(["report", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "# DSE explanation report" in out
        assert "## Step 1" in out

        report_path = tmp_path / "report.json"
        assert main(
            ["report", str(journal), "--format", "json",
             "--out", str(report_path)]
        ) == 0
        assert "steps" in report_path.read_text()

        code = main(
            ["explore", "resnet18", "--iterations", "14",
             "--resume", str(journal)]
        )
        assert code in (0, 1)

    def test_trace_into_missing_directory_exits_2(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["explore", "resnet18", "--trace",
                 str(tmp_path / "no" / "dir" / "x.jsonl")]
            )
        assert excinfo.value.code == 2

    def test_resume_missing_journal_exits_2(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["explore", "resnet18", "--resume",
                 str(tmp_path / "missing.jsonl")]
            )
        assert excinfo.value.code == 2

    def test_resume_journal_without_checkpoint_exits_2(self, tmp_path):
        journal = tmp_path / "orphan.jsonl"
        journal.write_text("")
        with pytest.raises(SystemExit) as excinfo:
            main(["explore", "resnet18", "--resume", str(journal)])
        assert excinfo.value.code == 2

    def test_report_missing_journal_exits_2(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["report", str(tmp_path / "none.jsonl")])
        assert excinfo.value.code == 2

    def test_report_corrupt_journal_exits_2(self, tmp_path, capsys):
        journal = tmp_path / "bad.jsonl"
        journal.write_text("garbage\n")
        assert main(["report", str(journal)]) == 2
        assert "not valid JSON" in capsys.readouterr().err
