"""Tests for the command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_explore_args(self):
        args = build_parser().parse_args(
            ["explore", "resnet18", "--iterations", "9", "--mapping", "fixed"]
        )
        assert args.model == "resnet18"
        assert args.iterations == 9
        assert args.mapping == "fixed"

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explore", "alexnet"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table7"])
        assert args.name == "table7"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_list_models(self, capsys):
        assert main(["list-models"]) == 0
        out = capsys.readouterr().out
        assert "resnet18" in out
        assert "wav2vec2" in out

    def test_explore_small(self, capsys):
        code = main(["explore", "resnet18", "--iterations", "12"])
        out = capsys.readouterr().out
        assert "evaluations" in out
        assert code in (0, 1)

    def test_experiment_table7(self, capsys):
        assert main(["experiment", "table7"]) == 0
        assert "Table 7" in capsys.readouterr().out

    def test_experiment_matrix_with_model_subset(self, capsys):
        code = main(
            [
                "experiment",
                "fig9",
                "--iterations",
                "5",
                "--models",
                "resnet18",
            ]
        )
        assert code == 0
        assert "Fig. 9" in capsys.readouterr().out
