"""Tests for the mapping-space size analysis (Table 7)."""

import math

import pytest

from repro.mapping.factorization import count_ordered_factorizations
from repro.mapping.space_size import analyze_mapping_space
from repro.workloads.layers import conv2d, gemm


@pytest.fixture
def small_conv():
    return conv2d("c", 8, 16, (8, 8), kernel=(3, 3))


class TestColumns:
    def test_pruning_cascade(self, small_conv, mid_config):
        size = analyze_mapping_space(small_conv, config=mid_config, samples=50)
        # A >= B >= C and F >= G >= H (each pruning shrinks the space).
        assert size.tile_sizings_log10 >= size.valid_factor_tilings_log10
        assert (
            size.valid_factor_tilings_log10 >= size.hw_valid_tilings_log10
        )
        assert size.full_space_log10 >= size.factor_space_log10
        assert size.factor_space_log10 >= size.reuse_aware_space_log10

    def test_factor_count_exact(self, small_conv):
        size = analyze_mapping_space(small_conv, config=None, samples=0)
        expected = 0.0
        from repro.mapping.mapping import padded_bounds

        for bound in padded_bounds(small_conv).values():
            expected += math.log10(count_ordered_factorizations(bound, 4))
        assert size.valid_factor_tilings_log10 == pytest.approx(expected)

    def test_gemm_gets_three_orderings(self):
        layer = gemm("g", 64, 128, 32)
        size = analyze_mapping_space(layer, config=None, samples=0)
        assert size.unique_reuse_orderings == 3

    def test_conv_gets_fifteen_orderings(self, small_conv):
        size = analyze_mapping_space(small_conv, config=None, samples=0)
        assert size.unique_reuse_orderings == 15

    def test_hw_column_absent_without_config(self, small_conv):
        size = analyze_mapping_space(small_conv, config=None, samples=0)
        assert size.hw_valid_tilings_log10 is None

    def test_space_formulas(self, small_conv):
        size = analyze_mapping_space(small_conv, config=None, samples=0)
        assert size.full_space_log10 == pytest.approx(
            size.tile_sizings_log10 + 2 * size.orderings_per_level_log10
        )
        assert size.reuse_aware_space_log10 == pytest.approx(
            size.valid_factor_tilings_log10 + 2 * math.log10(15)
        )


class TestScaleSanity:
    def test_large_layer_reaches_paper_magnitudes(self, mid_config):
        """VGG conv1_2-like layers have O(10^28) tile sizings and
        O(10^34+) full mapping spaces (Table 7)."""
        layer = conv2d("vgg_conv1_2", 64, 64, (224, 224))
        size = analyze_mapping_space(layer, config=None, samples=0)
        assert size.tile_sizings_log10 >= 25
        assert size.full_space_log10 >= 30

    def test_sampling_estimate_stable_sign(self, small_conv, mid_config):
        a = analyze_mapping_space(
            small_conv, config=mid_config, samples=100, seed=0
        )
        b = analyze_mapping_space(
            small_conv, config=mid_config, samples=100, seed=1
        )
        assert abs(a.hw_valid_tilings_log10 - b.hw_valid_tilings_log10) < 1.0
