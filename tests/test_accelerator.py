"""Unit tests for the accelerator configuration template."""

import pytest

from repro.arch.accelerator import (
    AcceleratorConfig,
    config_from_point,
    point_from_config,
)
from repro.workloads.layers import OPERANDS, Operand


def _uniform_noc(value_phys=16, value_virt=8):
    return (
        {op: value_phys for op in OPERANDS},
        {op: value_virt for op in OPERANDS},
    )


class TestAcceleratorConfig:
    def test_physical_links_formula(self):
        phys, virt = _uniform_noc(value_phys=4)
        config = AcceleratorConfig(
            pes=1024,
            l1_bytes=256,
            l2_kb=512,
            offchip_bw_mbps=8192,
            noc_datawidth_bits=128,
            phys_unicast_factor=phys,
            virt_unicast=virt,
        )
        # links = pes * i / 64 = 1024 * 4 / 64
        assert config.physical_links(Operand.I) == 64

    def test_physical_links_floor_is_one(self):
        phys, virt = _uniform_noc(value_phys=1)
        config = AcceleratorConfig(
            pes=64,
            l1_bytes=8,
            l2_kb=64,
            offchip_bw_mbps=1024,
            noc_datawidth_bits=16,
            phys_unicast_factor=phys,
            virt_unicast=virt,
        )
        assert config.physical_links(Operand.W) == 1

    def test_effective_links_include_time_sharing(self):
        phys, virt = _uniform_noc(value_phys=2, value_virt=8)
        config = AcceleratorConfig(
            pes=256,
            l1_bytes=64,
            l2_kb=128,
            offchip_bw_mbps=2048,
            noc_datawidth_bits=64,
            phys_unicast_factor=phys,
            virt_unicast=virt,
        )
        assert config.effective_links(Operand.O) == config.physical_links(
            Operand.O
        ) * 8

    def test_bandwidth_conversions(self):
        phys, virt = _uniform_noc()
        config = AcceleratorConfig(
            pes=256,
            l1_bytes=64,
            l2_kb=128,
            offchip_bw_mbps=8192,
            noc_datawidth_bits=128,
            phys_unicast_factor=phys,
            virt_unicast=virt,
            freq_mhz=500,
        )
        # 8192 MB/s at 500 MHz = 16.384 bytes per cycle.
        assert config.dram_bytes_per_cycle == pytest.approx(16.384)
        assert config.noc_bytes_per_cycle == 16.0

    def test_capacity_properties(self):
        phys, virt = _uniform_noc()
        config = AcceleratorConfig(
            pes=128,
            l1_bytes=512,
            l2_kb=256,
            offchip_bw_mbps=1024,
            noc_datawidth_bits=32,
            phys_unicast_factor=phys,
            virt_unicast=virt,
        )
        assert config.l2_bytes == 256 * 1024
        assert config.total_l1_bytes == 128 * 512

    def test_rejects_bad_values(self):
        phys, virt = _uniform_noc()
        with pytest.raises(ValueError):
            AcceleratorConfig(
                pes=0,
                l1_bytes=8,
                l2_kb=64,
                offchip_bw_mbps=1024,
                noc_datawidth_bits=16,
                phys_unicast_factor=phys,
                virt_unicast=virt,
            )

    def test_rejects_missing_operand_noc(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(
                pes=64,
                l1_bytes=8,
                l2_kb=64,
                offchip_bw_mbps=1024,
                noc_datawidth_bits=16,
                phys_unicast_factor={Operand.I: 1},
                virt_unicast={Operand.I: 1},
            )

    def test_describe_mentions_key_resources(self, mid_config):
        text = mid_config.describe()
        assert "PEs=1024" in text
        assert "L2=512kB" in text


class TestPointConversion:
    def test_roundtrip(self, edge_space, mid_point):
        config = config_from_point(mid_point)
        assert point_from_config(config) == mid_point

    def test_config_from_point_reads_all_nocs(self, mid_point):
        point = dict(mid_point)
        point["phys_unicast_W"] = 32
        config = config_from_point(point)
        assert config.phys_unicast_factor[Operand.W] == 32
        assert config.phys_unicast_factor[Operand.I] == 16

    def test_frequency_and_precision_defaults(self, mid_point):
        config = config_from_point(mid_point)
        assert config.freq_mhz == 500
        assert config.bytes_per_element == 2
