"""Tests for the energy-objective bottleneck model."""

import pytest

from repro.core.bottleneck.energy_model import (
    build_energy_bottleneck_model,
    build_energy_tree,
)
from repro.core.bottleneck.latency_model import LayerExecutionContext
from repro.core.dse.constraints import Constraint
from repro.core.dse.explainable import ExplainableDSE
from repro.cost.energy import layer_energy
from repro.cost.evaluator import CostEvaluator
from repro.cost.latency import evaluate_layer_mapping
from repro.mapping.dataflow import build_output_stationary_mapping
from repro.mapping.mapper import TopNMapper


@pytest.fixture
def context(conv_layer, mid_config):
    mapping = build_output_stationary_mapping(conv_layer, mid_config)
    execution = evaluate_layer_mapping(conv_layer, mapping, mid_config)
    return LayerExecutionContext(
        layer=conv_layer, execution=execution, config=mid_config
    )


class TestEnergyTree:
    def test_matches_energy_model(self, context):
        """The tree's total equals the cost model's energy breakdown."""
        tree = build_energy_tree(context)
        expected = layer_energy(context.execution, context.config)
        assert tree.value == pytest.approx(expected.total_pj, rel=1e-9)

    def test_components_present(self, context):
        tree = build_energy_tree(context)
        for name in ("e_mac", "e_rf", "e_noc", "e_spm", "e_dram"):
            assert tree.find(name) is not None

    def test_per_operand_dram_children(self, context):
        tree = build_energy_tree(context)
        for op in ("I", "W", "O", "PSUM"):
            assert tree.find(f"e_dram_{op}") is not None


class TestEnergyModel:
    def test_predicts_buffer_growth(self, context, mid_point):
        model = build_energy_bottleneck_model()
        predictions = model.predict(
            context,
            current_values=mid_point,
            execution=context.execution,
            extra={"config": context.config},
        )
        # Data movement dominates energy on this config; mitigation must
        # target the buffers.
        parameters = {p.parameter for p in predictions}
        assert parameters <= {"l1_bytes", "l2_kb"}

    def test_energy_objective_dse(self, edge_space, tiny_workload):
        """Explainable-DSE minimizing energy instead of latency."""
        evaluator = CostEvaluator(tiny_workload, TopNMapper(top_n=50))
        dse = ExplainableDSE(
            edge_space,
            evaluator,
            [Constraint("area", "area_mm2", 75.0)],
            objective="energy_mj",
            latency_model=build_energy_bottleneck_model(),
            max_evaluations=20,
        )
        result = dse.run()
        assert result.found_feasible
        initial = result.trials[0].costs["energy_mj"]
        assert result.best.costs["energy_mj"] <= initial
