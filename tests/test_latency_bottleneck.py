"""Tests for the DNN-accelerator latency bottleneck model (§4.7)."""

import math

import pytest

from repro.core.bottleneck.analyzer import analyze_tree
from repro.core.bottleneck.api import MitigationContext
from repro.core.bottleneck.latency_model import (
    LayerExecutionContext,
    build_latency_bottleneck_model,
    build_latency_tree,
    mitigate_noc_width,
    mitigate_offchip_bw,
    mitigate_pes,
    mitigate_rf_size,
    mitigate_spm_size,
)
from repro.cost.latency import evaluate_layer_mapping
from repro.mapping.dataflow import build_output_stationary_mapping
from repro.workloads.layers import Operand


@pytest.fixture
def context(conv_layer, mid_config):
    mapping = build_output_stationary_mapping(conv_layer, mid_config)
    execution = evaluate_layer_mapping(conv_layer, mapping, mid_config)
    return LayerExecutionContext(
        layer=conv_layer, execution=execution, config=mid_config
    )


class TestTree:
    def test_root_value_is_layer_latency(self, context):
        tree = build_latency_tree(context)
        assert tree.value == pytest.approx(context.execution.latency)

    def test_structure_matches_fig8(self, context):
        tree = build_latency_tree(context)
        assert tree.find("t_comp") is not None
        assert tree.find("t_noc") is not None
        assert tree.find("t_dma") is not None
        for op in ("I", "W", "O", "PSUM"):
            assert tree.find(f"t_noc_{op}") is not None
            assert tree.find(f"dma_{op}") is not None

    def test_dma_children_sum(self, context):
        tree = build_latency_tree(context)
        assert tree.find("t_dma").value == pytest.approx(
            context.execution.t_dma
        )

    def test_operand_metadata(self, context):
        tree = build_latency_tree(context)
        node = tree.find("dma_W")
        assert node.metadata["operand"] is Operand.W
        assert 0 <= node.metadata["footprint_fraction"] <= 1

    def test_analyzer_finds_dominant_factor(self, context):
        tree = build_latency_tree(context)
        findings = analyze_tree(tree)
        expected = {
            "comp": "t_comp",
            "noc": "t_noc",
            "dma": "t_dma",
        }[context.execution.bottleneck_factor]
        assert findings[0].path[1] == expected


def _mitigation_context(context, scaling=4.0, operand=Operand.W):
    from repro.core.bottleneck.analyzer import BottleneckFinding
    from repro.core.bottleneck.tree import leaf

    finding = BottleneckFinding(
        node=leaf("dma_W", 1.0, operand=operand),
        path=("latency", "t_dma", "dma_W"),
        contribution=1.0,
        scaling=scaling,
    )
    return MitigationContext(
        scaling=scaling,
        finding=finding,
        execution=context.execution,
        extra={"config": context.config},
    )


class TestMitigations:
    def test_pes_scales_linearly(self, context):
        ctx = _mitigation_context(context, scaling=4.0)
        assert mitigate_pes(256, ctx) == pytest.approx(1024)

    def test_offchip_bw_formula(self, context):
        """offchip_BW_new = footprint / (t_dma / s) * freq (paper §4.7)."""
        ctx = _mitigation_context(context, scaling=2.0)
        execution = context.execution
        expected = (
            execution.total_offchip_bytes
            / (execution.t_dma / 2.0)
            * context.config.freq_mhz
        )
        assert mitigate_offchip_bw(1024, ctx) == pytest.approx(expected)

    def test_noc_width_clamped_to_one_shot_broadcast(self, context):
        ctx = _mitigation_context(context, scaling=64.0)
        max_width = context.execution.noc_bytes_per_group[Operand.W] * 8
        assert mitigate_noc_width(64, ctx) <= max_width

    def test_rf_size_not_below_current_when_no_reuse(self, context):
        ctx = _mitigation_context(context, scaling=4.0)
        value = mitigate_rf_size(context.config.l1_bytes, ctx)
        assert value > 0

    def test_spm_size_uses_amdahl(self, context):
        """The SPM target scaling is bounded by the Amdahl speedup of the
        bottleneck operand's footprint share."""
        ctx = _mitigation_context(context, scaling=8.0)
        value = mitigate_spm_size(context.config.l2_kb, ctx)
        assert value > 0
        assert math.isfinite(value)


class TestModelAssembly:
    def test_model_covers_all_parameters(self):
        model = build_latency_bottleneck_model()
        mitigated = set(model.mitigations)
        for params in model.affected_parameters.values():
            for param in params:
                assert param in mitigated

    def test_predicts_for_real_execution(self, context, mid_point):
        model = build_latency_bottleneck_model()
        predictions = model.predict(
            context,
            current_values=mid_point,
            execution=context.execution,
            extra={"config": context.config},
        )
        assert predictions
        for prediction in predictions:
            assert prediction.parameter in mid_point
            assert prediction.value > 0

    def test_t_comp_associates_link_parameters(self):
        model = build_latency_bottleneck_model()
        params = model.affected_parameters["t_comp"]
        assert "pes" in params
        assert "virt_unicast_I" in params
