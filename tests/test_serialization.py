"""Tests for DSE result serialization."""

import math

import pytest

from repro.core.dse.constraints import Constraint
from repro.core.dse.result import DSEResult, TrialRecord
from repro.core.dse.serialization import (
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)


@pytest.fixture
def result():
    trials = [
        TrialRecord(
            index=0,
            point={"pes": 64, "l2_kb": 64},
            costs={"latency_ms": math.inf, "area_mm2": 2.0},
            feasible=False,
            mappable=False,
            utilizations={"area": 0.03},
            note="initial",
        ),
        TrialRecord(
            index=1,
            point={"pes": 512, "l2_kb": 128},
            costs={"latency_ms": 4.5, "area_mm2": 6.0},
            feasible=True,
            mappable=True,
            utilizations={"area": 0.08},
            note="mitigation: pes",
        ),
    ]
    return DSEResult(
        technique="explainable",
        model="resnet18",
        trials=trials,
        best=trials[1],
        evaluations=2,
        wall_seconds=1.25,
        explanations=["[attempt 1] scaled pes"],
    )


class TestRoundTrip:
    def test_dict_roundtrip(self, result):
        again = result_from_dict(result_to_dict(result))
        assert again.technique == result.technique
        assert again.model == result.model
        assert again.evaluations == result.evaluations
        assert again.best.index == 1
        assert again.explanations == result.explanations
        assert len(again.trials) == 2

    def test_infinities_survive(self, result):
        again = result_from_dict(result_to_dict(result))
        assert again.trials[0].costs["latency_ms"] == math.inf

    def test_file_roundtrip(self, result, tmp_path):
        path = tmp_path / "run.json"
        save_result(result, path)
        again = load_result(path)
        assert again.best_objective == result.best_objective
        assert again.trials[1].point == result.trials[1].point

    def test_metrics_recomputable(self, result):
        again = result_from_dict(result_to_dict(result))
        assert again.feasibility_fraction() == result.feasibility_fraction()
        assert (
            again.best_so_far_trajectory()
            == result.best_so_far_trajectory()
        )

    def test_no_best(self, result):
        data = result_to_dict(result)
        data["best_index"] = None
        again = result_from_dict(data)
        assert again.best is None

    def test_rejects_bad_schema(self, result):
        data = result_to_dict(result)
        data["schema"] = 99
        with pytest.raises(ValueError):
            result_from_dict(data)

    def test_rejects_dangling_best(self, result):
        data = result_to_dict(result)
        data["best_index"] = 42
        with pytest.raises(ValueError):
            result_from_dict(data)
