"""Unit and property tests for design-space parameters."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.parameters import Parameter, geometric_values, linear_values


class TestValueGenerators:
    def test_geometric(self):
        assert geometric_values(64, 4096) == (64, 128, 256, 512, 1024, 2048, 4096)

    def test_geometric_custom_ratio(self):
        assert geometric_values(1, 27, ratio=3) == (1, 3, 9, 27)

    def test_geometric_rejects_bad_args(self):
        with pytest.raises(ValueError):
            geometric_values(0, 8)
        with pytest.raises(ValueError):
            geometric_values(1, 8, ratio=1)

    def test_linear(self):
        assert linear_values(16, 4) == (16, 32, 48, 64)

    def test_linear_rejects_bad_args(self):
        with pytest.raises(ValueError):
            linear_values(0, 4)


class TestParameter:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Parameter("p", ())

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Parameter("p", (1, 1, 2))

    def test_rejects_unsorted_numeric(self):
        with pytest.raises(ValueError):
            Parameter("p", (2, 1, 3))

    def test_categorical_keeps_order(self):
        p = Parameter("p", ("ws", "os", "is"), categorical=True)
        assert p.values == ("ws", "os", "is")

    def test_cardinality_min_max(self):
        p = Parameter("p", (1, 2, 4, 8))
        assert p.cardinality == 4
        assert p.minimum == 1
        assert p.maximum == 8

    def test_index_of(self):
        p = Parameter("p", (1, 2, 4))
        assert p.index_of(4) == 2
        with pytest.raises(ValueError):
            p.index_of(3)

    def test_contains(self):
        p = Parameter("p", (1, 2, 4))
        assert p.contains(2)
        assert not p.contains(3)

    def test_round_up_picks_smallest_geq(self):
        p = Parameter("p", (1, 2, 4, 8))
        assert p.round_up(3) == 4
        assert p.round_up(4) == 4
        assert p.round_up(100) == 8
        assert p.round_up(0.5) == 1

    def test_round_down_picks_largest_leq(self):
        p = Parameter("p", (1, 2, 4, 8))
        assert p.round_down(3) == 2
        assert p.round_down(4) == 4
        assert p.round_down(0.5) == 1
        assert p.round_down(100) == 8

    def test_rounding_categorical_raises(self):
        p = Parameter("p", ("a", "b"), categorical=True)
        with pytest.raises(TypeError):
            p.round_up(1)
        with pytest.raises(TypeError):
            p.round_down(1)

    def test_neighbors(self):
        p = Parameter("p", (1, 2, 4))
        assert p.neighbors(2) == (1, 4)
        assert p.neighbors(1) == (2,)
        assert p.neighbors(4) == (2,)


@given(
    values=st.lists(
        st.integers(1, 10_000), min_size=1, max_size=30, unique=True
    ).map(sorted),
    target=st.floats(0.1, 20_000),
)
def test_rounding_properties(values, target):
    p = Parameter("p", tuple(values))
    up = p.round_up(target)
    down = p.round_down(target)
    assert up in values and down in values
    if target <= values[-1]:
        assert up >= target
    if target >= values[0]:
        assert down <= target
    assert down <= up or target < values[0] or target > values[-1]


@given(
    values=st.lists(
        st.integers(0, 1000), min_size=2, max_size=20, unique=True
    ).map(sorted)
)
def test_neighbors_are_adjacent(values):
    p = Parameter("p", tuple(values))
    for v in values:
        for n in p.neighbors(v):
            assert abs(p.index_of(n) - p.index_of(v)) == 1
