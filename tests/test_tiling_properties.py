"""Property-based tests (hypothesis) for the tiling primitives.

Two contracts the mapper stack silently leans on everywhere:

* :func:`repro.mapping.dataflow.greedy_tile_counts` — chosen tile factors
  always divide the remaining bounds (so tile products can never exceed
  the padded dims) and the grown footprint stays within the byte budget;
* :func:`repro.mapping.mapping.padded_bounds` — padding is 7-smooth and
  *minimal* (no smaller 7-smooth integer would have covered the bound).
"""

from hypothesis import given, settings, strategies as st

from repro.mapping.dataflow import greedy_tile_counts
from repro.mapping.factorization import divisors, smooth_pad
from repro.mapping.mapping import padded_bounds, padded_bounds_tuple
from repro.workloads.layers import LOOP_DIMS, LayerShape, OperatorType

_OPERATORS = st.sampled_from(list(OperatorType))


@st.composite
def layers(draw):
    operator = draw(_OPERATORS)
    dims = tuple(draw(st.integers(1, 24)) for _ in LOOP_DIMS)
    stride = 1 if operator is OperatorType.GEMM else draw(st.integers(1, 3))
    return LayerShape(
        name="prop", operator=operator, dims=dims, stride=stride
    )


@st.composite
def tiling_inputs(draw):
    layer = draw(layers())
    bounds = padded_bounds_tuple(layer)
    # remaining bounds at this level: any divisor of the padded bound
    # (an upper level already claimed the complement).
    remaining = tuple(
        draw(st.sampled_from(divisors(bound))) for bound in bounds
    )
    order = draw(st.permutations(range(len(LOOP_DIMS))))
    order = tuple(order[: draw(st.integers(0, len(LOOP_DIMS)))])
    budget = draw(st.integers(0, 4096))
    base_tile = tuple(draw(st.integers(1, 3)) for _ in LOOP_DIMS)
    return layer, remaining, order, budget, base_tile


def _footprint(layer, ext, bytes_per_element):
    """Independent restatement of the documented I+W+O tile footprint."""
    n, m, c, oy, ox, fy, fx = ext
    dwise = layer.operator is OperatorType.DWCONV
    w = m * (1 if dwise else c) * fy * fx
    o = n * m * oy * ox
    i = (
        n
        * (m if dwise else c)
        * ((oy - 1) * layer.stride + fy)
        * ((ox - 1) * layer.stride + fx)
    )
    return (i + w + o) * bytes_per_element


class TestGreedyTileCounts:
    @settings(max_examples=200, deadline=None)
    @given(tiling_inputs())
    def test_factors_divide_and_respect_bounds(self, inputs):
        """Chosen factors divide the remaining bounds, so the product of
        per-level tile counts can never exceed the padded dims; untouched
        dims stay at 1."""
        layer, remaining, order, budget, base_tile = inputs
        chosen = greedy_tile_counts(layer, remaining, order, budget,
                                    base_tile, 2)
        for col, factor in enumerate(chosen):
            assert remaining[col] % factor == 0
            assert 1 <= factor <= remaining[col]
            if col not in order:
                assert factor == 1

    @settings(max_examples=200, deadline=None)
    @given(tiling_inputs())
    def test_footprint_within_budget_or_unit(self, inputs):
        """The grown tile fits the byte budget — except in the documented
        degenerate case where even the unit tile overflows (the caller
        rejects that candidate) and all factors stay 1."""
        layer, remaining, order, budget, base_tile = inputs
        chosen = greedy_tile_counts(layer, remaining, order, budget,
                                    base_tile, 2)
        ext = tuple(b * f for b, f in zip(base_tile, chosen))
        if _footprint(layer, base_tile, 2) > budget:
            assert chosen == (1,) * len(LOOP_DIMS)
        else:
            assert _footprint(layer, ext, 2) <= budget

    @settings(max_examples=100, deadline=None)
    @given(tiling_inputs())
    def test_greedy_choices_are_maximal(self, inputs):
        """Replay of the greedy contract: at each step of ``order``, the
        next divisor above the chosen factor would have overflowed."""
        layer, remaining, order, budget, base_tile = inputs
        if _footprint(layer, base_tile, 2) > budget:
            return
        chosen = greedy_tile_counts(layer, remaining, order, budget,
                                    base_tile, 2)
        ext = list(base_tile)
        for col in order:
            opts = divisors(remaining[col])
            factor = chosen[col]
            ext[col] = base_tile[col] * factor
            nxt = [f for f in opts if f > factor]
            if nxt:
                probe = list(ext)
                probe[col] = base_tile[col] * nxt[0]
                assert _footprint(layer, tuple(probe), 2) > budget


class TestPaddedBounds:
    @staticmethod
    def _is_seven_smooth(n: int) -> bool:
        for p in (2, 3, 5, 7):
            while n % p == 0:
                n //= p
        return n == 1

    @settings(max_examples=200, deadline=None)
    @given(layers())
    def test_padding_covers_and_is_smooth(self, layer):
        padded = padded_bounds(layer)
        for d in LOOP_DIMS:
            assert padded[d] >= layer.dim(d)
            assert self._is_seven_smooth(padded[d])

    @settings(max_examples=200, deadline=None)
    @given(layers())
    def test_padding_is_minimal(self, layer):
        """No smaller 7-smooth integer lies between the bound and its
        padding (padded iterations are pure idle work, so every extra
        unit costs utilization)."""
        padded = padded_bounds(layer)
        for d in LOOP_DIMS:
            for candidate in range(layer.dim(d), padded[d]):
                assert not self._is_seven_smooth(candidate)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(1, 2000))
    def test_smooth_pad_agrees_with_tuple_api(self, n):
        layer = LayerShape(
            name="prop",
            operator=OperatorType.GEMM,
            dims=(1, n, 1, 1, 1, 1, 1),
        )
        assert padded_bounds_tuple(layer)[1] == smooth_pad(n)
