"""Behavioural tests for every baseline optimizer."""

import pytest

from repro.core.dse.constraints import Constraint
from repro.cost.evaluator import CostEvaluator
from repro.mapping.mapper import TopNMapper
from repro.optim import (
    BayesianOptimization,
    GeneticAlgorithm,
    GridSearch,
    HyperMapperDSE,
    RandomSearch,
    ReinforcementLearningDSE,
    SimulatedAnnealing,
)

ALL_OPTIMIZERS = [
    GridSearch,
    RandomSearch,
    SimulatedAnnealing,
    GeneticAlgorithm,
    BayesianOptimization,
    HyperMapperDSE,
    ReinforcementLearningDSE,
]


@pytest.fixture
def make_optimizer(edge_space, tiny_workload):
    def factory(cls, budget=15, seed=3, **kwargs):
        evaluator = CostEvaluator(tiny_workload, TopNMapper(top_n=50))
        constraints = [
            Constraint("area", "area_mm2", 75.0),
            Constraint("power", "power_w", 4.0),
        ]
        return cls(
            edge_space,
            evaluator,
            constraints,
            max_evaluations=budget,
            seed=seed,
            **kwargs,
        )

    return factory


@pytest.mark.parametrize("cls", ALL_OPTIMIZERS)
def test_runs_within_budget(make_optimizer, cls):
    result = make_optimizer(cls).run()
    assert 1 <= result.evaluations <= 15
    assert result.technique == cls.name


@pytest.mark.parametrize("cls", ALL_OPTIMIZERS)
def test_points_are_valid(make_optimizer, cls, edge_space):
    result = make_optimizer(cls).run()
    for trial in result.trials:
        edge_space.validate(trial.point)


@pytest.mark.parametrize(
    "cls", [RandomSearch, SimulatedAnnealing, GeneticAlgorithm]
)
def test_deterministic_per_seed(make_optimizer, cls):
    a = make_optimizer(cls, seed=11).run()
    b = make_optimizer(cls, seed=11).run()
    assert [t.point for t in a.trials] == [t.point for t in b.trials]


class TestGridSearch:
    def test_strided_coverage_varies_leading_params(self, make_optimizer):
        result = make_optimizer(GridSearch, budget=12).run()
        pes_values = {t.point["pes"] for t in result.trials}
        assert len(pes_values) > 1

    def test_rejects_bad_points_per_axis(self, edge_space, tiny_workload):
        evaluator = CostEvaluator(tiny_workload, TopNMapper(top_n=40))
        with pytest.raises(ValueError):
            GridSearch(edge_space, evaluator, [], points_per_axis=0)


class TestSimulatedAnnealing:
    def test_rejects_bad_cooling(self, edge_space, tiny_workload):
        evaluator = CostEvaluator(tiny_workload, TopNMapper(top_n=40))
        with pytest.raises(ValueError):
            SimulatedAnnealing(edge_space, evaluator, [], cooling=1.5)

    def test_neighbor_moves_stay_in_space(self, make_optimizer, edge_space):
        result = make_optimizer(SimulatedAnnealing, budget=10).run()
        for trial in result.trials:
            edge_space.validate(trial.point)


class TestGeneticAlgorithm:
    def test_rejects_bad_population(self, edge_space, tiny_workload):
        evaluator = CostEvaluator(tiny_workload, TopNMapper(top_n=40))
        with pytest.raises(ValueError):
            GeneticAlgorithm(edge_space, evaluator, [], population_size=1)
        with pytest.raises(ValueError):
            GeneticAlgorithm(
                edge_space, evaluator, [], population_size=4, elites=4
            )

    def test_initial_point_seeded(self, make_optimizer, mid_point):
        optimizer = make_optimizer(GeneticAlgorithm, budget=8)
        result = optimizer.run()  # run() signature: no initial for GA path
        assert result.trials


class TestBayesianFamilies:
    def test_bo_switches_to_surrogate(self, make_optimizer):
        result = make_optimizer(
            BayesianOptimization, budget=14, initial_samples=5
        ).run()
        notes = [t.note for t in result.trials]
        assert "bo-init" in notes
        assert "bo-ei" in notes

    def test_hypermapper_acquires_after_init(self, make_optimizer):
        result = make_optimizer(
            HyperMapperDSE, budget=14, initial_samples=5
        ).run()
        notes = [t.note for t in result.trials]
        assert "hm-init" in notes
        assert "hm-ei" in notes


class TestReinforcementLearning:
    def test_policy_improves_reward_signal(self, make_optimizer):
        result = make_optimizer(ReinforcementLearningDSE, budget=20).run()
        assert result.trials
        assert all(t.note == "rl-episode" for t in result.trials)
