"""Degenerate trial-budget behavior of every searching mapper.

A zero or negative budget must be a loud ``ValueError`` — both at
construction and at search time (the budget is a public attribute, so a
campaign harness can zero it out after construction) — never a silent
``MappingResult(None, None, 0, 0)`` that downstream code would read as
"this hardware is infeasible"."""

import pytest

from repro.arch.accelerator import AcceleratorConfig
from repro.mapping.blackbox_mappers import (
    AnnealingMapper,
    BayesianMapper,
    GeneticMapper,
)
from repro.mapping.mapper import RandomSearchMapper
from repro.workloads.layers import Operand, conv2d

ALL_MAPPERS = (
    RandomSearchMapper,
    AnnealingMapper,
    GeneticMapper,
    BayesianMapper,
)


@pytest.fixture
def layer():
    return conv2d("l", 4, 8, (7, 7))


@pytest.fixture
def config():
    return AcceleratorConfig(
        pes=64,
        l1_bytes=256,
        l2_kb=128,
        offchip_bw_mbps=8192,
        noc_datawidth_bits=32,
        phys_unicast_factor={op: 64 for op in Operand},
        virt_unicast={op: 512 for op in Operand},
    )


class TestConstructorRejection:
    @pytest.mark.parametrize("mapper_cls", ALL_MAPPERS)
    @pytest.mark.parametrize("trials", [0, -1, -5])
    def test_nonpositive_trials_rejected(self, mapper_cls, trials):
        with pytest.raises(ValueError, match="trials|budget"):
            mapper_cls(trials=trials)


class TestSearchTimeRejection:
    @pytest.mark.parametrize("mapper_cls", ALL_MAPPERS)
    @pytest.mark.parametrize("trials", [0, -3])
    def test_mutated_budget_raises_instead_of_empty_result(
        self, mapper_cls, trials, layer, config
    ):
        """Bypassing the constructor check by mutating ``trials`` must not
        silently produce a no-mapping result."""
        mapper = mapper_cls(trials=5)
        mapper.trials = trials
        with pytest.raises(ValueError, match="budget"):
            mapper(layer, config)

    def test_random_search_with_trace_raises_too(self, layer, config):
        mapper = RandomSearchMapper(trials=5)
        mapper.trials = 0
        with pytest.raises(ValueError, match="budget"):
            mapper.search_with_trace(layer, config)


class TestMinimalBudgetWorks:
    @pytest.mark.parametrize("mapper_cls", ALL_MAPPERS)
    def test_single_trial_returns_result(self, mapper_cls, layer, config):
        """trials=1 is the smallest legal budget and must complete."""
        result = mapper_cls(trials=1)(layer, config)
        assert result.candidates_evaluated >= 1
        assert result.feasible_candidates >= 0

    def test_bayesian_budget_below_initial_samples(self, layer, config):
        """A budget smaller than the seeding phase still terminates and
        respects the trial count."""
        result = BayesianMapper(trials=2, initial_samples=10)(layer, config)
        assert result.candidates_evaluated >= 2
