"""Cross-module integration tests: the paper's claims in miniature."""

import math

import pytest

from repro.core.dse.constraints import Constraint, Sense
from repro.core.dse.explainable import ExplainableDSE
from repro.cost.evaluator import CostEvaluator
from repro.experiments.setup import (
    edge_constraints,
    make_evaluator,
    run_baseline,
    run_explainable_dse,
)
from repro.mapping.mapper import TopNMapper
from repro.workloads.registry import load_workload


@pytest.fixture(scope="module")
def resnet_runs():
    """One explainable and two baseline runs on ResNet18 (shared)."""
    budget = 40
    explainable = run_explainable_dse(
        "resnet18", iterations=budget, mapping_mode="codesign", top_n=60
    )
    random_fix = run_baseline(
        "random", "resnet18", iterations=budget, mapping_mode="fixed", seed=0
    )
    hyper_fix = run_baseline(
        "hypermapper",
        "resnet18",
        iterations=budget,
        mapping_mode="fixed",
        seed=0,
    )
    return explainable, random_fix, hyper_fix


class TestHeadlineClaims:
    def test_explainable_finds_feasible_quickly(self, resnet_runs):
        explainable, _, _ = resnet_runs
        assert explainable.found_feasible
        first = next(t.index for t in explainable.trials if t.feasible)
        assert first <= 20  # "tens of iterations"

    def test_explainable_beats_blackbox_latency(self, resnet_runs):
        explainable, random_fix, hyper_fix = resnet_runs
        for baseline in (random_fix, hyper_fix):
            assert explainable.best_objective <= baseline.best_objective * 1.2

    def test_explainable_feasibility_fraction_higher(self, resnet_runs):
        explainable, random_fix, _ = resnet_runs
        assert explainable.feasibility_fraction() >= (
            random_fix.feasibility_fraction()
        )

    def test_per_attempt_reduction_dominates(self, resnet_runs):
        explainable, random_fix, hyper_fix = resnet_runs
        assert explainable.per_attempt_reduction() >= max(
            random_fix.per_attempt_reduction(),
            hyper_fix.per_attempt_reduction(),
        ) - 0.02

    def test_explanations_name_bottleneck_layers(self, resnet_runs):
        explainable, _, _ = resnet_runs
        text = "\n".join(explainable.explanations)
        assert "conv" in text  # layer names surfaced
        assert "critical cost" in text


class TestCodesignVsFixedDataflow:
    def test_codesign_at_least_as_good(self):
        """§6.2: including the software space enables better solutions."""
        budget = 40
        codesign = run_explainable_dse(
            "resnet18", iterations=budget, mapping_mode="codesign", top_n=60
        )
        fixed = run_explainable_dse(
            "resnet18", iterations=budget, mapping_mode="fixed"
        )
        if fixed.found_feasible and codesign.found_feasible:
            assert codesign.best_objective <= fixed.best_objective * 1.1


class TestAblation:
    def _run(self, **kwargs):
        evaluator = make_evaluator("resnet18", "codesign", top_n=60)
        from repro.arch import build_edge_design_space

        dse = ExplainableDSE(
            build_edge_design_space(),
            evaluator,
            edge_constraints("resnet18"),
            max_evaluations=30,
            **kwargs,
        )
        return dse.run()

    def test_max_aggregation_runs(self):
        result = self._run(aggregation_rule="max")
        assert result.trials

    def test_mean_aggregation_runs(self):
        result = self._run(aggregation_rule="mean")
        assert result.trials

    def test_unknown_aggregation_rejected(self):
        with pytest.raises(ValueError):
            self._run(aggregation_rule="median")

    def test_budget_unaware_variant_runs(self):
        result = self._run(budget_aware=False)
        assert result.trials


class TestObjectiveGenerality:
    def test_energy_objective_end_to_end(self):
        from repro.core.bottleneck.energy_model import (
            build_energy_bottleneck_model,
        )
        from repro.arch import build_edge_design_space

        evaluator = make_evaluator("resnet18", "codesign", top_n=50)
        dse = ExplainableDSE(
            build_edge_design_space(),
            evaluator,
            [Constraint("area", "area_mm2", 75.0)],
            objective="energy_mj",
            latency_model=build_energy_bottleneck_model(),
            max_evaluations=20,
        )
        result = dse.run()
        assert result.found_feasible
        # best selection honours the energy objective
        energies = [
            t.costs["energy_mj"] for t in result.trials if t.feasible
        ]
        assert result.best.costs["energy_mj"] == min(energies)
