"""Tests for the cross-process cache plane (mmap segment store).

Covered: round-trips across independent handles (stand-ins for separate
processes), write-through from :class:`MappingCache`, in-flight-append
tolerance, corrupt-segment quarantine with unchanged campaign results,
and the ``REPRO_CACHE_PLANE`` wiring of ``shared_cache()``.
"""

import os
import warnings

from repro.cost.evaluator import CostEvaluator
from repro.mapping.mapper import TopNMapper
from repro.perf import mapping_cache as mapping_cache_module
from repro.perf.cache_plane import (
    KIND_RESULT,
    KIND_TRACE,
    CachePlane,
    PlaneStats,
)
from repro.perf.mapping_cache import MappingCache, shared_cache


def _segments(directory):
    return sorted(
        name for name in os.listdir(directory) if name.endswith(".seg")
    )


class TestCachePlaneStore:
    def test_round_trip_across_handles(self, tmp_path):
        writer = CachePlane(str(tmp_path))
        reader = CachePlane(str(tmp_path))
        key = (("mapper", 3), ("layer", "conv1"), ("cfg", (64, 128)))
        assert writer.put(KIND_RESULT, key, {"latency": 42.5})
        assert reader.get(KIND_RESULT, key) == {"latency": 42.5}
        assert reader.stats.hits == 1
        assert writer.stats.puts == 1

    def test_kinds_are_distinct_namespaces(self, tmp_path):
        plane = CachePlane(str(tmp_path))
        key = ("k",)
        plane.put(KIND_RESULT, key, "result")
        plane.put(KIND_TRACE, key, "trace")
        assert plane.get(KIND_RESULT, key) == "result"
        assert plane.get(KIND_TRACE, key) == "trace"

    def test_duplicate_put_is_skipped(self, tmp_path):
        plane = CachePlane(str(tmp_path))
        key = ("dup",)
        assert plane.put(KIND_RESULT, key, 1) is True
        assert plane.put(KIND_RESULT, key, 2) is False
        assert plane.get(KIND_RESULT, key) == 1
        assert plane.stats.puts == 1

    def test_miss_counts_and_returns_none(self, tmp_path):
        plane = CachePlane(str(tmp_path))
        assert plane.get(KIND_RESULT, ("absent",)) is None
        assert plane.stats.misses == 1

    def test_per_process_segments_do_not_collide(self, tmp_path):
        a = CachePlane(str(tmp_path))
        b = CachePlane(str(tmp_path))
        a.put(KIND_RESULT, ("a",), 1)
        b.put(KIND_RESULT, ("b",), 2)
        assert len(_segments(tmp_path)) == 2
        fresh = CachePlane(str(tmp_path))
        assert fresh.get(KIND_RESULT, ("a",)) == 1
        assert fresh.get(KIND_RESULT, ("b",)) == 2
        assert fresh.entry_count() == 2

    def test_incomplete_trailing_record_waits_not_quarantines(self, tmp_path):
        writer = CachePlane(str(tmp_path))
        writer.put(KIND_RESULT, ("done",), "v")
        segment = tmp_path / _segments(tmp_path)[0]
        complete = segment.read_bytes()
        # simulate a sibling mid-append: a full record minus its tail
        writer2 = CachePlane(str(tmp_path))
        writer2.put(KIND_RESULT, ("inflight",), "w")
        other = [s for s in _segments(tmp_path) if (tmp_path / s) != segment][0]
        partial_path = tmp_path / other
        partial = partial_path.read_bytes()
        partial_path.write_bytes(partial[:-3])

        reader = CachePlane(str(tmp_path))
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any quarantine warning fails
            assert reader.get(KIND_RESULT, ("done",)) == "v"
            assert reader.get(KIND_RESULT, ("inflight",)) is None
        assert reader.stats.segments_quarantined == 0
        # the append completes -> the next refresh picks the record up
        partial_path.write_bytes(partial)
        assert reader.get(KIND_RESULT, ("inflight",)) == "w"
        assert complete == segment.read_bytes()  # untouched neighbour

    def test_corrupt_segment_quarantined_others_survive(self, tmp_path):
        a = CachePlane(str(tmp_path))
        a.put(KIND_RESULT, ("good",), "kept")
        before = set(_segments(tmp_path))
        b = CachePlane(str(tmp_path))
        b.put(KIND_RESULT, ("bad",), "lost")
        victim = tmp_path / (set(_segments(tmp_path)) - before).pop()
        # flip payload bytes of b's segment (CRC now fails)
        raw = bytearray(victim.read_bytes())
        raw[-4:] = b"\xff\xff\xff\xff"
        victim.write_bytes(bytes(raw))

        reader = CachePlane(str(tmp_path))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert reader.get(KIND_RESULT, ("good",)) == "kept"
            assert reader.get(KIND_RESULT, ("bad",)) is None
        assert reader.stats.segments_quarantined == 1
        assert any(
            "cache-plane segment is corrupt" in str(w.message) for w in caught
        )
        corrupt = [
            name
            for name in os.listdir(tmp_path)
            if name.endswith(".corrupt")
        ]
        assert len(corrupt) == 1

    def test_bad_magic_quarantines(self, tmp_path):
        plane = CachePlane(str(tmp_path))
        plane.put(KIND_RESULT, ("x",), 1)
        segment = tmp_path / _segments(tmp_path)[0]
        raw = bytearray(segment.read_bytes())
        raw[:4] = b"JUNK"
        segment.write_bytes(bytes(raw))
        reader = CachePlane(str(tmp_path))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert reader.get(KIND_RESULT, ("x",)) is None
        assert reader.stats.segments_quarantined == 1
        assert caught

    def test_stale_version_segment_ignored_not_quarantined(self, tmp_path):
        plane = CachePlane(str(tmp_path))
        plane.put(KIND_RESULT, ("x",), 1)
        segment = tmp_path / _segments(tmp_path)[0]
        raw = bytearray(segment.read_bytes())
        raw[4] = 99  # future format version
        segment.write_bytes(bytes(raw))
        reader = CachePlane(str(tmp_path))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert reader.get(KIND_RESULT, ("x",)) is None
        assert reader.stats.segments_quarantined == 0
        assert not [
            name for name in os.listdir(tmp_path) if name.endswith(".corrupt")
        ]

    def test_writer_recovers_after_own_segment_quarantined(self, tmp_path):
        plane = CachePlane(str(tmp_path))
        plane.put(KIND_RESULT, ("first",), 1)
        segment = tmp_path / _segments(tmp_path)[0]
        raw = bytearray(segment.read_bytes())
        raw[-2] ^= 0xFF
        segment.write_bytes(bytes(raw))
        # a refresh from scratch (new handle state) detects the damage
        plane._scanned.clear()
        plane._index.clear()
        plane._maps.clear()
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            plane.refresh()
        assert plane.stats.segments_quarantined == 1
        # subsequent puts land in a fresh segment and read back fine
        assert plane.put(KIND_RESULT, ("second",), 2)
        assert plane.get(KIND_RESULT, ("second",)) == 2
        assert CachePlane(str(tmp_path)).get(KIND_RESULT, ("second",)) == 2

    def test_stats_shape(self):
        stats = PlaneStats()
        assert stats.hit_rate == 0.0
        stats.hits = 3
        stats.misses = 1
        assert stats.hit_rate == 0.75
        assert set(stats.as_dict()) == {
            "hits",
            "misses",
            "puts",
            "segments_quarantined",
            "hit_rate",
        }
        stats.reset()
        assert stats.lookups == 0


class TestMappingCacheWriteThrough:
    def test_second_process_served_from_plane(
        self, resnet18, mid_point
    ):
        import tempfile

        plane_dir = tempfile.mkdtemp()
        first = CostEvaluator(
            resnet18,
            TopNMapper(top_n=40),
            mapping_cache=MappingCache(plane=CachePlane(plane_dir)),
        )
        cold = first.evaluate(mid_point)
        assert first.mapping_cache_misses == len(resnet18.layers)
        first.close()

        second = CostEvaluator(
            resnet18,
            TopNMapper(top_n=40),
            mapping_cache=MappingCache(plane=CachePlane(plane_dir)),
        )
        warm = second.evaluate(mid_point)
        assert second.mapping_cache_misses == 0
        assert warm.costs == cold.costs
        for name in cold.layer_results:
            assert (
                cold.layer_results[name].latency
                == warm.layer_results[name].latency
            )
        plane_section = second.perf_summary()["mapping_cache"]["plane"]
        assert plane_section["enabled"] is True
        assert plane_section["hits"] > 0
        second.close()

    def test_plane_disabled_section_is_constant(self, resnet18, mid_point):
        evaluator = CostEvaluator(
            resnet18, TopNMapper(top_n=40), mapping_cache=MappingCache()
        )
        section = evaluator.perf_summary()["mapping_cache"]["plane"]
        assert section == {"enabled": False}
        evaluator.close()

    def test_plane_section_is_journal_volatile(self):
        from repro.telemetry.events import deterministic_perf_counters

        summary = {
            "mapping_cache": {"enabled": True, "plane": {"hits": 5}},
        }
        stripped = deterministic_perf_counters(summary)
        assert "plane" not in stripped["mapping_cache"]

    def test_corrupted_plane_mid_campaign_keeps_results(
        self, resnet18, mid_point, tmp_path
    ):
        """The chaos contract: corrupting a segment between campaigns
        quarantines it and re-computes — never changes — the results."""
        plane_dir = tmp_path / "plane"
        reference = CostEvaluator(
            resnet18,
            TopNMapper(top_n=40),
            mapping_cache=MappingCache(plane=CachePlane(str(plane_dir))),
        )
        expected = reference.evaluate(mid_point)
        reference.close()

        for name in _segments(plane_dir):
            raw = bytearray((plane_dir / name).read_bytes())
            raw[len(raw) // 2] ^= 0xFF
            (plane_dir / name).write_bytes(bytes(raw))

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            damaged = CostEvaluator(
                resnet18,
                TopNMapper(top_n=40),
                mapping_cache=MappingCache(plane=CachePlane(str(plane_dir))),
            )
            recomputed = damaged.evaluate(mid_point)
        assert any(
            "cache-plane segment is corrupt" in str(w.message) for w in caught
        )
        assert recomputed.costs == expected.costs
        assert damaged.mapping_cache_misses == len(resnet18.layers)
        damaged.close()


class TestSharedCacheWiring:
    def test_env_attaches_plane(self, tmp_path, monkeypatch):
        monkeypatch.setattr(mapping_cache_module, "_SHARED", None)
        monkeypatch.setenv("REPRO_CACHE_PLANE", str(tmp_path / "plane"))
        cache = shared_cache()
        assert cache.plane is not None
        assert cache.plane.directory == str(tmp_path / "plane")

    def test_unset_env_means_no_plane(self, monkeypatch):
        monkeypatch.setattr(mapping_cache_module, "_SHARED", None)
        monkeypatch.delenv("REPRO_CACHE_PLANE", raising=False)
        assert shared_cache().plane is None
