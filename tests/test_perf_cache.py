"""Tests for the layer-level mapping cache (repro.perf).

The load-bearing property: the cache must be invisible in the results —
every tier (exact hit, bandwidth re-score, disk warm-start) returns
bit-identical costs versus a cold search.
"""

import pytest

from repro.arch.accelerator import config_from_point
from repro.cost.evaluator import CostEvaluator
from repro.mapping.mapper import (
    FixedDataflowMapper,
    RandomSearchMapper,
    TopNMapper,
    rescore_trace,
)
from repro.perf import (
    CachingMapper,
    MappingCache,
    config_signature,
    layer_signature,
    mapper_signature,
    search_invariant_signature,
    supports_tracing,
)

ALL_MAPPERS = [
    lambda: FixedDataflowMapper(),
    lambda: TopNMapper(top_n=40),
    lambda: RandomSearchMapper(trials=30, seed=3),
    lambda: TopNMapper(top_n=40, objective="edp"),
]


def _bw_variant(point, bw):
    p = dict(point)
    p["offchip_bw_mbps"] = bw
    return p


class TestSignatures:
    def test_full_signature_includes_bandwidth(self, mid_config):
        assert mid_config.offchip_bw_mbps in config_signature(mid_config)

    def test_invariant_signature_excludes_bandwidth_and_clock(
        self, mid_point
    ):
        a = config_from_point(mid_point)
        b = config_from_point(_bw_variant(mid_point, 1024))
        assert a.offchip_bw_mbps != b.offchip_bw_mbps
        assert search_invariant_signature(a) == search_invariant_signature(b)
        assert config_signature(a) != config_signature(b)

    def test_invariant_signature_tracks_search_fields(self, mid_point):
        a = config_from_point(mid_point)
        changed = dict(mid_point)
        changed["pes"] = 2048
        b = config_from_point(changed)
        assert search_invariant_signature(a) != search_invariant_signature(b)

    def test_layer_signature_excludes_name_by_default(self, conv_layer):
        renamed = layer_signature(conv_layer)
        assert conv_layer.name not in renamed
        assert conv_layer.name in layer_signature(
            conv_layer, include_name=True
        )

    def test_mapper_signatures_distinguish_settings(self):
        assert mapper_signature(TopNMapper(top_n=10)) != mapper_signature(
            TopNMapper(top_n=20)
        )
        assert mapper_signature(RandomSearchMapper(seed=0)) != mapper_signature(
            RandomSearchMapper(seed=1)
        )
        assert mapper_signature(lambda layer, config: None) is None

    def test_builtin_mappers_support_tracing(self):
        for factory in ALL_MAPPERS:
            assert supports_tracing(factory())
        assert not supports_tracing(lambda layer, config: None)


class TestMappingCacheStore:
    def test_lru_bounds_results(self):
        cache = MappingCache(max_results=2, max_traces=2)
        for i in range(4):
            cache.put_result(("k", i), f"r{i}")
        assert cache.size() == 2
        assert cache.get_result(("k", 0)) is None
        assert cache.get_result(("k", 3)) == "r3"

    def test_lru_recency_on_get(self):
        cache = MappingCache(max_results=2, max_traces=2)
        cache.put_result(("a",), 1)
        cache.put_result(("b",), 2)
        cache.get_result(("a",))  # refresh 'a'
        cache.put_result(("c",), 3)
        assert cache.get_result(("a",)) == 1
        assert cache.get_result(("b",)) is None

    def test_persistence_roundtrip(self, tmp_path, conv_layer, mid_config):
        path = str(tmp_path / "cache.pkl")
        cache = MappingCache(persist_path=path)
        mapper = CachingMapper(TopNMapper(top_n=25), cache)
        cold = mapper(conv_layer, mid_config)
        cache.save()

        warm_cache = MappingCache(persist_path=path)
        assert warm_cache.size() >= 1
        warm_mapper = CachingMapper(TopNMapper(top_n=25), warm_cache)
        warm = warm_mapper(conv_layer, mid_config)
        assert warm_mapper.exact_hits == 1
        assert warm_mapper.misses == 0
        assert warm.latency == cold.latency
        assert warm.mapping == cold.mapping

    def test_corrupt_persistence_ignored(self, tmp_path):
        path = tmp_path / "cache.pkl"
        path.write_bytes(b"not a pickle")
        cache = MappingCache(persist_path=str(path))
        assert cache.size() == 0


class TestCachingMapperIdentity:
    @pytest.mark.parametrize("factory", ALL_MAPPERS)
    def test_exact_hit_matches_cold(self, factory, conv_layer, mid_config):
        cold = factory()(conv_layer, mid_config)
        cached = CachingMapper(factory(), MappingCache())
        first = cached(conv_layer, mid_config)
        second = cached(conv_layer, mid_config)
        assert cached.misses == 1 and cached.exact_hits == 1
        for result in (first, second):
            assert result.latency == cold.latency
            assert result.mapping == cold.mapping
            assert result.candidates_evaluated == cold.candidates_evaluated
            assert result.feasible_candidates == cold.feasible_candidates

    @pytest.mark.parametrize("factory", ALL_MAPPERS)
    def test_bandwidth_rescore_matches_cold(
        self, factory, conv_layer, mid_point
    ):
        """A config differing only in off-chip bandwidth must re-score the
        recorded trace to exactly the cold-search result."""
        cached = CachingMapper(factory(), MappingCache())
        cached(conv_layer, config_from_point(mid_point))
        for bw in (1024, 6400, 51200):
            variant = config_from_point(_bw_variant(mid_point, bw))
            cold = factory()(conv_layer, variant)
            warm = cached(conv_layer, variant)
            assert warm.latency == cold.latency
            assert warm.mapping == cold.mapping
            assert warm.candidates_evaluated == cold.candidates_evaluated
            assert warm.feasible_candidates == cold.feasible_candidates
        assert cached.rescore_hits == 3

    def test_rescore_trace_function_identity(self, conv_layer, mid_point):
        mapper = TopNMapper(top_n=30)
        _, trace = mapper.search_with_trace(
            conv_layer, config_from_point(mid_point)
        )
        variant = config_from_point(_bw_variant(mid_point, 2048))
        rescored = rescore_trace(conv_layer, variant, trace, "latency")
        cold = mapper(conv_layer, variant)
        assert rescored.latency == cold.latency
        assert rescored.execution == cold.execution

    def test_rejects_untraceable_mapper(self):
        with pytest.raises(TypeError):
            CachingMapper(lambda layer, config: None, MappingCache())


class TestEvaluatorCacheCorrectness:
    def _points(self, mid_point):
        points = []
        for pes in (512, 1024):
            for bw in (1024, 8192, 51200):
                p = dict(mid_point)
                p["pes"] = pes
                p["offchip_bw_mbps"] = bw
                points.append(p)
        return points

    @pytest.mark.parametrize(
        "factory",
        [lambda: TopNMapper(top_n=30), lambda: RandomSearchMapper(trials=20)],
    )
    def test_cached_costs_identical_to_cold(
        self, factory, tiny_workload, mid_point
    ):
        """Property: the layer cache never changes Evaluation.costs."""
        cold = CostEvaluator(
            tiny_workload, factory(), use_mapping_cache=False
        )
        warm = CostEvaluator(
            tiny_workload, factory(), mapping_cache=MappingCache()
        )
        for point in self._points(mid_point):
            a = cold.evaluate(point)
            b = warm.evaluate(point)
            assert a.costs == b.costs
            assert a.mappable == b.mappable
        assert warm.mapping_cache_hits > 0

    def test_cross_evaluator_sharing(self, tiny_workload, mid_point):
        cache = MappingCache()
        first = CostEvaluator(
            tiny_workload, TopNMapper(top_n=30), mapping_cache=cache
        )
        first.evaluate(mid_point)
        second = CostEvaluator(
            tiny_workload, TopNMapper(top_n=30), mapping_cache=cache
        )
        evaluation = second.evaluate(dict(mid_point))
        assert second.mapping_cache_hits == len(tiny_workload.layers)
        assert second.mapping_cache_misses == 0
        assert evaluation.costs == first.evaluate(mid_point).costs


class TestCountersAndReporting:
    def test_counters_and_reset(self, tiny_workload, mid_point):
        evaluator = CostEvaluator(
            tiny_workload, TopNMapper(top_n=30), mapping_cache=MappingCache()
        )
        evaluator.evaluate(mid_point)
        variant = _bw_variant(mid_point, 1024)
        evaluator.evaluate(variant)
        assert evaluator.mapping_cache_misses == len(tiny_workload.layers)
        assert evaluator.mapping_cache_hits == len(tiny_workload.layers)
        assert 0.0 < evaluator.mapping_cache_hit_rate < 1.0
        assert evaluator.mapping_cache_size() > 0
        assert evaluator.evaluations_per_second > 0

        summary = evaluator.perf_summary()
        assert summary["mapping_cache"]["enabled"]
        assert summary["mapping_cache"]["hit_rate"] == pytest.approx(0.5)
        assert "mapping" in summary["stages"]

        evaluator.reset_counters()
        assert evaluator.mapping_cache_hits == 0
        assert evaluator.mapping_cache_misses == 0
        assert evaluator.evaluations == 0
        # Caches survive the counter reset.
        assert evaluator.cache_size() == 2
        assert evaluator.mapping_cache_size() > 0

    def test_disabled_cache_counters_are_zero(self, tiny_workload, mid_point):
        evaluator = CostEvaluator(
            tiny_workload, TopNMapper(top_n=30), use_mapping_cache=False
        )
        evaluator.evaluate(mid_point)
        assert evaluator.mapping_cache is None
        assert evaluator.mapping_cache_hit_rate == 0.0
        assert evaluator.mapping_cache_size() == 0
        assert not evaluator.perf_summary()["mapping_cache"]["enabled"]

    def test_run_summary_reports_hit_rate(self, tiny_workload, mid_point):
        from repro.core.dse.result import DSEResult
        from repro.experiments.reporting import format_run_summary

        evaluator = CostEvaluator(
            tiny_workload, TopNMapper(top_n=30), mapping_cache=MappingCache()
        )
        evaluator.evaluate(mid_point)
        evaluator.evaluate(_bw_variant(mid_point, 1024))
        result = DSEResult(
            technique="test",
            model="tiny",
            trials=[],
            best=None,
            evaluations=2,
            wall_seconds=0.1,
        )
        text = format_run_summary(result, evaluator)
        assert "mapping cache" in text
        assert "hit rate 50%" in text

    def test_legacy_callable_mapper_still_works(
        self, tiny_workload, mid_point
    ):
        """Plain-callable mappers bypass the cache but keep working."""
        base = TopNMapper(top_n=30)
        evaluator = CostEvaluator(
            tiny_workload, lambda layer, config: base(layer, config)
        )
        assert evaluator.mapping_cache is None
        assert evaluator.evaluate(mid_point).mappable
