"""Tests for the hybrid DSE pipeline and Pareto-front extraction."""

import math

import pytest

from repro.core.dse.constraints import Constraint
from repro.core.dse.result import DSEResult, TrialRecord
from repro.cost.evaluator import CostEvaluator
from repro.experiments.pareto import ParetoFront, dominates, pareto_front
from repro.mapping.mapper import TopNMapper
from repro.optim.hybrid import HybridDSE
from repro.optim.random_search import RandomSearch


def _trial(index, latency, energy, feasible=True):
    return TrialRecord(
        index=index,
        point={"pes": 64},
        costs={"latency_ms": latency, "energy_mj": energy},
        feasible=feasible,
        mappable=True,
    )


def _result(trials):
    return DSEResult(
        technique="t",
        model="m",
        trials=trials,
        best=None,
        evaluations=len(trials),
        wall_seconds=0.0,
    )


class TestDominance:
    KEYS = ("latency_ms", "energy_mj")

    def test_strict_dominance(self):
        assert dominates(_trial(0, 1, 1), _trial(1, 2, 2), self.KEYS)

    def test_partial_tradeoff_not_dominated(self):
        assert not dominates(_trial(0, 1, 3), _trial(1, 2, 2), self.KEYS)
        assert not dominates(_trial(1, 2, 2), _trial(0, 1, 3), self.KEYS)

    def test_equal_not_dominating(self):
        assert not dominates(_trial(0, 1, 1), _trial(1, 1, 1), self.KEYS)


class TestParetoFront:
    def test_extracts_non_dominated(self):
        trials = [
            _trial(0, 1.0, 10.0),
            _trial(1, 2.0, 5.0),
            _trial(2, 3.0, 8.0),  # dominated by 1
            _trial(3, 0.5, 20.0),
        ]
        front = pareto_front([_result(trials)])
        assert {t.index for t in front.points} == {0, 1, 3}

    def test_sorted_by_first_cost(self):
        trials = [_trial(0, 3.0, 1.0), _trial(1, 1.0, 3.0)]
        front = pareto_front([_result(trials)])
        assert [t.index for t in front.points] == [1, 0]

    def test_feasibility_filter(self):
        trials = [_trial(0, 1.0, 1.0, feasible=False), _trial(1, 2.0, 2.0)]
        front = pareto_front([_result(trials)])
        assert [t.index for t in front.points] == [1]
        unfiltered = pareto_front([_result(trials)], feasible_only=False)
        assert [t.index for t in unfiltered.points] == [0]

    def test_infinite_costs_excluded(self):
        trials = [_trial(0, math.inf, 1.0), _trial(1, 2.0, 2.0)]
        front = pareto_front([_result(trials)])
        assert [t.index for t in front.points] == [1]

    def test_duplicates_collapsed(self):
        trials = [_trial(0, 1.0, 1.0), _trial(1, 1.0, 1.0)]
        front = pareto_front([_result(trials)])
        assert len(front) == 1

    def test_pools_multiple_results(self):
        a = _result([_trial(0, 1.0, 10.0)])
        b = _result([_trial(0, 10.0, 1.0)])
        front = pareto_front([a, b])
        assert len(front) == 2

    def test_format(self):
        front = pareto_front([_result([_trial(0, 1.0, 2.0)])])
        text = front.format()
        assert "Pareto front" in text
        assert "latency_ms" in text


class TestHybridDSE:
    @pytest.fixture
    def hybrid(self, edge_space, tiny_workload):
        evaluator = CostEvaluator(tiny_workload, TopNMapper(top_n=50))
        return HybridDSE(
            edge_space,
            evaluator,
            [Constraint("area", "area_mm2", 75.0)],
            max_evaluations=30,
            warm_start_fraction=0.5,
            refiner=RandomSearch,
            seed=1,
        )

    def test_rejects_bad_fraction(self, edge_space, tiny_workload):
        evaluator = CostEvaluator(tiny_workload, TopNMapper(top_n=40))
        with pytest.raises(ValueError):
            HybridDSE(
                edge_space, evaluator, [], warm_start_fraction=1.5
            )

    def test_runs_both_phases(self, hybrid):
        result = hybrid.run()
        notes = {t.note.split(":")[0] for t in result.trials}
        assert notes == {"warm", "refine"}
        assert result.technique.startswith("hybrid-explainable+")

    def test_handoff_logged(self, hybrid):
        result = hybrid.run()
        assert any("handoff" in line for line in result.explanations)

    def test_best_at_least_warm_phase(self, hybrid, edge_space, tiny_workload):
        result = hybrid.run()
        warm_best = min(
            (
                t.objective
                for t in result.trials
                if t.note.startswith("warm") and t.feasible
            ),
            default=math.inf,
        )
        assert result.best_objective <= warm_best
