"""Setuptools shim for environments without the `wheel` package.

`pip install -e . --no-use-pep517` (and plain `pip install -e .` on older
tooling) routes through this file; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
