"""Mapping-space study: how big is the space, and which mapper wins?

Reproduces the substrate-level analyses of the paper's appendix: the
mapping-space size cascade of Table 7 for one layer, and the Fig. 15
comparison of black-box mapping optimizers (random search, simulated
annealing, genetic algorithm, Bayesian optimization) against the
dMazeRunner-style pruned top-N mapper.

Run:  python examples/mapping_study.py
"""

from __future__ import annotations

from repro.arch.accelerator import build_edge_design_space, config_from_point
from repro.experiments.fig15 import run as run_fig15
from repro.mapping.space_size import analyze_mapping_space
from repro.workloads.registry import load_workload


def main() -> None:
    layer = load_workload("resnet18").layer("conv3_x")
    space = build_edge_design_space()
    point = space.minimum_point()
    point.update(
        pes=1024, l1_bytes=256, l2_kb=512, offchip_bw_mbps=8192,
        noc_datawidth=128,
    )
    for op in ("I", "W", "O", "PSUM"):
        point[f"phys_unicast_{op}"] = 16
        point[f"virt_unicast_{op}"] = 64
    config = config_from_point(point)

    size = analyze_mapping_space(layer, config=config, samples=300)
    print(f"Mapping space of {layer.describe()}:")
    print(f"  arbitrary tile sizings        ~1e{size.tile_sizings_log10:.0f}")
    print(f"  valid factorizations          ~1e{size.valid_factor_tilings_log10:.0f}")
    print(f"  hardware-valid tilings        ~1e{size.hw_valid_tilings_log10:.0f}")
    print(f"  orderings per memory level    ~1e{size.orderings_per_level_log10:.0f}")
    print(f"  unique-reuse orderings kept    {size.unique_reuse_orderings}")
    print(f"  full mapping space            ~1e{size.full_space_log10:.0f}")
    print(f"  factorization-constrained     ~1e{size.factor_space_log10:.0f}")
    print(f"  reuse-aware (explored)        ~1e{size.reuse_aware_space_log10:.0f}")

    print("\nComparing mappers on ResNet18 layers (this takes a minute)...")
    result = run_fig15(trials=120, bo_trials=30)
    print(result.format())


if __name__ == "__main__":
    main()
