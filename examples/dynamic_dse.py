"""Dynamic DSE: find a deployable design within a 100-iteration budget.

The paper's Table 2 scenario: an accelerator overlay must be configured
just before deployment (e.g. FPGA overlays), so the DSE gets only ~100
evaluations.  This example runs the dynamic exploration for an NLP model
and prints the convergence trajectory plus the bottleneck explanations for
the final acquisitions.

Run:  python examples/dynamic_dse.py [model]
"""

from __future__ import annotations

import math
import sys

from repro.experiments.reporting import format_series
from repro.experiments.setup import edge_constraints, run_explainable_dse


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "transformer"
    print(f"Dynamic (100-iteration) DSE for {model}")
    for constraint in edge_constraints(model):
        print(f"  constraint: {constraint.describe()}")

    result = run_explainable_dse(model, iterations=100, top_n=100)

    trajectory = result.best_so_far_trajectory()
    print(f"\nEvaluations used: {result.evaluations}")
    print(format_series({"best-so-far latency (ms)": trajectory}))

    if result.best is not None:
        print(f"\nDeployable design after {result.evaluations} evaluations:")
        print(f"  {result.best.point}")
        print(f"  latency = {result.best.costs['latency_ms']:.3g} ms, "
              f"area = {result.best.costs['area_mm2']:.1f} mm^2, "
              f"power = {result.best.costs['power_w']:.2f} W")
    else:
        finite = [v for v in trajectory if math.isfinite(v)]
        print("\nNo all-constraints-feasible design within the budget"
              + (f"; best latency seen {finite[-1]:.3g} ms" if finite else ""))

    print("\nLast acquisitions explained:")
    for line in result.explanations[-8:]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
