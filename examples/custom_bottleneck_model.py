"""Expressing a *new* domain's bottleneck model through the API.

The paper's claim (§4.3, Fig. 7) is that the bottleneck-guided search is
domain-independent: designers express a cost tree, an affected-parameters
dictionary, and mitigation subroutines, then reuse the same DSE.  This
example builds a bottleneck model for a completely different system — a
batch image-serving pipeline whose request latency is

    latency = max(decode_time, inference_time, network_time)
    decode_time    = images / decode_workers
    inference_time = images * model_cost / gpu_throughput
    network_time   = images * image_bytes / bandwidth

— and drives Explainable-DSE over (decode_workers, gpu_throughput,
bandwidth) with a cost budget, without touching any accelerator code.

Run:  python examples/custom_bottleneck_model.py
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.design_space import DesignSpace
from repro.arch.parameters import Parameter
from repro.core.bottleneck.api import BottleneckModel, MitigationContext
from repro.core.bottleneck.tree import div, leaf, maximum, mul
from repro.core.dse.constraints import Constraint
from repro.core.dse.explainable import ExplainableDSE

IMAGES_PER_BATCH = 512
MODEL_COST = 3.0  # GPU-time per image at unit throughput
IMAGE_KB = 600


@dataclass(frozen=True)
class PipelineEvaluation:
    """Mimics repro's Evaluation: point + costs (+ a fake 'config')."""

    point: dict
    costs: dict
    mappable: bool = True
    config: object = None
    layer_results: dict = None
    area: object = None
    power: object = None


class PipelineEvaluator:
    """Analytical cost model of the serving pipeline (plays CostEvaluator)."""

    class _Workload:
        name = "image-serving"
        layers = ()

    workload = _Workload()

    def __init__(self):
        self.evaluations = 0
        self.calls = 0

    def evaluate(self, point) -> PipelineEvaluation:
        self.calls += 1
        self.evaluations += 1
        decode = IMAGES_PER_BATCH / point["decode_workers"]
        inference = IMAGES_PER_BATCH * MODEL_COST / point["gpu_throughput"]
        network = IMAGES_PER_BATCH * IMAGE_KB / 1024 / point["bandwidth_mb"]
        latency = max(decode, inference, network)
        cost = (
            point["decode_workers"] * 2.0
            + point["gpu_throughput"] * 5.0
            + point["bandwidth_mb"] * 0.5
        )
        return PipelineEvaluation(
            point=dict(point),
            costs={"latency_ms": latency, "dollars": cost},
        )


def build_pipeline_bottleneck_model() -> BottleneckModel:
    """The three-factor latency tree with per-factor mitigations."""

    def build_tree(point):
        return maximum(
            "latency",
            [
                div(
                    "decode_time",
                    leaf("images", IMAGES_PER_BATCH),
                    leaf("decode_workers", point["decode_workers"]),
                ),
                div(
                    "inference_time",
                    mul(
                        "gpu_work",
                        [leaf("images2", IMAGES_PER_BATCH), leaf("model_cost", MODEL_COST)],
                    ),
                    leaf("gpu_throughput", point["gpu_throughput"]),
                ),
                div(
                    "network_time",
                    leaf("payload_mb", IMAGES_PER_BATCH * IMAGE_KB / 1024),
                    leaf("bandwidth_mb", point["bandwidth_mb"]),
                ),
            ],
        )

    def scale_up(current, ctx: MitigationContext) -> float:
        return current * ctx.scaling

    return BottleneckModel(
        name="image-serving-latency",
        build_tree=build_tree,
        affected_parameters={
            "decode_time": ("decode_workers",),
            "inference_time": ("gpu_throughput",),
            "network_time": ("bandwidth_mb",),
        },
        mitigations={
            "decode_workers": scale_up,
            "gpu_throughput": scale_up,
            "bandwidth_mb": scale_up,
        },
    )


class PipelineDSE(ExplainableDSE):
    """Routes every analysis through the single-cost pipeline model.

    The pipeline has no per-layer structure or resource breakdowns, so the
    whole workload is one sub-function and the pipeline model serves both
    the objective and (by down-scaling) the cost constraint.
    """

    def _analyze(self, point, evaluation):
        predictions = self.latency_model.predict(
            point, current_values=point, extra={"point": point}
        )
        from repro.core.dse.aggregation import AggregatedPrediction

        aggregated = [
            AggregatedPrediction(
                parameter=p.parameter,
                value=p.value,
                contributing_subfunctions=("pipeline",),
                candidate_values=(p.value,),
            )
            for p in predictions
        ]
        return aggregated, (
            f"latency {evaluation.costs['latency_ms']:.1f} dominated by "
            f"{predictions[0].finding.path[1] if predictions else '?'}"
        )


def main() -> None:
    space = DesignSpace(
        [
            Parameter("decode_workers", (1, 2, 4, 8, 16, 32, 64)),
            Parameter("gpu_throughput", (1, 2, 4, 8, 16, 32)),
            Parameter("bandwidth_mb", (10, 25, 50, 100, 250, 500, 1000)),
        ]
    )
    dse = PipelineDSE(
        design_space=space,
        evaluator=PipelineEvaluator(),
        constraints=[Constraint("budget", "dollars", 400.0)],
        latency_model=build_pipeline_bottleneck_model(),
        max_evaluations=25,
    )
    result = dse.run()
    print("Best pipeline configuration:")
    print(f"  point = {result.best.point}")
    print(f"  costs = {result.best.costs}")
    print("\nExplanations:")
    for line in result.explanations:
        print(f"  {line}")


if __name__ == "__main__":
    main()
