"""Compare Explainable-DSE against the non-explainable baselines.

A small-budget slice of the paper's Fig. 3 / Fig. 9 comparison for one
model: every technique explores the same Table 1 space under the same
constraints and budget; the table shows best latency, feasibility of the
acquisitions, and wall-clock time.

Run:  python examples/compare_optimizers.py [model] [iterations]
"""

from __future__ import annotations

import sys

from repro.experiments.fig3 import run as run_fig3
from repro.experiments.harness import ComparisonRunner


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "resnet18"
    iterations = int(sys.argv[2]) if len(sys.argv) > 2 else 40
    print(
        f"Comparing DSE techniques on {model} "
        f"({iterations} evaluations each) ..."
    )
    runner = ComparisonRunner(
        iterations=iterations, top_n=80, random_mapping_trials=40
    )
    result = run_fig3(runner, model=model)
    print()
    print(result.format())
    print(
        "\nReading the table: non-explainable techniques spend most "
        "acquisitions on infeasible designs; Explainable-DSE converges "
        "in tens of evaluations with mostly-feasible acquisitions."
    )


if __name__ == "__main__":
    main()
