"""Advanced workflow: custom model -> sensitivity -> DSE -> Pareto.

Chains the library's adoption-oriented features end to end:

1. define a custom DNN via the JSON workload schema;
2. characterize the design space with one-at-a-time sensitivity analysis
   (the §C route to building bottleneck intuition for a new workload);
3. explore with Explainable-DSE, then hand off to black-box refinement
   (the §B hybrid methodology);
4. recover the latency/energy Pareto front from the trial log and persist
   the run to JSON.

Run:  python examples/advanced_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.arch import build_edge_design_space
from repro.core.dse import Constraint, Sense, save_result
from repro.cost import CostEvaluator
from repro.experiments.pareto import pareto_front
from repro.experiments.sensitivity import analyze_sensitivity
from repro.mapping import TopNMapper
from repro.optim import HybridDSE
from repro.workloads import workload_from_dict

CUSTOM_MODEL = {
    "name": "keyword_spotter",
    "task": "audio",
    "layers": [
        {"name": "conv1", "op": "conv", "in": 1, "out": 64,
         "output": [25, 5], "kernel": [10, 4], "stride": 2},
        {"name": "dw1", "op": "dwconv", "channels": 64, "output": [25, 5]},
        {"name": "pw1", "op": "conv", "in": 64, "out": 64,
         "output": [25, 5], "kernel": [1, 1]},
        {"name": "dw2", "op": "dwconv", "channels": 64, "output": [25, 5],
         "repeats": 3},
        {"name": "pw2", "op": "conv", "in": 64, "out": 64,
         "output": [25, 5], "kernel": [1, 1], "repeats": 3},
        {"name": "fc", "op": "gemm", "rows": 12, "inner": 64, "cols": 1},
    ],
}


def main() -> None:
    workload = workload_from_dict(CUSTOM_MODEL)
    print(f"Custom workload: {workload.name}, "
          f"{workload.repeated_layer_count} layers, "
          f"{workload.total_macs / 1e6:.1f} MMACs/inference")

    space = build_edge_design_space()
    evaluator = CostEvaluator(workload, TopNMapper(top_n=80))
    constraints = [
        Constraint("area", "area_mm2", 25.0),
        Constraint("power", "power_w", 1.0),
        Constraint("throughput", "throughput", 1000.0, Sense.GEQ),
    ]

    print("\n--- 1. sensitivity characterization (base = minimum point) ---")
    report = analyze_sensitivity(
        space,
        evaluator,
        parameters=["pes", "l2_kb", "offchip_bw_mbps", "noc_datawidth"],
        max_values_per_parameter=4,
    )
    print(report.format("latency_ms"))

    print("\n--- 2. hybrid exploration (explainable warm start + BO) ---")
    hybrid = HybridDSE(
        space,
        evaluator,
        constraints,
        max_evaluations=60,
        warm_start_fraction=0.6,
    )
    result = hybrid.run()
    print(f"technique: {result.technique}")
    if result.best is not None:
        print(f"best design: {result.best.point}")
        print(f"costs: { {k: round(v, 4) for k, v in result.best.costs.items()} }")
    else:
        print("no feasible design within the budget")

    print("\n--- 3. latency/energy Pareto front from the trial log ---")
    front = pareto_front([result], cost_keys=("latency_ms", "energy_mj"))
    print(front.format())

    out = Path(tempfile.gettempdir()) / "keyword_spotter_dse.json"
    save_result(result, out)
    print(f"\nRun persisted to {out}")


if __name__ == "__main__":
    main()
