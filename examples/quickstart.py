"""Quickstart: explore an edge accelerator codesign for ResNet-18.

Runs Explainable-DSE with the Table 1 edge design space and constraints
(area <= 75 mm^2, power <= 4 W, throughput >= 40 FPS), printing the best
design found, its costs, and an excerpt of the bottleneck-analysis log
that explains *why* each acquisition was made.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.experiments.setup import edge_constraints, run_explainable_dse


def main() -> None:
    model = "resnet18"
    print(f"Exploring an edge accelerator for {model} ...")
    for constraint in edge_constraints(model):
        print(f"  constraint: {constraint.describe()}")

    result = run_explainable_dse(model, iterations=60, top_n=100)

    print(f"\nEvaluated {result.evaluations} designs "
          f"in {result.wall_seconds:.1f}s")
    if result.best is None:
        print("No all-constraints-feasible design found; increase the budget.")
        return

    print("\nBest codesign:")
    for name, value in sorted(result.best.point.items()):
        print(f"  {name:20s} = {value}")
    print("\nCosts:")
    for key, value in result.best.costs.items():
        print(f"  {key:12s} = {value:.4g}")

    print("\nWhy the DSE made its moves (explanation log, first 12 lines):")
    for line in result.explanations[:12]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
