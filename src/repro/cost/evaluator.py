"""Top-level cost evaluator: one design point -> all costs.

This is the "Target System and Cost Models" block of the paper's framework
(Fig. 5): given a hardware design point it optimizes per-layer mappings
through the configured mapper (the software subspace optimization of §4.8),
and populates latency, energy, area, and max power.  It also retains the
per-layer :class:`ExecutionInfo` so the bottleneck analyzer can reason
about the software-optimized execution.

Evaluations are cached by design point; the cache also serves as the DSE
iteration ledger (``evaluations`` counts unique cost-model invocations,
matching how the paper counts "iterations").
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Mapping, Tuple

from repro.arch.accelerator import AcceleratorConfig, config_from_point
from repro.arch.design_space import DesignPoint
from repro.cost.area import AreaBreakdown, accelerator_area
from repro.cost.energy import EnergyBreakdown, layer_energy
from repro.cost.power import PowerBreakdown, max_power
from repro.cost.technology import TECH_45NM, TechnologyModel
from repro.workloads.layers import LayerShape, Workload

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from repro.mapping.mapper import MappingResult

__all__ = ["Evaluation", "CostEvaluator"]

#: Mapper protocol: (layer, config) -> MappingResult.
Mapper = Callable[[LayerShape, AcceleratorConfig], "MappingResult"]


@dataclass(frozen=True)
class Evaluation:
    """All costs of one design point for one workload.

    Attributes:
        point: The evaluated hardware design point.
        config: The instantiated accelerator configuration.
        layer_results: Per unique layer name, the optimized mapping result.
        costs: Scalar costs: ``latency_ms``, ``area_mm2``, ``power_w``,
            ``energy_mj``, and ``throughput`` (inferences/second).
            ``latency_ms`` and ``energy_mj`` are ``inf`` when any layer has
            no feasible mapping on this hardware.
        area: Component-level area breakdown.
        power: Component-level peak-power breakdown.
        mappable: True when every layer found a feasible mapping.
    """

    point: DesignPoint
    config: AcceleratorConfig
    layer_results: Mapping[str, MappingResult]
    costs: Mapping[str, float]
    area: AreaBreakdown
    power: PowerBreakdown
    mappable: bool

    @property
    def latency_ms(self) -> float:
        return self.costs["latency_ms"]

    def layer_latency_cycles(self, layer: LayerShape) -> float:
        """Latency (cycles) of one invocation of a unique layer."""
        return self.layer_results[layer.name].latency


class CostEvaluator:
    """Evaluate (and cache) design points for one workload.

    Args:
        workload: The DNN(s) to optimize for.
        mapper: Mapping optimizer invoked per (layer, hardware) pair.
        tech: Technology model for energy/area/power.
        freq_mhz: Accelerator clock; Table 1 fixes 500 MHz.
        bytes_per_element: Data precision (int16 -> 2).
    """

    def __init__(
        self,
        workload: Workload,
        mapper: Mapper,
        tech: TechnologyModel = TECH_45NM,
        freq_mhz: int = 500,
        bytes_per_element: int = 2,
    ):
        self.workload = workload
        self.mapper = mapper
        self.tech = tech
        self.freq_mhz = freq_mhz
        self.bytes_per_element = bytes_per_element
        self._cache: Dict[Tuple, Evaluation] = {}
        self.evaluations = 0  # unique cost-model invocations
        self.calls = 0  # total evaluate() calls (cache hits included)
        self.total_seconds = 0.0

    def _key(self, point: Mapping) -> Tuple:
        return tuple(sorted(point.items()))

    def evaluate(self, point: DesignPoint) -> Evaluation:
        """Evaluate a design point (cached)."""
        self.calls += 1
        key = self._key(point)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        started = time.perf_counter()
        evaluation = self._evaluate_uncached(point)
        self.total_seconds += time.perf_counter() - started
        self.evaluations += 1
        self._cache[key] = evaluation
        return evaluation

    def _evaluate_uncached(self, point: DesignPoint) -> Evaluation:
        config = config_from_point(
            point,
            freq_mhz=self.freq_mhz,
            bytes_per_element=self.bytes_per_element,
        )
        area = accelerator_area(config, self.tech)
        power = max_power(config, self.tech)

        layer_results: Dict[str, MappingResult] = {}
        total_cycles = 0.0
        energy = EnergyBreakdown.zero()
        mappable = True
        for layer in self.workload.layers:
            result = self.mapper(layer, config)
            layer_results[layer.name] = result
            if not result.feasible:
                mappable = False
                continue
            total_cycles += result.latency * layer.repeats
            energy = energy + layer_energy(
                result.execution, config, self.tech
            ).scaled(layer.repeats)

        if mappable:
            latency_ms = total_cycles / (self.freq_mhz * 1e3)
            energy_mj = energy.total_mj
            throughput = 1000.0 / latency_ms if latency_ms > 0 else math.inf
        else:
            latency_ms = math.inf
            energy_mj = math.inf
            throughput = 0.0

        costs = {
            "latency_ms": latency_ms,
            "area_mm2": area.total_mm2,
            "power_w": power.total_w,
            "energy_mj": energy_mj,
            "throughput": throughput,
        }
        return Evaluation(
            point=dict(point),
            config=config,
            layer_results=layer_results,
            costs=costs,
            area=area,
            power=power,
            mappable=mappable,
        )

    def cache_size(self) -> int:
        return len(self._cache)

    def reset_counters(self) -> None:
        """Zero the iteration/time counters (cache is retained)."""
        self.evaluations = 0
        self.calls = 0
        self.total_seconds = 0.0
