"""Top-level cost evaluator: one design point -> all costs.

This is the "Target System and Cost Models" block of the paper's framework
(Fig. 5): given a hardware design point it optimizes per-layer mappings
through the configured mapper (the software subspace optimization of §4.8),
and populates latency, energy, area, and max power.  It also retains the
per-layer :class:`ExecutionInfo` so the bottleneck analyzer can reason
about the software-optimized execution.

Evaluations are cached by design point; the cache also serves as the DSE
iteration ledger (``evaluations`` counts unique cost-model invocations,
matching how the paper counts "iterations").

Below the design-point cache sits the performance layer
(:mod:`repro.perf`): per-layer mapping searches are memoized in a shared
:class:`~repro.perf.mapping_cache.MappingCache` keyed by what the mapper
actually reads (so sweeps over mapping-irrelevant parameters re-score
cached candidates instead of re-searching), and independent layer
searches can run on a ``REPRO_JOBS``-controlled worker pool.  Both
accelerations are bit-identical to the serial/cold path.
"""

from __future__ import annotations

import copy
import math
import os
import time
from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Callable, Dict, Mapping, Optional, Tuple

from repro.arch.accelerator import AcceleratorConfig, config_from_point
from repro.arch.design_space import DesignPoint
from repro.cost.area import AreaBreakdown, accelerator_area
from repro.cost.energy import EnergyBreakdown, layer_energy
from repro.cost.power import PowerBreakdown, max_power
from repro.cost.technology import TECH_45NM, TechnologyModel
from repro.perf.instrumentation import StageTimers
from repro.perf.knobs import (
    fused_eval_enabled,
    fused_shards as resolve_fused_shards,
    shm_eval_enabled,
    shm_min_shard_rows,
    tree_compile_enabled,
)
from repro.perf.mapping_cache import CachingMapper, MappingCache, shared_cache
from repro.perf.parallel import WorkerPool
from repro.perf.signature import supports_tracing
from repro.resilience.errors import MapperFailureError, ReproError, is_retryable
from repro.resilience.fault_injection import attempt_scope, inject
from repro.resilience.supervisor import RetryPolicy
from repro.telemetry.tracer import NULL_TRACER, Tracer
from repro.workloads.layers import LayerShape, Workload

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from repro.mapping.mapper import MappingResult

__all__ = ["Evaluation", "CostEvaluator"]

#: Mapper protocol: (layer, config) -> MappingResult.
Mapper = Callable[[LayerShape, AcceleratorConfig], "MappingResult"]


def _search_layer_job(mapper, config: AcceleratorConfig, layer: LayerShape):
    """Worker-side layer search; module-level so process pools can pickle
    it.  Returns ``(result, trace_or_None, batch_stats_delta_or_None)`` so
    the parent can seed its mapping cache — and merge the batch-eval
    counters, which otherwise stay on the worker's pickled mapper copy —
    with outcomes computed in workers."""
    inject("mapper", key=layer.name)
    stats = getattr(mapper, "batch_stats", None)
    before = copy.copy(stats) if stats is not None else None
    try:
        if supports_tracing(mapper):
            result, trace = mapper.search_with_trace(layer, config)
        else:
            result, trace = mapper(layer, config), None
    except (KeyboardInterrupt, SystemExit, ReproError):
        raise
    except Exception as exc:
        raise MapperFailureError(
            f"mapping search failed: {type(exc).__name__}: {exc}",
            layer=layer.name,
            cause=type(exc).__name__,
        ) from exc
    delta = stats.delta_since(before) if stats is not None else None
    return result, trace, delta


@dataclass(frozen=True)
class Evaluation:
    """All costs of one design point for one workload.

    Attributes:
        point: The evaluated hardware design point.
        config: The instantiated accelerator configuration.
        layer_results: Per unique layer name, the optimized mapping result.
        costs: Scalar costs: ``latency_ms``, ``area_mm2``, ``power_w``,
            ``energy_mj``, and ``throughput`` (inferences/second).
            ``latency_ms`` and ``energy_mj`` are ``inf`` when any layer has
            no feasible mapping on this hardware.
        area: Component-level area breakdown.
        power: Component-level peak-power breakdown.
        mappable: True when every layer found a feasible mapping.
    """

    point: DesignPoint
    config: AcceleratorConfig
    layer_results: Mapping[str, MappingResult]
    costs: Mapping[str, float]
    area: AreaBreakdown
    power: PowerBreakdown
    mappable: bool

    @property
    def latency_ms(self) -> float:
        return self.costs["latency_ms"]

    def layer_latency_cycles(self, layer: LayerShape) -> float:
        """Latency (cycles) of one invocation of a unique layer."""
        return self.layer_results[layer.name].latency


class CostEvaluator:
    """Evaluate (and cache) design points for one workload.

    Args:
        workload: The DNN(s) to optimize for.
        mapper: Mapping optimizer invoked per (layer, hardware) pair.
        tech: Technology model for energy/area/power.
        freq_mhz: Accelerator clock; Table 1 fixes 500 MHz.
        bytes_per_element: Data precision (int16 -> 2).
        jobs: Worker count for per-layer mapping searches; None reads
            ``REPRO_JOBS`` (default 1 = serial, bit-identical legacy path).
        executor_mode: ``"process"`` / ``"thread"``; None reads
            ``REPRO_EXECUTOR``.
        mapping_cache: Layer-level mapping cache to use; None selects the
            process-wide shared cache.
        use_mapping_cache: Force the layer cache on/off; None enables it
            whenever the mapper supports the traced-search protocol and
            ``REPRO_MAPPING_CACHE`` is not ``"0"``.
        tracer: Telemetry tracer; uncached evaluations run inside an
            ``evaluate_point`` span (timings only — spans never emit
            journal events, so traces stay deterministic).
        fused_eval: Resolve all pending layers of a design point through
            one fused cross-layer kernel pass (:mod:`repro.cost.fused`)
            instead of per-layer mapper calls.  ``None`` (default) defers
            to ``REPRO_FUSED_EVAL`` (default off); results are
            bit-identical either way.  When enabled (or implied by
            ``shm_eval``) and the mapper supports the candidate-plan
            protocol, the fused path takes precedence over the
            ``REPRO_JOBS`` worker pool — the pool still picks up any
            layers the fused path hands back.
        shm_eval: Shard each fused block over the persistent
            shared-memory worker fleet (:mod:`repro.perf.shm_fleet`).
            ``None`` defers to ``REPRO_SHM_EVAL`` (default off).
            Implies the fused path; results stay bit-identical.
        fused_shards: Shard count for the fleet; ``None`` defers to
            ``REPRO_FUSED_SHARDS`` (default: the resolved job count).
        shm_min_rows: Minimum candidate rows per shard (adaptive
            sizing); ``None`` defers to ``REPRO_SHM_MIN_ROWS``.
        shm_fleet: Fleet instance to dispatch to; ``None`` uses the
            process-wide shared fleet (warm across campaigns).

    All environment knobs are resolved **once, here** — per-campaign,
    not per step — so the hot evaluation loop never re-reads the
    environment (set knobs before constructing the evaluator).
    """

    def __init__(
        self,
        workload: Workload,
        mapper: Mapper,
        tech: TechnologyModel = TECH_45NM,
        freq_mhz: int = 500,
        bytes_per_element: int = 2,
        jobs: Optional[object] = None,
        executor_mode: Optional[str] = None,
        mapping_cache: Optional[MappingCache] = None,
        use_mapping_cache: Optional[bool] = None,
        tracer: Optional[Tracer] = None,
        fused_eval: Optional[bool] = None,
        shm_eval: Optional[bool] = None,
        fused_shards: Optional[int] = None,
        shm_min_rows: Optional[int] = None,
        shm_fleet=None,
    ):
        self.workload = workload
        self.mapper = mapper
        self.tech = tech
        self.freq_mhz = freq_mhz
        self.bytes_per_element = bytes_per_element
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._cache: Dict[Tuple, Evaluation] = {}
        self.evaluations = 0  # unique cost-model invocations
        self.calls = 0  # total evaluate() calls (cache hits included)
        self.total_seconds = 0.0
        self.timers = StageTimers()
        self._pool = WorkerPool(jobs=jobs, mode=executor_mode)
        self._fused_eval = fused_eval
        self.retry_policy = RetryPolicy.from_env()

        # Knob resolution is hoisted out of the per-step loop: one env
        # read per campaign, memoized on the evaluator.
        from repro.cost.fused import supports_fused

        self._shm_enabled = shm_eval_enabled(shm_eval)
        self._fused_enabled = (
            fused_eval_enabled(fused_eval) or self._shm_enabled
        )
        self._supports_fused = supports_fused(mapper)
        self._shm_shards = resolve_fused_shards(fused_shards)
        self._shm_min_rows = shm_min_shard_rows(shm_min_rows)
        self._fleet = shm_fleet
        self._fleet_stats = None
        if self._shm_enabled:
            from repro.perf.shm_fleet import FleetStats

            self._fleet_stats = FleetStats()

        if use_mapping_cache is None:
            use_mapping_cache = (
                os.environ.get("REPRO_MAPPING_CACHE", "1") != "0"
            ) and supports_tracing(mapper)
        self._caching_mapper: Optional[CachingMapper] = None
        if use_mapping_cache:
            if not supports_tracing(mapper):
                raise TypeError(
                    "use_mapping_cache=True requires a mapper implementing "
                    "signature() + search_with_trace()"
                )
            self._caching_mapper = CachingMapper(
                mapper, mapping_cache if mapping_cache is not None else shared_cache()
            )

    @property
    def jobs(self) -> int:
        return self._pool.jobs

    @property
    def mapping_cache(self) -> Optional[MappingCache]:
        """The layer-level mapping cache (None when disabled)."""
        return self._caching_mapper.cache if self._caching_mapper else None

    def _key(self, point: Mapping) -> Tuple:
        return tuple(sorted(point.items()))

    def evaluate(self, point: DesignPoint) -> Evaluation:
        """Evaluate a design point (cached, supervised).

        Transient faults (crashed/hung workers, injected chaos) are
        retried per :attr:`retry_policy` with deterministic backoff;
        deterministic failures propagate immediately (a
        :class:`~repro.resilience.errors.ReproError` carries the design
        point and attempt count).  Failed evaluations are never cached.
        """
        self.calls += 1
        key = self._key(point)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        started = time.perf_counter()
        evaluation = self._evaluate_supervised(point)
        self.total_seconds += time.perf_counter() - started
        self.evaluations += 1
        self._cache[key] = evaluation
        return evaluation

    def _evaluate_supervised(self, point: DesignPoint) -> Evaluation:
        """Run the cost model under the retry policy and the ambient
        fault-injection attempt (the fault-free path is one plain pass,
        bit-identical to the unsupervised pipeline)."""
        signature = ",".join(f"{k}={v}" for k, v in sorted(point.items()))
        attempt = 0
        while True:
            try:
                with attempt_scope(attempt):
                    with self.tracer.span("evaluate_point"):
                        inject("evaluate", key=signature)
                        return self._evaluate_uncached(point)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                if is_retryable(exc) and attempt < self.retry_policy.max_retries:
                    attempt += 1
                    self.retry_policy.sleep_before_retry(signature, attempt)
                    continue
                if isinstance(exc, ReproError):
                    exc.retryable = False  # the retry budget is spent
                    raise exc.with_context(
                        point=dict(point), attempts=attempt + 1
                    )
                raise

    def _optimize_layers(
        self, config: AcceleratorConfig
    ) -> Dict[str, "MappingResult"]:
        """Optimize every unique layer's mapping on ``config``.

        Cache hits (exact or re-scored) are resolved in-process; the
        fused cross-layer path (when enabled and supported) resolves the
        rest in one block — sharded over the shared-memory fleet when
        ``REPRO_SHM_EVAL`` is on — and anything handed back runs
        serially or on the worker pool.  Results are keyed by layer name
        in workload order either way.
        """
        cm = self._caching_mapper
        results: Dict[str, "MappingResult"] = {}
        pending = []
        for layer in self.workload.layers:
            hit = cm.lookup(layer, config) if cm else None
            if hit is not None:
                results[layer.name] = hit
            else:
                pending.append(layer)

        pending = self._optimize_layers_fused(config, pending, results)
        if self._pool.parallel and len(pending) > 1:
            job = partial(_search_layer_job, cm.mapper if cm else self.mapper, config)
            outcomes = self._pool.map(job, pending)
            # Thread workers record batch-eval counters into the shared
            # mapper directly; only process workers need the delta merged.
            merge_stats = (
                self.batch_eval_stats if self._pool.mode == "process" else None
            )
            for layer, (result, trace, stats_delta) in zip(pending, outcomes):
                if merge_stats is not None and stats_delta is not None:
                    merge_stats.merge(stats_delta)
                if cm is not None:
                    cm.misses += 1
                    cm.cache.stats.misses += 1
                    cm.store(layer, config, result, trace)
                results[layer.name] = result
        else:
            mapper = cm if cm is not None else self.mapper
            for layer in pending:
                inject("mapper", key=layer.name)
                try:
                    results[layer.name] = mapper(layer, config)
                except (KeyboardInterrupt, SystemExit, ReproError):
                    raise
                except Exception as exc:
                    raise MapperFailureError(
                        f"mapping search failed: {type(exc).__name__}: {exc}",
                        layer=layer.name,
                        cause=type(exc).__name__,
                    ) from exc
        return {
            layer.name: results[layer.name] for layer in self.workload.layers
        }

    def _optimize_layers_fused(
        self,
        config: AcceleratorConfig,
        pending: list,
        results: Dict[str, "MappingResult"],
    ) -> list:
        """Fused fast path: resolve pending layers through one
        cross-layer kernel pass (``repro.cost.fused``) when enabled.

        Fills ``results`` with the fused layers' (bit-identical) outcomes
        and returns the layers the remaining paths must still handle —
        everything, when the path is off, unsupported, or fails.  When
        ``REPRO_SHM_EVAL`` is on, the block is offered to the
        shared-memory fleet first (:meth:`_block_sharder`); the fleet
        declining or failing lands back on the inline fused kernels.
        Fused results feed the mapping cache's exact tier (the fused path
        skips re-scorable traces); fault injection fires per layer before
        the block evaluates, matching the per-layer loop's injection
        points.  The knob and ``supports_fused`` checks were resolved
        once at construction — this gate costs two attribute reads per
        step.
        """
        if not pending or not self._fused_enabled or not self._supports_fused:
            return pending
        import repro.cost.fused as _fused

        cm = self._caching_mapper
        mapper = cm.mapper if cm is not None else self.mapper
        for layer in pending:
            inject("mapper", key=layer.name)
        try:
            fused, remaining = _fused.search_layers_fused(
                mapper,
                pending,
                config,
                stats=self.batch_eval_stats,
                sharder=self._block_sharder if self._shm_enabled else None,
            )
        except (KeyboardInterrupt, SystemExit, ReproError):
            raise
        except Exception as exc:
            # The safe path must win over a fast-path defect: warn and
            # hand every layer back to the per-layer reference loop.
            import warnings

            warnings.warn(
                f"fused cross-layer evaluation failed "
                f"({type(exc).__name__}: {exc}); falling back to the "
                f"per-layer search",
                RuntimeWarning,
                stacklevel=2,
            )
            stats = self.batch_eval_stats
            if stats is not None:
                for _ in pending:
                    stats.record_fused_fallback()
            return pending
        for layer, result in fused:
            if cm is not None:
                cm.misses += 1
                cm.cache.stats.misses += 1
                cm.store(layer, config, result, None)
            results[layer.name] = result
        return remaining

    def _block_sharder(self, block, config):
        """Offer a fused block to the shared-memory fleet
        (``REPRO_SHM_EVAL``).  Returns a bit-identical
        :class:`~repro.cost.fused.ShardedBlockEvaluation` or None when
        the fleet declines (block below the adaptive sizing threshold,
        fleet unhealthy) — the caller then evaluates inline."""
        fleet = self._fleet
        if fleet is None:
            from repro.perf.shm_fleet import shared_fleet

            fleet = self._fleet = shared_fleet()
        return fleet.evaluate_block(
            block,
            config,
            shards=self._shm_shards,
            min_rows=self._shm_min_rows,
            stats=self._fleet_stats,
        )

    def _evaluate_uncached(self, point: DesignPoint) -> Evaluation:
        config = config_from_point(
            point,
            freq_mhz=self.freq_mhz,
            bytes_per_element=self.bytes_per_element,
        )
        with self.timers.stage("area_power"):
            area = accelerator_area(config, self.tech)
            power = max_power(config, self.tech)

        with self.timers.stage("mapping"):
            layer_results = self._optimize_layers(config)

        with self.timers.stage("aggregate"):
            total_cycles = 0.0
            energy = EnergyBreakdown.zero()
            mappable = True
            for layer in self.workload.layers:
                result = layer_results[layer.name]
                if not result.feasible:
                    mappable = False
                    continue
                total_cycles += result.latency * layer.repeats
                energy = energy + layer_energy(
                    result.execution, config, self.tech
                ).scaled(layer.repeats)

            if mappable:
                latency_ms = total_cycles / (self.freq_mhz * 1e3)
                energy_mj = energy.total_mj
                throughput = 1000.0 / latency_ms if latency_ms > 0 else math.inf
            else:
                latency_ms = math.inf
                energy_mj = math.inf
                throughput = 0.0

        costs = {
            "latency_ms": latency_ms,
            "area_mm2": area.total_mm2,
            "power_w": power.total_w,
            "energy_mj": energy_mj,
            "throughput": throughput,
        }
        return Evaluation(
            point=dict(point),
            config=config,
            layer_results=layer_results,
            costs=costs,
            area=area,
            power=power,
            mappable=mappable,
        )

    # -- counters and instrumentation ----------------------------------------

    def cache_size(self) -> int:
        """Design-point cache entry count."""
        return len(self._cache)

    def mapping_cache_size(self) -> int:
        """Layer-level mapping cache entry count (0 when disabled)."""
        cache = self.mapping_cache
        return cache.size() if cache else 0

    @property
    def mapping_cache_hits(self) -> int:
        """Layer searches this evaluator served from the mapping cache
        (exact hits + bandwidth re-scores)."""
        cm = self._caching_mapper
        return (cm.exact_hits + cm.rescore_hits) if cm else 0

    @property
    def mapping_cache_misses(self) -> int:
        cm = self._caching_mapper
        return cm.misses if cm else 0

    @property
    def mapping_cache_hit_rate(self) -> float:
        """Fraction of this evaluator's layer searches served by the
        mapping cache (0.0 when disabled or before any search)."""
        total = self.mapping_cache_hits + self.mapping_cache_misses
        return self.mapping_cache_hits / total if total else 0.0

    @property
    def evaluations_per_second(self) -> float:
        """Unique design-point evaluations per second of cost-model time."""
        if self.total_seconds <= 0:
            return 0.0
        return self.evaluations / self.total_seconds

    @property
    def batch_eval_stats(self):
        """The mapper's :class:`BatchEvalStats` (None when the mapper has
        no batched candidate-scoring path, e.g. the fixed dataflow)."""
        return getattr(self.mapper, "batch_stats", None)

    def perf_summary(self) -> Dict[str, object]:
        """Instrumentation snapshot: timers, throughput, cache counters."""
        from repro.core.bottleneck import compile as tree_compile
        from repro.cost.batch import batch_eval_enabled

        cm = self._caching_mapper
        stats = self.batch_eval_stats
        batch_section: Dict[str, object] = {
            "supported": stats is not None,
            "enabled": stats is not None
            and batch_eval_enabled(getattr(self.mapper, "batch_eval", None)),
            "fused_supported": self._supports_fused,
            "fused_enabled": self._fused_enabled and self._supports_fused,
        }
        if stats is not None:
            batch_section.update(stats.as_dict())
        # NOTE: the tree_compile counters are process-global (the program
        # memo outlives any one campaign), so the whole section is listed
        # in repro.telemetry's volatile keys and never enters journals.
        tree_section: Dict[str, object] = {
            "enabled": tree_compile_enabled(),
        }
        tree_section.update(tree_compile.stats().as_dict())
        plane = self.mapping_cache.plane if self.mapping_cache else None
        # NOTE: the plane counters depend on which process warmed the
        # shared segments first, so "plane" is a telemetry-volatile key.
        plane_section: Dict[str, object] = {"enabled": plane is not None}
        if plane is not None:
            plane_section.update(plane.stats.as_dict())
            plane_section["segments"] = plane.segment_count()
            plane_section["entries"] = plane.entry_count()
        summary: Dict[str, object] = {
            "evaluations": self.evaluations,
            "calls": self.calls,
            "total_seconds": self.total_seconds,
            "evaluations_per_second": self.evaluations_per_second,
            "jobs": self.jobs,
            "executor": self._pool.mode,
            "point_cache_entries": self.cache_size(),
            "stages": self.timers.as_dict(),
            "mapping_cache": {
                "enabled": cm is not None,
                "exact_hits": cm.exact_hits if cm else 0,
                "rescore_hits": cm.rescore_hits if cm else 0,
                "misses": cm.misses if cm else 0,
                "hit_rate": self.mapping_cache_hit_rate,
                "entries": self.mapping_cache_size(),
                "traces": self.mapping_cache.trace_count()
                if self.mapping_cache
                else 0,
                "plane": plane_section,
            },
            "batch_eval": batch_section,
            "tree_compile": tree_section,
        }
        # The section exists only when the knob is on, so journals of
        # serial campaigns stay byte-identical to pre-fleet builds.
        if self._shm_enabled and self._fleet_stats is not None:
            shm_section: Dict[str, object] = {
                "enabled": True,
                "shards": self._shm_shards,
                "min_shard_rows": self._shm_min_rows,
            }
            shm_section.update(self._fleet_stats.as_dict())
            summary["shm_fleet"] = shm_section
        return summary

    def reset_counters(self) -> None:
        """Zero the iteration/time/cache counters (caches are retained)."""
        self.evaluations = 0
        self.calls = 0
        self.total_seconds = 0.0
        self.timers.reset()
        if self._caching_mapper is not None:
            self._caching_mapper.reset_counters()
        stats = self.batch_eval_stats
        if stats is not None:
            stats.reset()
        if self._fleet_stats is not None:
            self._fleet_stats.reset()

    def close(self) -> None:
        """Release the worker pool (no-op on the serial path).

        The shared-memory fleet is deliberately *not* shut down here:
        its workers stay warm for the next campaign in this process and
        are reaped atexit (:func:`repro.perf.shm_fleet.shared_fleet`).
        """
        self._pool.close()

    def __enter__(self) -> "CostEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
