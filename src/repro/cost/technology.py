"""Technology model: per-access energies and per-component areas (45 nm).

Plays the role Accelergy [80] (with its CACTI [50] and Aladdin [65]
plugins) plays in the paper: given component sizes, produce energy-per-
access, area, and peak-power figures for a 45 nm technology node.

The absolute numbers are calibrated to the published Eyeriss (scaled from
65 nm) and Horowitz-survey figures: a 16-bit MAC costs ~1 pJ; register
files cost a fraction of that per byte; scratchpad SRAM energy/area scale
with the square root of capacity (CACTI-like); DRAM costs two orders of
magnitude more than on-chip SRAM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["TechnologyModel", "TECH_45NM"]


@dataclass(frozen=True)
class TechnologyModel:
    """Per-access energy (pJ) and area (mm^2) primitives.

    All energies are *per byte* unless noted; area helpers take component
    capacities in bytes.
    """

    #: Energy of one 16-bit multiply-accumulate, pJ.
    mac_energy_pj: float = 1.0
    #: Register-file access energy per byte at the 512 B reference size.
    rf_energy_ref_pj: float = 0.15
    rf_ref_bytes: int = 512
    #: Scratchpad access energy per byte at the 1 MiB reference size.
    spm_energy_ref_pj: float = 1.0
    spm_ref_bytes: int = 1 << 20
    #: Off-chip DRAM access energy per byte.
    dram_energy_pj: float = 100.0
    #: NoC transfer energy per byte (wire + switching).
    noc_energy_pj: float = 0.5
    #: Area of one PE datapath (MAC + pipeline + control), mm^2.
    mac_area_mm2: float = 0.0012
    #: Register-file area per byte (small arrays are density-poor), mm^2.
    rf_area_per_byte_mm2: float = 5.0e-5
    #: Scratchpad SRAM area per byte, mm^2.
    spm_area_per_byte_mm2: float = 8.0e-6
    #: Scratchpad banking/peripheral overhead, mm^2 per bank of 64 KiB.
    spm_bank_area_mm2: float = 0.05
    #: NoC area per physical link per bit of datawidth, mm^2.
    noc_area_per_link_bit_mm2: float = 2.0e-5
    #: Fixed area of the DMA engine and global control, mm^2.
    controller_area_mm2: float = 1.0

    # -- energy --------------------------------------------------------------

    def rf_energy_per_byte(self, rf_bytes: int) -> float:
        """RF access energy per byte; sqrt scaling with capacity, floored."""
        scale = math.sqrt(max(rf_bytes, 1) / self.rf_ref_bytes)
        return max(0.03, self.rf_energy_ref_pj * scale)

    def spm_energy_per_byte(self, spm_bytes: int) -> float:
        """Scratchpad access energy per byte; sqrt scaling with capacity."""
        scale = math.sqrt(max(spm_bytes, 1) / self.spm_ref_bytes)
        return max(0.2, self.spm_energy_ref_pj * scale)

    # -- area -----------------------------------------------------------------

    def pe_area(self, rf_bytes: int) -> float:
        """Area of one PE (datapath + private register file), mm^2."""
        return self.mac_area_mm2 + rf_bytes * self.rf_area_per_byte_mm2

    def spm_area(self, spm_bytes: int) -> float:
        """Scratchpad area including banking overhead, mm^2."""
        banks = max(1, math.ceil(spm_bytes / (64 * 1024)))
        return spm_bytes * self.spm_area_per_byte_mm2 + banks * self.spm_bank_area_mm2

    def noc_area(self, total_links: int, datawidth_bits: int) -> float:
        """Total NoC wiring/switch area across all operand networks, mm^2."""
        return total_links * datawidth_bits * self.noc_area_per_link_bit_mm2


#: The default 45 nm technology instance used throughout the experiments.
TECH_45NM = TechnologyModel()
