"""Analytical per-layer latency model (dMazeRunner-style).

Given a layer, a mapping, and a hardware configuration, this module derives
the three overlapped execution-time factors of the paper's bottleneck model
(Fig. 8) — computation on the PE array, operand distribution over the four
dedicated NoCs, and off-chip DMA transfers — together with every execution
characteristic the bottleneck analyzer needs (§4.7).

Modeling assumptions (shared with dMazeRunner/Timeloop-class models):

* one MAC per PE per cycle; compute time is the padded temporal iteration
  count ``prod(f_dram * f_spm * f_rf)``;
* double buffering overlaps the three factors, so per-layer latency is
  their maximum;
* each operand's NoC distributes register-file tiles to PE groups; groups
  beyond the physical link count are served by time-shared ("virtual")
  unicast rounds, and a mapping is *incompatible* with the hardware when
  even time-sharing cannot cover the demanded concurrent groups;
* the DMA engine transfers operands one by one (additive), while the four
  NoCs run concurrently (max).
"""

from __future__ import annotations

import math
from typing import Dict, Union

from repro.arch.accelerator import AcceleratorConfig
from repro.cost.execution_info import ExecutionInfo, InfeasibleMapping
from repro.mapping.mapping import (
    Level,
    Mapping,
    _relevant_dims,
    operand_tile_elements,
)
from repro.workloads.layers import LayerShape, Operand

__all__ = ["evaluate_layer_mapping", "DATA_OPERANDS"]

#: Operands with their own storage footprint (PSUM aliases O's tensor).
DATA_OPERANDS = (Operand.I, Operand.W, Operand.O)


def evaluate_layer_mapping(
    layer: LayerShape,
    mapping: Mapping,
    config: AcceleratorConfig,
) -> Union[ExecutionInfo, InfeasibleMapping]:
    """Evaluate one (layer, mapping, hardware) triple.

    Returns:
        An :class:`ExecutionInfo` on success, or an
        :class:`InfeasibleMapping` describing why the mapping cannot run on
        this hardware (capacity overflow or NoC incompatibility).
    """
    bpe = config.bytes_per_element

    # -- resource feasibility -------------------------------------------------
    pes_used = mapping.pes_used
    if pes_used > config.pes:
        return InfeasibleMapping(
            f"spatial unrolling needs {pes_used} PEs, hardware has {config.pes}"
        )

    rf_tile = mapping.rf_tile
    rf_bytes = {
        op: operand_tile_elements(layer, rf_tile, op) * bpe
        for op in DATA_OPERANDS
    }
    if sum(rf_bytes.values()) > config.l1_bytes:
        return InfeasibleMapping(
            f"RF tile needs {sum(rf_bytes.values())} B, "
            f"register file holds {config.l1_bytes} B"
        )

    spm_tile = mapping.spm_tile
    spm_bytes = {
        op: operand_tile_elements(layer, spm_tile, op) * bpe
        for op in DATA_OPERANDS
    }
    # Double buffering: the next tile streams in while the current computes.
    if 2 * sum(spm_bytes.values()) > config.l2_bytes:
        return InfeasibleMapping(
            f"double-buffered SPM tile needs {2 * sum(spm_bytes.values())} B, "
            f"scratchpad holds {config.l2_bytes} B"
        )

    # -- NoC compatibility ------------------------------------------------------
    groups = {
        op: mapping.spatial_groups(layer, op)
        for op in (Operand.I, Operand.W, Operand.O)
    }
    groups[Operand.PSUM] = groups[Operand.O]
    rounds: Dict[Operand, int] = {}
    for op, g in groups.items():
        links = config.physical_links(op)
        r = math.ceil(g / links)
        if r > config.virt_unicast[op]:
            return InfeasibleMapping(
                f"mapping demands {g} concurrent unicast groups; NoC provides "
                f"{links} physical x {config.virt_unicast[op]} virtual links",
                operand=op,
            )
        rounds[op] = r

    # -- computation --------------------------------------------------------------
    t_comp = float(
        mapping.temporal_iterations(Level.DRAM)
        * mapping.temporal_iterations(Level.SPM)
        * mapping.temporal_iterations(Level.RF)
    )

    # -- NoC distribution -----------------------------------------------------------
    dram_iters = mapping.temporal_iterations(Level.DRAM)
    fetches2 = {
        op: mapping.fetches_at(Level.SPM, layer, op) for op in DATA_OPERANDS
    }
    out_tiles2 = math.prod(
        mapping.factors[Level.SPM][d]
        for d in _relevant_dims(layer.operator, Operand.O)
    )
    events = {
        Operand.I: dram_iters * fetches2[Operand.I],
        Operand.W: dram_iters * fetches2[Operand.W],
        Operand.O: dram_iters * fetches2[Operand.O],
        Operand.PSUM: dram_iters * max(0, fetches2[Operand.O] - out_tiles2),
    }
    tile_bytes_for = {
        Operand.I: rf_bytes[Operand.I],
        Operand.W: rf_bytes[Operand.W],
        Operand.O: rf_bytes[Operand.O],
        Operand.PSUM: rf_bytes[Operand.O],
    }
    noc_bpc = config.noc_bytes_per_cycle
    t_noc: Dict[Operand, float] = {}
    data_noc: Dict[Operand, float] = {}
    for op in groups:
        per_event_cycles = rounds[op] * tile_bytes_for[op] / noc_bpc
        t_noc[op] = events[op] * per_event_cycles
        data_noc[op] = events[op] * groups[op] * tile_bytes_for[op]

    # -- DMA transfers -----------------------------------------------------------------
    fetches3 = {
        op: mapping.fetches_at(Level.DRAM, layer, op) for op in DATA_OPERANDS
    }
    data_offchip: Dict[Operand, float] = {
        Operand.I: fetches3[Operand.I] * spm_bytes[Operand.I],
        Operand.W: fetches3[Operand.W] * spm_bytes[Operand.W],
    }
    out_writes = fetches3[Operand.O] * spm_bytes[Operand.O]
    full_tile = mapping.tile_dims(*Level)
    padded_out_bytes = operand_tile_elements(layer, full_tile, Operand.O) * bpe
    data_offchip[Operand.O] = float(out_writes)
    data_offchip[Operand.PSUM] = float(max(0, out_writes - padded_out_bytes))
    t_dma = sum(data_offchip.values()) / config.dram_bytes_per_cycle

    # -- remaining (unexploited) reuse -------------------------------------------------
    reuse_available_rf: Dict[Operand, float] = {}
    reuse_available_spm: Dict[Operand, float] = {}
    for op in DATA_OPERANDS:
        relevant = _relevant_dims(layer.operator, op)
        spm_factors = mapping.factors[Level.SPM]
        dram_factors = mapping.factors[Level.DRAM]
        min2 = math.prod(spm_factors[d] for d in relevant)
        min3 = math.prod(dram_factors[d] for d in relevant)
        reuse_available_rf[op] = fetches2[op] / min2
        reuse_available_spm[op] = fetches3[op] / min3
    reuse_available_rf[Operand.PSUM] = reuse_available_rf[Operand.O]
    reuse_available_spm[Operand.PSUM] = reuse_available_spm[Operand.O]

    data_rf = dict(rf_bytes)
    data_rf[Operand.PSUM] = rf_bytes[Operand.O]
    data_spm = dict(spm_bytes)
    data_spm[Operand.PSUM] = spm_bytes[Operand.O]

    utilization = layer.macs / (t_comp * pes_used) if t_comp else 0.0

    return ExecutionInfo(
        t_comp=t_comp,
        t_noc=t_noc,
        t_dma=t_dma,
        data_offchip=data_offchip,
        data_noc=data_noc,
        noc_groups_needed=dict(groups),
        noc_bytes_per_group={op: float(b) for op, b in tile_bytes_for.items()},
        data_rf={op: float(b) for op, b in data_rf.items()},
        data_spm={op: float(b) for op, b in data_spm.items()},
        reuse_available_rf=reuse_available_rf,
        reuse_available_spm=reuse_available_spm,
        pes_used=pes_used,
        macs=layer.macs,
        utilized_macs_fraction=utilization,
    )
