"""Energy model: per-layer and per-model energy from execution traffic.

Accelergy-style component accounting: each byte moved at each hierarchy
level is charged that level's per-byte energy from the technology model,
and each (padded) MAC is charged the datapath energy plus the register-file
accesses that feed it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.accelerator import AcceleratorConfig
from repro.cost.execution_info import ExecutionInfo
from repro.cost.technology import TECH_45NM, TechnologyModel

__all__ = ["EnergyBreakdown", "layer_energy"]

#: Register-file bytes touched per MAC: read input + read weight + update
#: the output accumulator (read+write), in elements of ``bytes_per_element``.
RF_ACCESSES_PER_MAC = 4


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one layer execution, picojoules, by component."""

    mac_pj: float
    rf_pj: float
    noc_pj: float
    spm_pj: float
    dram_pj: float

    @property
    def total_pj(self) -> float:
        return self.mac_pj + self.rf_pj + self.noc_pj + self.spm_pj + self.dram_pj

    @property
    def total_mj(self) -> float:
        return self.total_pj * 1e-9

    def scaled(self, factor: float) -> "EnergyBreakdown":
        """Scale all components (e.g. by a layer's repeat count)."""
        return EnergyBreakdown(
            mac_pj=self.mac_pj * factor,
            rf_pj=self.rf_pj * factor,
            noc_pj=self.noc_pj * factor,
            spm_pj=self.spm_pj * factor,
            dram_pj=self.dram_pj * factor,
        )

    @staticmethod
    def zero() -> "EnergyBreakdown":
        return EnergyBreakdown(0.0, 0.0, 0.0, 0.0, 0.0)

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            mac_pj=self.mac_pj + other.mac_pj,
            rf_pj=self.rf_pj + other.rf_pj,
            noc_pj=self.noc_pj + other.noc_pj,
            spm_pj=self.spm_pj + other.spm_pj,
            dram_pj=self.dram_pj + other.dram_pj,
        )


def layer_energy(
    execution: ExecutionInfo,
    config: AcceleratorConfig,
    tech: TechnologyModel = TECH_45NM,
) -> EnergyBreakdown:
    """Energy of one layer execution from its traffic characteristics.

    Components:

    * **MAC**: padded MAC count (idle-padded work still clocks the array is
      *not* charged — only true MACs consume datapath energy);
    * **RF**: ``RF_ACCESSES_PER_MAC`` element accesses per true MAC at the
      size-dependent RF energy;
    * **NoC**: bytes distributed over the four operand networks;
    * **SPM**: scratchpad reads feeding the NoCs plus writes of DMA-fetched
      data, at the size-dependent SPM energy;
    * **DRAM**: all off-chip traffic at the DRAM per-byte energy.
    """
    bpe = config.bytes_per_element
    mac_pj = execution.macs * tech.mac_energy_pj
    rf_pj = (
        execution.macs
        * RF_ACCESSES_PER_MAC
        * bpe
        * tech.rf_energy_per_byte(config.l1_bytes)
    )
    noc_bytes = sum(execution.data_noc.values())
    noc_pj = noc_bytes * tech.noc_energy_pj
    offchip_bytes = sum(execution.data_offchip.values())
    spm_pj = (noc_bytes + offchip_bytes) * tech.spm_energy_per_byte(
        config.l2_bytes
    )
    dram_pj = offchip_bytes * tech.dram_energy_pj
    return EnergyBreakdown(
        mac_pj=mac_pj,
        rf_pj=rf_pj,
        noc_pj=noc_pj,
        spm_pj=spm_pj,
        dram_pj=dram_pj,
    )
