"""Analytical cost models: latency, energy, area, and max power."""

from repro.cost.area import AreaBreakdown, accelerator_area
from repro.cost.batch import (
    batch_eval_enabled,
    evaluate_layer_batch,
    evaluate_layer_mappings_batch,
)
from repro.cost.energy import EnergyBreakdown, layer_energy
from repro.cost.evaluator import CostEvaluator, Evaluation
from repro.cost.execution_info import ExecutionInfo, InfeasibleMapping
from repro.cost.latency import evaluate_layer_mapping
from repro.cost.power import PowerBreakdown, max_power
from repro.cost.technology import TECH_45NM, TechnologyModel
from repro.cost.validation import (
    RooflineBounds,
    roofline_bounds,
    validate_execution,
)

__all__ = [
    "AreaBreakdown",
    "CostEvaluator",
    "EnergyBreakdown",
    "Evaluation",
    "ExecutionInfo",
    "InfeasibleMapping",
    "PowerBreakdown",
    "RooflineBounds",
    "TECH_45NM",
    "TechnologyModel",
    "accelerator_area",
    "batch_eval_enabled",
    "evaluate_layer_batch",
    "evaluate_layer_mapping",
    "evaluate_layer_mappings_batch",
    "layer_energy",
    "max_power",
    "roofline_bounds",
    "validate_execution",
]
