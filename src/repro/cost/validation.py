"""Cost-model validation: roofline lower bounds and consistency checks.

Analytical models drift; these checks pin the latency model against
physics-style lower bounds that any correct model must respect:

* **compute roofline** — a layer cannot finish faster than
  ``true MACs / PE count`` cycles;
* **bandwidth roofline** — it cannot finish faster than moving each
  operand across the off-chip boundary once at full bandwidth (when the
  mapping actually touches DRAM);
* **traffic floor** — per-operand off-chip traffic is at least the (padded)
  tensor footprint.

The test suite applies them to randomly sampled mappings; users can call
:func:`validate_execution` on their own model outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.arch.accelerator import AcceleratorConfig
from repro.cost.execution_info import ExecutionInfo
from repro.workloads.layers import LayerShape, Operand

__all__ = ["RooflineBounds", "roofline_bounds", "validate_execution"]


@dataclass(frozen=True)
class RooflineBounds:
    """Lower bounds on a layer's execution (cycles / bytes)."""

    compute_cycles: float
    bandwidth_cycles: float
    offchip_bytes: float

    @property
    def latency_cycles(self) -> float:
        return max(self.compute_cycles, self.bandwidth_cycles)


def roofline_bounds(
    layer: LayerShape, config: AcceleratorConfig
) -> RooflineBounds:
    """Machine-balance lower bounds for one layer on one configuration."""
    compute = layer.macs / config.pes
    footprint = float(layer.total_footprint_bytes)
    bandwidth = footprint / config.dram_bytes_per_cycle
    return RooflineBounds(
        compute_cycles=compute,
        bandwidth_cycles=bandwidth,
        offchip_bytes=footprint,
    )


def validate_execution(
    layer: LayerShape,
    execution: ExecutionInfo,
    config: AcceleratorConfig,
) -> List[str]:
    """Check one execution against the rooflines; returns violations.

    An empty list means the execution respects every bound.  The
    bandwidth roofline is only asserted when the mapping moves at least
    one full footprint off-chip (fully on-chip-resident cases are bounded
    by compute alone).
    """
    problems: List[str] = []
    bounds = roofline_bounds(layer, config)

    if execution.t_comp * execution.pes_used < layer.macs - 1e-6:
        problems.append(
            f"compute impossible: {execution.t_comp} cycles on "
            f"{execution.pes_used} PEs < {layer.macs} MACs"
        )
    if execution.latency < bounds.compute_cycles - 1e-6:
        problems.append(
            f"latency {execution.latency:.1f} below compute roofline "
            f"{bounds.compute_cycles:.1f}"
        )
    total_offchip = execution.total_offchip_bytes
    if total_offchip >= bounds.offchip_bytes:
        min_dma = total_offchip / config.dram_bytes_per_cycle
        if execution.t_dma < min_dma - 1e-6:
            problems.append(
                f"DMA time {execution.t_dma:.1f} below its own traffic "
                f"at full bandwidth ({min_dma:.1f})"
            )
    for op in (Operand.I, Operand.W):
        # Reads must bring each live byte in at least once; padding only
        # increases the footprint, so the true tensor bytes are a floor.
        floor = layer.tensor_bytes(op)
        if execution.data_offchip.get(op, 0.0) < floor - 1e-6:
            problems.append(
                f"off-chip traffic of {op.value} "
                f"({execution.data_offchip.get(op, 0.0):.0f} B) below the "
                f"tensor footprint ({floor} B)"
            )
    return problems
