"""Fused cross-layer candidate evaluation (campaign-wide SoA kernels).

PR 2's batch kernels (:mod:`repro.cost.batch`) vectorize candidate
scoring *within* one (layer, mapper-call): ``CostEvaluator`` still loops
layers in Python, re-enters the mapper per layer, and — through the
traced-search protocol — materializes ``Mapping``/``ExecutionInfo``
objects for every feasible candidate even though only the winner reaches
the :class:`~repro.mapping.mapper.MappingResult`.  This module collapses
one design point's *entire* mapping stage into a handful of int64 array
passes:

1. every pending layer's candidate plan (``mapper.candidate_plan``) is
   materialized into one
   :class:`~repro.mapping.batch_candidates.FusedCandidateBlock` — a
   (sum-of-candidates x dims) SoA block with per-row layer attributes;
2. :class:`FusedBlockEvaluation` runs the latency/traffic/feasibility
   kernels once over all rows (the row-varying twins of the batch
   kernels live in :mod:`repro.cost.batch`);
3. each layer's winner is selected by a masked argmin over its row range
   and only *that* candidate is materialized back into
   ``Mapping``/``ExecutionInfo`` objects.

Exactness contract (asserted by ``tests/test_fused_eval.py``): results
scatter back bit-identically to the per-layer scalar/batch paths — same
values, same Python types, same dict insertion orders, same
first-strictly-best tie-breaking (``np.argmin`` returns the first
occurrence of the minimum, and infeasible rows are masked to ``+inf``),
and :meth:`FusedBlockEvaluation.infeasibility` reproduces the scalar
:class:`InfeasibleMapping` reasons verbatim.

What the fused path *skips* is the re-scorable
:class:`~repro.mapping.mapper.SearchTrace` (all feasible candidates);
layer results stored into the mapping cache therefore populate the exact
tier only.  Correctness is unaffected — a re-score of a trace is
bit-identical to a cold search, so a missing trace merely costs a future
bandwidth-sweep re-score its shortcut.

The path is opt-in via ``REPRO_FUSED_EVAL=1`` or
``CostEvaluator(fused_eval=True)`` and is restricted to
latency-objective mappers exposing ``candidate_plan`` (the built-in
top-N and random mappers); anything else — including int64-unsafe
candidate sets, which fall back per layer — takes the existing paths.
"""

from __future__ import annotations

import itertools
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.accelerator import AcceleratorConfig
from repro.cost.execution_info import ExecutionInfo, InfeasibleMapping
import repro.cost.batch as _batch
from repro.mapping.batch_candidates import CandidateBatch, FusedCandidateBlock
from repro.mapping.mapper import MappingResult
from repro.perf.instrumentation import BatchEvalStats
from repro.workloads.layers import LOOP_DIMS, LayerShape, Operand

__all__ = [
    "supports_fused",
    "FusedBlockEvaluation",
    "ShardedBlockEvaluation",
    "evaluate_fused_block",
    "search_layers_fused",
]

_DATA_OPERANDS = _batch._DATA_OPERANDS
_NOC_OPERANDS = _batch._NOC_OPERANDS


def supports_fused(mapper) -> bool:
    """Whether ``mapper`` can be driven by the fused cross-layer path.

    Requires the candidate-plan protocol (the search must be expressible
    as "materialize up to N specs, pick the first strictly-best") and the
    latency objective — energy/EDP scoring runs through the per-layer
    energy model and stays on the existing paths.
    """
    return (
        callable(getattr(mapper, "candidate_plan", None))
        and getattr(mapper, "objective", None) == "latency"
    )


class FusedBlockEvaluation:
    """Kernel results for one (design point, all-layers candidate block).

    The row-varying twin of
    :class:`~repro.cost.batch.BatchLayerEvaluation`: layer attributes
    (stride, depthwise flag, operator, MACs) are per-row arrays from the
    block, hardware parameters are scalars from ``config``, and every
    kernel replicates the batch/scalar operation order so float results
    are bitwise equal.
    """

    def __init__(self, block: FusedCandidateBlock, config: AcceleratorConfig):
        self.block = block
        self.config = config
        n = len(block)
        bpe = config.bytes_per_element
        operators = block.operators
        opcode = block.opcode

        # -- resource feasibility (mirrors the scalar check order) ----------
        self.pes_used = _batch._prod_cols(block.spatial, range(len(LOOP_DIMS)))
        self.rf_bytes = {
            op: elems * bpe
            for op, elems in _batch.tile_elements_rows(
                block.rf, block.stride, block.dwise
            ).items()
        }
        self.rf_total = (
            self.rf_bytes[Operand.I]
            + self.rf_bytes[Operand.W]
            + self.rf_bytes[Operand.O]
        )
        spm_tile = block.rf * block.spatial * block.spm
        self.spm_bytes = {
            op: elems * bpe
            for op, elems in _batch.tile_elements_rows(
                spm_tile, block.stride, block.dwise
            ).items()
        }
        self.spm_total = (
            self.spm_bytes[Operand.I]
            + self.spm_bytes[Operand.W]
            + self.spm_bytes[Operand.O]
        )

        # -- NoC compatibility ----------------------------------------------
        self.groups: Dict[Operand, np.ndarray] = {
            op: _batch.relevant_prod_rows(operators, opcode, block.spatial, op)
            for op in _DATA_OPERANDS
        }
        self.groups[Operand.PSUM] = self.groups[Operand.O]
        self.links = {op: config.physical_links(op) for op in _NOC_OPERANDS}
        self.rounds = {
            op: np.ceil(self.groups[op] / self.links[op]).astype(np.int64)
            for op in _NOC_OPERANDS
        }

        self.fail_code = np.zeros(n, dtype=np.int64)
        ok = np.ones(n, dtype=bool)

        def _check(violated: np.ndarray, code: int) -> None:
            newly = ok & violated
            self.fail_code[newly] = code
            ok[newly] = False

        _check(self.pes_used > config.pes, _batch.FAIL_PES)
        _check(self.rf_total > config.l1_bytes, _batch.FAIL_RF)
        _check(2 * self.spm_total > config.l2_bytes, _batch.FAIL_SPM)
        for i, op in enumerate(_NOC_OPERANDS):
            _check(
                self.rounds[op] > config.virt_unicast[op],
                _batch.FAIL_NOC_BASE + i,
            )
        self.feasible = ok

        # -- computation ------------------------------------------------------
        iters_dram = _batch._prod_cols(block.dram, range(len(LOOP_DIMS)))
        iters_spm = _batch._prod_cols(block.spm, range(len(LOOP_DIMS)))
        iters_rf = _batch._prod_cols(block.rf, range(len(LOOP_DIMS)))
        t_comp_int = iters_dram * iters_spm * iters_rf
        self.t_comp = t_comp_int.astype(np.float64)

        # -- NoC distribution -------------------------------------------------
        fetches2 = {
            op: iters_spm
            // _batch.reuse_rows(
                operators, opcode, block.spm, block.spm_code, op
            )
            for op in _DATA_OPERANDS
        }
        out_tiles2 = _batch.relevant_prod_rows(
            operators, opcode, block.spm, Operand.O
        )
        events = {
            Operand.I: iters_dram * fetches2[Operand.I],
            Operand.W: iters_dram * fetches2[Operand.W],
            Operand.O: iters_dram * fetches2[Operand.O],
            Operand.PSUM: iters_dram
            * np.maximum(0, fetches2[Operand.O] - out_tiles2),
        }
        tile_bytes_for = {
            Operand.I: self.rf_bytes[Operand.I],
            Operand.W: self.rf_bytes[Operand.W],
            Operand.O: self.rf_bytes[Operand.O],
            Operand.PSUM: self.rf_bytes[Operand.O],
        }
        self.noc_bytes_per_group = tile_bytes_for
        noc_bpc = config.noc_bytes_per_cycle
        self.t_noc: Dict[Operand, np.ndarray] = {}
        self.data_noc: Dict[Operand, np.ndarray] = {}
        for op in _NOC_OPERANDS:
            per_event_cycles = (self.rounds[op] * tile_bytes_for[op]) / noc_bpc
            self.t_noc[op] = events[op] * per_event_cycles
            self.data_noc[op] = events[op] * self.groups[op] * tile_bytes_for[op]

        # -- DMA transfers ----------------------------------------------------
        fetches3 = {
            op: iters_dram
            // _batch.reuse_rows(
                operators, opcode, block.dram, block.dram_code, op
            )
            for op in _DATA_OPERANDS
        }
        self.off_int = {
            Operand.I: fetches3[Operand.I] * self.spm_bytes[Operand.I],
            Operand.W: fetches3[Operand.W] * self.spm_bytes[Operand.W],
        }
        out_writes = fetches3[Operand.O] * self.spm_bytes[Operand.O]
        full_tile = block.dram * block.spm * block.spatial * block.rf
        padded_out_bytes = (
            _batch.tile_elements_rows(full_tile, block.stride, block.dwise)[
                Operand.O
            ]
            * bpe
        )
        self.off_float = {
            Operand.O: out_writes.astype(np.float64),
            Operand.PSUM: np.maximum(0, out_writes - padded_out_bytes).astype(
                np.float64
            ),
        }
        # Same float-addition order as ``sum(data_offchip.values())``.
        offchip_total = (
            self.off_int[Operand.I].astype(np.float64)
            + self.off_int[Operand.W].astype(np.float64)
            + self.off_float[Operand.O]
            + self.off_float[Operand.PSUM]
        )
        self.t_dma = offchip_total / config.dram_bytes_per_cycle

        # -- remaining (unexploited) reuse -----------------------------------
        self.reuse_rf: Dict[Operand, np.ndarray] = {}
        self.reuse_spm: Dict[Operand, np.ndarray] = {}
        for op in _DATA_OPERANDS:
            min2 = _batch.relevant_prod_rows(operators, opcode, block.spm, op)
            min3 = _batch.relevant_prod_rows(operators, opcode, block.dram, op)
            self.reuse_rf[op] = fetches2[op] / min2
            self.reuse_spm[op] = fetches3[op] / min3
        self.reuse_rf[Operand.PSUM] = self.reuse_rf[Operand.O]
        self.reuse_spm[Operand.PSUM] = self.reuse_spm[Operand.O]

        pes_f = self.pes_used.astype(np.float64)
        denominator = np.where(self.t_comp > 0, self.t_comp * pes_f, 1.0)
        self.utilization = np.where(
            self.t_comp > 0, block.macs / denominator, 0.0
        )

        # -- latency objective ------------------------------------------------
        # Scalar: ``max(t_comp, max(t_noc.values()), t_dma)``; all terms
        # are finite non-negative floats, so the chained np.maximum is
        # exactly the same value.
        score = self.t_comp
        for op in _NOC_OPERANDS:
            score = np.maximum(score, self.t_noc[op])
        self.latency = np.maximum(score, self.t_dma)

    def __len__(self) -> int:
        return len(self.block)

    def execution_info(self, row: int, layer: LayerShape) -> ExecutionInfo:
        """The scalar-identical :class:`ExecutionInfo` of ``row`` (must be
        feasible).  Same trusted-constructor materialization as
        ``BatchLayerEvaluation.execution_infos`` — ``.tolist()`` /
        ``float()`` / ``int()`` conversions yield the exact Python types
        the scalar path produces."""
        I, W, O, PSUM = Operand.I, Operand.W, Operand.O, Operand.PSUM

        def _f(arr: np.ndarray) -> float:  # exact int -> float conversion
            return float(arr[row])

        info = object.__new__(ExecutionInfo)
        info.__dict__.update({
            "t_comp": float(self.t_comp[row]),
            "t_noc": {op: float(self.t_noc[op][row]) for op in _NOC_OPERANDS},
            "t_dma": float(self.t_dma[row]),
            "data_offchip": {
                I: int(self.off_int[I][row]),
                W: int(self.off_int[W][row]),
                O: float(self.off_float[O][row]),
                PSUM: float(self.off_float[PSUM][row]),
            },
            "data_noc": {
                op: int(self.data_noc[op][row]) for op in _NOC_OPERANDS
            },
            "noc_groups_needed": {
                op: int(self.groups[op][row]) for op in _NOC_OPERANDS
            },
            "noc_bytes_per_group": {
                op: _f(self.noc_bytes_per_group[op]) for op in _NOC_OPERANDS
            },
            "data_rf": {
                I: _f(self.rf_bytes[I]),
                W: _f(self.rf_bytes[W]),
                O: _f(self.rf_bytes[O]),
                PSUM: _f(self.rf_bytes[O]),
            },
            "data_spm": {
                I: _f(self.spm_bytes[I]),
                W: _f(self.spm_bytes[W]),
                O: _f(self.spm_bytes[O]),
                PSUM: _f(self.spm_bytes[O]),
            },
            "reuse_available_rf": {
                I: float(self.reuse_rf[I][row]),
                W: float(self.reuse_rf[W][row]),
                O: float(self.reuse_rf[O][row]),
                PSUM: float(self.reuse_rf[O][row]),
            },
            "reuse_available_spm": {
                I: float(self.reuse_spm[I][row]),
                W: float(self.reuse_spm[W][row]),
                O: float(self.reuse_spm[O][row]),
                PSUM: float(self.reuse_spm[O][row]),
            },
            "pes_used": int(self.pes_used[row]),
            "macs": layer.macs,
            "utilized_macs_fraction": float(self.utilization[row]),
        })
        return info

    def infeasibility(self, row: int) -> InfeasibleMapping:
        """The scalar-identical :class:`InfeasibleMapping` of ``row``
        (only valid for infeasible rows)."""
        code = int(self.fail_code[row])
        config = self.config
        if code == _batch.FAIL_PES:
            return InfeasibleMapping(
                f"spatial unrolling needs {int(self.pes_used[row])} PEs, "
                f"hardware has {config.pes}"
            )
        if code == _batch.FAIL_RF:
            return InfeasibleMapping(
                f"RF tile needs {int(self.rf_total[row])} B, "
                f"register file holds {config.l1_bytes} B"
            )
        if code == _batch.FAIL_SPM:
            return InfeasibleMapping(
                f"double-buffered SPM tile needs "
                f"{2 * int(self.spm_total[row])} B, "
                f"scratchpad holds {config.l2_bytes} B"
            )
        op = _NOC_OPERANDS[code - _batch.FAIL_NOC_BASE]
        return InfeasibleMapping(
            f"mapping demands {int(self.groups[op][row])} concurrent unicast "
            f"groups; NoC provides {self.links[op]} physical x "
            f"{config.virt_unicast[op]} virtual links",
            operand=op,
        )

    def layer_result(self, layer_index: int) -> MappingResult:
        """The :class:`MappingResult` of layer ``layer_index``.

        Winner selection is the first row of the layer's range achieving
        the minimal latency among feasible rows (``np.argmin`` returns
        the first occurrence of the minimum; infeasible rows are masked
        to ``+inf``) — exactly the scalar first-strictly-best rule.
        """
        rows = self.block.rows(layer_index)
        n = rows.stop - rows.start
        feasible = self.feasible[rows]
        feasible_count = int(np.count_nonzero(feasible))
        if feasible_count == 0:
            return MappingResult(
                mapping=None,
                execution=None,
                candidates_evaluated=n,
                feasible_candidates=0,
            )
        scores = np.where(feasible, self.latency[rows], np.inf)
        winner = int(np.argmin(scores))
        layer = self.block.layers[layer_index]
        return MappingResult(
            mapping=self.block.batches[layer_index].mapping(winner),
            execution=self.execution_info(rows.start + winner, layer),
            candidates_evaluated=n,
            feasible_candidates=feasible_count,
        )


def evaluate_fused_block(
    block: FusedCandidateBlock, config: AcceleratorConfig
) -> FusedBlockEvaluation:
    """Evaluate a whole cross-layer candidate block in fused passes."""
    return FusedBlockEvaluation(block, config)


class _BlockRows:
    """A zero-copy row-range view over a fused block's SoA arrays.

    Duck-types the :class:`FusedCandidateBlock` attributes that
    :class:`FusedBlockEvaluation.__init__` consumes (the kernels are
    row-elementwise, so evaluating a slice produces bitwise the same
    per-row values as evaluating the full block).
    """

    __slots__ = (
        "dram", "spm", "spatial", "rf", "dram_code", "spm_code",
        "stride", "dwise", "opcode", "macs", "operators", "_n",
    )

    def __init__(self, block, start: int, stop: int):
        rows = slice(start, stop)
        self.dram = block.dram[rows]
        self.spm = block.spm[rows]
        self.spatial = block.spatial[rows]
        self.rf = block.rf[rows]
        self.dram_code = block.dram_code[rows]
        self.spm_code = block.spm_code[rows]
        self.stride = block.stride[rows]
        self.dwise = block.dwise[rows]
        self.opcode = block.opcode[rows]
        self.macs = block.macs[rows]
        self.operators = block.operators
        self._n = stop - start

    def __len__(self) -> int:
        return self._n


class ShardedBlockEvaluation(FusedBlockEvaluation):
    """A block evaluation assembled from worker-computed shard results.

    The shared-memory fleet (:mod:`repro.perf.shm_fleet`) computes the
    decision arrays — per-row latency, feasibility, and infeasibility
    code — on sibling processes; winner *selection* (the masked argmin
    inherited from :meth:`FusedBlockEvaluation.layer_result`) happens in
    the parent over those arrays, so it is deterministic regardless of
    worker scheduling.  Winner *materialization* re-runs the kernels on
    a one-row slice of the block (:class:`_BlockRows`): the kernels are
    row-elementwise, so the ``ExecutionInfo``/``InfeasibleMapping``
    objects are bit-identical to the single-process fused path — only
    one row per layer pays the scalar materialization cost.
    """

    def __init__(
        self,
        block: FusedCandidateBlock,
        config: AcceleratorConfig,
        latency: np.ndarray,
        fail_code: np.ndarray,
        feasible: np.ndarray,
    ):
        # Deliberately skip FusedBlockEvaluation.__init__: the decision
        # arrays already exist; everything else is derived per winner row.
        self.block = block
        self.config = config
        self.latency = latency
        self.fail_code = fail_code
        self.feasible = feasible
        self._row_cache: Dict[int, FusedBlockEvaluation] = {}

    def _row_evaluation(self, row: int) -> FusedBlockEvaluation:
        cached = self._row_cache.get(row)
        if cached is None:
            cached = FusedBlockEvaluation(
                _BlockRows(self.block, row, row + 1), self.config
            )
            self._row_cache[row] = cached
        return cached

    def execution_info(self, row: int, layer: LayerShape) -> ExecutionInfo:
        return self._row_evaluation(row).execution_info(0, layer)

    def infeasibility(self, row: int) -> InfeasibleMapping:
        return self._row_evaluation(row).infeasibility(0)


def search_layers_fused(
    mapper,
    layers: Sequence[LayerShape],
    config: AcceleratorConfig,
    stats: Optional[BatchEvalStats] = None,
    sharder: Optional[
        Callable[
            [FusedCandidateBlock, AcceleratorConfig],
            Optional[FusedBlockEvaluation],
        ]
    ] = None,
) -> Tuple[List[Tuple[LayerShape, MappingResult]], List[LayerShape]]:
    """Resolve many layers' mapping searches through one fused block.

    Returns ``(fused, remaining)``: per-layer results bit-identical to
    ``mapper(layer, config)`` for every layer whose candidate plan was
    fused, plus the layers handed back for the per-layer path (empty
    plan or int64-unsafe candidate set — the scalar reference computes
    those in arbitrary-precision ints).

    ``sharder`` (the ``REPRO_SHM_EVAL`` hook) is offered the block
    before the in-process evaluation; it returns an evaluation computed
    elsewhere — :class:`ShardedBlockEvaluation` from the shared-memory
    fleet — or None to decline (block too small, fleet unavailable),
    which falls through to the inline :class:`FusedBlockEvaluation`.
    """
    started = time.perf_counter()
    fused_layers: List[LayerShape] = []
    batches: List[CandidateBatch] = []
    remaining: List[LayerShape] = []
    for layer in layers:
        candidates, budget = mapper.candidate_plan(layer, config)
        batch = CandidateBatch.from_specs(itertools.islice(candidates, budget))
        if len(batch) and _batch.int64_safe(batch, config):
            fused_layers.append(layer)
            batches.append(batch)
        else:
            if stats is not None:
                stats.record_fused_fallback()
            remaining.append(layer)
    if not fused_layers:
        return [], remaining
    block = FusedCandidateBlock.from_layer_batches(fused_layers, batches)
    evaluation = sharder(block, config) if sharder is not None else None
    if evaluation is None:
        evaluation = FusedBlockEvaluation(block, config)
    fused: List[Tuple[LayerShape, MappingResult]] = []
    feasible_total = 0
    for index, layer in enumerate(fused_layers):
        result = evaluation.layer_result(index)
        feasible_total += result.feasible_candidates
        fused.append((layer, result))
    if stats is not None:
        stats.record_fused(
            len(fused_layers),
            len(block),
            feasible_total,
            time.perf_counter() - started,
        )
    return fused, remaining
