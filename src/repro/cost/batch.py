"""Vectorized batch evaluation of mapping candidates (NumPy SoA kernels).

Bit-identical batch twin of :func:`repro.cost.latency.evaluate_layer_mapping`:
given a layer, a :class:`~repro.mapping.batch_candidates.CandidateBatch`,
and a hardware configuration, it derives feasibility (PE / register-file /
scratchpad capacity, NoC virtual-unicast compatibility), the three latency
factors (``t_comp``, per-operand NoC rounds, ``t_dma``), and every traffic
characteristic of :class:`~repro.cost.execution_info.ExecutionInfo` for the
*whole candidate set* in a handful of array passes instead of one Python
interpreter round-trip per candidate.

Exactness contract (asserted by ``tests/test_batch_eval.py``):

* integer quantities (tile bytes, fetch counts, NoC groups, ``data_noc``)
  are computed in int64 exactly as the scalar model computes them in
  Python ints;
* float quantities replicate the scalar model's *operation order*, so
  IEEE-754 determinism makes them bitwise equal (e.g. ``t_noc`` is
  ``events * ((rounds * tile_bytes) / noc_bytes_per_cycle)`` in exactly
  that association);
* :meth:`BatchLayerEvaluation.execution_info` materializes per-candidate
  ``ExecutionInfo`` objects with the same Python types (int vs float) and
  dict insertion orders as the scalar path, and
  :meth:`BatchLayerEvaluation.infeasibility` reproduces the scalar
  :class:`InfeasibleMapping` reasons verbatim, including which check
  fires first.

Because the kernels run in int64 rather than arbitrary-precision Python
ints, :func:`int64_safe` guards against (pathological) candidate sets
whose traffic products could overflow; callers fall back to the scalar
reference in that case.  The scalar path remains selectable everywhere
with ``REPRO_BATCH_EVAL=0``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.arch.accelerator import AcceleratorConfig
from repro.cost.execution_info import ExecutionInfo, InfeasibleMapping
from repro.mapping.batch_candidates import CandidateBatch
from repro.mapping.mapping import (
    STATIONARY_CHOICES,
    Mapping,
    _free_dims,
    _relevant_dims,
)
from repro.workloads.layers import (
    LOOP_DIMS,
    Dim,
    LayerShape,
    Operand,
    OperatorType,
)

__all__ = [
    "batch_eval_enabled",
    "int64_safe",
    "evaluate_layer_batch",
    "evaluate_layer_mappings_batch",
    "tile_elements_rows",
    "relevant_prod_rows",
    "reuse_rows",
    "BatchLayerEvaluation",
    "FEASIBLE",
    "FAIL_PES",
    "FAIL_RF",
    "FAIL_SPM",
    "FAIL_NOC_BASE",
]

#: Operands with their own storage footprint (PSUM aliases O's tensor).
_DATA_OPERANDS = (Operand.I, Operand.W, Operand.O)
#: NoC check / dict-population order of the scalar model.
_NOC_OPERANDS = (Operand.I, Operand.W, Operand.O, Operand.PSUM)

#: Per-candidate failure codes (first scalar check that fires).
FEASIBLE = 0
FAIL_PES = 1
FAIL_RF = 2
FAIL_SPM = 3
FAIL_NOC_BASE = 4  # + index into _NOC_OPERANDS

_COL = {d: i for i, d in enumerate(LOOP_DIMS)}


def batch_eval_enabled(override: Optional[bool] = None) -> bool:
    """Whether the batched evaluator is selected.

    ``override`` wins when given; otherwise ``REPRO_BATCH_EVAL`` decides
    (default on; ``0`` selects the scalar reference path).
    """
    if override is not None:
        return bool(override)
    return os.environ.get("REPRO_BATCH_EVAL", "1") != "0"


def int64_safe(batch: CandidateBatch, config: AcceleratorConfig) -> bool:
    """Conservatively check that the batch kernels cannot overflow int64.

    The largest integer the kernels form is operand traffic on the order
    of ``total padded iterations x PE count x bytes per element`` (events
    and tile sizes trade off against each other, so their product is
    bounded by the iteration total times per-candidate halo/byte
    factors).  A generous 64x margin covers halo expansion; anything
    bigger falls back to the scalar path, which computes in Python's
    arbitrary-precision ints.
    """
    if not len(batch):
        return True
    per_dim = batch.dram * batch.spm * batch.spatial * batch.rf
    totals = per_dim.astype(np.float64).prod(axis=1)
    scale = float(config.pes) * float(config.bytes_per_element) * 64.0
    return bool(float(totals.max()) * scale < 2.0**62)


def _prod_cols(arr: np.ndarray, cols: Sequence[int]) -> np.ndarray:
    """Row-wise product over the selected columns (empty selection -> 1)."""
    if not cols:
        return np.ones(arr.shape[0], dtype=np.int64)
    return arr[:, list(cols)].prod(axis=1)


def _tile_elements(
    layer: LayerShape, tile: np.ndarray
) -> Dict[Operand, np.ndarray]:
    """Vectorized :func:`repro.mapping.mapping.operand_tile_elements`.

    ``tile`` is an ``(n, 7)`` array of tile extents in ``LOOP_DIMS``
    order; returns per-operand element counts for I/W/O.
    """
    dwise = layer.operator is OperatorType.DWCONV
    n_, m, c = tile[:, _COL[Dim.N]], tile[:, _COL[Dim.M]], tile[:, _COL[Dim.C]]
    oy, ox = tile[:, _COL[Dim.OY]], tile[:, _COL[Dim.OX]]
    fy, fx = tile[:, _COL[Dim.FY]], tile[:, _COL[Dim.FX]]
    w_channels = 1 if dwise else c
    i_channels = m if dwise else c
    rows = (oy - 1) * layer.stride + fy
    cols = (ox - 1) * layer.stride + fx
    return {
        Operand.I: n_ * i_channels * rows * cols,
        Operand.W: m * w_channels * fy * fx,
        Operand.O: n_ * m * oy * ox,
    }


def tile_elements_rows(
    tile: np.ndarray, stride: np.ndarray, dwise: np.ndarray
) -> Dict[Operand, np.ndarray]:
    """Row-varying twin of :func:`_tile_elements` for fused blocks.

    ``stride``/``dwise`` are per-row layer attributes; the arithmetic is
    the scalar model's verbatim (all int64, so the ``np.where`` channel
    selection is exact).
    """
    n_, m, c = tile[:, _COL[Dim.N]], tile[:, _COL[Dim.M]], tile[:, _COL[Dim.C]]
    oy, ox = tile[:, _COL[Dim.OY]], tile[:, _COL[Dim.OX]]
    fy, fx = tile[:, _COL[Dim.FY]], tile[:, _COL[Dim.FX]]
    w_channels = np.where(dwise, 1, c)
    i_channels = np.where(dwise, m, c)
    rows = (oy - 1) * stride + fy
    cols = (ox - 1) * stride + fx
    return {
        Operand.I: n_ * i_channels * rows * cols,
        Operand.W: m * w_channels * fy * fx,
        Operand.O: n_ * m * oy * ox,
    }


def relevant_prod_rows(
    operators: Sequence[OperatorType],
    opcode: np.ndarray,
    factors: np.ndarray,
    operand: Operand,
) -> np.ndarray:
    """Row-wise product of ``factors`` over the dims indexing ``operand``,
    with the operator (and therefore the relevant-dim set) varying per row
    (``opcode`` indexes ``operators``)."""
    out = np.ones(factors.shape[0], dtype=np.int64)
    for code, operator in enumerate(operators):
        mask = opcode == code
        if not mask.any():
            continue
        cols = [_COL[d] for d in _relevant_dims(operator, operand)]
        out[mask] = _prod_cols(factors[mask], cols)
    return out


def reuse_rows(
    operators: Sequence[OperatorType],
    opcode: np.ndarray,
    factors: np.ndarray,
    codes: np.ndarray,
    operand: Operand,
) -> np.ndarray:
    """Row-varying twin of :func:`_reuse`: per-row temporal reuse of
    ``operand`` when both the stationary choice *and* the operator differ
    row to row (masks over the operator x stationary product)."""
    out = np.ones(factors.shape[0], dtype=np.int64)
    for code, operator in enumerate(operators):
        op_mask = opcode == code
        if not op_mask.any():
            continue
        for st_code, stationary in enumerate(STATIONARY_CHOICES):
            mask = op_mask & (codes == st_code)
            if not mask.any():
                continue
            free = [_COL[d] for d in _free_dims(operator, stationary, operand)]
            if free:
                out[mask] = _prod_cols(factors[mask], free)
    return out


def _reuse(
    operator: OperatorType,
    factors: np.ndarray,
    codes: np.ndarray,
    operand: Operand,
) -> np.ndarray:
    """Per-candidate temporal reuse of ``operand`` at one level.

    Mirrors ``Mapping.reuse_at``: the product of the level's factors over
    dims irrelevant to both the (per-candidate) stationary operand and
    ``operand``.
    """
    out = np.ones(factors.shape[0], dtype=np.int64)
    for code, stationary in enumerate(STATIONARY_CHOICES):
        mask = codes == code
        if not mask.any():
            continue
        free = [_COL[d] for d in _free_dims(operator, stationary, operand)]
        if free:
            out[mask] = _prod_cols(factors[mask], free)
    return out


class BatchLayerEvaluation:
    """Batched evaluation result for one (layer, candidate set, config).

    Array attributes are indexed by candidate position; per-operand
    quantities live in dicts of arrays.  :meth:`outcome` reconstructs the
    exact scalar-path result (``ExecutionInfo`` or ``InfeasibleMapping``)
    of any candidate.
    """

    def __init__(
        self,
        layer: LayerShape,
        batch: CandidateBatch,
        config: AcceleratorConfig,
    ):
        self.layer = layer
        self.batch = batch
        self.config = config
        n = len(batch)
        bpe = config.bytes_per_element

        # -- resource feasibility (mirrors the scalar check order) ----------
        self.pes_used = _prod_cols(batch.spatial, range(len(LOOP_DIMS)))
        self.rf_bytes = {
            op: elems * bpe for op, elems in _tile_elements(layer, batch.rf).items()
        }
        self.rf_total = (
            self.rf_bytes[Operand.I]
            + self.rf_bytes[Operand.W]
            + self.rf_bytes[Operand.O]
        )
        spm_tile = batch.rf * batch.spatial * batch.spm
        self.spm_bytes = {
            op: elems * bpe for op, elems in _tile_elements(layer, spm_tile).items()
        }
        self.spm_total = (
            self.spm_bytes[Operand.I]
            + self.spm_bytes[Operand.W]
            + self.spm_bytes[Operand.O]
        )

        # -- NoC compatibility ----------------------------------------------
        self.groups: Dict[Operand, np.ndarray] = {
            op: _prod_cols(
                batch.spatial,
                [_COL[d] for d in _relevant_dims(layer.operator, op)],
            )
            for op in (Operand.I, Operand.W, Operand.O)
        }
        self.groups[Operand.PSUM] = self.groups[Operand.O]
        self.links = {op: config.physical_links(op) for op in _NOC_OPERANDS}
        self.rounds = {
            op: np.ceil(self.groups[op] / self.links[op]).astype(np.int64)
            for op in _NOC_OPERANDS
        }

        self.fail_code = np.zeros(n, dtype=np.int64)
        ok = np.ones(n, dtype=bool)

        def _check(violated: np.ndarray, code: int) -> None:
            newly = ok & violated
            self.fail_code[newly] = code
            ok[newly] = False

        _check(self.pes_used > config.pes, FAIL_PES)
        _check(self.rf_total > config.l1_bytes, FAIL_RF)
        _check(2 * self.spm_total > config.l2_bytes, FAIL_SPM)
        for i, op in enumerate(_NOC_OPERANDS):
            _check(self.rounds[op] > config.virt_unicast[op], FAIL_NOC_BASE + i)
        self.feasible = ok

        # -- computation ------------------------------------------------------
        iters_dram = _prod_cols(batch.dram, range(len(LOOP_DIMS)))
        iters_spm = _prod_cols(batch.spm, range(len(LOOP_DIMS)))
        iters_rf = _prod_cols(batch.rf, range(len(LOOP_DIMS)))
        t_comp_int = iters_dram * iters_spm * iters_rf
        self.t_comp = t_comp_int.astype(np.float64)

        # -- NoC distribution -------------------------------------------------
        fetches2 = {
            op: iters_spm
            // _reuse(layer.operator, batch.spm, batch.spm_code, op)
            for op in _DATA_OPERANDS
        }
        out_tiles2 = _prod_cols(
            batch.spm, [_COL[d] for d in _relevant_dims(layer.operator, Operand.O)]
        )
        events = {
            Operand.I: iters_dram * fetches2[Operand.I],
            Operand.W: iters_dram * fetches2[Operand.W],
            Operand.O: iters_dram * fetches2[Operand.O],
            Operand.PSUM: iters_dram
            * np.maximum(0, fetches2[Operand.O] - out_tiles2),
        }
        tile_bytes_for = {
            Operand.I: self.rf_bytes[Operand.I],
            Operand.W: self.rf_bytes[Operand.W],
            Operand.O: self.rf_bytes[Operand.O],
            Operand.PSUM: self.rf_bytes[Operand.O],
        }
        self.noc_bytes_per_group = tile_bytes_for
        noc_bpc = config.noc_bytes_per_cycle
        self.t_noc: Dict[Operand, np.ndarray] = {}
        self.data_noc: Dict[Operand, np.ndarray] = {}
        for op in _NOC_OPERANDS:
            per_event_cycles = (self.rounds[op] * tile_bytes_for[op]) / noc_bpc
            self.t_noc[op] = events[op] * per_event_cycles
            self.data_noc[op] = events[op] * self.groups[op] * tile_bytes_for[op]

        # -- DMA transfers ----------------------------------------------------
        fetches3 = {
            op: iters_dram
            // _reuse(layer.operator, batch.dram, batch.dram_code, op)
            for op in _DATA_OPERANDS
        }
        self.off_int = {
            Operand.I: fetches3[Operand.I] * self.spm_bytes[Operand.I],
            Operand.W: fetches3[Operand.W] * self.spm_bytes[Operand.W],
        }
        out_writes = fetches3[Operand.O] * self.spm_bytes[Operand.O]
        full_tile = batch.dram * batch.spm * batch.spatial * batch.rf
        padded_out_bytes = _tile_elements(layer, full_tile)[Operand.O] * bpe
        self.off_float = {
            Operand.O: out_writes.astype(np.float64),
            Operand.PSUM: np.maximum(0, out_writes - padded_out_bytes).astype(
                np.float64
            ),
        }
        # Same float-addition order as ``sum(data_offchip.values())``.
        offchip_total = (
            self.off_int[Operand.I].astype(np.float64)
            + self.off_int[Operand.W].astype(np.float64)
            + self.off_float[Operand.O]
            + self.off_float[Operand.PSUM]
        )
        self.t_dma = offchip_total / config.dram_bytes_per_cycle

        # -- remaining (unexploited) reuse -----------------------------------
        self.reuse_rf: Dict[Operand, np.ndarray] = {}
        self.reuse_spm: Dict[Operand, np.ndarray] = {}
        for op in _DATA_OPERANDS:
            relevant = [_COL[d] for d in _relevant_dims(layer.operator, op)]
            min2 = _prod_cols(batch.spm, relevant)
            min3 = _prod_cols(batch.dram, relevant)
            self.reuse_rf[op] = fetches2[op] / min2
            self.reuse_spm[op] = fetches3[op] / min3
        self.reuse_rf[Operand.PSUM] = self.reuse_rf[Operand.O]
        self.reuse_spm[Operand.PSUM] = self.reuse_spm[Operand.O]

        pes_f = self.pes_used.astype(np.float64)
        denominator = np.where(self.t_comp > 0, self.t_comp * pes_f, 1.0)
        self.utilization = np.where(
            self.t_comp > 0, layer.macs / denominator, 0.0
        )

    def __len__(self) -> int:
        return len(self.batch)

    @property
    def feasible_indices(self) -> np.ndarray:
        """Positions of the feasible candidates, in candidate order."""
        return np.flatnonzero(self.feasible)

    def mapping(self, i: int) -> Mapping:
        return self.batch.mapping(i)

    def execution_info(self, i: int) -> ExecutionInfo:
        """The scalar-identical :class:`ExecutionInfo` of candidate ``i``.

        Only valid for feasible candidates.  Python types and dict
        insertion orders mirror ``evaluate_layer_mapping`` exactly (e.g.
        ``data_offchip`` holds ints for I/W and floats for O/PSUM).
        """
        return self.execution_infos((i,))[0]

    def execution_infos(self, indices: Sequence[int]) -> List[ExecutionInfo]:
        """Bulk :meth:`execution_info` over ``indices`` (feasible only).

        Converts each field array to a Python list once (``.tolist()``
        yields exact Python ints from int64 and floats from float64, the
        types the scalar path produces) instead of one NumPy scalar
        round-trip per field per candidate, and fills the frozen
        ``ExecutionInfo`` instances directly through ``__dict__`` — the
        same trusted-constructor trick as ``Mapping._trusted``, since the
        per-field ``object.__setattr__`` of the generated ``__init__``
        dominates construction time at batch sizes.
        """
        idx = np.asarray(indices, dtype=np.intp)
        I, W, O, PSUM = Operand.I, Operand.W, Operand.O, Operand.PSUM

        def _f(arr: np.ndarray) -> list:  # exact int -> float conversion
            return arr[idx].astype(np.float64).tolist()

        t_comp = self.t_comp[idx].tolist()
        t_dma = self.t_dma[idx].tolist()
        tn_i, tn_w, tn_o, tn_p = (
            self.t_noc[op][idx].tolist() for op in _NOC_OPERANDS
        )
        off_i = self.off_int[I][idx].tolist()
        off_w = self.off_int[W][idx].tolist()
        off_o = self.off_float[O][idx].tolist()
        off_p = self.off_float[PSUM][idx].tolist()
        dn_i, dn_w, dn_o, dn_p = (
            self.data_noc[op][idx].tolist() for op in _NOC_OPERANDS
        )
        g_i, g_w, g_o, g_p = (
            self.groups[op][idx].tolist() for op in _NOC_OPERANDS
        )
        nb_i, nb_w, nb_o, nb_p = (
            _f(self.noc_bytes_per_group[op]) for op in _NOC_OPERANDS
        )
        rf_i, rf_w, rf_o = (_f(self.rf_bytes[op]) for op in _DATA_OPERANDS)
        sp_i, sp_w, sp_o = (_f(self.spm_bytes[op]) for op in _DATA_OPERANDS)
        rr_i, rr_w, rr_o = (
            self.reuse_rf[op][idx].tolist() for op in _DATA_OPERANDS
        )
        rs_i, rs_w, rs_o = (
            self.reuse_spm[op][idx].tolist() for op in _DATA_OPERANDS
        )
        pes = self.pes_used[idx].tolist()
        util = self.utilization[idx].tolist()
        macs = self.layer.macs

        infos: List[ExecutionInfo] = []
        for k in range(len(t_comp)):
            info = object.__new__(ExecutionInfo)
            info.__dict__.update({
                "t_comp": t_comp[k],
                "t_noc": {I: tn_i[k], W: tn_w[k], O: tn_o[k], PSUM: tn_p[k]},
                "t_dma": t_dma[k],
                "data_offchip": {
                    I: off_i[k], W: off_w[k], O: off_o[k], PSUM: off_p[k]
                },
                "data_noc": {
                    I: dn_i[k], W: dn_w[k], O: dn_o[k], PSUM: dn_p[k]
                },
                "noc_groups_needed": {
                    I: g_i[k], W: g_w[k], O: g_o[k], PSUM: g_p[k]
                },
                "noc_bytes_per_group": {
                    I: nb_i[k], W: nb_w[k], O: nb_o[k], PSUM: nb_p[k]
                },
                "data_rf": {
                    I: rf_i[k], W: rf_w[k], O: rf_o[k], PSUM: rf_o[k]
                },
                "data_spm": {
                    I: sp_i[k], W: sp_w[k], O: sp_o[k], PSUM: sp_o[k]
                },
                "reuse_available_rf": {
                    I: rr_i[k], W: rr_w[k], O: rr_o[k], PSUM: rr_o[k]
                },
                "reuse_available_spm": {
                    I: rs_i[k], W: rs_w[k], O: rs_o[k], PSUM: rs_o[k]
                },
                "pes_used": pes[k],
                "macs": macs,
                "utilized_macs_fraction": util[k],
            })
            infos.append(info)
        return infos

    def infeasibility(self, i: int) -> InfeasibleMapping:
        """The scalar-identical :class:`InfeasibleMapping` of candidate
        ``i`` (only valid for infeasible candidates)."""
        code = int(self.fail_code[i])
        config = self.config
        if code == FAIL_PES:
            return InfeasibleMapping(
                f"spatial unrolling needs {int(self.pes_used[i])} PEs, "
                f"hardware has {config.pes}"
            )
        if code == FAIL_RF:
            return InfeasibleMapping(
                f"RF tile needs {int(self.rf_total[i])} B, "
                f"register file holds {config.l1_bytes} B"
            )
        if code == FAIL_SPM:
            return InfeasibleMapping(
                f"double-buffered SPM tile needs {2 * int(self.spm_total[i])} B, "
                f"scratchpad holds {config.l2_bytes} B"
            )
        op = _NOC_OPERANDS[code - FAIL_NOC_BASE]
        return InfeasibleMapping(
            f"mapping demands {int(self.groups[op][i])} concurrent unicast "
            f"groups; NoC provides {self.links[op]} physical x "
            f"{config.virt_unicast[op]} virtual links",
            operand=op,
        )

    def outcome(self, i: int) -> Union[ExecutionInfo, InfeasibleMapping]:
        """What ``evaluate_layer_mapping`` would return for candidate ``i``."""
        if self.feasible[i]:
            return self.execution_info(i)
        return self.infeasibility(i)


def evaluate_layer_batch(
    layer: LayerShape,
    batch: CandidateBatch,
    config: AcceleratorConfig,
) -> BatchLayerEvaluation:
    """Evaluate a whole candidate batch in vectorized passes.

    Callers should guard with :func:`int64_safe` (the built-in mappers
    do) and fall back to the scalar path when it returns False.
    """
    return BatchLayerEvaluation(layer, batch, config)


def evaluate_layer_mappings_batch(
    layer: LayerShape,
    mappings: Sequence[Mapping],
    config: AcceleratorConfig,
) -> List[Union[ExecutionInfo, InfeasibleMapping]]:
    """Batched drop-in for mapping over ``evaluate_layer_mapping``.

    Convenience API over pre-built ``Mapping`` objects: returns one
    outcome per mapping, each bit-identical to the scalar evaluator.
    """
    evaluation = evaluate_layer_batch(
        layer, CandidateBatch.from_mappings(mappings), config
    )
    return [evaluation.outcome(i) for i in range(len(mappings))]
