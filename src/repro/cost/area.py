"""Area model: silicon area of a hardware configuration (mm^2, 45 nm).

Accelergy/CACTI-style accounting over the template's components: the PE
array (datapath + private register files), the banked scratchpad, the four
operand NoCs (wiring scales with physical links x datawidth), and a fixed
DMA/control block.  Area is mapping-independent, so it is computed once per
hardware configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.accelerator import AcceleratorConfig
from repro.cost.technology import TECH_45NM, TechnologyModel
from repro.workloads.layers import OPERANDS

__all__ = ["AreaBreakdown", "accelerator_area"]


@dataclass(frozen=True)
class AreaBreakdown:
    """Component areas of a hardware configuration, mm^2."""

    pe_array_mm2: float
    spm_mm2: float
    noc_mm2: float
    controller_mm2: float

    @property
    def total_mm2(self) -> float:
        return (
            self.pe_array_mm2
            + self.spm_mm2
            + self.noc_mm2
            + self.controller_mm2
        )

    def contributions(self) -> dict:
        """Fractional contribution per component (for bottleneck analysis)."""
        total = self.total_mm2
        return {
            "pe_array": self.pe_array_mm2 / total,
            "spm": self.spm_mm2 / total,
            "noc": self.noc_mm2 / total,
            "controller": self.controller_mm2 / total,
        }


def accelerator_area(
    config: AcceleratorConfig, tech: TechnologyModel = TECH_45NM
) -> AreaBreakdown:
    """Total silicon area of the configuration."""
    pe_array = config.pes * tech.pe_area(config.l1_bytes)
    spm = tech.spm_area(config.l2_bytes)
    total_links = sum(config.physical_links(op) for op in OPERANDS)
    noc = tech.noc_area(total_links, config.noc_datawidth_bits)
    return AreaBreakdown(
        pe_array_mm2=pe_array,
        spm_mm2=spm,
        noc_mm2=noc,
        controller_mm2=tech.controller_area_mm2,
    )
