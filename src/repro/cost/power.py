"""Maximum-power model (watts).

Following the paper's methodology (§4.2): "the maximum power is obtained
from the maximum energy consumed by all design components in a single
cycle".  In a peak cycle every PE issues a MAC with its register-file
accesses, every NoC link carries a full-width flit, the scratchpad feeds
the NoCs, and the off-chip interface runs at full bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.accelerator import AcceleratorConfig
from repro.cost.energy import RF_ACCESSES_PER_MAC
from repro.cost.technology import TECH_45NM, TechnologyModel
from repro.workloads.layers import OPERANDS

__all__ = ["PowerBreakdown", "max_power"]

#: Off-chip interface (PHY + controller) energy per byte, pJ.  The DRAM
#: device itself draws from the system budget, not the accelerator's.
OFFCHIP_INTERFACE_PJ_PER_BYTE = 8.0


@dataclass(frozen=True)
class PowerBreakdown:
    """Peak power per component, watts."""

    pe_w: float
    noc_w: float
    spm_w: float
    offchip_w: float

    @property
    def total_w(self) -> float:
        return self.pe_w + self.noc_w + self.spm_w + self.offchip_w

    def contributions(self) -> dict:
        """Fractional contribution per component (for bottleneck analysis)."""
        total = self.total_w
        return {
            "pe": self.pe_w / total,
            "noc": self.noc_w / total,
            "spm": self.spm_w / total,
            "offchip": self.offchip_w / total,
        }


def max_power(
    config: AcceleratorConfig, tech: TechnologyModel = TECH_45NM
) -> PowerBreakdown:
    """Peak power of the configuration at its clock frequency."""
    hz = config.freq_mhz * 1e6
    pj_to_w = hz * 1e-12

    pe_pj = config.pes * (
        tech.mac_energy_pj
        + RF_ACCESSES_PER_MAC
        * config.bytes_per_element
        * tech.rf_energy_per_byte(config.l1_bytes)
    )
    noc_bytes_per_cycle = sum(
        config.physical_links(op) * config.noc_bytes_per_cycle
        for op in OPERANDS
    )
    noc_pj = noc_bytes_per_cycle * tech.noc_energy_pj
    spm_pj = noc_bytes_per_cycle * tech.spm_energy_per_byte(config.l2_bytes)
    offchip_pj = config.dram_bytes_per_cycle * OFFCHIP_INTERFACE_PJ_PER_BYTE

    return PowerBreakdown(
        pe_w=pe_pj * pj_to_w,
        noc_w=noc_pj * pj_to_w,
        spm_w=spm_pj * pj_to_w,
        offchip_w=offchip_pj * pj_to_w,
    )
