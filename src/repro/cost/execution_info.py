"""Execution characteristics of a mapped layer.

:class:`ExecutionInfo` is the contract between the cost model and the
bottleneck analyzer: everything Section 4.7 of the paper lists as
"information embedded in the bottleneck model" (``T_comp``/``T_comm``/
``T_dma``, per-operand off-chip and NoC traffic, NoC group demands, and
available-but-unexploited reuse per buffer level) is populated here by the
latency model and consumed by the mitigation subroutines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.workloads.layers import Operand

__all__ = ["ExecutionInfo", "InfeasibleMapping"]


@dataclass(frozen=True)
class InfeasibleMapping:
    """Why a (mapping, hardware) pair cannot execute.

    The paper distinguishes constraint violations from *incompatibility*:
    e.g. a dataflow demanding more concurrent unicast streams than the NoC
    (physical x virtual links) can provide (§6.2).
    """

    reason: str
    operand: Optional[Operand] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        suffix = f" (operand {self.operand.value})" if self.operand else ""
        return self.reason + suffix


@dataclass(frozen=True)
class ExecutionInfo:
    """Per-layer execution characteristics of an optimized mapping.

    Times are in accelerator cycles; data sizes in bytes.

    Attributes:
        t_comp: Cycles spent computing on the PE array.
        t_noc: Per-operand on-chip communication cycles (dedicated NoCs run
            concurrently; the max is the communication critical path).
        t_dma: Cycles of off-chip transfers via the DMA engine (operands are
            transferred one by one, so this is additive over operands).
        data_offchip: Off-chip traffic per operand, bytes.
        data_noc: Data distributed over each operand's NoC, bytes
            (unique bytes x destination groups).
        noc_groups_needed: Concurrent PE groups needing distinct data of the
            operand (paper's ``NoC_groups_needed``).
        noc_bytes_per_group: Bytes broadcast to the PEs of one group per
            distribution event (paper's ``NoC_bytes_per_group``).
        data_rf: Bytes of each operand resident in one PE's register file.
        data_spm: Bytes of each operand resident in the scratchpad.
        reuse_available_rf: Remaining (unexploited) temporal reuse of each
            operand above the RF level; >= 1.  Growing the RF converts this
            into fewer NoC distribution events.
        reuse_available_spm: Same for the scratchpad vs off-chip traffic.
        pes_used: PEs occupied by the spatial unrolling.
        macs: True (unpadded) MAC count of the layer.
        utilized_macs_fraction: True MACs / padded iterations x PEs used —
            the compute utilization of the mapping.
    """

    t_comp: float
    t_noc: Dict[Operand, float]
    t_dma: float
    data_offchip: Dict[Operand, float]
    data_noc: Dict[Operand, float]
    noc_groups_needed: Dict[Operand, int]
    noc_bytes_per_group: Dict[Operand, float]
    data_rf: Dict[Operand, float]
    data_spm: Dict[Operand, float]
    reuse_available_rf: Dict[Operand, float]
    reuse_available_spm: Dict[Operand, float]
    pes_used: int
    macs: int
    utilized_macs_fraction: float

    @property
    def t_noc_max(self) -> float:
        """Communication critical path over the four concurrent NoCs."""
        return max(self.t_noc.values()) if self.t_noc else 0.0

    @property
    def latency(self) -> float:
        """Per-layer latency with double-buffered overlap: max of factors."""
        return max(self.t_comp, self.t_noc_max, self.t_dma)

    @property
    def total_offchip_bytes(self) -> float:
        return sum(self.data_offchip.values())

    @property
    def bottleneck_factor(self) -> str:
        """Which of the three time factors dominates ('comp'/'noc'/'dma')."""
        factors = {
            "comp": self.t_comp,
            "noc": self.t_noc_max,
            "dma": self.t_dma,
        }
        return max(factors, key=factors.get)
