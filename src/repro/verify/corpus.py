"""Verification corpus: tiny design spaces, workloads, and mapping sets.

Everything here is sized for the oracle's literal loop-nest walks: padded
loop-bound products stay in the hundreds, so walking a full temporal level
iteration by iteration costs microseconds rather than minutes.  The layer
set deliberately covers every operator type plus the stride-gap case
(1x1 kernel, stride 2) where the input halo's contiguous extent exceeds
the distinct rows touched — historically the easiest semantics to get
wrong on either side of the differential.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.arch.design_space import DesignSpace
from repro.arch.parameters import Parameter
from repro.mapping.factorization import divisors
from repro.mapping.mapping import (
    STATIONARY_CHOICES,
    Mapping,
    padded_bounds,
)
from repro.workloads.layers import (
    LOOP_DIMS,
    Dim,
    LayerShape,
    Workload,
    conv2d,
    depthwise_conv2d,
    gemm,
)

__all__ = [
    "tiny_space",
    "tiny_verify_workload",
    "campaign_workload",
    "structured_mappings",
    "random_mapping",
]


def tiny_space() -> DesignSpace:
    """A 64-point slice of the Table 1 space for exhaustive sweeps.

    Two values per capacity/bandwidth axis (the small ends trip the RF and
    SPM feasibility gates); the input NoC's virtual unicast toggles
    between 1 (trips the NoC-compatibility gate) and 512 (never limits).
    """
    params = [
        Parameter("pes", (64, 256)),
        Parameter("l1_bytes", (64, 512)),
        Parameter("l2_kb", (64, 256)),
        Parameter("offchip_bw_mbps", (2048, 25600)),
        Parameter("noc_datawidth", (16, 128)),
        Parameter("virt_unicast_I", (1, 512)),
    ]
    for op in ("W", "O", "PSUM"):
        params.append(Parameter(f"virt_unicast_{op}", (512,)))
    for op in ("I", "W", "O", "PSUM"):
        params.append(Parameter(f"phys_unicast_{op}", (1,)))
    return DesignSpace(params)


def tiny_verify_workload() -> Workload:
    """Four tiny layers: CONV, strided 1x1 CONV, DWCONV, GEMM."""
    return Workload(
        name="tiny-verify",
        layers=(
            conv2d("c3", 2, 4, (3, 3)),
            conv2d("s2", 4, 4, (3, 3), kernel=(1, 1), stride=2),
            depthwise_conv2d("dw", 4, (3, 3)),
            gemm("g", 4, 8, 4, repeats=2),
        ),
        total_layers=5,
        task="verify",
    )


def campaign_workload() -> Workload:
    """The two-layer campaign workload used by the differential runner
    (same shapes as the end-to-end DSE test fixture)."""
    return Workload(
        name="tiny",
        layers=(
            conv2d("conv", 16, 32, (14, 14)),
            gemm("fc", 64, 32 * 14 * 14, 1),
        ),
        total_layers=2,
        task="verify",
    )


def _single_level_mapping(layer: LayerShape, level_name: str) -> Mapping:
    """All padded loop bounds concentrated at one level (1s elsewhere)."""
    bounds = padded_bounds(layer)
    levels: Dict[str, Dict[Dim, int]] = {
        name: {d: 1 for d in LOOP_DIMS}
        for name in ("dram", "spm", "spatial", "rf")
    }
    levels[level_name] = dict(bounds)
    return Mapping.from_level_maps(
        dram=levels["dram"],
        spm=levels["spm"],
        spatial=levels["spatial"],
        rf=levels["rf"],
    )


def random_mapping(layer: LayerShape, rng: random.Random) -> Mapping:
    """A uniformly random valid mapping: per dim, a random divisor chain
    splits the padded bound across DRAM/SPM/SPATIAL/RF; stationary
    operands are drawn independently."""
    bounds = padded_bounds(layer)
    dram: Dict[Dim, int] = {}
    spm: Dict[Dim, int] = {}
    spatial: Dict[Dim, int] = {}
    rf: Dict[Dim, int] = {}
    for d in LOOP_DIMS:
        rest = bounds[d]
        dram[d] = rng.choice(divisors(rest))
        rest //= dram[d]
        spm[d] = rng.choice(divisors(rest))
        rest //= spm[d]
        spatial[d] = rng.choice(divisors(rest))
        rf[d] = rest // spatial[d]
    return Mapping.from_level_maps(
        dram=dram,
        spm=spm,
        spatial=spatial,
        rf=rf,
        dram_stationary=rng.choice(STATIONARY_CHOICES),
        spm_stationary=rng.choice(STATIONARY_CHOICES),
    )


def structured_mappings(
    layer: LayerShape, count: int = 6, seed: int = 0
) -> List[Mapping]:
    """A deterministic mapping set covering every feasibility branch.

    Three single-level extremes (all-DRAM is always buffer-feasible,
    all-RF overflows small register files, all-SPATIAL overflows the PE
    array) plus ``count`` seeded random splits.
    """
    mappings = [
        _single_level_mapping(layer, "dram"),
        _single_level_mapping(layer, "rf"),
        _single_level_mapping(layer, "spatial"),
    ]
    rng = random.Random(seed)
    for _ in range(count):
        mappings.append(random_mapping(layer, rng))
    return mappings
