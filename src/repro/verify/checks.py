"""Differential checks: production cost model vs the literal oracle.

Comparisons are *exact* — float equality, not tolerances.  The oracle
deliberately mirrors the arithmetic shapes of the production float
formulas while deriving every integer input (iteration counts, fetch
counts, tile bytes, group counts) by literal simulation, so any
difference, however small, is a real semantic divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.arch.accelerator import AcceleratorConfig, config_from_point
from repro.cost.area import accelerator_area
from repro.cost.energy import layer_energy
from repro.cost.execution_info import ExecutionInfo, InfeasibleMapping
from repro.cost.latency import evaluate_layer_mapping
from repro.cost.power import max_power
from repro.mapping.mapping import Mapping
from repro.verify.corpus import structured_mappings, tiny_space, tiny_verify_workload
from repro.verify.oracle import (
    OracleExecution,
    OracleInfeasible,
    oracle_area,
    oracle_energy,
    oracle_layer,
    oracle_model_costs,
    oracle_power,
)
from repro.workloads.layers import OPERANDS, LayerShape, Workload

__all__ = [
    "compare_layer",
    "compare_evaluation",
    "compare_config_models",
    "exhaustive_tiny_sweep",
    "SweepReport",
]

#: Substring of the production infeasibility reason expected per oracle kind.
_REASON_MARKERS = {
    "pes": "PEs",
    "rf": "register file holds",
    "spm": "scratchpad holds",
    "noc": "unicast groups",
}


def _compare_infeasible(
    reference: InfeasibleMapping, oracle: OracleInfeasible
) -> List[str]:
    mismatches: List[str] = []
    marker = _REASON_MARKERS[oracle.kind]
    if marker not in reference.reason:
        mismatches.append(
            f"infeasibility kind differs: oracle={oracle.kind!r}, "
            f"reference reason={reference.reason!r}"
        )
    if reference.operand != oracle.operand:
        mismatches.append(
            f"infeasible operand differs: reference={reference.operand}, "
            f"oracle={oracle.operand}"
        )
    return mismatches


def _compare_feasible(
    layer: LayerShape,
    config: AcceleratorConfig,
    reference: ExecutionInfo,
    oracle: OracleExecution,
) -> List[str]:
    mismatches: List[str] = []

    def check(name: str, ref_value, oracle_value) -> None:
        if ref_value != oracle_value:
            mismatches.append(
                f"{name}: reference={ref_value!r}, oracle={oracle_value!r}"
            )

    check("t_comp", reference.t_comp, oracle.t_comp)
    check("t_dma", reference.t_dma, oracle.t_dma)
    check("latency", reference.latency, oracle.latency)
    check("pes_used", reference.pes_used, oracle.pes_used)
    check("macs", reference.macs, oracle.macs)
    check("utilization", reference.utilized_macs_fraction, oracle.utilization)
    check("t_noc keys", list(reference.t_noc), list(oracle.t_noc))
    for op in reference.t_noc:
        check(f"t_noc[{op.value}]", reference.t_noc[op], oracle.t_noc.get(op))
    for op in reference.data_noc:
        check(
            f"data_noc[{op.value}]",
            reference.data_noc[op],
            oracle.data_noc.get(op),
        )
    check(
        "data_offchip keys",
        list(reference.data_offchip),
        list(oracle.data_offchip),
    )
    for op in reference.data_offchip:
        check(
            f"data_offchip[{op.value}]",
            reference.data_offchip[op],
            oracle.data_offchip.get(op),
        )
    for op, groups in reference.noc_groups_needed.items():
        check(f"groups[{op.value}]", groups, oracle.noc_groups.get(op))
    for op, nbytes in oracle.rf_bytes.items():
        check(f"rf_bytes[{op.value}]", reference.data_rf[op], float(nbytes))
    for op, nbytes in oracle.spm_bytes.items():
        check(f"spm_bytes[{op.value}]", reference.data_spm[op], float(nbytes))

    ref_energy = layer_energy(reference, config)
    orc_energy = oracle_energy(oracle, config)
    check("energy.mac_pj", ref_energy.mac_pj, orc_energy.mac_pj)
    check("energy.rf_pj", ref_energy.rf_pj, orc_energy.rf_pj)
    check("energy.noc_pj", ref_energy.noc_pj, orc_energy.noc_pj)
    check("energy.spm_pj", ref_energy.spm_pj, orc_energy.spm_pj)
    check("energy.dram_pj", ref_energy.dram_pj, orc_energy.dram_pj)
    check("energy.total_pj", ref_energy.total_pj, orc_energy.total_pj)
    return mismatches


def compare_layer(
    layer: LayerShape, mapping: Mapping, config: AcceleratorConfig
) -> List[str]:
    """Evaluate one triple through both models; return the mismatch list.

    Empty list == exact agreement (including agreeing on *why* a mapping
    is infeasible).
    """
    reference = evaluate_layer_mapping(layer, mapping, config)
    oracle = oracle_layer(layer, mapping, config)
    ref_infeasible = isinstance(reference, InfeasibleMapping)
    orc_infeasible = isinstance(oracle, OracleInfeasible)
    if ref_infeasible != orc_infeasible:
        return [
            "feasibility disagrees: "
            f"reference={'infeasible: ' + reference.reason if ref_infeasible else 'feasible'}, "
            f"oracle={'infeasible: ' + oracle.kind if orc_infeasible else 'feasible'}"
        ]
    if ref_infeasible:
        return _compare_infeasible(reference, oracle)
    return _compare_feasible(layer, config, reference, oracle)


def compare_config_models(config: AcceleratorConfig) -> List[str]:
    """Compare the mapping-independent area and power models exactly."""
    mismatches: List[str] = []
    ref_area = accelerator_area(config)
    orc_area = oracle_area(config)
    for name in ("pe_array_mm2", "spm_mm2", "noc_mm2", "controller_mm2", "total_mm2"):
        ref_value = getattr(ref_area, name)
        orc_value = getattr(orc_area, name)
        if ref_value != orc_value:
            mismatches.append(
                f"area.{name}: reference={ref_value!r}, oracle={orc_value!r}"
            )
    ref_power = max_power(config)
    orc_power = oracle_power(config)
    for name in ("pe_w", "noc_w", "spm_w", "offchip_w", "total_w"):
        ref_value = getattr(ref_power, name)
        orc_value = getattr(orc_power, name)
        if ref_value != orc_value:
            mismatches.append(
                f"power.{name}: reference={ref_value!r}, oracle={orc_value!r}"
            )
    return mismatches


def compare_evaluation(evaluation, workload: Workload) -> List[str]:
    """Compare a full :class:`~repro.cost.evaluator.Evaluation` against the
    oracle's model-level aggregation of the same per-layer mappings."""
    mappings = {
        name: result.mapping
        for name, result in evaluation.layer_results.items()
    }
    oracle = oracle_model_costs(workload, mappings, evaluation.config)
    mismatches: List[str] = []
    if evaluation.mappable != oracle.mappable:
        mismatches.append(
            f"mappable: reference={evaluation.mappable}, oracle={oracle.mappable}"
        )
    for name in ("latency_ms", "energy_mj", "area_mm2", "power_w", "throughput"):
        ref_value = evaluation.costs[name]
        orc_value = getattr(oracle, name)
        if ref_value != orc_value:
            mismatches.append(
                f"costs[{name}]: reference={ref_value!r}, oracle={orc_value!r}"
            )
    mismatches.extend(compare_config_models(evaluation.config))
    return mismatches


@dataclass
class SweepReport:
    """Outcome of an exhaustive tiny-space differential sweep."""

    points: int = 0
    comparisons: int = 0
    feasible: int = 0
    infeasible: int = 0
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def exhaustive_tiny_sweep(
    points_per_axis: int = 2,
    mappings_per_layer: int = 6,
    seed: int = 0,
    workload: Optional[Workload] = None,
) -> SweepReport:
    """Sweep every tiny-space point x every corpus layer x a deterministic
    mapping set through both models; exact agreement is required.

    ``points_per_axis=2`` covers the whole 64-point tiny space (each axis
    has at most two values).
    """
    workload = workload if workload is not None else tiny_verify_workload()
    per_layer: Dict[str, List[Mapping]] = {
        layer.name: structured_mappings(layer, count=mappings_per_layer, seed=seed)
        for layer in workload.layers
    }
    report = SweepReport()
    for point in tiny_space().grid(points_per_axis):
        config = config_from_point(point)
        report.points += 1
        for issue in compare_config_models(config):
            report.mismatches.append(f"point={point}: {issue}")
        for layer in workload.layers:
            for index, mapping in enumerate(per_layer[layer.name]):
                report.comparisons += 1
                outcome = evaluate_layer_mapping(layer, mapping, config)
                if isinstance(outcome, InfeasibleMapping):
                    report.infeasible += 1
                else:
                    report.feasible += 1
                for issue in compare_layer(layer, mapping, config):
                    report.mismatches.append(
                        f"point={point} layer={layer.name} mapping#{index}: {issue}"
                    )
    return report
