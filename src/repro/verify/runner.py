"""The `verify` pipeline: every oracle-backed check behind one entry point.

Stage order (cheapest diagnostics first):

1. **sweep** — exhaustive tiny-space differential against the oracle;
2. **invariants** — bottleneck-tree algebra on trees built from real
   mapper-optimized executions;
3. **differential** — the fast-path campaign matrix (batch / parallel /
   warm cache / resume) against the serial reference;
4. **ask-tell** — every engine (eight baselines + Explainable-DSE)
   driven through the inverted :class:`~repro.optim.protocol.DriverLoop`
   against its legacy ``run()``, across cache/parallelism variants;
5. **service** — N campaigns through the campaign service (interleaved,
   service stopped and resumed mid-run) against solo runs;
6. **goldens** — the reference campaign against the pinned traces under
   ``tests/goldens/`` (or regeneration with ``update_goldens=True``);
7. **fuzz** — the seeded design-point/mapping fuzzer, shrunk failures
   written under ``failures_dir``.

Used by ``python -m repro.experiments.cli verify`` and the CI `verify`
job; each stage's report is kept on the returned :class:`VerifyReport`
for tests and triage.
"""

from __future__ import annotations

import random
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional

from repro.arch.accelerator import build_edge_design_space, config_from_point
from repro.core.bottleneck.latency_model import (
    LayerExecutionContext,
    build_latency_tree,
)
from repro.mapping.mapper import TopNMapper
from repro.verify.ask_tell import AskTellReport, run_ask_tell
from repro.verify.checks import SweepReport, exhaustive_tiny_sweep
from repro.verify.corpus import campaign_workload, tiny_verify_workload
from repro.verify.differential import DifferentialReport, run_differential
from repro.verify.fuzzer import FuzzReport, run_fuzz
from repro.verify.goldens import GoldenReport, check_goldens
from repro.verify.invariants import check_all
from repro.verify.service_leg import ServiceReport, run_service_differential

__all__ = ["VerifyReport", "check_campaign_invariants", "run_verify"]


@dataclass
class VerifyReport:
    """Aggregated outcome of every verification stage."""

    sweep: Optional[SweepReport] = None
    invariant_trees: int = 0
    invariant_violations: List[str] = field(default_factory=list)
    differential: Optional[DifferentialReport] = None
    ask_tell: Optional[AskTellReport] = None
    service: Optional[ServiceReport] = None
    goldens: Optional[GoldenReport] = None
    fuzz: Optional[FuzzReport] = None
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return (
            (self.sweep is None or self.sweep.ok)
            and not self.invariant_violations
            and (self.differential is None or self.differential.ok)
            and (self.ask_tell is None or self.ask_tell.ok)
            and (self.service is None or self.service.ok)
            and (self.goldens is None or self.goldens.ok)
            and (self.fuzz is None or self.fuzz.ok)
        )

    def summary_lines(self) -> List[str]:
        lines: List[str] = []
        if self.sweep is not None:
            lines.append(
                f"sweep: {self.sweep.comparisons} comparisons over "
                f"{self.sweep.points} points "
                f"({self.sweep.feasible} feasible / {self.sweep.infeasible} "
                f"infeasible), {len(self.sweep.mismatches)} mismatches"
            )
        lines.append(
            f"invariants: {self.invariant_trees} bottleneck trees, "
            f"{len(self.invariant_violations)} violations"
        )
        if self.differential is not None:
            lines.append(
                f"differential: {len(self.differential.variants)} variants "
                f"({', '.join(self.differential.variants)}), "
                f"{len(self.differential.mismatches)} mismatches"
            )
        if self.ask_tell is not None:
            lines.append(
                f"ask-tell: {len(self.ask_tell.engines)} engines x "
                f"{len(self.ask_tell.cells)} cells "
                f"({self.ask_tell.comparisons} comparisons), "
                f"{len(self.ask_tell.mismatches)} mismatches"
            )
        if self.service is not None:
            lines.append(
                f"service: {self.service.campaigns} campaigns over "
                f"{self.service.slices} slices "
                f"(interleaved={self.service.interleaved}, "
                f"restarted={self.service.restarted}, "
                f"expired_resumed={self.service.expired_resumed}), "
                f"{len(self.service.mismatches)} mismatches"
            )
        if self.goldens is not None:
            if self.goldens.updated:
                lines.append(f"goldens: regenerated under {self.goldens.golden_dir}")
            else:
                lines.append(
                    f"goldens: {len(self.goldens.mismatches)} mismatches "
                    f"against {self.goldens.golden_dir}"
                )
        if self.fuzz is not None:
            lines.append(
                f"fuzz: {self.fuzz.cases} cases "
                f"({self.fuzz.feasible} feasible / {self.fuzz.infeasible} "
                f"infeasible / {self.fuzz.skipped} skipped), "
                f"{len(self.fuzz.failures)} failures"
            )
            for failure in self.fuzz.failures:
                lines.append(
                    f"  fuzz failure #{failure.index} [{failure.stage}] "
                    f"-> {failure.repro_path}"
                )
        lines.append("VERIFY " + ("PASS" if self.ok else "FAIL"))
        return lines


def check_campaign_invariants(
    points: int = 6, seed: int = 0, top_n: int = 30
) -> tuple:
    """Build latency trees from mapper-optimized executions on random
    design points and run every bottleneck-tree invariant on them.

    Returns ``(trees_checked, violations)``.
    """
    rng = random.Random(seed)
    space = build_edge_design_space()
    mapper = TopNMapper(top_n=top_n)
    layers = list(tiny_verify_workload().layers) + list(campaign_workload().layers)
    trees = 0
    violations: List[str] = []
    for _ in range(points):
        config = config_from_point(space.random_point(rng))
        for layer in layers:
            result = mapper(layer, config)
            if result.execution is None:
                continue
            tree = build_latency_tree(
                LayerExecutionContext(layer, result.execution, config)
            )
            trees += 1
            for violation in check_all(tree):
                violations.append(f"layer={layer.name} config={config.describe()}: {violation}")
    return trees, violations


def run_verify(
    fuzz_iters: int = 250,
    update_goldens: bool = False,
    failures_dir="verify-failures",
    seed: int = 0,
    workdir=None,
    golden_dir=None,
    fuzz_time_budget_s: Optional[float] = None,
    log: Optional[Callable[[str], None]] = None,
) -> VerifyReport:
    """Run the whole verification pipeline; see the module docstring."""
    say = log if log is not None else (lambda message: None)
    report = VerifyReport()
    started = time.monotonic()
    with tempfile.TemporaryDirectory(prefix="repro-verify-") as scratch:
        base = Path(workdir) if workdir is not None else Path(scratch)
        base.mkdir(parents=True, exist_ok=True)

        say("verify: oracle sweep over the exhaustive tiny space")
        report.sweep = exhaustive_tiny_sweep(seed=seed)
        say(
            f"verify: sweep done "
            f"({report.sweep.comparisons} comparisons, "
            f"{len(report.sweep.mismatches)} mismatches)"
        )

        say("verify: bottleneck-tree invariants on mapper-optimized executions")
        report.invariant_trees, report.invariant_violations = (
            check_campaign_invariants(seed=seed)
        )
        say(
            f"verify: invariants done ({report.invariant_trees} trees, "
            f"{len(report.invariant_violations)} violations)"
        )

        say("verify: differential campaign matrix")
        report.differential = run_differential(base / "differential", log=log)

        say("verify: ask/tell protocol vs legacy run() for every engine")
        report.ask_tell = run_ask_tell(base / "ask-tell", log=log)

        say("verify: campaign service differential (interleave + restart)")
        report.service = run_service_differential(base / "service", log=log)

        say("verify: golden traces")
        report.goldens = check_goldens(
            base / "goldens",
            golden_dir=golden_dir,
            update=update_goldens,
            log=log,
        )

        if fuzz_iters > 0:
            say(f"verify: fuzzing {fuzz_iters} design-point/mapping cases")
            report.fuzz = run_fuzz(
                fuzz_iters,
                seed=seed,
                failures_dir=failures_dir,
                time_budget_s=fuzz_time_budget_s,
                log=log,
            )
    report.elapsed_s = time.monotonic() - started
    return report
