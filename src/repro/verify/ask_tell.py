"""Ask/tell protocol differential: DriverLoop vs legacy ``run()``.

Every engine — the eight black-box baselines and Explainable-DSE — runs
the *same* campaign twice: once through its legacy inline ``run()`` loop
and once inverted through :class:`~repro.optim.protocol.DriverLoop`
(ask, evaluate externally, tell).  Both runs must produce an identical
result fingerprint and an identical canonical journal (RunSummary perf
counters stripped; the driver's own :class:`AskIssued` /
:class:`TellRecorded` bookkeeping events removed), across the same
evaluation-pipeline variants the main differential matrix covers: cold
vs warm mapping cache and serial vs two parallel mapping workers.

The protocol inversion touches only *who calls the evaluator* — the
acquisition decisions, RNG draws, and budget checks execute in the same
generator code either way — so any mismatch here is a protocol-driver
bug, not an engine bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional

from repro.arch.accelerator import build_edge_design_space
from repro.core.dse.explainable import ExplainableDSE
from repro.optim import (
    BayesianOptimization,
    DriverLoop,
    ExplainableEngine,
    GeneticAlgorithm,
    GridSearch,
    HyperMapperDSE,
    LocalSearch,
    RandomSearch,
    ReinforcementLearningDSE,
    SimulatedAnnealing,
)
from repro.perf.mapping_cache import MappingCache
from repro.telemetry import JsonlSink, Tracer
from repro.verify.corpus import campaign_workload
from repro.verify.differential import (
    _REFERENCE_ENV,
    _canonical_journal,
    _constraints,
    _evaluator,
    _fingerprint,
    _patched_env,
)

__all__ = ["AskTellReport", "run_ask_tell", "ENGINE_NAMES"]

_BUDGET = 12
_SEED = 7

_BASELINES = (
    ("grid", GridSearch),
    ("random", RandomSearch),
    ("annealing", SimulatedAnnealing),
    ("genetic", GeneticAlgorithm),
    ("bayesian", BayesianOptimization),
    ("hypermapper", HyperMapperDSE),
    ("reinforcement", ReinforcementLearningDSE),
    ("local-search", LocalSearch),
)

#: Every engine the leg proves equivalent, in run order.
ENGINE_NAMES = tuple(name for name, _ in _BASELINES) + ("explainable",)

#: (cell label, warm mapping cache?, mapping-search workers or None).
_CELLS = (
    ("cold-serial", False, None),
    ("warm-serial", True, None),
    ("cold-jobs2", False, 2),
    ("warm-jobs2", True, 2),
)


@dataclass
class AskTellReport:
    """Outcome of the ask/tell differential matrix."""

    engines: List[str] = field(default_factory=list)
    cells: List[str] = field(default_factory=list)
    comparisons: int = 0
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def run_ask_tell(
    workdir: Path,
    workload=None,
    max_evaluations: int = _BUDGET,
    log: Optional[Callable[[str], None]] = None,
) -> AskTellReport:
    """Run the full engines x cells equivalence matrix under ``workdir``."""
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    workload = workload if workload is not None else campaign_workload()
    space = build_edge_design_space()
    say = log if log is not None else (lambda message: None)
    report = AskTellReport(
        engines=list(ENGINE_NAMES), cells=[cell for cell, _, _ in _CELLS]
    )

    def evaluator(cache, jobs):
        kwargs = {}
        if jobs is not None:
            kwargs.update(jobs=jobs, executor_mode="thread")
        return _evaluator(workload, batch_eval=False, cache=cache, **kwargs)

    def outcome(journal: Path, runner: Callable[[Tracer], object]):
        tracer = Tracer(JsonlSink(journal))
        try:
            with _patched_env(_REFERENCE_ENV):
                result = runner(tracer)
        finally:
            tracer.close()
        return _fingerprint(result), _canonical_journal(journal)

    for cell, warm, jobs in _CELLS:
        say(f"ask-tell: cell {cell}")
        for name, cls in _BASELINES:
            def build(tracer, cache):
                return cls(
                    space,
                    evaluator(cache, jobs),
                    _constraints(),
                    max_evaluations=max_evaluations,
                    seed=_SEED,
                    tracer=tracer,
                )

            def run_built(tracer, cache, drive):
                optimizer = build(tracer, cache)
                try:
                    return drive(optimizer)
                finally:
                    optimizer.evaluator.close()

            cache = MappingCache()
            if warm:
                # Pre-warm with one throwaway legacy run of the same
                # campaign: both compared runs then replay pure hits.
                run_built(None, cache, lambda opt: opt.run())
            legacy = outcome(
                workdir / f"{cell}-{name}-legacy.jsonl",
                lambda tracer: run_built(
                    tracer, cache, lambda opt: opt.run()
                ),
            )
            proto = outcome(
                workdir / f"{cell}-{name}-protocol.jsonl",
                lambda tracer: run_built(
                    tracer, cache, lambda opt: DriverLoop(opt).run(None)
                ),
            )
            _compare(report, cell, name, legacy, proto)

        def build_dse(cache):
            return ExplainableDSE(
                space,
                evaluator(cache, jobs),
                _constraints(),
                max_evaluations=max_evaluations,
            )

        def run_dse(cache, drive):
            dse = build_dse(cache)
            try:
                return drive(dse)
            finally:
                dse.evaluator.close()

        cache = MappingCache()
        if warm:
            run_dse(cache, lambda dse: dse.run())
        legacy = outcome(
            workdir / f"{cell}-explainable-legacy.jsonl",
            lambda tracer: run_dse(cache, lambda dse: dse.run(tracer=tracer)),
        )
        proto = outcome(
            workdir / f"{cell}-explainable-protocol.jsonl",
            lambda tracer: run_dse(
                cache,
                lambda dse: DriverLoop(
                    ExplainableEngine(dse, tracer=tracer)
                ).run(None),
            ),
        )
        _compare(report, cell, "explainable", legacy, proto)
    return report


def _compare(
    report: AskTellReport, cell: str, name: str, legacy, proto
) -> None:
    report.comparisons += 1
    if legacy[0] != proto[0]:
        report.mismatches.append(f"{cell}/{name}: result fingerprint")
    if legacy[1] != proto[1]:
        report.mismatches.append(f"{cell}/{name}: canonical journal")
