"""Service leg of the verification pipeline.

Runs N campaigns *through the campaign service* — interleaved by the
multi-tenant scheduler, with the service process "killed" (stopped) mid
run and a fresh service resumed on the same spool — and asserts each
campaign's result fingerprint and canonical journal are identical to a
solo ``ExplainableDSE.run()`` with the same configuration.  This is the
end-to-end differential for :mod:`repro.service`: whatever the
interleaving, the quantum, or the restart point, the service must be
undetectable in the results.

The campaigns deliberately differ in budget (so their reference
fingerprints differ — a swapped journal or crossed spool directory
cannot pass) and span two tenants (so the weighted-fair ring actually
interleaves).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.verify.differential import (
    _REFERENCE_ENV,
    _canonical_journal,
    _constraints,
    _evaluator,
    _fingerprint,
    _patched_env,
)

__all__ = ["ServiceReport", "run_service_differential"]

#: (tenant, max_evaluations) per campaign; two tenants, unequal budgets.
_CAMPAIGNS = [("alice", 12), ("bob", 10), ("alice", 8)]


@dataclass
class ServiceReport:
    """Outcome of the service differential."""

    campaigns: int = 0
    slices: int = 0
    interleaved: bool = False
    restarted: bool = False
    expired_resumed: bool = False
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            not self.mismatches
            and self.interleaved
            and self.restarted
            and self.expired_resumed
            and self.campaigns == len(_CAMPAIGNS)
        )


def _make_factory():
    """A campaign factory matching the differential reference exactly
    (same workload, mapper, cold cache) so solo and service runs are
    comparable."""
    from repro.arch.accelerator import build_edge_design_space
    from repro.core.dse.explainable import ExplainableDSE
    from repro.verify.corpus import campaign_workload

    def factory(spec):
        return ExplainableDSE(
            build_edge_design_space(),
            _evaluator(campaign_workload(), batch_eval=False),
            _constraints(),
            max_evaluations=spec.iterations,
        )

    return factory


def _solo_references(workdir: Path) -> Dict[int, tuple]:
    """Fingerprint + canonical journal of each campaign run alone."""
    from repro.arch.accelerator import build_edge_design_space
    from repro.core.dse.explainable import ExplainableDSE
    from repro.telemetry import JsonlSink, Tracer
    from repro.verify.corpus import campaign_workload

    references = {}
    space = build_edge_design_space()
    for index, (_tenant, budget) in enumerate(_CAMPAIGNS):
        journal = workdir / f"solo-{index}.jsonl"
        evaluator = _evaluator(campaign_workload(), batch_eval=False)
        tracer = Tracer(JsonlSink(journal))
        try:
            result = ExplainableDSE(
                space, evaluator, _constraints(), max_evaluations=budget
            ).run(tracer=tracer)
        finally:
            tracer.close()
            evaluator.close()
        references[index] = (_fingerprint(result), _canonical_journal(journal))
    return references


async def _drive_service(spool: Path, factory) -> tuple:
    """Submit all campaigns, stop the service mid-run, resume on a fresh
    service over the same spool, and drain.  Returns
    ``(campaign_ids, slice_log, restarted, resumed_service)``."""
    from repro.service.service import CampaignService, CampaignSpec

    service = CampaignService(
        spool, campaign_factory=factory, quantum=1, default_quota=None
    )
    await service.start()
    ids = []
    for tenant, budget in _CAMPAIGNS:
        ids.append(
            await service.submit(
                CampaignSpec(model="service-leg", tenant=tenant,
                             iterations=budget)
            )
        )
    # Let the interleaving get going, then stop mid-run — the moral
    # equivalent of SIGTERMing the server (the subprocess version lives
    # in benchmarks/service_smoke.py).
    while len(service.slice_log) < 4:
        await asyncio.sleep(0.01)
    await service.stop()
    first_slices = list(service.slice_log)
    restarted = any(
        service.status(cid)["status"] not in ("finished", "cancelled")
        for cid in ids
    )

    resumed = CampaignService(
        spool, campaign_factory=factory, quantum=1, default_quota=None
    )
    await resumed.start()
    for cid in ids:
        await resumed.wait(cid)
    # Deadline leg: a campaign with an impossibly small processing
    # budget expires at its first attempt boundary (through a forced
    # checkpoint); a deadline extension must resume it to the same
    # fingerprint and journal a straight run produces.  Its budget
    # matches _CAMPAIGNS[1], so references[1] is its solo reference.
    expired_id = await resumed.submit(
        CampaignSpec(
            model="service-leg",
            tenant="alice",
            iterations=_CAMPAIGNS[1][1],
            deadline_s=1e-6,
        )
    )
    expired_status = (await resumed.wait(expired_id))["status"]
    resumed.extend_deadline(expired_id, 3600.0)
    await resumed.wait(expired_id)
    await resumed.stop()
    return (
        ids,
        first_slices + list(resumed.slice_log),
        restarted,
        resumed,
        expired_id,
        expired_status,
    )


def run_service_differential(
    workdir,
    log: Optional[Callable[[str], None]] = None,
) -> ServiceReport:
    """Run the service differential; see the module docstring."""
    say = log if log is not None else (lambda message: None)
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    report = ServiceReport()

    with _patched_env(_REFERENCE_ENV):
        say("service: solo reference campaigns")
        references = _solo_references(workdir)

        say(
            f"service: {len(_CAMPAIGNS)} campaigns, 2 tenants, "
            "stop + resume mid-run"
        )
        spool = workdir / "spool"
        (
            ids,
            slice_log,
            restarted,
            resumed,
            expired_id,
            expired_status,
        ) = asyncio.run(_drive_service(spool, _make_factory()))

    report.campaigns = len(ids)
    report.slices = len(slice_log)
    report.restarted = restarted
    # Interleaved = some other campaign ran between two slices of one.
    for cid in ids:
        positions = [i for i, (c, _) in enumerate(slice_log) if c == cid]
        if len(positions) > 1 and positions[-1] - positions[0] >= len(
            positions
        ):
            report.interleaved = True
            break
    if not restarted:
        report.mismatches.append(
            "service stopped after every campaign already settled; "
            "the restart path was not exercised"
        )

    for index, cid in enumerate(ids):
        expected_fp, expected_journal = references[index]
        status = resumed.status(cid)
        if status["status"] != "finished":
            report.mismatches.append(
                f"campaign {cid}: ended {status['status']} "
                f"({status['error']})"
            )
            continue
        actual_fp = resumed.result(cid)["fingerprint"]
        if actual_fp != expected_fp:
            report.mismatches.append(
                f"campaign {cid}: result fingerprint diverged from the "
                "solo run"
            )
        journal = spool / cid / "journal.jsonl"
        if _canonical_journal(journal) != expected_journal:
            report.mismatches.append(
                f"campaign {cid}: canonical journal diverged from the "
                "solo run"
            )

    # Expired-then-resumed leg: same reference as campaign index 1.
    expected_fp, expected_journal = references[1]
    final = resumed.status(expired_id)
    if expired_status != "expired":
        report.mismatches.append(
            f"deadline campaign {expired_id}: settled {expired_status!r} "
            "instead of expiring"
        )
    elif final["status"] != "finished":
        report.mismatches.append(
            f"deadline campaign {expired_id}: ended {final['status']} "
            f"after extension ({final['error']})"
        )
    else:
        report.expired_resumed = True
        if resumed.result(expired_id)["fingerprint"] != expected_fp:
            report.mismatches.append(
                f"deadline campaign {expired_id}: fingerprint diverged "
                "from the straight run after expire + extend"
            )
        if (
            _canonical_journal(spool / expired_id / "journal.jsonl")
            != expected_journal
        ):
            report.mismatches.append(
                f"deadline campaign {expired_id}: canonical journal "
                "diverged from the straight run after expire + extend"
            )
    say(
        f"service: done ({report.campaigns} campaigns, {report.slices} "
        f"slices, {len(report.mismatches)} mismatches)"
    )
    return report
