"""Deterministic design-point/mapping fuzzer with failure shrinking.

Each case index derives its RNG seed from ``crc32(f"{seed}|{index}")``
(the repository's standard PYTHONHASHSEED-stable idiom), generates a
random small layer, a random valid mapping, and a random hardware
configuration, and pushes the triple through:

* the oracle differential (:func:`repro.verify.checks.compare_layer`);
* the bottleneck-tree invariants (:mod:`repro.verify.invariants`) on the
  latency tree of feasible executions.

A failing case is *shrunk* — loop dims collapsed to 1, stride and
stationaries reset, tile factors flattened into DRAM, config fields
stepped to canonical values — as long as the failure persists, and the
minimal reproducer is written as JSON under the failures directory
(``verify-failures/`` by default).  Reproducers round-trip through
:func:`replay`, so a shrunk case can be re-run in isolation.
"""

from __future__ import annotations

import json
import random
import time
import traceback
import zlib
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.arch.accelerator import AcceleratorConfig
from repro.core.bottleneck.latency_model import (
    LayerExecutionContext,
    build_latency_tree,
)
from repro.cost.execution_info import InfeasibleMapping
from repro.cost.latency import evaluate_layer_mapping
from repro.mapping.mapping import Level, Mapping, padded_bounds_tuple
from repro.verify.checks import compare_layer
from repro.verify.corpus import random_mapping
from repro.verify.invariants import check_all
from repro.verify.oracle import OracleCapacityError
from repro.workloads.layers import (
    LOOP_DIMS,
    Dim,
    LayerShape,
    Operand,
    OperatorType,
)

__all__ = ["FuzzCase", "FuzzFailure", "FuzzReport", "run_fuzz", "replay"]

#: Keep padded loop-bound products small enough for the oracle's walks.
_MAX_PADDED_PRODUCT = 2304

_PES_CHOICES = (16, 64, 128, 256)
_L1_CHOICES = (32, 64, 128, 256, 1024)
_L2_KB_CHOICES = (16, 64, 256)
_BW_CHOICES = (1024, 8192, 25600)
_NOC_BITS_CHOICES = (8, 16, 64, 256)
_PHYS_CHOICES = (1, 16, 64)
_VIRT_CHOICES = (1, 8, 64, 512)

_OPS = (Operand.I, Operand.W, Operand.O, Operand.PSUM)


@dataclass(frozen=True)
class FuzzCase:
    """One generated (layer, mapping, config) triple."""

    index: int
    seed: int
    layer: LayerShape
    mapping: Mapping
    config: AcceleratorConfig


@dataclass
class FuzzFailure:
    """A case that violated the differential or an invariant."""

    index: int
    seed: int
    stage: str  # "oracle-diff" | "invariants" | "error"
    messages: List[str]
    case: FuzzCase
    repro_path: Optional[str] = None
    shrink_steps: int = 0


@dataclass
class FuzzReport:
    cases: int = 0
    feasible: int = 0
    infeasible: int = 0
    skipped: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _case_rng(seed: int, index: int) -> random.Random:
    return random.Random(zlib.crc32(f"{seed}|{index}".encode("utf-8")))


def _random_layer(rng: random.Random, index: int) -> LayerShape:
    """A random small layer whose padded bounds stay oracle-walkable."""
    while True:
        operator = rng.choice(
            (OperatorType.CONV, OperatorType.DWCONV, OperatorType.GEMM)
        )
        n = rng.choice((1, 1, 2))
        m = rng.choice((1, 2, 4, 8))
        if operator is OperatorType.GEMM:
            dims = (n, m, rng.choice((1, 2, 4, 8, 16)), 1, rng.choice((1, 2, 4, 6)), 1, 1)
            stride = 1
        else:
            c = 1 if operator is OperatorType.DWCONV else rng.choice((1, 2, 4))
            oy = rng.choice((1, 2, 3, 4, 5, 6))
            ox = rng.choice((1, 2, 3, 4))
            fy = rng.choice((1, 2, 3))
            fx = rng.choice((1, 2, 3))
            dims = (n, m, c, oy, ox, fy, fx)
            stride = rng.choice((1, 1, 2, 3))
        layer = LayerShape(
            name=f"fuzz{index}",
            operator=operator,
            dims=dims,
            stride=stride,
        )
        product = 1
        for bound in padded_bounds_tuple(layer):
            product *= bound
        if product <= _MAX_PADDED_PRODUCT:
            return layer


def _random_config(rng: random.Random) -> AcceleratorConfig:
    return AcceleratorConfig(
        pes=rng.choice(_PES_CHOICES),
        l1_bytes=rng.choice(_L1_CHOICES),
        l2_kb=rng.choice(_L2_KB_CHOICES),
        offchip_bw_mbps=rng.choice(_BW_CHOICES),
        noc_datawidth_bits=rng.choice(_NOC_BITS_CHOICES),
        phys_unicast_factor={op: rng.choice(_PHYS_CHOICES) for op in _OPS},
        virt_unicast={op: rng.choice(_VIRT_CHOICES) for op in _OPS},
    )


def generate_case(seed: int, index: int) -> FuzzCase:
    rng = _case_rng(seed, index)
    layer = _random_layer(rng, index)
    return FuzzCase(
        index=index,
        seed=seed,
        layer=layer,
        mapping=random_mapping(layer, rng),
        config=_random_config(rng),
    )


def _check_case(case: FuzzCase) -> Tuple[Optional[str], List[str], Optional[bool]]:
    """Run all checks; returns (stage or None, messages, feasible or None).

    ``None`` stage == clean; feasible is ``None`` when the case was
    skipped for oracle capacity.
    """
    try:
        mismatches = compare_layer(case.layer, case.mapping, case.config)
    except OracleCapacityError:
        return None, [], None
    except Exception:
        return "error", traceback.format_exc(limit=3).splitlines()[-3:], False
    if mismatches:
        return "oracle-diff", mismatches, False
    outcome = evaluate_layer_mapping(case.layer, case.mapping, case.config)
    if isinstance(outcome, InfeasibleMapping):
        return None, [], False
    try:
        tree = build_latency_tree(
            LayerExecutionContext(case.layer, outcome, case.config)
        )
        violations = check_all(tree)
    except Exception:
        return "error", traceback.format_exc(limit=3).splitlines()[-3:], True
    if violations:
        return "invariants", violations, True
    return None, [], True


# -- shrinking ----------------------------------------------------------------


def _collapse_dim(case: FuzzCase, d: Dim) -> Optional[FuzzCase]:
    """Set a loop dim to 1 in both the layer and every mapping level."""
    if case.layer.dim(d) == 1:
        return None
    dims = tuple(
        1 if dim is d else bound
        for dim, bound in zip(LOOP_DIMS, case.layer.dims)
    )
    try:
        layer = replace(case.layer, dims=dims)
    except ValueError:
        return None
    factors = {
        level: {
            dim: 1 if dim is d else case.mapping.factors[level][dim]
            for dim in LOOP_DIMS
        }
        for level in Level
    }
    mapping = Mapping(
        factors=factors,
        dram_stationary=case.mapping.dram_stationary,
        spm_stationary=case.mapping.spm_stationary,
    )
    return replace(case, layer=layer, mapping=mapping)


def _flatten_dim(case: FuzzCase, d: Dim) -> Optional[FuzzCase]:
    """Move all of a dim's tiling into the DRAM level."""
    total = 1
    for level in Level:
        total *= case.mapping.factors[level][d]
    if case.mapping.factors[Level.DRAM][d] == total:
        return None
    factors = {
        level: {
            dim: (
                (total if level is Level.DRAM else 1)
                if dim is d
                else case.mapping.factors[level][dim]
            )
            for dim in LOOP_DIMS
        }
        for level in Level
    }
    mapping = Mapping(
        factors=factors,
        dram_stationary=case.mapping.dram_stationary,
        spm_stationary=case.mapping.spm_stationary,
    )
    return replace(case, mapping=mapping)


def _shrink_candidates(case: FuzzCase):
    for d in LOOP_DIMS:
        candidate = _collapse_dim(case, d)
        if candidate is not None:
            yield candidate
    if case.layer.stride != 1 and case.layer.operator is not OperatorType.GEMM:
        yield replace(case, layer=replace(case.layer, stride=1))
    for d in LOOP_DIMS:
        candidate = _flatten_dim(case, d)
        if candidate is not None:
            yield candidate
    for stat_field in ("dram_stationary", "spm_stationary"):
        if getattr(case.mapping, stat_field) is not Operand.O:
            yield replace(
                case, mapping=replace(case.mapping, **{stat_field: Operand.O})
            )
    config = case.config
    for name, canonical in (
        ("pes", 64),
        ("l1_bytes", 1024),
        ("l2_kb", 256),
        ("offchip_bw_mbps", 8192),
        ("noc_datawidth_bits", 16),
    ):
        if getattr(config, name) != canonical:
            yield replace(case, config=replace(config, **{name: canonical}))
    for op in _OPS:
        if config.phys_unicast_factor[op] != 64:
            phys = dict(config.phys_unicast_factor)
            phys[op] = 64
            yield replace(case, config=replace(config, phys_unicast_factor=phys))
        if config.virt_unicast[op] != 512:
            virt = dict(config.virt_unicast)
            virt[op] = 512
            yield replace(case, config=replace(config, virt_unicast=virt))


def shrink_case(case: FuzzCase, stage: str, max_steps: int = 200) -> Tuple[FuzzCase, int]:
    """Greedy shrink to a fixpoint: accept any simplification that keeps
    the same failure stage alive."""
    steps = 0
    progress = True
    while progress and steps < max_steps:
        progress = False
        for candidate in _shrink_candidates(case):
            candidate_stage, _, _ = _check_case(candidate)
            steps += 1
            if candidate_stage == stage:
                case = candidate
                progress = True
                break
            if steps >= max_steps:
                break
    return case, steps


# -- reproducer serialization --------------------------------------------------


def case_to_json(case: FuzzCase, stage: str, messages: List[str]) -> Dict:
    mapping = case.mapping
    config = case.config
    return {
        "schema": 1,
        "seed": case.seed,
        "index": case.index,
        "stage": stage,
        "messages": messages,
        "layer": {
            "name": case.layer.name,
            "operator": case.layer.operator.value,
            "dims": list(case.layer.dims),
            "stride": case.layer.stride,
        },
        "mapping": {
            "factors": {
                level.value: [mapping.factors[level][d] for d in LOOP_DIMS]
                for level in Level
            },
            "dram_stationary": mapping.dram_stationary.value,
            "spm_stationary": mapping.spm_stationary.value,
        },
        "config": {
            "pes": config.pes,
            "l1_bytes": config.l1_bytes,
            "l2_kb": config.l2_kb,
            "offchip_bw_mbps": config.offchip_bw_mbps,
            "noc_datawidth_bits": config.noc_datawidth_bits,
            "phys_unicast_factor": {
                op.value: config.phys_unicast_factor[op] for op in _OPS
            },
            "virt_unicast": {op.value: config.virt_unicast[op] for op in _OPS},
            "freq_mhz": config.freq_mhz,
            "bytes_per_element": config.bytes_per_element,
        },
    }


def case_from_json(data: Dict) -> FuzzCase:
    layer = LayerShape(
        name=data["layer"]["name"],
        operator=OperatorType(data["layer"]["operator"]),
        dims=tuple(data["layer"]["dims"]),
        stride=data["layer"]["stride"],
    )
    factors = {
        level: dict(zip(LOOP_DIMS, data["mapping"]["factors"][level.value]))
        for level in Level
    }
    mapping = Mapping(
        factors=factors,
        dram_stationary=Operand(data["mapping"]["dram_stationary"]),
        spm_stationary=Operand(data["mapping"]["spm_stationary"]),
    )
    cfg = data["config"]
    config = AcceleratorConfig(
        pes=cfg["pes"],
        l1_bytes=cfg["l1_bytes"],
        l2_kb=cfg["l2_kb"],
        offchip_bw_mbps=cfg["offchip_bw_mbps"],
        noc_datawidth_bits=cfg["noc_datawidth_bits"],
        phys_unicast_factor={
            op: cfg["phys_unicast_factor"][op.value] for op in _OPS
        },
        virt_unicast={op: cfg["virt_unicast"][op.value] for op in _OPS},
        freq_mhz=cfg.get("freq_mhz", 500),
        bytes_per_element=cfg.get("bytes_per_element", 2),
    )
    return FuzzCase(
        index=data["index"],
        seed=data["seed"],
        layer=layer,
        mapping=mapping,
        config=config,
    )


def replay(path) -> List[str]:
    """Re-run a written reproducer; returns the (possibly empty) messages."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    stage, messages, _ = _check_case(case_from_json(data))
    if stage is None:
        return []
    return [f"[{stage}] {m}" for m in messages]


# -- the fuzz loop ------------------------------------------------------------


def run_fuzz(
    iterations: int,
    seed: int = 0,
    failures_dir="verify-failures",
    time_budget_s: Optional[float] = None,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run ``iterations`` deterministic fuzz cases (optionally bounded by a
    wall-clock budget); shrink and persist every failure."""
    report = FuzzReport()
    failures_dir = Path(failures_dir)
    say = log if log is not None else (lambda message: None)
    started = time.monotonic()
    for index in range(iterations):
        if (
            time_budget_s is not None
            and time.monotonic() - started > time_budget_s
        ):
            say(f"fuzz: time budget reached after {report.cases} cases")
            break
        case = generate_case(seed, index)
        stage, messages, feasible = _check_case(case)
        report.cases += 1
        if feasible is None:
            report.skipped += 1
        elif feasible:
            report.feasible += 1
        else:
            report.infeasible += 1
        if stage is None:
            continue
        say(f"fuzz: case {index} failed at stage {stage}; shrinking")
        shrunk, steps = shrink_case(case, stage)
        final_stage, final_messages, _ = _check_case(shrunk)
        if final_stage != stage:  # paranoid: keep the original on drift
            shrunk, final_messages = case, messages
        failures_dir.mkdir(parents=True, exist_ok=True)
        repro_path = failures_dir / f"case_{seed}_{index}.json"
        repro_path.write_text(
            json.dumps(
                case_to_json(shrunk, stage, final_messages), indent=2
            )
            + "\n",
            encoding="utf-8",
        )
        report.failures.append(
            FuzzFailure(
                index=index,
                seed=seed,
                stage=stage,
                messages=final_messages,
                case=shrunk,
                repro_path=str(repro_path),
                shrink_steps=steps,
            )
        )
    return report
