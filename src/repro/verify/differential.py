"""Differential campaign runner: every fast path vs the reference path.

Runs the *same* DSE campaign through each accelerated configuration the
perf/telemetry/resilience layers added — vectorized batch scoring, warm
mapping cache, parallel workers, checkpoint-resume, fused cross-layer
evaluation (``REPRO_FUSED_EVAL``), shared-memory sharded fused
evaluation over the persistent worker fleet (``REPRO_SHM_EVAL``),
compiled bottleneck trees (``REPRO_TREE_COMPILE``), and the
cross-process cache plane (``REPRO_CACHE_PLANE``) — and asserts the
outputs are identical to the
serial/scalar/cold-cache/recursive reference:

* **results** (trial points/costs, explanations, incumbent, budget
  accounting) must be byte-identical for every variant;
* **journals** must be byte-identical for variants that share the
  reference's counter values (parallel workers, compiled trees);
* for variants whose ``RunSummary`` perf counters legitimately differ
  (batch kernels count batches, warm caches count hits, resumed runs
  split counters across two evaluator lifetimes), the journals must be
  byte-identical after stripping the counters — the established
  equivalence the checkpoint-resume tests verify.

Every reference-side leg pins ``REPRO_TREE_COMPILE=0`` so the recursive
tree walk stays the ground truth regardless of the ambient environment;
the ``compiled-tree`` and ``all-on`` legs re-enable it explicitly.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.arch.accelerator import build_edge_design_space
from repro.core.dse.constraints import Constraint, Sense
from repro.core.dse.explainable import ExplainableDSE
from repro.cost.evaluator import CostEvaluator
from repro.mapping.mapper import TopNMapper
from repro.perf.cache_plane import CachePlane
from repro.perf.mapping_cache import MappingCache
from repro.telemetry import (
    JsonlSink,
    RunSummary,
    Tracer,
    default_checkpoint_path,
    encode_event,
    load_checkpoint,
    read_journal,
)
from repro.verify.corpus import campaign_workload
from repro.workloads.layers import Workload

__all__ = ["VariantOutcome", "DifferentialReport", "run_differential"]

#: Campaign settings shared by every variant (small but non-trivial: the
#: reference finishes in a few seconds and exercises mitigation steps).
_BUDGET = 25
_KILL_AT = 14


#: Environment pinned around every reference-side campaign so the
#: recursive tree walk is the ground truth even when the ambient
#: environment enables the compiled path.
_REFERENCE_ENV = {"REPRO_TREE_COMPILE": "0"}


@contextlib.contextmanager
def _patched_env(pairs: Dict[str, Optional[str]]):
    """Temporarily pin environment variables (None removes)."""
    saved = {name: os.environ.get(name) for name in pairs}
    try:
        for name, value in pairs.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def _constraints() -> List[Constraint]:
    return [
        Constraint("area", "area_mm2", 75.0),
        Constraint("power", "power_w", 4.0),
        Constraint("throughput", "throughput", 200.0, Sense.GEQ),
    ]


class _KillableEvaluator(CostEvaluator):
    """Raises mid-campaign to simulate a hard kill (for the resume leg)."""

    kill_at: Optional[int] = None

    def _evaluate_uncached(self, point):
        if self.kill_at is not None and self.evaluations >= self.kill_at:
            raise KeyboardInterrupt("differential-runner simulated kill")
        return super()._evaluate_uncached(point)


@dataclass
class VariantOutcome:
    """Comparable artifacts of one campaign variant."""

    name: str
    fingerprint: str
    raw_journal: bytes
    canonical_journal: bytes
    #: Whether the raw journal (counters included) must match the baseline.
    expect_raw_identity: bool


@dataclass
class DifferentialReport:
    """Outcome of the differential matrix."""

    variants: List[str] = field(default_factory=list)
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def _fingerprint(result) -> str:
    """Canonical, exact rendering of everything a campaign decides.

    One shared definition (:func:`repro.service.machine
    .result_fingerprint`) serves the differential matrix, the campaign
    service's result responses, and the service smoke test, so
    "identical fingerprints" always means the same comparison.
    """
    from repro.service.machine import result_fingerprint

    return result_fingerprint(result)


def _canonical_journal(path: Path) -> bytes:
    """Journal bytes with RunSummary perf counters stripped and
    ask/tell bookkeeping events (:class:`AskIssued`,
    :class:`TellRecorded`) removed — the protocol driver's own
    telemetry, absent by definition from a legacy ``run()`` journal."""
    from repro.telemetry import AskIssued, TellRecorded

    lines = []
    for event in read_journal(path):
        if isinstance(event, (AskIssued, TellRecorded)):
            continue
        if isinstance(event, RunSummary):
            event = dataclasses.replace(event, counters={})
        lines.append(json.dumps(encode_event(event), sort_keys=True))
    return ("\n".join(lines) + "\n").encode("utf-8")


def _evaluator(
    workload: Workload,
    batch_eval: Optional[bool],
    cache: Optional[MappingCache] = None,
    cls=CostEvaluator,
    **kwargs,
) -> CostEvaluator:
    return cls(
        workload,
        TopNMapper(top_n=60, batch_eval=batch_eval),
        mapping_cache=cache if cache is not None else MappingCache(),
        **kwargs,
    )


def run_differential(
    workdir: Path,
    workload: Optional[Workload] = None,
    max_evaluations: int = _BUDGET,
    log: Optional[Callable[[str], None]] = None,
) -> DifferentialReport:
    """Run the full differential matrix under ``workdir``.

    Returns a report whose ``mismatches`` list is empty when every
    variant reproduced the reference campaign.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    workload = workload if workload is not None else campaign_workload()
    space = build_edge_design_space()
    say = log if log is not None else (lambda message: None)

    def campaign(
        name: str,
        evaluator: CostEvaluator,
        env: Optional[Dict[str, Optional[str]]] = None,
    ) -> VariantOutcome:
        journal = workdir / f"{name}.jsonl"
        tracer = Tracer(JsonlSink(journal))
        try:
            with _patched_env(env if env is not None else _REFERENCE_ENV):
                result = ExplainableDSE(
                    space, evaluator, _constraints(), max_evaluations=max_evaluations
                ).run(tracer=tracer)
        finally:
            tracer.close()
            evaluator.close()
        return VariantOutcome(
            name=name,
            fingerprint=_fingerprint(result),
            raw_journal=journal.read_bytes(),
            canonical_journal=_canonical_journal(journal),
            expect_raw_identity=False,
        )

    say("differential: baseline (serial, scalar, cold cache)")
    baseline = campaign("baseline", _evaluator(workload, batch_eval=False))
    outcomes = [baseline]

    say("differential: batch kernels (REPRO_BATCH_EVAL path)")
    outcomes.append(campaign("batch", _evaluator(workload, batch_eval=True)))

    say("differential: parallel workers (jobs=2, thread executor)")
    jobs = campaign(
        "jobs2",
        _evaluator(workload, batch_eval=False, jobs=2, executor_mode="thread"),
    )
    jobs.expect_raw_identity = True
    outcomes.append(jobs)

    say("differential: warm mapping cache (second run on a shared cache)")
    shared = MappingCache()
    with _patched_env(_REFERENCE_ENV):
        ExplainableDSE(
            space,
            _evaluator(workload, batch_eval=False, cache=shared),
            _constraints(),
            max_evaluations=max_evaluations,
        ).run()
    outcomes.append(
        campaign("warm-cache", _evaluator(workload, batch_eval=False, cache=shared))
    )

    say("differential: checkpoint-resume (kill mid-campaign, resume)")
    journal = workdir / "resume.jsonl"
    ckpt = default_checkpoint_path(journal)
    # Checkpoints are written at attempt boundaries, so a too-early kill
    # leaves nothing to resume from; push the kill later until one exists.
    kill_at = min(_KILL_AT, max(2, max_evaluations // 2))
    while True:
        if journal.exists():
            journal.unlink()
        if Path(ckpt).exists():
            Path(ckpt).unlink()
        killable = _evaluator(workload, batch_eval=False, cls=_KillableEvaluator)
        killable.kill_at = kill_at
        tracer = Tracer(JsonlSink(journal))
        try:
            with _patched_env(_REFERENCE_ENV):
                ExplainableDSE(
                    space, killable, _constraints(), max_evaluations=max_evaluations
                ).run(tracer=tracer, checkpoint_path=ckpt)
            raise RuntimeError(
                "differential resume leg: the killable evaluator never fired"
            )
        except KeyboardInterrupt:
            pass
        finally:
            tracer.close()
            killable.close()
        if Path(ckpt).exists():
            break
        kill_at += 2
        if kill_at >= max_evaluations:
            raise RuntimeError(
                "differential resume leg: budget too small — the campaign "
                "ends before its first attempt-boundary checkpoint"
            )
    checkpoint = load_checkpoint(ckpt)
    sink = JsonlSink(journal, resume_events=checkpoint.journal_events)
    resumed_tracer = Tracer(sink, seq_start=checkpoint.journal_events)
    evaluator = _evaluator(workload, batch_eval=False)
    try:
        with _patched_env(_REFERENCE_ENV):
            result = ExplainableDSE(
                space, evaluator, _constraints(), max_evaluations=max_evaluations
            ).run(tracer=resumed_tracer, checkpoint_path=ckpt, resume_from=ckpt)
    finally:
        resumed_tracer.close()
        evaluator.close()
    outcomes.append(
        VariantOutcome(
            name="resume",
            fingerprint=_fingerprint(result),
            raw_journal=journal.read_bytes(),
            canonical_journal=_canonical_journal(journal),
            expect_raw_identity=False,
        )
    )

    say("differential: fused cross-layer evaluation (REPRO_FUSED_EVAL path)")
    outcomes.append(
        campaign(
            "fused",
            _evaluator(workload, batch_eval=True, fused_eval=True),
        )
    )

    say("differential: shared-memory sharded fused evaluation (REPRO_SHM_EVAL)")
    from repro.perf.shm_fleet import ShmFleet

    fleet = ShmFleet()
    try:
        outcomes.append(
            campaign(
                "shm",
                _evaluator(
                    workload,
                    batch_eval=True,
                    shm_eval=True,
                    fused_shards=2,
                    shm_min_rows=1,
                    shm_fleet=fleet,
                ),
            )
        )
    finally:
        fleet.shutdown()

    say("differential: compiled bottleneck trees (REPRO_TREE_COMPILE path)")
    compiled = campaign(
        "compiled-tree",
        _evaluator(workload, batch_eval=False),
        env={"REPRO_TREE_COMPILE": "1"},
    )
    # The compiled walk changes no counter the journal keeps (the
    # tree_compile section is telemetry-volatile), so the raw bytes must
    # match the recursive reference, not just the canonical form.
    compiled.expect_raw_identity = True
    outcomes.append(compiled)

    say("differential: cache plane (second process on a shared segment dir)")
    plane_dir = workdir / "cache-plane-segments"
    with _patched_env(_REFERENCE_ENV):
        prefill = _evaluator(
            workload,
            batch_eval=False,
            cache=MappingCache(plane=CachePlane(str(plane_dir))),
        )
        try:
            ExplainableDSE(
                space, prefill, _constraints(), max_evaluations=max_evaluations
            ).run()
        finally:
            prefill.close()
    # A fresh in-memory cache plus a fresh plane handle on the same
    # directory stands in for a second concurrent process.
    outcomes.append(
        campaign(
            "cache-plane",
            _evaluator(
                workload,
                batch_eval=False,
                cache=MappingCache(plane=CachePlane(str(plane_dir))),
            ),
        )
    )

    say("differential: all fast paths combined")
    all_on_fleet = ShmFleet()
    try:
        outcomes.append(
            campaign(
                "all-on",
                _evaluator(
                    workload,
                    batch_eval=True,
                    fused_eval=True,
                    shm_eval=True,
                    fused_shards=2,
                    shm_min_rows=1,
                    shm_fleet=all_on_fleet,
                    cache=MappingCache(plane=CachePlane(str(plane_dir))),
                ),
                env={"REPRO_TREE_COMPILE": "1"},
            )
        )
    finally:
        all_on_fleet.shutdown()

    report = DifferentialReport(variants=[o.name for o in outcomes])
    for outcome in outcomes[1:]:
        if outcome.fingerprint != baseline.fingerprint:
            report.mismatches.append(
                f"{outcome.name}: campaign results differ from baseline"
            )
        if outcome.canonical_journal != baseline.canonical_journal:
            report.mismatches.append(
                f"{outcome.name}: journal (counters stripped) differs from baseline"
            )
        if outcome.expect_raw_identity and outcome.raw_journal != baseline.raw_journal:
            report.mismatches.append(
                f"{outcome.name}: raw journal bytes differ from baseline"
            )
    return report
