"""Golden traces: the reference campaign pinned into the repository.

A deterministic serial campaign (same settings as the differential
baseline) is run and compared byte-for-byte against fixtures under
``tests/goldens/``:

* ``tiny_campaign.jsonl`` — the canonical journal (RunSummary perf
  counters stripped, the counter-free equivalence every fast path must
  reproduce);
* ``tiny_campaign.json`` — metadata plus the exact result fingerprint
  (trial points/costs/explanations/incumbent, rendered by ``repr`` so
  float bit-patterns are preserved).

Any intentional change to search order, cost arithmetic, explanation
text, or journal schema shows up as a golden diff; regenerate with
``python -m repro.experiments.cli verify --update-goldens`` and review
the diff like any other source change.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from repro.arch.accelerator import build_edge_design_space
from repro.core.dse.explainable import ExplainableDSE
from repro.telemetry import JsonlSink, Tracer
from repro.verify.corpus import campaign_workload
from repro.verify.differential import (
    _BUDGET,
    _canonical_journal,
    _constraints,
    _evaluator,
    _fingerprint,
)

__all__ = ["GoldenReport", "default_golden_dir", "run_golden_campaign", "check_goldens"]

_JOURNAL_NAME = "tiny_campaign.jsonl"
_META_NAME = "tiny_campaign.json"


def default_golden_dir() -> Path:
    """``tests/goldens/`` relative to the repository root."""
    return Path(__file__).resolve().parents[3] / "tests" / "goldens"


@dataclass
class GoldenReport:
    """Outcome of a golden comparison (or regeneration)."""

    golden_dir: str = ""
    updated: bool = False
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def run_golden_campaign(workdir: Path) -> Tuple[bytes, str]:
    """Run the reference campaign; returns (canonical journal bytes,
    result fingerprint)."""
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    journal = workdir / "golden_run.jsonl"
    evaluator = _evaluator(campaign_workload(), batch_eval=False)
    tracer = Tracer(JsonlSink(journal))
    try:
        result = ExplainableDSE(
            build_edge_design_space(),
            evaluator,
            _constraints(),
            max_evaluations=_BUDGET,
        ).run(tracer=tracer)
    finally:
        tracer.close()
        evaluator.close()
    return _canonical_journal(journal), _fingerprint(result)


def check_goldens(
    workdir: Path,
    golden_dir: Optional[Path] = None,
    update: bool = False,
    log: Optional[Callable[[str], None]] = None,
) -> GoldenReport:
    """Compare a fresh reference campaign against the pinned goldens.

    With ``update=True`` the goldens are rewritten instead and the report
    comes back clean (review the resulting diff before committing).
    """
    golden_dir = Path(golden_dir) if golden_dir is not None else default_golden_dir()
    say = log if log is not None else (lambda message: None)
    report = GoldenReport(golden_dir=str(golden_dir))
    journal_bytes, fingerprint = run_golden_campaign(Path(workdir))
    journal_path = golden_dir / _JOURNAL_NAME
    meta_path = golden_dir / _META_NAME

    if update:
        golden_dir.mkdir(parents=True, exist_ok=True)
        journal_path.write_bytes(journal_bytes)
        meta_path.write_text(
            json.dumps(
                {
                    "schema": 1,
                    "campaign": {
                        "workload": campaign_workload().name,
                        "max_evaluations": _BUDGET,
                        "journal": _JOURNAL_NAME,
                    },
                    "fingerprint": fingerprint,
                },
                indent=2,
            )
            + "\n",
            encoding="utf-8",
        )
        report.updated = True
        say(f"goldens: regenerated under {golden_dir}")
        return report

    if not journal_path.exists() or not meta_path.exists():
        report.mismatches.append(
            f"goldens missing under {golden_dir} "
            "(generate with `verify --update-goldens`)"
        )
        return report
    golden_journal = journal_path.read_bytes()
    if journal_bytes != golden_journal:
        report.mismatches.append(
            f"canonical journal differs from golden {journal_path}"
        )
    golden_meta = json.loads(meta_path.read_text(encoding="utf-8"))
    if fingerprint != golden_meta.get("fingerprint"):
        report.mismatches.append(
            f"campaign result fingerprint differs from golden {meta_path}"
        )
    if report.ok:
        say("goldens: reference campaign matches pinned traces")
    return report
