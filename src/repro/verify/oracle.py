"""Oracle cost model: a deliberately slow, loop-nest-literal reference.

This module re-derives the latency/energy/area/power semantics of
:mod:`repro.cost` **without sharing any of its computation**.  Where the
production model uses closed-form products and integer divisions, the
oracle *simulates*: it walks the loop nests with :mod:`itertools.product`,
counts buffer-refill transitions one iteration at a time, enumerates tile
coordinates into sets, and scans halo extents index by index.  The only
things imported from the production packages are inert data definitions
(enums and frozen dataclass fields); every constant, table, and formula is
restated locally so a bug in ``repro.cost`` cannot silently cancel out
here.

Shared modeling *assumptions* (intentional, from the paper's Fig. 8 /
dMazeRunner model — the oracle validates the computation, not the model):

* per-layer latency is ``max(t_comp, max t_noc, t_dma)`` (double
  buffering overlaps the three factors);
* an operand's buffer at a temporal level persists only across the
  innermost run of loops irrelevant to both the level's stationary
  operand and the operand itself — any outer-loop tick forces a refetch;
* the input tile buffers the contiguous bounding box of its halo rows
  and columns (not just the distinct rows touched);
* NoC groups are counted over spatially-unrolled *index* tuples of the
  operand's relevant dimensions.

Floating-point results must match the production model bit for bit, so
the arithmetic *shapes* of the float formulas (association order, the
order of dict-sum accumulation) deliberately mirror the reference; the
*inputs* to those formulas (iteration counts, fetch counts, tile bytes,
group counts) are all derived by literal simulation.

The literal walks are exponential in mapping size, so every enumeration
is capped; :class:`OracleCapacityError` signals a point too large for the
oracle rather than silently degrading to a closed form.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping as MappingT, Optional, Tuple, Union

from repro.arch.accelerator import AcceleratorConfig
from repro.mapping.mapping import Level, Mapping
from repro.workloads.layers import Dim, LayerShape, Operand, OperatorType, Workload

__all__ = [
    "OracleCapacityError",
    "OracleInfeasible",
    "OracleExecution",
    "OracleEnergy",
    "OracleArea",
    "OraclePower",
    "OracleEvaluation",
    "oracle_layer",
    "oracle_energy",
    "oracle_area",
    "oracle_power",
    "oracle_model_costs",
]

# -- local restatement of the problem definition ------------------------------
# Everything below is intentionally duplicated from the production model
# (workloads/mapping/technology); the oracle must not read computed values
# from those modules.

#: Canonical loop order (N, M, C, OY, OX, FY, FX).
_DIMS: Tuple[Dim, ...] = (Dim.N, Dim.M, Dim.C, Dim.OY, Dim.OX, Dim.FY, Dim.FX)

#: NoC/operand order used for feasibility checks and traffic sums.
_OPS: Tuple[Operand, ...] = (Operand.I, Operand.W, Operand.O, Operand.PSUM)

#: Operands with their own storage footprint (PSUM aliases O's tensor).
_DATA_OPS: Tuple[Operand, ...] = (Operand.I, Operand.W, Operand.O)

#: Hard cap on any single literal enumeration (iterations or set size).
_MAX_ENUM = 1 << 21

# 45 nm technology constants (restated; see repro.cost.technology).
_MAC_PJ = 1.0
_RF_REF_PJ = 0.15
_RF_REF_BYTES = 512
_RF_FLOOR_PJ = 0.03
_SPM_REF_PJ = 1.0
_SPM_REF_BYTES = 1 << 20
_SPM_FLOOR_PJ = 0.2
_DRAM_PJ_PER_BYTE = 100.0
_NOC_PJ_PER_BYTE = 0.5
_MAC_AREA_MM2 = 0.0012
_RF_AREA_PER_BYTE = 5.0e-5
_SPM_AREA_PER_BYTE = 8.0e-6
_SPM_BANK_BYTES = 64 * 1024
_SPM_BANK_AREA = 0.05
_NOC_AREA_PER_LINK_BIT = 2.0e-5
_CONTROLLER_AREA = 1.0
_RF_ACCESSES_PER_MAC = 4
_OFFCHIP_INTERFACE_PJ_PER_BYTE = 8.0


def _dims_of(operator: OperatorType, operand: Operand) -> frozenset:
    """Dims indexing ``operand`` (local restatement of the operand table)."""
    if operand in (Operand.O, Operand.PSUM):
        return frozenset({Dim.N, Dim.M, Dim.OY, Dim.OX})
    if operand is Operand.W:
        if operator is OperatorType.DWCONV:
            return frozenset({Dim.M, Dim.FY, Dim.FX})
        return frozenset({Dim.M, Dim.C, Dim.FY, Dim.FX})
    # Input activations.
    if operator is OperatorType.DWCONV:
        return frozenset({Dim.N, Dim.M, Dim.OY, Dim.OX, Dim.FY, Dim.FX})
    return frozenset({Dim.N, Dim.C, Dim.OY, Dim.OX, Dim.FY, Dim.FX})


class OracleCapacityError(RuntimeError):
    """The literal simulation would exceed the enumeration cap."""


@dataclass(frozen=True)
class OracleInfeasible:
    """Why the oracle rejects a mapping on a hardware configuration.

    ``kind`` is one of ``"pes"``, ``"rf"``, ``"spm"``, ``"noc"``.
    """

    kind: str
    operand: Optional[Operand] = None


@dataclass(frozen=True)
class OracleExecution:
    """Execution characteristics of one feasible (layer, mapping, config)."""

    t_comp: float
    t_noc: Dict[Operand, float]
    t_dma: float
    latency: float
    data_offchip: Dict[Operand, float]
    data_noc: Dict[Operand, float]
    noc_groups: Dict[Operand, int]
    rf_bytes: Dict[Operand, int]
    spm_bytes: Dict[Operand, int]
    pes_used: int
    macs: int
    utilization: float


@dataclass(frozen=True)
class OracleEnergy:
    mac_pj: float
    rf_pj: float
    noc_pj: float
    spm_pj: float
    dram_pj: float

    @property
    def total_pj(self) -> float:
        return self.mac_pj + self.rf_pj + self.noc_pj + self.spm_pj + self.dram_pj

    @property
    def total_mj(self) -> float:
        return self.total_pj * 1e-9


@dataclass(frozen=True)
class OracleArea:
    pe_array_mm2: float
    spm_mm2: float
    noc_mm2: float
    controller_mm2: float

    @property
    def total_mm2(self) -> float:
        return self.pe_array_mm2 + self.spm_mm2 + self.noc_mm2 + self.controller_mm2


@dataclass(frozen=True)
class OraclePower:
    pe_w: float
    noc_w: float
    spm_w: float
    offchip_w: float

    @property
    def total_w(self) -> float:
        return self.pe_w + self.noc_w + self.spm_w + self.offchip_w


@dataclass(frozen=True)
class OracleEvaluation:
    """Model-level costs from per-layer oracle executions."""

    latency_ms: float
    energy_mj: float
    area_mm2: float
    power_w: float
    throughput: float
    mappable: bool


# -- literal loop-nest walks ---------------------------------------------------


def _checked_product(counts: Iterable[int]) -> int:
    total = 1
    for c in counts:
        total *= c
    if total > _MAX_ENUM:
        raise OracleCapacityError(
            f"enumeration of {total} iterations exceeds the oracle cap"
        )
    return total


def _count_iterations(factors: MappingT[Dim, int]) -> int:
    """Count a level's temporal iterations by walking the loop nest."""
    _checked_product(factors[d] for d in _DIMS)
    count = 0
    for _ in itertools.product(*(range(factors[d]) for d in _DIMS)):
        count += 1
    return count


def _count_fetches(
    factors: MappingT[Dim, int],
    operator: OperatorType,
    stationary: Operand,
    operand: Operand,
) -> int:
    """Count buffer refills of ``operand`` across one level's loop nest.

    The level orders its loops with the dims irrelevant to both the
    stationary operand and ``operand`` innermost (that is what "stationary"
    means in this model).  The operand's buffer survives only while those
    innermost loops advance; as soon as any outer loop ticks, the next
    iteration refetches.  We walk the whole nest and count iterations
    whose outer-index prefix differs from the previous iteration's.
    """
    blocked = _dims_of(operator, stationary) | _dims_of(operator, operand)
    outer = [d for d in _DIMS if d in blocked]
    inner = [d for d in _DIMS if d not in blocked]
    order = outer + inner
    _checked_product(factors[d] for d in order)
    n_outer = len(outer)
    fetches = 0
    previous: Optional[Tuple[int, ...]] = None
    for idx in itertools.product(*(range(factors[d]) for d in order)):
        prefix = idx[:n_outer]
        if prefix != previous:
            fetches += 1
            previous = prefix
    return fetches


def _count_spatial_groups(
    factors: MappingT[Dim, int], operator: OperatorType, operand: Operand
) -> int:
    """Count distinct data streams demanded by the spatial unrolling.

    Each spatially-unrolled index assignment is projected onto the
    operand's relevant dims; PEs sharing a projection are served by
    broadcast, so the distinct projections are the concurrent unicast
    groups.
    """
    relevant = [d for d in _DIMS if d in _dims_of(operator, operand)]
    _checked_product(factors[d] for d in _DIMS)
    groups = set()
    for idx in itertools.product(*(range(factors[d]) for d in _DIMS)):
        groups.add(tuple(v for d, v in zip(_DIMS, idx) if d in relevant))
    return len(groups)


def _count_pes(factors: MappingT[Dim, int]) -> int:
    """Count PEs occupied by the spatial unrolling, one PE at a time."""
    _checked_product(factors[d] for d in _DIMS)
    count = 0
    for _ in itertools.product(*(range(factors[d]) for d in _DIMS)):
        count += 1
    return count


def _halo_extent(points: int, kernel: int, stride: int) -> int:
    """Contiguous input extent covered by ``points`` output positions.

    Scans every (output, filter) index pair and takes the bounding box —
    the buffer holds the contiguous range, so gaps (stride > kernel)
    still occupy space.
    """
    if points * kernel > _MAX_ENUM:
        raise OracleCapacityError("halo scan exceeds the oracle cap")
    lo = hi = 0 * stride + 0
    for o in range(points):
        for f in range(kernel):
            coord = o * stride + f
            if coord < lo:
                lo = coord
            if coord > hi:
                hi = coord
    return hi - lo + 1


def _tile_extents(
    mapping: Mapping, levels: Tuple[Level, ...]
) -> Dict[Dim, int]:
    """Per-dim extents covered by the given (inner) levels combined."""
    return {
        d: math.prod(mapping.factors[level][d] for level in levels)
        for d in _DIMS
    }


def _tile_elements(
    layer: LayerShape, tile: MappingT[Dim, int], operand: Operand
) -> int:
    """Count elements of ``operand`` in a tile by enumerating coordinates."""
    dwise = layer.operator is OperatorType.DWCONV
    if operand is Operand.W:
        channels = 1 if dwise else tile[Dim.C]
        _checked_product((tile[Dim.M], channels, tile[Dim.FY], tile[Dim.FX]))
        coords = set(
            itertools.product(
                range(tile[Dim.M]),
                range(channels),
                range(tile[Dim.FY]),
                range(tile[Dim.FX]),
            )
        )
        return len(coords)
    if operand in (Operand.O, Operand.PSUM):
        _checked_product((tile[Dim.N], tile[Dim.M], tile[Dim.OY], tile[Dim.OX]))
        coords = set(
            itertools.product(
                range(tile[Dim.N]),
                range(tile[Dim.M]),
                range(tile[Dim.OY]),
                range(tile[Dim.OX]),
            )
        )
        return len(coords)
    # Input activations: channels x contiguous halo bounding box.
    channels = tile[Dim.M] if dwise else tile[Dim.C]
    rows = _halo_extent(tile[Dim.OY], tile[Dim.FY], layer.stride)
    cols = _halo_extent(tile[Dim.OX], tile[Dim.FX], layer.stride)
    return tile[Dim.N] * channels * rows * cols


def _count_macs(layer: LayerShape) -> int:
    """Total MACs of the layer (block-counted walk over the full nest)."""
    # Walking 10^6+ scalar MACs one by one is pointless even for an
    # oracle; walk the three outer dims literally and multiply by the
    # bound product of the four inner ones.
    n, m, c, oy, ox, fy, fx = layer.dims
    inner = oy * ox * fy * fx
    macs = 0
    for _ in itertools.product(range(n), range(m), range(c)):
        macs += inner
    return macs


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _physical_links(config: AcceleratorConfig, operand: Operand) -> int:
    links = config.pes * config.phys_unicast_factor[operand] // 64
    return links if links > 1 else 1


# -- per-layer oracle ----------------------------------------------------------


def oracle_layer(
    layer: LayerShape, mapping: Mapping, config: AcceleratorConfig
) -> Union[OracleExecution, OracleInfeasible]:
    """Evaluate one (layer, mapping, hardware) triple by simulation."""
    bpe = config.bytes_per_element

    # Feasibility, in the same gate order as the production model (the
    # first violated resource is the reported one).
    pes_used = _count_pes(mapping.factors[Level.SPATIAL])
    if pes_used > config.pes:
        return OracleInfeasible("pes")

    rf_tile = _tile_extents(mapping, (Level.RF,))
    rf_bytes = {op: _tile_elements(layer, rf_tile, op) * bpe for op in _DATA_OPS}
    if sum(rf_bytes.values()) > config.l1_bytes:
        return OracleInfeasible("rf")

    spm_tile = _tile_extents(mapping, (Level.RF, Level.SPATIAL, Level.SPM))
    spm_bytes = {op: _tile_elements(layer, spm_tile, op) * bpe for op in _DATA_OPS}
    if 2 * sum(spm_bytes.values()) > config.l2_kb * 1024:
        return OracleInfeasible("spm")

    groups: Dict[Operand, int] = {}
    for op in (Operand.I, Operand.W, Operand.O):
        groups[op] = _count_spatial_groups(
            mapping.factors[Level.SPATIAL], layer.operator, op
        )
    groups[Operand.PSUM] = groups[Operand.O]
    rounds: Dict[Operand, int] = {}
    for op in _OPS:
        links = _physical_links(config, op)
        r = _ceil_div(groups[op], links)
        if r > config.virt_unicast[op]:
            return OracleInfeasible("noc", operand=op)
        rounds[op] = r

    # Computation: count each temporal level's iterations by walking it.
    iters_dram = _count_iterations(mapping.factors[Level.DRAM])
    iters_spm = _count_iterations(mapping.factors[Level.SPM])
    iters_rf = _count_iterations(mapping.factors[Level.RF])
    t_comp = float(iters_dram * iters_spm * iters_rf)

    # NoC distribution: refills of each RF tile across the SPM loops.
    fetches2 = {
        op: _count_fetches(
            mapping.factors[Level.SPM], layer.operator, mapping.spm_stationary, op
        )
        for op in _DATA_OPS
    }
    out_tiles2 = _count_spatial_groups(
        mapping.factors[Level.SPM], layer.operator, Operand.O
    )
    events = {
        Operand.I: iters_dram * fetches2[Operand.I],
        Operand.W: iters_dram * fetches2[Operand.W],
        Operand.O: iters_dram * fetches2[Operand.O],
        Operand.PSUM: iters_dram
        * max(0, fetches2[Operand.O] - out_tiles2),
    }
    tile_bytes_for = {
        Operand.I: rf_bytes[Operand.I],
        Operand.W: rf_bytes[Operand.W],
        Operand.O: rf_bytes[Operand.O],
        Operand.PSUM: rf_bytes[Operand.O],
    }
    noc_bpc = config.noc_datawidth_bits / 8.0
    t_noc: Dict[Operand, float] = {}
    data_noc: Dict[Operand, float] = {}
    for op in _OPS:
        per_event_cycles = rounds[op] * tile_bytes_for[op] / noc_bpc
        t_noc[op] = events[op] * per_event_cycles
        data_noc[op] = events[op] * groups[op] * tile_bytes_for[op]

    # DMA: refills of each SPM tile across the DRAM loops.
    fetches3 = {
        op: _count_fetches(
            mapping.factors[Level.DRAM], layer.operator, mapping.dram_stationary, op
        )
        for op in _DATA_OPS
    }
    data_offchip: Dict[Operand, float] = {
        Operand.I: fetches3[Operand.I] * spm_bytes[Operand.I],
        Operand.W: fetches3[Operand.W] * spm_bytes[Operand.W],
    }
    out_writes = fetches3[Operand.O] * spm_bytes[Operand.O]
    full_tile = _tile_extents(mapping, tuple(Level))
    padded_out_bytes = _tile_elements(layer, full_tile, Operand.O) * bpe
    data_offchip[Operand.O] = float(out_writes)
    data_offchip[Operand.PSUM] = float(max(0, out_writes - padded_out_bytes))
    dram_bpc = config.offchip_bw_mbps / config.freq_mhz
    t_dma = sum(data_offchip.values()) / dram_bpc

    macs = _count_macs(layer)
    latency = max(t_comp, max(t_noc.values()), t_dma)
    utilization = macs / (t_comp * pes_used) if t_comp else 0.0

    return OracleExecution(
        t_comp=t_comp,
        t_noc=t_noc,
        t_dma=t_dma,
        latency=latency,
        data_offchip=data_offchip,
        data_noc=data_noc,
        noc_groups=groups,
        rf_bytes=rf_bytes,
        spm_bytes=spm_bytes,
        pes_used=pes_used,
        macs=macs,
        utilization=utilization,
    )


# -- energy / area / power -----------------------------------------------------


def _rf_energy_per_byte(rf_bytes: int) -> float:
    scale = math.sqrt(max(rf_bytes, 1) / _RF_REF_BYTES)
    return max(_RF_FLOOR_PJ, _RF_REF_PJ * scale)


def _spm_energy_per_byte(spm_bytes: int) -> float:
    scale = math.sqrt(max(spm_bytes, 1) / _SPM_REF_BYTES)
    return max(_SPM_FLOOR_PJ, _SPM_REF_PJ * scale)


def oracle_energy(
    execution: OracleExecution, config: AcceleratorConfig
) -> OracleEnergy:
    """Energy of one layer execution (restated component accounting)."""
    bpe = config.bytes_per_element
    mac_pj = execution.macs * _MAC_PJ
    rf_pj = (
        execution.macs
        * _RF_ACCESSES_PER_MAC
        * bpe
        * _rf_energy_per_byte(config.l1_bytes)
    )
    noc_bytes = sum(execution.data_noc.values())
    noc_pj = noc_bytes * _NOC_PJ_PER_BYTE
    offchip_bytes = sum(execution.data_offchip.values())
    spm_pj = (noc_bytes + offchip_bytes) * _spm_energy_per_byte(
        config.l2_kb * 1024
    )
    dram_pj = offchip_bytes * _DRAM_PJ_PER_BYTE
    return OracleEnergy(
        mac_pj=mac_pj,
        rf_pj=rf_pj,
        noc_pj=noc_pj,
        spm_pj=spm_pj,
        dram_pj=dram_pj,
    )


def oracle_area(config: AcceleratorConfig) -> OracleArea:
    """Silicon area of the configuration (restated component accounting)."""
    pe_array = config.pes * (
        _MAC_AREA_MM2 + config.l1_bytes * _RF_AREA_PER_BYTE
    )
    l2_bytes = config.l2_kb * 1024
    banks = max(1, _ceil_div(l2_bytes, _SPM_BANK_BYTES))
    spm = l2_bytes * _SPM_AREA_PER_BYTE + banks * _SPM_BANK_AREA
    total_links = sum(_physical_links(config, op) for op in _OPS)
    noc = total_links * config.noc_datawidth_bits * _NOC_AREA_PER_LINK_BIT
    return OracleArea(
        pe_array_mm2=pe_array,
        spm_mm2=spm,
        noc_mm2=noc,
        controller_mm2=_CONTROLLER_AREA,
    )


def oracle_power(config: AcceleratorConfig) -> OraclePower:
    """Peak power of the configuration (restated component accounting)."""
    hz = config.freq_mhz * 1e6
    pj_to_w = hz * 1e-12
    pe_pj = config.pes * (
        _MAC_PJ
        + _RF_ACCESSES_PER_MAC
        * config.bytes_per_element
        * _rf_energy_per_byte(config.l1_bytes)
    )
    noc_bpc = config.noc_datawidth_bits / 8.0
    noc_bytes_per_cycle = sum(
        _physical_links(config, op) * noc_bpc for op in _OPS
    )
    noc_pj = noc_bytes_per_cycle * _NOC_PJ_PER_BYTE
    spm_pj = noc_bytes_per_cycle * _spm_energy_per_byte(config.l2_kb * 1024)
    offchip_pj = (
        config.offchip_bw_mbps / config.freq_mhz
    ) * _OFFCHIP_INTERFACE_PJ_PER_BYTE
    return OraclePower(
        pe_w=pe_pj * pj_to_w,
        noc_w=noc_pj * pj_to_w,
        spm_w=spm_pj * pj_to_w,
        offchip_w=offchip_pj * pj_to_w,
    )


# -- model-level aggregation ---------------------------------------------------


def oracle_model_costs(
    workload: Workload,
    mappings: MappingT[str, Optional[Mapping]],
    config: AcceleratorConfig,
) -> OracleEvaluation:
    """Aggregate per-layer oracle results into model-level costs.

    Mirrors the production aggregation semantics: infeasible or missing
    layers make the point unmappable (inf latency/energy, zero
    throughput); otherwise cycles and energy accumulate in workload
    order weighted by layer repeats.
    """
    total_cycles = 0.0
    energy_pj: List[OracleEnergy] = []
    mappable = True
    for layer in workload.layers:
        mapping = mappings.get(layer.name)
        execution = (
            oracle_layer(layer, mapping, config) if mapping is not None else None
        )
        if execution is None or isinstance(execution, OracleInfeasible):
            mappable = False
            continue
        total_cycles += execution.latency * layer.repeats
        e = oracle_energy(execution, config)
        energy_pj.append(
            OracleEnergy(
                mac_pj=e.mac_pj * layer.repeats,
                rf_pj=e.rf_pj * layer.repeats,
                noc_pj=e.noc_pj * layer.repeats,
                spm_pj=e.spm_pj * layer.repeats,
                dram_pj=e.dram_pj * layer.repeats,
            )
        )

    if mappable:
        latency_ms = total_cycles / (config.freq_mhz * 1e3)
        total = OracleEnergy(0.0, 0.0, 0.0, 0.0, 0.0)
        for e in energy_pj:
            total = OracleEnergy(
                mac_pj=total.mac_pj + e.mac_pj,
                rf_pj=total.rf_pj + e.rf_pj,
                noc_pj=total.noc_pj + e.noc_pj,
                spm_pj=total.spm_pj + e.spm_pj,
                dram_pj=total.dram_pj + e.dram_pj,
            )
        energy_mj = total.total_mj
        throughput = 1000.0 / latency_ms if latency_ms > 0 else math.inf
    else:
        latency_ms = math.inf
        energy_mj = math.inf
        throughput = 0.0

    area = oracle_area(config)
    power = oracle_power(config)
    return OracleEvaluation(
        latency_ms=latency_ms,
        energy_mj=energy_mj,
        area_mm2=area.total_mm2,
        power_w=power.total_w,
        throughput=throughput,
        mappable=mappable,
    )
