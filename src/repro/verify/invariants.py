"""Invariant checker for bottleneck-tree algebra.

Reusable assertions over populated bottleneck trees and the analyzer's
findings:

* **recomputation**: every node's reported ``value`` equals an
  independent post-order recomputation from the leaves (this is what
  catches a perturbed combinator anywhere in the tree);
* **argmax**: a finding's path descends through ``max`` nodes only via
  children inside the analyzer's 1% tie window — the identified
  bottleneck really is a dominating factor;
* **mitigation**: applying a finding's predicted scaling ``s`` to its
  factor strictly reduces that factor and never increases the root.

Checkers return a list of violation strings (empty == clean); the
``assert_*`` wrappers raise :class:`InvariantViolation`.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence, Tuple

from repro.core.bottleneck.analyzer import (
    BottleneckFinding,
    MAX_SCALING,
    analyze_tree,
)
from repro.core.bottleneck.tree import Node, NodeOp

__all__ = [
    "InvariantViolation",
    "recompute_value",
    "check_tree",
    "check_findings",
    "check_mitigation",
    "check_all",
    "assert_tree_invariants",
    "scale_at_path",
]

#: The analyzer's co-bottleneck tie window (children of a max node within
#: 1% of the peak are all considered dominating).
_TIE_WINDOW = 0.99


class InvariantViolation(AssertionError):
    """A bottleneck-tree invariant does not hold."""


def recompute_value(node: Node) -> float:
    """Independently recompute a subtree's value from its leaves.

    Deliberately does not consult ``node.value`` on internal nodes, so a
    combinator whose evaluation was perturbed (or overridden) is exposed
    by comparison.
    """
    if node.op is NodeOp.LEAF:
        return float(node.raw_value)
    values = [recompute_value(child) for child in node.children]
    if node.op is NodeOp.MAX:
        return max(values)
    if node.op is NodeOp.ADD:
        return sum(values)
    if node.op is NodeOp.MUL:
        out = 1.0
        for v in values:
            out *= v
        return out
    numerator, denominator = values
    if denominator == 0:
        return float("inf")
    return numerator / denominator


def check_tree(root: Node, require_nonnegative: bool = True) -> List[str]:
    """Structural and recomputation invariants of a populated tree."""
    violations: List[str] = []
    for node in root.walk():
        if node.op is NodeOp.LEAF:
            if node.children:
                violations.append(f"leaf {node.name!r} has children")
            if node.raw_value is None:
                violations.append(f"leaf {node.name!r} has no value")
                continue
        else:
            if not node.children:
                violations.append(f"{node.op.value} node {node.name!r} has no children")
                continue
            if node.op is NodeOp.DIV and len(node.children) != 2:
                violations.append(
                    f"div node {node.name!r} has {len(node.children)} children"
                )
                continue
        reported = node.value
        recomputed = recompute_value(node)
        if math.isnan(reported) or (
            reported != recomputed and not (math.isnan(recomputed) and math.isnan(reported))
        ):
            violations.append(
                f"node {node.name!r} [{node.op.value}] reports {reported!r}, "
                f"recomputation from leaves gives {recomputed!r}"
            )
        if require_nonnegative and not math.isnan(reported) and reported < 0:
            violations.append(f"node {node.name!r} has negative cost {reported!r}")
    return violations


def _resolve_path(root: Node, path: Sequence[str]) -> Optional[Tuple[Node, ...]]:
    """Resolve a finding path (root name first) to the chain of nodes."""
    if not path or path[0] != root.name:
        return None
    chain = [root]
    current = root
    for name in path[1:]:
        match = next((c for c in current.children if c.name == name), None)
        if match is None:
            return None
        chain.append(match)
        current = match
    return tuple(chain)


def check_findings(
    root: Node, findings: Optional[Sequence[BottleneckFinding]] = None
) -> List[str]:
    """Invariants of the analyzer's findings against the tree they explain."""
    if findings is None:
        findings = analyze_tree(root)
    violations: List[str] = []
    total = root.value
    previous_contribution = math.inf
    for finding in findings:
        label = " > ".join(finding.path)
        chain = _resolve_path(root, finding.path)
        if chain is None:
            violations.append(f"finding path {label} does not exist in the tree")
            continue
        if chain[-1] is not finding.node:
            violations.append(f"finding {label} names a different node than it holds")
        if len(finding.path) < 2:
            violations.append(f"finding {label} is the root (never a mitigable factor)")
        if not 0.0 < finding.contribution <= 1.0:
            violations.append(
                f"finding {label} contribution {finding.contribution!r} outside (0, 1]"
            )
        if not 1.0 < finding.scaling <= MAX_SCALING:
            violations.append(
                f"finding {label} scaling {finding.scaling!r} outside (1, {MAX_SCALING}]"
            )
        if finding.contribution > previous_contribution:
            violations.append(
                f"finding {label} breaks the contribution ranking "
                f"({finding.contribution!r} after {previous_contribution!r})"
            )
        previous_contribution = finding.contribution
        # The argmax property: every max node traversed by the path must
        # be descended through a child inside the analyzer's tie window.
        for parent, child in zip(chain, chain[1:]):
            if parent.op is not NodeOp.MAX:
                continue
            peak = max(c.value for c in parent.children)
            if child.value < _TIE_WINDOW * peak:
                violations.append(
                    f"finding {label}: descends max node {parent.name!r} through "
                    f"{child.name!r} ({child.value!r}) which is below the tie "
                    f"window of the peak ({peak!r})"
                )
        if total > 0 and math.isfinite(total):
            if finding.node.value <= 0 and not finding.inverse:
                violations.append(
                    f"finding {label} identifies a zero-cost factor as a bottleneck"
                )
    return violations


def scale_at_path(root: Node, path: Sequence[str], factor: float) -> Node:
    """Rebuild the tree with the node at ``path`` replaced by a leaf whose
    value is the original subtree value times ``factor``."""
    chain = _resolve_path(root, path)
    if chain is None:
        raise InvariantViolation(f"path {' > '.join(path)} not found in tree")

    def rebuild(node: Node, depth: int) -> Node:
        if depth == len(chain) - 1:
            return Node(
                name=node.name,
                op=NodeOp.LEAF,
                raw_value=node.value * factor,
            )
        target = chain[depth + 1]
        children = tuple(
            rebuild(child, depth + 1) if child is target else child
            for child in node.children
        )
        return dataclasses.replace(node, children=children)

    return rebuild(root, 0)


def check_mitigation(root: Node, finding: BottleneckFinding) -> List[str]:
    """Check that applying the predicted scaling behaves as promised.

    For a direct factor, dividing its cost by ``s`` must strictly reduce
    the factor; for an inverse factor (a denominator), multiplying it by
    ``s`` must strictly increase it.  Either way the root cost must not
    increase (cost trees are monotone in their factors).
    """
    violations: List[str] = []
    label = " > ".join(finding.path)
    old_factor = finding.node.value
    if not math.isfinite(old_factor) or old_factor <= 0:
        return violations  # nothing to scale; analyzer should not emit these
    factor = finding.scaling if finding.inverse else 1.0 / finding.scaling
    new_factor = old_factor * factor
    if finding.inverse:
        if not new_factor > old_factor:
            violations.append(
                f"mitigation of {label}: scaling {finding.scaling!r} does not "
                f"increase the inverse factor ({old_factor!r} -> {new_factor!r})"
            )
    else:
        if not new_factor < old_factor:
            violations.append(
                f"mitigation of {label}: scaling {finding.scaling!r} does not "
                f"reduce the factor ({old_factor!r} -> {new_factor!r})"
            )
    old_root = root.value
    new_root = scale_at_path(root, finding.path, factor).value
    if new_root > old_root:
        violations.append(
            f"mitigation of {label}: root cost increased "
            f"({old_root!r} -> {new_root!r})"
        )
    return violations


def check_all(root: Node) -> List[str]:
    """Run every invariant: tree recomputation, findings, and mitigations."""
    violations = check_tree(root)
    if violations:
        return violations  # findings over a broken tree are meaningless
    findings = analyze_tree(root)
    violations.extend(check_findings(root, findings))
    for finding in findings:
        violations.extend(check_mitigation(root, finding))
    return violations


def assert_tree_invariants(root: Node) -> None:
    """Raise :class:`InvariantViolation` unless every invariant holds."""
    violations = check_all(root)
    if violations:
        raise InvariantViolation(
            "bottleneck-tree invariants violated:\n  " + "\n  ".join(violations)
        )
