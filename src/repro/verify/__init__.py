"""Oracle-backed verification subsystem.

An independent, deliberately slow reference implementation of the cost
model (:mod:`repro.verify.oracle`) plus the machinery that uses it to
keep the fast production paths honest:

* :mod:`repro.verify.checks` — exact differential comparisons and the
  exhaustive tiny-space sweep;
* :mod:`repro.verify.invariants` — reusable bottleneck-tree algebra
  assertions (recomputation, argmax, mitigation monotonicity);
* :mod:`repro.verify.differential` — the fast-path campaign matrix
  (batch / parallel / warm-cache / resume vs the serial reference);
* :mod:`repro.verify.goldens` — pinned reference traces under
  ``tests/goldens/``;
* :mod:`repro.verify.fuzzer` — the seeded design-point/mapping fuzzer
  with failure shrinking;
* :mod:`repro.verify.runner` — the ``verify`` pipeline behind
  ``python -m repro.experiments.cli verify`` and the CI job.

See ``docs/verification.md`` for the operating manual.
"""

from repro.verify.checks import (
    SweepReport,
    compare_config_models,
    compare_evaluation,
    compare_layer,
    exhaustive_tiny_sweep,
)
from repro.verify.differential import DifferentialReport, run_differential
from repro.verify.fuzzer import (
    FuzzCase,
    FuzzFailure,
    FuzzReport,
    replay,
    run_fuzz,
)
from repro.verify.goldens import GoldenReport, check_goldens, default_golden_dir
from repro.verify.invariants import (
    InvariantViolation,
    assert_tree_invariants,
    check_all,
    check_findings,
    check_mitigation,
    check_tree,
    recompute_value,
    scale_at_path,
)
from repro.verify.oracle import (
    OracleCapacityError,
    OracleEvaluation,
    OracleExecution,
    OracleInfeasible,
    oracle_area,
    oracle_energy,
    oracle_layer,
    oracle_model_costs,
    oracle_power,
)
from repro.verify.runner import VerifyReport, check_campaign_invariants, run_verify

__all__ = [
    "SweepReport",
    "compare_config_models",
    "compare_evaluation",
    "compare_layer",
    "exhaustive_tiny_sweep",
    "DifferentialReport",
    "run_differential",
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "replay",
    "run_fuzz",
    "GoldenReport",
    "check_goldens",
    "default_golden_dir",
    "InvariantViolation",
    "assert_tree_invariants",
    "check_all",
    "check_findings",
    "check_mitigation",
    "check_tree",
    "recompute_value",
    "scale_at_path",
    "OracleCapacityError",
    "OracleEvaluation",
    "OracleExecution",
    "OracleInfeasible",
    "oracle_area",
    "oracle_energy",
    "oracle_layer",
    "oracle_model_costs",
    "oracle_power",
    "VerifyReport",
    "check_campaign_invariants",
    "run_verify",
]
