"""repro: a reproduction of "Explainable-DSE" (Dave et al., ASPLOS 2023).

An agile and explainable design-space-exploration framework for
hardware/software codesigns of deep learning accelerators using bottleneck
analysis, together with every substrate it depends on: a DNN workload zoo,
an analytical accelerator cost model (latency / energy / area / power), a
dMazeRunner-style mapper, a generic bottleneck-model API, and the
non-explainable baseline optimizers the paper compares against.

Quickstart::

    from repro import explore
    result = explore("resnet18", iterations=40)
    print(result.best.config, result.best.costs)
"""

from repro.version import __version__  # noqa: F401

__all__ = ["__version__", "explore"]


def explore(model: str, iterations: int = 50, **kwargs):
    """Run Explainable-DSE on a benchmark model with edge defaults.

    A convenience wrapper around
    :func:`repro.experiments.setup.run_explainable_dse`.  See
    :mod:`repro.core.dse.explainable` for the full-control API.

    Args:
        model: Benchmark model name (see ``repro.workloads.MODEL_NAMES``).
        iterations: Evaluation budget (candidate evaluations).
        **kwargs: Forwarded to the experiment runner (e.g. ``mapping_mode``).

    Returns:
        A :class:`repro.core.dse.result.DSEResult`.
    """
    from repro.experiments.setup import run_explainable_dse

    return run_explainable_dse(model, iterations=iterations, **kwargs)
