"""Non-explainable baseline optimizers the paper compares against."""

from repro.optim.annealing import SimulatedAnnealing
from repro.optim.archive import (
    DEFAULT_OBJECTIVES,
    FrontierEntry,
    ParetoArchive,
)
from repro.optim.base import BaselineOptimizer, penalized_objective
from repro.optim.bayesian import BayesianOptimization
from repro.optim.gaussian_process import GaussianProcess, expected_improvement
from repro.optim.genetic import GeneticAlgorithm
from repro.optim.grid import GridSearch
from repro.optim.hybrid import HybridDSE
from repro.optim.hypermapper import HyperMapperDSE
from repro.optim.local_search import LocalSearch
from repro.optim.protocol import (
    DriverLoop,
    EvalResult,
    ExplainableEngine,
    Proposal,
    SearchEngine,
)
from repro.optim.random_search import RandomSearch
from repro.optim.reinforcement import ReinforcementLearningDSE

__all__ = [
    "BaselineOptimizer",
    "BayesianOptimization",
    "DEFAULT_OBJECTIVES",
    "DriverLoop",
    "EvalResult",
    "ExplainableEngine",
    "FrontierEntry",
    "GaussianProcess",
    "GeneticAlgorithm",
    "GridSearch",
    "HybridDSE",
    "HyperMapperDSE",
    "LocalSearch",
    "ParetoArchive",
    "Proposal",
    "RandomSearch",
    "ReinforcementLearningDSE",
    "SearchEngine",
    "SimulatedAnnealing",
    "expected_improvement",
    "penalized_objective",
]
