"""Random search (non-feedback baseline, e.g. [41, 53] in the paper).

Uniform sampling of the design space.  Surprisingly competitive among the
black-box techniques for this problem (the paper found it one of the two
most effective baselines and used it as the codesign mapper driver, §F).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.arch.design_space import DesignPoint
from repro.optim.base import BaselineOptimizer
from repro.optim.protocol import Proposal

__all__ = ["RandomSearch"]


class RandomSearch(BaselineOptimizer):
    """Uniform random sampling without replacement (per-run dedup)."""

    name = "random"

    def _propose(self, initial_point: Optional[DesignPoint]):
        rng = random.Random(self.seed)
        seen = set()
        if initial_point is not None:
            seen.add(self.space.point_key(initial_point))
            yield Proposal(dict(initial_point), "initial")
        misses = 0
        while self.budget_left > 0 and misses < 1000:
            point = self.space.random_point(rng)
            key = self.space.point_key(point)
            if key in seen:
                misses += 1
                continue
            misses = 0
            seen.add(key)
            yield Proposal(point, "random")
