"""Genetic algorithm (black-box baseline; the paper used scikit-opt [3]).

Generational GA over index vectors: tournament selection, uniform
crossover, per-gene mutation, and elitism, with fitness the negated
penalized log-objective.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.arch.design_space import DesignPoint
from repro.optim.base import BaselineOptimizer
from repro.optim.protocol import Proposal

__all__ = ["GeneticAlgorithm"]


class GeneticAlgorithm(BaselineOptimizer):
    """Generational genetic algorithm.

    Args:
        population_size: Individuals per generation.
        tournament: Tournament size for parent selection.
        crossover_rate: Probability of crossing two parents (else clone).
        mutation_rate: Per-gene probability of a random resample.
        elites: Top individuals copied unchanged into the next generation.
    """

    name = "genetic"

    def __init__(
        self,
        *args,
        population_size: int = 20,
        tournament: int = 3,
        crossover_rate: float = 0.9,
        mutation_rate: float = 0.15,
        elites: int = 2,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if elites >= population_size:
            raise ValueError("elites must be < population_size")
        self.population_size = population_size
        self.tournament = tournament
        self.crossover_rate = crossover_rate
        self.mutation_rate = mutation_rate
        self.elites = elites

    # -- GA operators over index vectors -----------------------------------------

    def _random_genome(self, rng: random.Random) -> Tuple[int, ...]:
        return tuple(
            rng.randrange(p.cardinality) for p in self.space.parameters
        )

    def _crossover(
        self, a: Tuple[int, ...], b: Tuple[int, ...], rng: random.Random
    ) -> Tuple[int, ...]:
        return tuple(ai if rng.random() < 0.5 else bi for ai, bi in zip(a, b))

    def _mutate(
        self, genome: Tuple[int, ...], rng: random.Random
    ) -> Tuple[int, ...]:
        out = list(genome)
        for i, param in enumerate(self.space.parameters):
            if rng.random() < self.mutation_rate:
                out[i] = rng.randrange(param.cardinality)
        return tuple(out)

    # -- main loop -----------------------------------------------------------------

    def _propose(self, initial_point: Optional[DesignPoint]):
        # Each generation's fitness sweep is one batch proposal: no RNG
        # draw or budget check separates the evaluations, so batch order
        # equals the old one-at-a-time order.
        rng = random.Random(self.seed)
        population: List[Tuple[int, ...]] = [
            self._random_genome(rng) for _ in range(self.population_size)
        ]
        if initial_point is not None:
            population[0] = self.space.to_indices(initial_point)
        evaluations = yield [
            Proposal(self.space.from_indices(g), "ga") for g in population
        ]
        fitness = [-self._score(e) for e in evaluations]

        def _tournament_pick() -> Tuple[int, ...]:
            contenders = rng.sample(
                range(len(population)), k=min(self.tournament, len(population))
            )
            return population[max(contenders, key=lambda i: fitness[i])]

        while self.budget_left > 0:
            ranked = sorted(
                range(len(population)), key=lambda i: -fitness[i]
            )
            next_population = [population[i] for i in ranked[: self.elites]]
            while len(next_population) < self.population_size:
                parent_a = _tournament_pick()
                if rng.random() < self.crossover_rate:
                    parent_b = _tournament_pick()
                    child = self._crossover(parent_a, parent_b, rng)
                else:
                    child = parent_a
                next_population.append(self._mutate(child, rng))
            population = next_population
            evaluations = yield [
                Proposal(self.space.from_indices(g), "ga") for g in population
            ]
            fitness = [-self._score(e) for e in evaluations]
