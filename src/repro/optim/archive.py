"""Multi-objective Pareto archive with a crash-safe JSONL journal.

The incumbent-update rule of every engine tracks one best point under one
scalar objective; codesign decisions want the whole latency/energy/area/
power frontier (the Being-ahead-style (resource, -performance) framing in
PAPERS.md).  :class:`ParetoArchive` accumulates that frontier from any
trial stream:

* **Non-domination** over a fixed objective tuple (all costs minimized),
  with deterministic tie-breaking: an entry whose objective vector equals
  an existing one is rejected (the earliest insert wins), and duplicate
  design points are idempotent no-ops — so crash replay through the same
  trial stream reconstructs the archive exactly.
* **Crowding-pruned capacity**: past ``capacity`` entries the archive
  evicts the minimum-crowding entry (NSGA-II crowding distance; boundary
  points are infinitely crowded and never pruned before interior ones),
  breaking ties by evicting the newest entry.
* **JSONL journal**: every accepted insert and every eviction appends one
  record (buffered until :meth:`flush`), using the telemetry tagged-float
  codec, so :meth:`replay` rebuilds the archive bit-identically — the
  service's ``GET /v1/campaigns/{id}/frontier`` serves settled campaigns
  from this journal without rebuilding the machine.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.telemetry.events import _decode_value, _encode_value

__all__ = [
    "DEFAULT_OBJECTIVES",
    "FrontierEntry",
    "ParetoArchive",
]

#: The codesign frontier axes, all minimized.
DEFAULT_OBJECTIVES: Tuple[str, ...] = (
    "latency_ms",
    "energy_mj",
    "area_mm2",
    "power_w",
)


@dataclass(frozen=True)
class FrontierEntry:
    """One non-dominated design on the archive's frontier."""

    seq: int
    point: Dict[str, Any]
    costs: Dict[str, float]
    vector: Tuple[float, ...]
    note: str = ""


def _dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is no worse than ``b`` everywhere and better
    somewhere (minimization)."""
    better = False
    for ai, bi in zip(a, b):
        if ai > bi:
            return False
        if ai < bi:
            better = True
    return better


class ParetoArchive:
    """A capacity-bounded, journaled Pareto frontier.

    Args:
        capacity: Maximum frontier size (``None`` = unbounded); past it
            the minimum-crowding entry is evicted.
        objectives: Cost keys spanning the frontier (all minimized).
        journal_path: When set, accepted inserts and evictions are
            journaled there as JSONL on :meth:`flush`.  An existing
            journal is replayed into the archive unless ``truncate``.
        truncate: Discard any existing journal instead of replaying it
            (the resume path: the machine re-feeds the restored trial
            ledger, rewriting the journal deterministically).
    """

    def __init__(
        self,
        capacity: Optional[int] = 64,
        objectives: Sequence[str] = DEFAULT_OBJECTIVES,
        journal_path: Optional[os.PathLike] = None,
        truncate: bool = False,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.objectives = tuple(objectives)
        if not self.objectives:
            raise ValueError("objectives must be non-empty")
        self.journal_path = Path(journal_path) if journal_path else None
        self._entries: List[FrontierEntry] = []
        self._next_seq = 0
        self._pending: List[Dict[str, Any]] = []
        if self.journal_path is not None:
            if truncate:
                # Truncate to an empty file (not unlink): an empty
                # journal is a valid, replayable "no frontier yet".
                self.journal_path.parent.mkdir(parents=True, exist_ok=True)
                self.journal_path.write_text("")
            elif self.journal_path.exists():
                self._replay_file(self.journal_path)

    # -- construction --------------------------------------------------------

    @classmethod
    def replay(
        cls,
        journal_path: os.PathLike,
        capacity: Optional[int] = 64,
        objectives: Sequence[str] = DEFAULT_OBJECTIVES,
    ) -> "ParetoArchive":
        """Rebuild an archive from its journal (read-only: the rebuilt
        archive does not write back to ``journal_path``)."""
        archive = cls(capacity=capacity, objectives=objectives)
        archive._replay_file(Path(journal_path))
        return archive

    def _replay_file(self, path: Path) -> None:
        """Apply journaled ops; a torn trailing line (the write the
        crash interrupted) is tolerated and ignored."""
        try:
            lines = path.read_text().splitlines()
        except OSError:
            return
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    break  # torn trailing write
                raise
            self._apply(record)

    def _apply(self, record: Dict[str, Any]) -> None:
        op = record.get("op")
        if op == "insert":
            point = _decode_value(record["point"])
            costs = _decode_value(record["costs"])
            entry = FrontierEntry(
                seq=int(record["seq"]),
                point=point,
                costs=costs,
                vector=self._vector(costs),
                note=record.get("note", ""),
            )
            self._entries.append(entry)
            self._next_seq = max(self._next_seq, entry.seq + 1)
        elif op == "evict":
            seq = int(record["seq"])
            self._entries = [e for e in self._entries if e.seq != seq]
        else:
            raise ValueError(f"unknown archive journal op {op!r}")

    # -- insertion -----------------------------------------------------------

    def _vector(self, costs: Dict[str, float]) -> Tuple[float, ...]:
        return tuple(
            float(costs.get(key, math.inf)) for key in self.objectives
        )

    @staticmethod
    def _point_key(point: Dict[str, Any]) -> str:
        return json.dumps(_encode_value(point), sort_keys=True)

    def insert_trial(self, trial) -> bool:
        """Insert a :class:`~repro.core.dse.result.TrialRecord`; only
        feasible, mappable trials enter the frontier."""
        if not (trial.feasible and trial.mappable):
            return False
        return self.insert(trial.point, trial.costs, note=trial.note)

    def insert(
        self, point: Dict[str, Any], costs: Dict[str, float], note: str = ""
    ) -> bool:
        """Offer one design to the frontier; returns True when accepted.

        Rejections (in order): a non-finite objective vector, a point
        already on the frontier (idempotence), a vector dominated by —
        or equal to — an existing entry's.  Acceptance evicts every
        entry the new vector dominates, then prunes to capacity.
        """
        vector = self._vector(costs)
        if not all(math.isfinite(v) for v in vector):
            return False
        key = self._point_key(point)
        for entry in self._entries:
            if self._point_key(entry.point) == key:
                return False
            if entry.vector == vector or _dominates(entry.vector, vector):
                return False
        for entry in [
            e for e in self._entries if _dominates(vector, e.vector)
        ]:
            self._evict(entry, "dominated")
        entry = FrontierEntry(
            seq=self._next_seq,
            point=dict(point),
            costs=dict(costs),
            vector=vector,
            note=note,
        )
        self._next_seq += 1
        self._entries.append(entry)
        self._journal(
            {
                "op": "insert",
                "seq": entry.seq,
                "point": _encode_value(entry.point),
                "costs": _encode_value(entry.costs),
                "note": entry.note,
            }
        )
        if self.capacity is not None:
            while len(self._entries) > self.capacity:
                self._evict(self._prune_victim(), "crowding")
        return True

    def _evict(self, entry: FrontierEntry, reason: str) -> None:
        self._entries.remove(entry)
        self._journal({"op": "evict", "seq": entry.seq, "reason": reason})

    def _prune_victim(self) -> FrontierEntry:
        """The minimum-crowding entry (NSGA-II crowding distance over
        the frontier); ties evict the newest entry."""
        crowding = self._crowding()
        return min(self._entries, key=lambda e: (crowding[e.seq], -e.seq))

    def _crowding(self) -> Dict[int, float]:
        distances = {entry.seq: 0.0 for entry in self._entries}
        for axis in range(len(self.objectives)):
            ordered = sorted(
                self._entries, key=lambda e: (e.vector[axis], e.seq)
            )
            low = ordered[0].vector[axis]
            high = ordered[-1].vector[axis]
            distances[ordered[0].seq] = math.inf
            distances[ordered[-1].seq] = math.inf
            if high <= low:
                continue
            for i in range(1, len(ordered) - 1):
                span = (
                    ordered[i + 1].vector[axis] - ordered[i - 1].vector[axis]
                )
                distances[ordered[i].seq] += span / (high - low)
        return distances

    # -- journaling ----------------------------------------------------------

    def _journal(self, record: Dict[str, Any]) -> None:
        if self.journal_path is not None:
            self._pending.append(record)

    def flush(self) -> None:
        """Append buffered journal records (one fsync-free write per
        flush; callers flush at attempt boundaries)."""
        if self.journal_path is None or not self._pending:
            return
        self.journal_path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.journal_path, "a") as handle:
            for record in self._pending:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._pending = []

    # -- views ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def frontier(self) -> List[FrontierEntry]:
        """Frontier entries in insertion (seq) order."""
        return sorted(self._entries, key=lambda e: e.seq)

    def snapshot(self) -> List[Dict[str, Any]]:
        """Canonical JSON-ready view of the frontier, in seq order —
        the payload of ``GET /v1/campaigns/{id}/frontier`` and the
        comparison form of the equivalence tests."""
        return [
            {
                "seq": entry.seq,
                "point": dict(entry.point),
                "costs": dict(entry.costs),
                "objectives": {
                    key: entry.vector[i]
                    for i, key in enumerate(self.objectives)
                },
                "note": entry.note,
            }
            for entry in self.frontier()
        ]
