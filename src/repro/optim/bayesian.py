"""Bayesian optimization (black-box baseline; the paper used [52]).

GP surrogate over normalized index vectors, expected-improvement
acquisition maximized over a random candidate pool plus neighbours of the
incumbent.  Constraints enter only through the penalized objective — this
is the *unconstrained* BO variant of the paper's comparison; the
constraint-aware variant is :class:`repro.optim.hypermapper.HyperMapperDSE`.
"""

from __future__ import annotations

import random
from typing import List, Optional

import numpy as np

from repro.arch.design_space import DesignPoint
from repro.optim.base import BaselineOptimizer
from repro.optim.gaussian_process import GaussianProcess, expected_improvement
from repro.optim.protocol import Proposal

__all__ = ["BayesianOptimization"]


class BayesianOptimization(BaselineOptimizer):
    """GP + EI Bayesian optimization.

    Args:
        initial_samples: Random evaluations before the surrogate kicks in.
        candidate_pool: Random candidates scored by EI per acquisition.
        max_train_points: Most recent observations kept for GP fitting
            (cubic-cost cap).
    """

    name = "bayesian"

    def __init__(
        self,
        *args,
        initial_samples: int = 10,
        candidate_pool: int = 256,
        max_train_points: int = 200,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.initial_samples = initial_samples
        self.candidate_pool = candidate_pool
        self.max_train_points = max_train_points

    # -- feature space -----------------------------------------------------------

    def _features(self, point: DesignPoint) -> List[float]:
        """Normalized index vector in [0, 1]^d."""
        out = []
        for param in self.space.parameters:
            idx = param.index_of(point[param.name])
            out.append(idx / max(param.cardinality - 1, 1))
        return out

    def _candidates(
        self, rng: random.Random, incumbent: Optional[DesignPoint]
    ) -> List[DesignPoint]:
        pool = [
            self.space.random_point(rng) for _ in range(self.candidate_pool)
        ]
        if incumbent is not None:
            pool.extend(self.space.neighbors(incumbent))
        return pool

    # -- main loop -----------------------------------------------------------------

    def _propose(self, initial_point: Optional[DesignPoint]):
        rng = random.Random(self.seed)
        observed_x: List[List[float]] = []
        observed_y: List[float] = []
        points: List[DesignPoint] = []

        def observe(point: DesignPoint, evaluation) -> None:
            # Runs after the yield resumes, so a budget unwind skips the
            # appends exactly like the old exception did.
            observed_x.append(self._features(point))
            observed_y.append(self._score(evaluation))
            points.append(dict(point))

        if initial_point is not None:
            observe(initial_point, (yield Proposal(initial_point, "initial")))
        for _ in range(self.initial_samples):
            if self.budget_left <= 0:
                return
            point = self.space.random_point(rng)
            observe(point, (yield Proposal(point, "bo-init")))

        while self.budget_left > 0:
            keep = min(len(observed_x), self.max_train_points)
            gp = GaussianProcess().fit(
                np.array(observed_x[-keep:]), np.array(observed_y[-keep:])
            )
            best_idx = int(np.argmin(observed_y))
            best_score = observed_y[best_idx]
            incumbent = points[best_idx]
            candidates = self._candidates(rng, incumbent)
            features = np.array([self._features(c) for c in candidates])
            mean, var = gp.predict(features)
            ei = expected_improvement(mean, var, best_score)
            chosen = candidates[int(np.argmax(ei))]
            observe(chosen, (yield Proposal(chosen, "bo-ei")))
