"""Shared machinery for the non-explainable baseline optimizers.

Every baseline (grid, random, simulated annealing, genetic, Bayesian,
HyperMapper-like constrained BO, ConfuciuX-like RL) is a black-box
optimizer over the hardware design space: it sees only the scalar costs of
evaluated points — never *why* a point is slow — which is precisely the
limitation the paper attributes their excessive sampling to (§2).
"""

from __future__ import annotations

import abc
import math
import time
from typing import Dict, List, Optional, Sequence

from repro.arch.design_space import DesignPoint, DesignSpace
from repro.core.dse.constraints import Constraint, all_satisfied
from repro.core.dse.result import DSEResult, TrialRecord, select_best
from repro.cost.evaluator import CostEvaluator, Evaluation
from repro.telemetry.events import (
    CandidateEvaluated,
    IncumbentUpdated,
    RunSummary,
    deterministic_perf_counters,
)
from repro.telemetry.tracer import NULL_TRACER, Tracer

__all__ = ["BaselineOptimizer", "penalized_objective"]

#: Penalty weight per unit of constraint over-utilization, applied to the
#: log-domain objective of unconstrained optimizers.
PENALTY_WEIGHT = 10.0


def penalized_objective(
    costs: Dict[str, float],
    constraints: Sequence[Constraint],
    objective: str = "latency_ms",
) -> float:
    """Log-domain objective with additive constraint-violation penalties.

    Unconstrained black-box methods (SA, GA, plain BO) need a single
    scalar; infeasible points are penalized proportionally to how far each
    constraint is over budget.  Unmappable points (infinite latency) map to
    a large finite value so comparisons stay well-defined.
    """
    value = costs.get(objective, math.inf)
    if not math.isfinite(value) or value <= 0:
        base = 1e9
    else:
        base = value
    score = math.log(base)
    for constraint in constraints:
        utilization = constraint.utilization(costs)
        if not math.isfinite(utilization):
            score += PENALTY_WEIGHT * 10
        elif utilization > 1.0:
            score += PENALTY_WEIGHT * (utilization - 1.0)
    return score


class BaselineOptimizer(abc.ABC):
    """Base class: budget accounting, trial recording, result assembly.

    Subclasses implement :meth:`_optimize`, calling :meth:`_evaluate` for
    every acquisition; the budget is enforced there (an exhausted budget
    raises :class:`_BudgetExhausted`, which ``run`` absorbs).
    """

    #: Short label used in experiment tables.
    name = "baseline"

    class _BudgetExhausted(Exception):
        pass

    def __init__(
        self,
        design_space: DesignSpace,
        evaluator: CostEvaluator,
        constraints: Sequence[Constraint],
        objective: str = "latency_ms",
        max_evaluations: int = 100,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
    ):
        if max_evaluations < 1:
            raise ValueError("max_evaluations must be >= 1")
        self.space = design_space
        self.evaluator = evaluator
        self.constraints = list(constraints)
        self.objective = objective
        self.max_evaluations = max_evaluations
        self.seed = seed
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._trials: List[TrialRecord] = []
        self._base_evaluations = 0
        self._best_feasible = math.inf

    # -- template method --------------------------------------------------------

    def run(self, initial_point: Optional[DesignPoint] = None) -> DSEResult:
        """Run the optimizer until the evaluation budget is exhausted."""
        started = time.perf_counter()
        self._trials = []
        self._base_evaluations = self.evaluator.evaluations
        self._best_feasible = math.inf
        try:
            self._optimize(initial_point)
        except BaselineOptimizer._BudgetExhausted:
            pass
        best = select_best(
            self._trials, self.constraints, objective=self.objective
        )
        self.tracer.emit(
            RunSummary(
                step=len(self._trials),
                technique=self.name,
                model=self.evaluator.workload.name,
                evaluations=self.evaluator.evaluations
                - self._base_evaluations,
                best_objective=best.costs.get(self.objective, math.inf)
                if best
                else math.inf,
                found_feasible=best is not None,
                counters=self._perf_counters(),
            )
        )
        self.tracer.flush()
        return DSEResult(
            technique=self.name,
            model=self.evaluator.workload.name,
            trials=self._trials,
            best=best,
            evaluations=self.evaluator.evaluations - self._base_evaluations,
            wall_seconds=time.perf_counter() - started,
        )

    @abc.abstractmethod
    def _optimize(self, initial_point: Optional[DesignPoint]) -> None:
        """Acquisition loop; call :meth:`_evaluate` per candidate."""

    # -- helpers -------------------------------------------------------------------

    @property
    def budget_left(self) -> int:
        return self.max_evaluations - (
            self.evaluator.evaluations - self._base_evaluations
        )

    def _evaluate(self, point: DesignPoint, note: str = "") -> Evaluation:
        """Evaluate one point, recording a trial; raises when out of budget.

        Re-evaluations of cached points do not consume budget (matching how
        iteration counts are reported for the paper's baselines).
        """
        if self.budget_left <= 0:
            raise BaselineOptimizer._BudgetExhausted()
        evaluation = self.evaluator.evaluate(point)
        utilizations = {
            c.name: c.utilization(evaluation.costs) for c in self.constraints
        }
        feasible = all_satisfied(evaluation.costs, self.constraints)
        # Baselines acquire one candidate per step, so traces stay
        # comparable with Explainable-DSE journals: step = trial index.
        step = len(self._trials) + 1
        self._trials.append(
            TrialRecord(
                index=len(self._trials),
                point=dict(point),
                costs=dict(evaluation.costs),
                feasible=feasible,
                mappable=evaluation.mappable,
                utilizations=utilizations,
                note=note,
            )
        )
        self.tracer.emit(
            CandidateEvaluated(
                step=step,
                candidate_index=0,
                point=dict(point),
                costs=dict(evaluation.costs),
                feasible=feasible,
                mappable=evaluation.mappable,
                note=note,
            )
        )
        objective = evaluation.costs.get(self.objective, math.inf)
        if feasible and objective < self._best_feasible:
            self._best_feasible = objective
            self.tracer.emit(
                IncumbentUpdated(
                    step=step,
                    point=dict(point),
                    objective=objective,
                    decision=f"best-so-far {self.objective}={objective:.4g}",
                    improved=True,
                )
            )
        return evaluation

    def _perf_counters(self) -> Dict[str, object]:
        """Deterministic evaluator counters (empty for duck-typed
        evaluators without ``perf_summary``, e.g. test stubs)."""
        perf_summary = getattr(self.evaluator, "perf_summary", None)
        if perf_summary is None:
            return {}
        return deterministic_perf_counters(perf_summary())

    def _score(self, evaluation: Evaluation) -> float:
        """Penalized log-objective of an evaluation (lower is better)."""
        return penalized_objective(
            evaluation.costs, self.constraints, self.objective
        )
