"""Shared machinery for the non-explainable baseline optimizers.

Every baseline (grid, random, simulated annealing, genetic, Bayesian,
HyperMapper-like constrained BO, ConfuciuX-like RL) is a black-box
optimizer over the hardware design space: it sees only the scalar costs of
evaluated points — never *why* a point is slow — which is precisely the
limitation the paper attributes their excessive sampling to (§2).

Each baseline expresses its acquisition strategy as a *proposal
generator* (:meth:`BaselineOptimizer._propose`): a generator that yields
:class:`~repro.optim.protocol.Proposal` objects (or lists of them, for
result-independent batches like a GA generation) and receives the
corresponding :class:`~repro.cost.evaluator.Evaluation` (or list) back at
the yield.  The same generator is driven two ways:

* ``run()`` — the legacy inline loop: evaluate each proposal immediately
  (:meth:`_optimize` is the generic driver).
* ``ask()``/``tell()`` — the inverted :class:`~repro.optim.protocol
  .SearchEngine` protocol: an external driver evaluates.

Because both paths execute the identical generator code, budget checks,
and RNG draws, they are bit-identical by construction — and proven so by
``tests/test_ask_tell_equivalence.py``.
"""

from __future__ import annotations

import abc
import math
import time
from typing import Dict, Generator, List, Optional, Sequence, Union

from repro.arch.design_space import DesignPoint, DesignSpace
from repro.core.dse.constraints import Constraint, all_satisfied
from repro.core.dse.result import DSEResult, TrialRecord, select_best
from repro.cost.evaluator import CostEvaluator, Evaluation
from repro.optim.protocol import EvalResult, Proposal, SearchEngine
from repro.telemetry.events import (
    CandidateEvaluated,
    IncumbentUpdated,
    RunSummary,
    deterministic_perf_counters,
)
from repro.telemetry.tracer import NULL_TRACER, Tracer

__all__ = ["BaselineOptimizer", "penalized_objective"]

#: Penalty weight per unit of constraint over-utilization, applied to the
#: log-domain objective of unconstrained optimizers.
PENALTY_WEIGHT = 10.0

#: What ``_propose`` yields: one proposal (evaluated serially, the reply
#: is its Evaluation) or a batch (the reply is the list of Evaluations).
ProposalRequest = Union[Proposal, List[Proposal]]


def penalized_objective(
    costs: Dict[str, float],
    constraints: Sequence[Constraint],
    objective: str = "latency_ms",
) -> float:
    """Log-domain objective with additive constraint-violation penalties.

    Unconstrained black-box methods (SA, GA, plain BO) need a single
    scalar; infeasible points are penalized proportionally to how far each
    constraint is over budget.  Unmappable points (infinite latency) map to
    a large finite value so comparisons stay well-defined.
    """
    value = costs.get(objective, math.inf)
    if not math.isfinite(value) or value <= 0:
        base = 1e9
    else:
        base = value
    score = math.log(base)
    for constraint in constraints:
        utilization = constraint.utilization(costs)
        if not math.isfinite(utilization):
            score += PENALTY_WEIGHT * 10
        elif utilization > 1.0:
            score += PENALTY_WEIGHT * (utilization - 1.0)
    return score


class BaselineOptimizer(SearchEngine):
    """Base class: budget accounting, trial recording, result assembly.

    Subclasses implement :meth:`_propose`, a generator yielding
    :class:`Proposal` requests; the budget is enforced at evaluation
    boundaries (an exhausted budget raises :class:`_BudgetExhausted` in
    the inline path, or ends the ask/tell stream in the protocol path).
    """

    #: Short label used in experiment tables.
    name = "baseline"

    class _BudgetExhausted(Exception):
        pass

    def __init__(
        self,
        design_space: DesignSpace,
        evaluator: CostEvaluator,
        constraints: Sequence[Constraint],
        objective: str = "latency_ms",
        max_evaluations: int = 100,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
    ):
        if max_evaluations < 1:
            raise ValueError("max_evaluations must be >= 1")
        self.space = design_space
        self.evaluator = evaluator
        self.constraints = list(constraints)
        self.objective = objective
        self.max_evaluations = max_evaluations
        self.seed = seed
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._trials: List[TrialRecord] = []
        self._base_evaluations = 0
        self._best_feasible = math.inf
        # Ask/tell protocol state (populated by start()).
        self._gen: Optional[Generator] = None
        self._gen_primed = False
        self._pending: List[Proposal] = []
        self._outstanding: List[Proposal] = []
        self._replies: List[Evaluation] = []
        self._batch_request = False
        self._done = False
        self._final: Optional[DSEResult] = None
        self._started_at = 0.0

    # -- template method --------------------------------------------------------

    def run(self, initial_point: Optional[DesignPoint] = None) -> DSEResult:
        """Run the optimizer until the evaluation budget is exhausted."""
        started = time.perf_counter()
        self._reset()
        try:
            self._optimize(initial_point)
        except BaselineOptimizer._BudgetExhausted:
            pass
        return self._finalize(started)

    def _reset(self) -> None:
        self._trials = []
        self._base_evaluations = self.evaluator.evaluations
        self._best_feasible = math.inf

    def _finalize(self, started: float) -> DSEResult:
        """Shared run epilogue: best selection, summary event, result."""
        best = select_best(
            self._trials, self.constraints, objective=self.objective
        )
        self.tracer.emit(
            RunSummary(
                step=len(self._trials),
                technique=self.name,
                model=self.evaluator.workload.name,
                evaluations=self.evaluator.evaluations
                - self._base_evaluations,
                best_objective=best.costs.get(self.objective, math.inf)
                if best
                else math.inf,
                found_feasible=best is not None,
                counters=self._perf_counters(),
            )
        )
        self.tracer.flush()
        return DSEResult(
            technique=self.name,
            model=self.evaluator.workload.name,
            trials=self._trials,
            best=best,
            evaluations=self.evaluator.evaluations - self._base_evaluations,
            wall_seconds=time.perf_counter() - started,
        )

    def _optimize(self, initial_point: Optional[DesignPoint]) -> None:
        """The inline driver: evaluate each proposal as it is yielded.

        A mid-batch budget exhaustion raises out of the evaluation —
        abandoning the generator mid-yield, exactly as the imperative
        loops used to unwind.
        """
        gen = self._propose(initial_point)
        try:
            request = next(gen)
        except StopIteration:
            return
        while True:
            reply: Union[Evaluation, List[Evaluation]]
            if isinstance(request, Proposal):
                reply = self._evaluate(request.point, note=request.note)
            else:
                reply = [
                    self._evaluate(p.point, note=p.note) for p in request
                ]
            try:
                request = gen.send(reply)
            except StopIteration:
                return

    @abc.abstractmethod
    def _propose(
        self, initial_point: Optional[DesignPoint]
    ) -> Generator[ProposalRequest, object, None]:
        """Acquisition generator; yield :class:`Proposal` requests and
        receive their :class:`Evaluation` replies at the yield."""

    # -- ask/tell protocol -------------------------------------------------------

    def start(self, initial_point: Optional[DesignPoint] = None) -> None:
        self._started_at = time.perf_counter()
        self._reset()
        self._gen = self._propose(initial_point)
        self._gen_primed = False
        self._pending = []
        self._outstanding = []
        self._replies = []
        self._batch_request = False
        self._done = False
        self._final = None

    @property
    def finished(self) -> bool:
        return self._done

    def result(self) -> DSEResult:
        if not self._done or self._final is None:
            raise RuntimeError("result() is only valid once finished")
        return self._final

    @property
    def step_hint(self) -> int:
        return len(self._trials) + 1

    def ask(self, n: int) -> List[DesignPoint]:
        if n <= 0:
            raise ValueError(f"ask(n) requires n >= 1, got {n}")
        if self._gen is None:
            raise RuntimeError("start() must be called before ask()")
        if self._done:
            return []
        if self._outstanding:
            # Partial tell pending: serve more of the current request
            # only (never advance the generator past unanswered asks).
            return self._serve(n)
        if self.budget_left <= 0:
            # The legacy raise-before-evaluate: whatever the generator
            # still holds is abandoned unevaluated.
            self._conclude()
            return []
        while not self._pending and not self._done:
            self._advance()
        if self._done:
            return []
        return self._serve(n)

    def _serve(self, n: int) -> List[DesignPoint]:
        count = min(n, max(0, self.budget_left), len(self._pending))
        served = self._pending[:count]
        del self._pending[:count]
        self._outstanding.extend(served)
        return [dict(p.point) for p in served]

    def _advance(self) -> None:
        """Resume the proposal generator with the completed replies."""
        assert self._gen is not None
        try:
            if not self._gen_primed:
                self._gen_primed = True
                request = next(self._gen)
            else:
                reply: object
                if self._batch_request:
                    reply = self._replies
                else:
                    reply = self._replies[0] if self._replies else None
                request = self._gen.send(reply)
        except (StopIteration, BaselineOptimizer._BudgetExhausted):
            self._conclude()
            return
        self._replies = []
        if isinstance(request, Proposal):
            self._batch_request = False
            self._pending = [request]
        else:
            self._batch_request = True
            self._pending = list(request)

    def tell(self, results: Sequence[EvalResult]) -> None:
        if self._gen is None:
            raise RuntimeError("start() must be called before tell()")
        results = list(results)
        if not results:
            return
        if len(results) > len(self._outstanding):
            raise ValueError(
                f"tell() got {len(results)} results but only "
                f"{len(self._outstanding)} points are outstanding"
            )
        for res in results:
            proposal = self._outstanding[0]
            if self.space.point_key(res.point) != self.space.point_key(
                proposal.point
            ):
                raise ValueError(
                    "stale tell: result for a point that was never asked "
                    "(or out of ask order)"
                )
            self._outstanding.pop(0)
            if res.error is not None:
                # Baselines have no quarantine path: failures propagate,
                # as they did from the legacy inline loop.
                raise res.error
            self._record(proposal.point, res.evaluation, proposal.note)
            self._replies.append(res.evaluation)

    def _conclude(self) -> None:
        if self._done:
            return
        self._done = True
        self._pending = []
        self._outstanding = []
        if self._gen is not None:
            self._gen.close()
        self._final = self._finalize(self._started_at)

    # -- helpers -------------------------------------------------------------------

    @property
    def budget_left(self) -> int:
        return self.max_evaluations - (
            self.evaluator.evaluations - self._base_evaluations
        )

    def _evaluate(self, point: DesignPoint, note: str = "") -> Evaluation:
        """Evaluate one point, recording a trial; raises when out of budget.

        Re-evaluations of cached points do not consume budget (matching how
        iteration counts are reported for the paper's baselines).
        """
        if self.budget_left <= 0:
            raise BaselineOptimizer._BudgetExhausted()
        evaluation = self.evaluator.evaluate(point)
        self._record(point, evaluation, note)
        return evaluation

    def _record(
        self, point: DesignPoint, evaluation: Evaluation, note: str
    ) -> None:
        """Record one evaluation: trial ledger, events, incumbent.

        Shared verbatim by the inline path (:meth:`_evaluate`) and the
        ask/tell path (:meth:`tell`), which is what makes the two
        drivers journal-identical.
        """
        utilizations = {
            c.name: c.utilization(evaluation.costs) for c in self.constraints
        }
        feasible = all_satisfied(evaluation.costs, self.constraints)
        # Baselines acquire one candidate per step, so traces stay
        # comparable with Explainable-DSE journals: step = trial index.
        step = len(self._trials) + 1
        self._trials.append(
            TrialRecord(
                index=len(self._trials),
                point=dict(point),
                costs=dict(evaluation.costs),
                feasible=feasible,
                mappable=evaluation.mappable,
                utilizations=utilizations,
                note=note,
            )
        )
        self.tracer.emit(
            CandidateEvaluated(
                step=step,
                candidate_index=0,
                point=dict(point),
                costs=dict(evaluation.costs),
                feasible=feasible,
                mappable=evaluation.mappable,
                note=note,
            )
        )
        objective = evaluation.costs.get(self.objective, math.inf)
        if feasible and objective < self._best_feasible:
            self._best_feasible = objective
            self.tracer.emit(
                IncumbentUpdated(
                    step=step,
                    point=dict(point),
                    objective=objective,
                    decision=f"best-so-far {self.objective}={objective:.4g}",
                    improved=True,
                )
            )

    def _perf_counters(self) -> Dict[str, object]:
        """Deterministic evaluator counters (empty for duck-typed
        evaluators without ``perf_summary``, e.g. test stubs)."""
        perf_summary = getattr(self.evaluator, "perf_summary", None)
        if perf_summary is None:
            return {}
        return deterministic_perf_counters(perf_summary())

    def _score(self, evaluation: Evaluation) -> float:
        """Penalized log-objective of an evaluation (lower is better)."""
        return penalized_objective(
            evaluation.costs, self.constraints, self.objective
        )
