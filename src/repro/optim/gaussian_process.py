"""Minimal Gaussian-process regression (RBF kernel) built on numpy.

Supports the Bayesian-optimization baselines: exact GP regression with an
isotropic RBF kernel over normalized index vectors, jittered Cholesky
solves, and predictive mean/variance.  Deliberately small — no gradients,
no hyperparameter optimization beyond a median-distance lengthscale
heuristic — because the baselines only need a competent surrogate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["GaussianProcess", "expected_improvement", "normal_cdf"]


def _rbf_kernel(a: np.ndarray, b: np.ndarray, lengthscale: float) -> np.ndarray:
    """Isotropic squared-exponential kernel matrix."""
    sq = (
        np.sum(a**2, axis=1)[:, None]
        + np.sum(b**2, axis=1)[None, :]
        - 2.0 * a @ b.T
    )
    return np.exp(-0.5 * np.maximum(sq, 0.0) / (lengthscale**2))


def normal_cdf(x: np.ndarray) -> np.ndarray:
    """Standard normal CDF via erf (avoids a scipy dependency here)."""
    from math import sqrt

    return 0.5 * (1.0 + _erf(x / sqrt(2.0)))


def _erf(x: np.ndarray) -> np.ndarray:
    """Vectorized Abramowitz-Stegun 7.1.26 erf approximation (~1e-7)."""
    x = np.asarray(x, dtype=float)
    sign = np.sign(x)
    ax = np.abs(x)
    t = 1.0 / (1.0 + 0.3275911 * ax)
    poly = t * (
        0.254829592
        + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429)))
    )
    return sign * (1.0 - poly * np.exp(-ax * ax))


@dataclass
class GaussianProcess:
    """Exact GP regression with an RBF kernel.

    Attributes:
        noise: Observation noise variance added to the kernel diagonal.
        lengthscale: RBF lengthscale; None selects the median pairwise
            distance of the training inputs (a standard heuristic).
    """

    noise: float = 1e-4
    lengthscale: Optional[float] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Fit on inputs ``x`` (n x d) and targets ``y`` (n,)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y row counts differ")
        self._x = x
        self._y_mean = float(np.mean(y))
        self._y_std = float(np.std(y)) or 1.0
        y_norm = (y - self._y_mean) / self._y_std
        if self.lengthscale is None:
            self._ls = self._median_distance(x)
        else:
            self._ls = self.lengthscale
        k = _rbf_kernel(x, x, self._ls)
        k[np.diag_indices_from(k)] += self.noise
        jitter = 1e-10
        while True:
            try:
                self._chol = np.linalg.cholesky(
                    k + jitter * np.eye(len(k))
                )
                break
            except np.linalg.LinAlgError:
                jitter *= 10
                if jitter > 1e-2:
                    raise
        self._alpha = np.linalg.solve(
            self._chol.T, np.linalg.solve(self._chol, y_norm)
        )
        return self

    @staticmethod
    def _median_distance(x: np.ndarray) -> float:
        if len(x) < 2:
            return 1.0
        sq = (
            np.sum(x**2, axis=1)[:, None]
            + np.sum(x**2, axis=1)[None, :]
            - 2.0 * x @ x.T
        )
        distances = np.sqrt(np.maximum(sq, 0.0))
        upper = distances[np.triu_indices_from(distances, k=1)]
        median = float(np.median(upper))
        return median if median > 0 else 1.0

    def predict(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Predictive mean and variance at query points ``x`` (m x d)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        k_star = _rbf_kernel(x, self._x, self._ls)
        mean = k_star @ self._alpha
        v = np.linalg.solve(self._chol, k_star.T)
        var = 1.0 - np.sum(v**2, axis=0)
        var = np.maximum(var, 1e-12)
        return (
            mean * self._y_std + self._y_mean,
            var * self._y_std**2,
        )


def expected_improvement(
    mean: np.ndarray, var: np.ndarray, best: float, xi: float = 0.01
) -> np.ndarray:
    """EI for *minimization*: expected amount below ``best - xi``."""
    std = np.sqrt(var)
    improvement = best - xi - mean
    z = improvement / std
    pdf = np.exp(-0.5 * z**2) / np.sqrt(2.0 * np.pi)
    return improvement * normal_cdf(z) + std * pdf
