"""The ask/tell optimizer protocol: inverted-control search engines.

Every optimizer in the reproduction — the eight black-box baselines and
Explainable-DSE itself — historically owned its run loop: ``run()`` called
the evaluator inline until the budget ran out.  That makes the engines
impossible to multiplex under one harness (the campaign service wants to
interleave *attempts*, an external proposer wants to bring its own
evaluator) and impossible to compare step-for-step.  This module inverts
the control flow, the way Optuna-style multi-objective DSE frameworks and
LLM-DSE's external-agent loop do (see PAPERS.md):

* :class:`SearchEngine` — the protocol: ``start()``, ``ask(n)`` returning
  up to ``n`` design points, ``tell(results)`` returning their costs,
  ``finished``/``result()``.
* :class:`DriverLoop` — the deterministic reference driver: asks, charges
  the engine's evaluator, tells, and journals :class:`~repro.telemetry
  .events.AskIssued` / :class:`~repro.telemetry.events.TellRecorded`
  protocol events.  Driving an engine with it is proven bit-identical
  (result fingerprint + canonical journal) to the engine's legacy
  ``run()`` by ``tests/test_ask_tell_equivalence.py`` and the
  ``repro.verify`` ask-tell leg.
* :class:`ExplainableEngine` — Explainable-DSE behind the same protocol,
  implemented over the :class:`~repro.service.machine
  .CampaignStateMachine` attempt split (``begin_attempt`` /
  ``finish_attempt``), so the analysis/acquisition/update decisions stay
  in exactly one place.

Determinism contract: ``ask`` serves candidates in the engine's canonical
acquisition order, capped at the remaining budget, and ``tell`` must
deliver results in ask order (FIFO).  ``ask(n <= 0)`` and a ``tell`` for
a point never asked (or out of order) raise :class:`ValueError` — stale
tells from a confused driver must never corrupt a journal.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.arch.design_space import DesignPoint
from repro.core.dse.result import DSEResult
from repro.telemetry.events import AskIssued, TellRecorded
from repro.telemetry.tracer import NULL_TRACER, Tracer

__all__ = [
    "Proposal",
    "EvalResult",
    "SearchEngine",
    "DriverLoop",
    "ExplainableEngine",
]


@dataclass(frozen=True)
class Proposal:
    """One candidate an engine proposes for evaluation."""

    point: Dict[str, Any]
    note: str = ""


@dataclass
class EvalResult:
    """One evaluation outcome a driver tells back to an engine.

    Exactly one of ``evaluation`` / ``error`` is set.  Engines that do
    not declare ``captures_failures`` never receive an ``error`` — the
    driver lets the failure propagate instead, matching the legacy
    behaviour of the baselines (only Explainable-DSE quarantines).
    """

    point: Dict[str, Any]
    evaluation: Any = None
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class SearchEngine(abc.ABC):
    """The ask/tell protocol every optimizer implements.

    Lifecycle: ``start(initial_point)`` once, then repeat ``ask(n)`` /
    ``tell(results)`` until ``finished``; ``result()`` yields the same
    :class:`~repro.core.dse.result.DSEResult` the legacy ``run()``
    returned.  ``ask`` may return fewer than ``n`` points (budget cap)
    and returns ``[]`` only once the engine is finished.
    """

    #: Whether ``tell`` accepts :class:`EvalResult` with ``error`` set
    #: (quarantine semantics).  Engines without it are handed failures
    #: by re-raise.
    captures_failures = False

    #: Telemetry tracer protocol events are journaled through.
    tracer: Tracer = NULL_TRACER

    @abc.abstractmethod
    def start(self, initial_point: Optional[DesignPoint] = None) -> None:
        """Reset run state and begin a search."""

    @abc.abstractmethod
    def ask(self, n: int) -> List[DesignPoint]:
        """Up to ``n`` candidate points; raises ``ValueError`` on
        ``n <= 0``."""

    @abc.abstractmethod
    def tell(self, results: Sequence[EvalResult]) -> None:
        """Deliver evaluation results, in ask (FIFO) order; raises
        ``ValueError`` for results whose points were never asked."""

    @property
    @abc.abstractmethod
    def finished(self) -> bool:
        """True once the search has terminated (budget or convergence)."""

    @abc.abstractmethod
    def result(self) -> DSEResult:
        """The search outcome; only valid once ``finished``."""

    @property
    def step_hint(self) -> int:
        """The engine's current step counter, for protocol telemetry."""
        return 0


class DriverLoop:
    """The deterministic reference driver for any :class:`SearchEngine`.

    Asks for up to ``batch_size`` points, evaluates each through
    ``evaluator`` (default: the engine's own, so budget charging is
    automatic), tells the results back in ask order, and journals one
    :class:`AskIssued` / :class:`TellRecorded` pair per round through the
    engine's tracer.  When the engine ``captures_failures``, evaluation
    exceptions are delivered as :class:`EvalResult` errors instead of
    propagating — the engine quarantines them exactly as its legacy loop
    did.

    ``archive``, when given, is fed every trial of the final result (an
    object with ``insert_trial``, e.g. :class:`repro.optim.archive
    .ParetoArchive`); archive inserts are idempotent, so feeding from
    the result covers engine-internal evaluations (initial points) too.
    """

    def __init__(
        self,
        engine: SearchEngine,
        evaluator=None,
        *,
        batch_size: int = 1,
        archive=None,
        tracer: Optional[Tracer] = None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.engine = engine
        self.evaluator = (
            evaluator if evaluator is not None else engine.evaluator
        )
        self.batch_size = batch_size
        self.archive = archive
        self.tracer = tracer if tracer is not None else engine.tracer

    def run(self, initial_point: Optional[DesignPoint] = None) -> DSEResult:
        """Drive the engine to completion; returns its result."""
        engine = self.engine
        engine.start(initial_point)
        while not engine.finished:
            step = engine.step_hint
            points = engine.ask(self.batch_size)
            self.tracer.emit(
                AskIssued(
                    step=step,
                    requested=self.batch_size,
                    returned=len(points),
                )
            )
            if not points:
                if engine.finished:
                    break
                raise RuntimeError(
                    "ask/tell protocol stall: ask() returned no points "
                    "but the engine is not finished"
                )
            results: List[EvalResult] = []
            failures = 0
            for point in points:
                if engine.captures_failures:
                    try:
                        evaluation = self.evaluator.evaluate(point)
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except Exception as exc:
                        results.append(EvalResult(point=point, error=exc))
                        failures += 1
                        continue
                else:
                    evaluation = self.evaluator.evaluate(point)
                results.append(EvalResult(point=point, evaluation=evaluation))
            self.tracer.emit(
                TellRecorded(
                    step=step, count=len(results), failures=failures
                )
            )
            engine.tell(results)
        result = engine.result()
        if self.archive is not None:
            for trial in result.trials:
                self.archive.insert_trial(trial)
        return result


class ExplainableEngine(SearchEngine):
    """Explainable-DSE behind the ask/tell protocol.

    Wraps a :class:`~repro.service.machine.CampaignStateMachine` and
    drives its attempt split: ``ask`` opens an attempt with
    ``begin_attempt()`` and serves its candidate queue (budget-capped),
    ``tell`` records each result through the DSE's own trial bookkeeping
    (quarantining errors through the circuit breaker), and the attempt is
    closed with ``finish_attempt()`` once its queue drains — so the
    analysis, acquisition, and incumbent-update decisions are executed by
    exactly the same code, in exactly the same order, as a legacy
    ``run()``.
    """

    captures_failures = True

    def __init__(self, dse, *, tracer: Optional[Tracer] = None, machine=None):
        self.dse = dse
        self.tracer = tracer if tracer is not None else dse.tracer
        self.machine = machine
        #: (candidate_index, candidate) not yet served this attempt.
        self._queue: List[tuple] = []
        #: (candidate_index, candidate) served, awaiting tell.
        self._outstanding: List[tuple] = []
        #: (candidate, evaluation) recorded this attempt.
        self._evaluated: List[tuple] = []
        self._open = False

    @property
    def evaluator(self):
        return self.dse.evaluator

    @property
    def step_hint(self) -> int:
        if self.machine is None:
            return 0
        return self.machine.attempt if self._open else self.machine.attempt + 1

    def start(self, initial_point: Optional[DesignPoint] = None) -> None:
        from repro.service.machine import CampaignStateMachine

        if self.machine is None:
            self.machine = CampaignStateMachine(
                self.dse, initial_point, tracer=self.tracer
            )
        self._queue = []
        self._outstanding = []
        self._evaluated = []
        self._open = False
        self.machine.start()

    @property
    def finished(self) -> bool:
        if self.machine is None:
            return False
        return self.machine.state.terminal

    def result(self) -> DSEResult:
        if self.machine is None:
            raise RuntimeError("start() must be called before result()")
        return self.machine.result()

    def _budget_left(self) -> int:
        return self.dse._budget_left(self.machine.base_evaluations)

    def ask(self, n: int) -> List[DesignPoint]:
        if n <= 0:
            raise ValueError(f"ask(n) requires n >= 1, got {n}")
        if self.machine is None:
            raise RuntimeError("start() must be called before ask()")
        from repro.service.machine import CampaignState

        machine = self.machine
        while True:
            if self._outstanding:
                # Results pending: serve more of the queue only while the
                # budget allows (the legacy loop re-checks per candidate).
                return self._serve(n)
            if self._open:
                if self._queue and self._budget_left() > 0:
                    return self._serve(n)
                # Queue drained, or budget ran out mid-attempt (the
                # legacy per-candidate budget break): close the attempt.
                self._conclude_attempt()
                if machine.state is not CampaignState.RUNNING:
                    return []
                continue
            if machine.state is not CampaignState.RUNNING:
                return []
            candidates = machine.begin_attempt()
            if candidates is None:
                # Terminated inside begin_attempt (budget exhausted or
                # mitigation exhausted).
                return []
            self._open = True
            self._queue = list(enumerate(candidates))
            self._evaluated = []

    def _serve(self, n: int) -> List[DesignPoint]:
        count = min(n, max(0, self._budget_left()), len(self._queue))
        served = self._queue[:count]
        del self._queue[:count]
        machine, dse = self.machine, self.dse
        for _, candidate in served:
            machine.tried_points.add(dse.space.point_key(candidate.point))
        self._outstanding.extend(served)
        return [dict(candidate.point) for _, candidate in served]

    def _conclude_attempt(self) -> None:
        """Run the attempt epilogue (update/patience/breaker); may raise
        the breaker's systemic fault exactly like a legacy ``step()``."""
        self._queue = []
        self._outstanding = []
        self._open = False
        evaluated, self._evaluated = self._evaluated, []
        self.machine.finish_attempt(evaluated)

    def tell(self, results: Sequence[EvalResult]) -> None:
        if self.machine is None:
            raise RuntimeError("start() must be called before tell()")
        results = list(results)
        if not results:
            return
        if len(results) > len(self._outstanding):
            raise ValueError(
                f"tell() got {len(results)} results but only "
                f"{len(self._outstanding)} points are outstanding"
            )
        machine, dse = self.machine, self.dse
        attempt = machine.attempt
        for res in results:
            if machine.breaker.tripped:
                # The legacy loop breaks at the tripped evaluation and
                # discards the rest of the attempt.
                break
            index, candidate = self._outstanding[0]
            if dse.space.point_key(res.point) != dse.space.point_key(
                candidate.point
            ):
                raise ValueError(
                    "stale tell: result for a point that was never asked "
                    "(or out of ask order)"
                )
            self._outstanding.pop(0)
            if res.error is not None:
                dse._quarantine(
                    candidate.point,
                    res.error,
                    machine.trials,
                    note=candidate.reason,
                    tracer=self.tracer,
                    step=attempt,
                    candidate_index=index,
                )
                machine.breaker.record_failure()
            else:
                machine.breaker.record_success()
                dse._record_trial(
                    candidate.point,
                    res.evaluation,
                    machine.trials,
                    note=candidate.reason,
                    tracer=self.tracer,
                    step=attempt,
                    candidate_index=index,
                )
                self._evaluated.append((candidate, res.evaluation))
        if machine.breaker.tripped or not (
            self._outstanding or (self._queue and self._budget_left() > 0)
        ):
            # Attempt complete (or aborted by the breaker): run the
            # epilogue eagerly so ``finished`` is accurate after tell.
            self._conclude_attempt()
