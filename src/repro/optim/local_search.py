"""Greedy local search (hill climbing) baseline.

§4.5 of the paper contrasts bottleneck-guided acquisition against "a
greedy local search [56]" that explores the immediate neighbouring values
of *all* parameters of the selected solution: it needs ~2p evaluations per
step for p parameters, only moves one index at a time (no
bottleneck-derived large steps), and over-optimizes within the local
neighbourhood.  This baseline makes that comparison executable.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.arch.design_space import DesignPoint
from repro.optim.base import BaselineOptimizer
from repro.optim.protocol import Proposal

__all__ = ["LocalSearch"]


class LocalSearch(BaselineOptimizer):
    """Steepest-descent hill climbing over one-step neighbours.

    Args:
        restarts: Random restarts when a local optimum is reached before
            the budget runs out.
    """

    name = "local-search"

    def __init__(self, *args, restarts: int = 10, **kwargs):
        super().__init__(*args, **kwargs)
        if restarts < 0:
            raise ValueError("restarts must be >= 0")
        self.restarts = restarts

    def _climb(self, start: DesignPoint):
        """Greedy descent from ``start`` until a local optimum.

        The neighbour sweep is one batch proposal: steepest descent needs
        every neighbour's score anyway, and the scores are compared in
        enumeration order, so batch evaluation is decision-identical to
        the old one-at-a-time loop.
        """
        current = dict(start)
        evaluation = yield Proposal(current, "ls-start")
        current_score = self._score(evaluation)
        while True:
            best_neighbor: Optional[DesignPoint] = None
            best_score = current_score
            neighbors = list(self.space.neighbors(current))
            if neighbors:
                evaluations = yield [
                    Proposal(neighbor, "ls-neighbor")
                    for neighbor in neighbors
                ]
                for neighbor, evaluation in zip(neighbors, evaluations):
                    score = self._score(evaluation)
                    if score < best_score:
                        best_neighbor, best_score = neighbor, score
            if best_neighbor is None:
                return  # local optimum
            current, current_score = best_neighbor, best_score

    def _propose(self, initial_point: Optional[DesignPoint]):
        rng = random.Random(self.seed)
        start = dict(initial_point or self.space.minimum_point())
        yield from self._climb(start)
        for _ in range(self.restarts):
            if self.budget_left <= 0:
                return
            yield from self._climb(self.space.random_point(rng))
