"""Greedy local search (hill climbing) baseline.

§4.5 of the paper contrasts bottleneck-guided acquisition against "a
greedy local search [56]" that explores the immediate neighbouring values
of *all* parameters of the selected solution: it needs ~2p evaluations per
step for p parameters, only moves one index at a time (no
bottleneck-derived large steps), and over-optimizes within the local
neighbourhood.  This baseline makes that comparison executable.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.arch.design_space import DesignPoint
from repro.optim.base import BaselineOptimizer

__all__ = ["LocalSearch"]


class LocalSearch(BaselineOptimizer):
    """Steepest-descent hill climbing over one-step neighbours.

    Args:
        restarts: Random restarts when a local optimum is reached before
            the budget runs out.
    """

    name = "local-search"

    def __init__(self, *args, restarts: int = 10, **kwargs):
        super().__init__(*args, **kwargs)
        if restarts < 0:
            raise ValueError("restarts must be >= 0")
        self.restarts = restarts

    def _climb(self, start: DesignPoint) -> None:
        """Greedy descent from ``start`` until a local optimum."""
        current = dict(start)
        current_score = self._score(self._evaluate(current, note="ls-start"))
        while True:
            best_neighbor: Optional[DesignPoint] = None
            best_score = current_score
            for neighbor in self.space.neighbors(current):
                score = self._score(
                    self._evaluate(neighbor, note="ls-neighbor")
                )
                if score < best_score:
                    best_neighbor, best_score = neighbor, score
            if best_neighbor is None:
                return  # local optimum
            current, current_score = best_neighbor, best_score

    def _optimize(self, initial_point: Optional[DesignPoint]) -> None:
        rng = random.Random(self.seed)
        start = dict(initial_point or self.space.minimum_point())
        self._climb(start)
        for _ in range(self.restarts):
            if self.budget_left <= 0:
                return
            self._climb(self.space.random_point(rng))
