"""Simulated annealing (black-box baseline; the paper used SciPy's [75]).

Classic Metropolis acceptance over the penalized log-objective with a
geometric cooling schedule; moves perturb a random subset of parameters by
one or two index steps.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.arch.design_space import DesignPoint
from repro.optim.base import BaselineOptimizer
from repro.optim.protocol import Proposal

__all__ = ["SimulatedAnnealing"]


class SimulatedAnnealing(BaselineOptimizer):
    """Metropolis simulated annealing with geometric cooling.

    Args:
        initial_temperature: Starting temperature in penalized-log-objective
            units (the penalty for one fully-violated constraint is 10).
        cooling: Geometric factor applied per evaluation.
        moves_per_step: How many parameters a neighbour move perturbs.
    """

    name = "annealing"

    def __init__(
        self,
        *args,
        initial_temperature: float = 5.0,
        cooling: float = 0.97,
        moves_per_step: int = 2,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if not 0 < cooling < 1:
            raise ValueError("cooling must be in (0, 1)")
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.moves_per_step = moves_per_step

    def _neighbor(self, point: DesignPoint, rng: random.Random) -> DesignPoint:
        """Perturb 1..moves_per_step parameters by +-1 or +-2 index steps."""
        out = dict(point)
        params = rng.sample(
            list(self.space.parameters),
            k=min(self.moves_per_step, len(self.space)),
        )
        for param in params:
            idx = param.index_of(out[param.name])
            step = rng.choice((-2, -1, 1, 2))
            new_idx = min(max(idx + step, 0), param.cardinality - 1)
            out[param.name] = param.values[new_idx]
        return out

    def _propose(self, initial_point: Optional[DesignPoint]):
        rng = random.Random(self.seed)
        current = dict(initial_point or self.space.random_point(rng))
        evaluation = yield Proposal(current, "initial")
        current_score = self._score(evaluation)
        temperature = self.initial_temperature
        while self.budget_left > 0:
            candidate = self._neighbor(current, rng)
            evaluation = yield Proposal(candidate, "sa-move")
            score = self._score(evaluation)
            delta = score - current_score
            if delta <= 0 or rng.random() < math.exp(
                -delta / max(temperature, 1e-9)
            ):
                current, current_score = candidate, score
            temperature *= self.cooling
