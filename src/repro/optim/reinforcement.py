"""ConfuciuX-style constrained reinforcement learning [36].

The paper generalized ConfuciuX to arbitrary parameter counts, per-
parameter option-list sizes, and multiple constraints with utilization-
shaped rewards — this module implements that generalized agent: a
factored categorical policy (one softmax head of logits per design
parameter), REINFORCE updates with a moving-average baseline, and a reward
combining the log-objective with constraint-utilization penalties.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.arch.design_space import DesignPoint
from repro.optim.base import BaselineOptimizer
from repro.optim.protocol import Proposal

__all__ = ["ReinforcementLearningDSE"]


class ReinforcementLearningDSE(BaselineOptimizer):
    """Policy-gradient DSE with a factored categorical policy.

    Args:
        learning_rate: Logit step size.
        batch_size: Episodes per policy update.
        entropy_bonus: Entropy regularization weight (keeps exploration up).
        baseline_decay: Moving-average reward baseline decay.
    """

    name = "reinforcement"

    def __init__(
        self,
        *args,
        learning_rate: float = 0.25,
        batch_size: int = 4,
        entropy_bonus: float = 0.01,
        baseline_decay: float = 0.9,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.entropy_bonus = entropy_bonus
        self.baseline_decay = baseline_decay

    # -- policy ------------------------------------------------------------------

    def _sample(
        self, logits: List[np.ndarray], rng: np.random.Generator
    ) -> List[int]:
        actions = []
        for head in logits:
            probs = _softmax(head)
            actions.append(int(rng.choice(len(head), p=probs)))
        return actions

    def _reward(self, evaluation) -> float:
        """Negated log-objective with constraint-utilization shaping.

        The ConfuciuX-style reward favours meeting constraints first:
        each over-budget constraint subtracts its excess utilization; a
        feasible design earns the (bounded) objective reward.
        """
        costs = evaluation.costs
        value = costs.get(self.objective, math.inf)
        if math.isfinite(value) and value > 0:
            reward = -math.log(value)
        else:
            reward = -25.0
        for constraint in self.constraints:
            utilization = constraint.utilization(costs)
            if not math.isfinite(utilization):
                reward -= 25.0
            elif utilization > 1.0:
                reward -= 2.0 * (utilization - 1.0)
        return reward

    # -- main loop -----------------------------------------------------------------

    def _propose(self, initial_point: Optional[DesignPoint]):
        # Episodes yield serially (not as one batch): the policy sampling
        # interleaves with per-episode budget checks, and each sample
        # must see the live budget exactly where the old loop did.
        rng = np.random.default_rng(self.seed)
        logits = [
            np.zeros(param.cardinality) for param in self.space.parameters
        ]
        baseline = 0.0
        have_baseline = False

        while self.budget_left > 0:
            batch: List[tuple] = []
            for _ in range(self.batch_size):
                if self.budget_left <= 0:
                    break
                actions = self._sample(logits, rng)
                point = self.space.from_indices(actions)
                evaluation = yield Proposal(point, "rl-episode")
                batch.append((actions, self._reward(evaluation)))
            if not batch:
                break
            rewards = [r for _, r in batch]
            mean_reward = sum(rewards) / len(rewards)
            if not have_baseline:
                baseline = mean_reward
                have_baseline = True
            else:
                baseline = (
                    self.baseline_decay * baseline
                    + (1 - self.baseline_decay) * mean_reward
                )
            for actions, reward in batch:
                advantage = reward - baseline
                for head, action in zip(logits, actions):
                    probs = _softmax(head)
                    gradient = -probs
                    gradient[action] += 1.0
                    entropy_grad = -probs * (np.log(probs + 1e-12) + 1.0)
                    head += self.learning_rate * (
                        advantage * gradient + self.entropy_bonus * entropy_grad
                    )


def _softmax(x: np.ndarray) -> np.ndarray:
    z = x - np.max(x)
    e = np.exp(z)
    return e / np.sum(e)
