"""Hybrid DSE: bottleneck-guided warm start + black-box refinement.

§B of the paper: "when designers optimize designs offline with hybrid
optimization methodologies comprising multiple optimizations, quickly
found efficient solutions can serve as high-quality initial points".
This module implements that pipeline: Explainable-DSE spends a fraction of
the budget converging to a high-quality feasible region, then a black-box
refiner (default: the HyperMapper-style constrained BO) continues from the
incumbent — combining explainability's agility with black-box exploration
around the optimum.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Type

from repro.arch.design_space import DesignPoint, DesignSpace
from repro.core.dse.constraints import Constraint
from repro.core.dse.explainable import ExplainableDSE
from repro.core.dse.result import DSEResult, TrialRecord, select_best
from repro.cost.evaluator import CostEvaluator
from repro.optim.base import BaselineOptimizer
from repro.optim.hypermapper import HyperMapperDSE

__all__ = ["HybridDSE"]


class HybridDSE:
    """Two-phase exploration: explainable warm start, black-box refine.

    Args:
        design_space / evaluator / constraints / objective: As for
            :class:`ExplainableDSE`.  The evaluator is shared, so points
            the refiner revisits are served from cache.
        max_evaluations: Total budget across both phases.
        warm_start_fraction: Share of the budget given to the explainable
            phase (the remainder refines).
        refiner: Black-box optimizer class for phase two.
        seed: Seed for the refiner.
    """

    def __init__(
        self,
        design_space: DesignSpace,
        evaluator: CostEvaluator,
        constraints: Sequence[Constraint],
        objective: str = "latency_ms",
        max_evaluations: int = 100,
        warm_start_fraction: float = 0.5,
        refiner: Type[BaselineOptimizer] = HyperMapperDSE,
        seed: int = 0,
        **explainable_kwargs,
    ):
        if not 0.0 < warm_start_fraction < 1.0:
            raise ValueError("warm_start_fraction must be in (0, 1)")
        self.space = design_space
        self.evaluator = evaluator
        self.constraints = list(constraints)
        self.objective = objective
        self.max_evaluations = max_evaluations
        self.warm_start_fraction = warm_start_fraction
        self.refiner = refiner
        self.seed = seed
        self.explainable_kwargs = explainable_kwargs

    def run(self, initial_point: Optional[DesignPoint] = None) -> DSEResult:
        """Run both phases and merge the trial logs."""
        started = time.perf_counter()
        warm_budget = max(1, int(self.max_evaluations * self.warm_start_fraction))
        explainable = ExplainableDSE(
            self.space,
            self.evaluator,
            self.constraints,
            objective=self.objective,
            max_evaluations=warm_budget,
            **self.explainable_kwargs,
        )
        warm = explainable.run(initial_point)

        refine_budget = self.max_evaluations - warm.evaluations
        refine_trials: List[TrialRecord] = []
        explanations = list(warm.explanations)
        if refine_budget > 0:
            refiner = self.refiner(
                self.space,
                self.evaluator,
                self.constraints,
                objective=self.objective,
                max_evaluations=refine_budget,
                seed=self.seed,
            )
            start_point = warm.best.point if warm.best else None
            refined = refiner.run(initial_point=start_point)
            refine_trials = refined.trials
            explanations.append(
                f"=== handoff to {refiner.name} with "
                f"{refine_budget} evaluations from "
                f"{'the warm-start incumbent' if start_point else 'scratch'} ==="
            )

        merged: List[TrialRecord] = []
        for phase, trials in (("warm", warm.trials), ("refine", refine_trials)):
            for trial in trials:
                merged.append(
                    TrialRecord(
                        index=len(merged),
                        point=trial.point,
                        costs=trial.costs,
                        feasible=trial.feasible,
                        mappable=trial.mappable,
                        utilizations=trial.utilizations,
                        note=f"{phase}: {trial.note}",
                    )
                )
        best = select_best(merged, self.constraints, objective=self.objective)
        return DSEResult(
            technique=f"hybrid-explainable+{self.refiner.name}",
            model=self.evaluator.workload.name,
            trials=merged,
            best=best,
            evaluations=len(merged),
            wall_seconds=time.perf_counter() - started,
            explanations=explanations,
        )
