"""HyperMapper-2.0-style constrained Bayesian optimization [51].

Like HyperMapper 2.0, the surrogate side keeps one regression model for the
objective and one probabilistic feasibility model per constraint; the
acquisition weighs expected improvement by the joint probability of
feasibility, so the search preferentially samples regions predicted to
satisfy the constraints — without ever *reasoning* about which parameter
causes a violation (that non-explainability is the paper's foil).
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

import numpy as np

from repro.arch.design_space import DesignPoint
from repro.optim.base import BaselineOptimizer
from repro.optim.gaussian_process import (
    GaussianProcess,
    expected_improvement,
    normal_cdf,
)
from repro.optim.protocol import Proposal

__all__ = ["HyperMapperDSE"]


class HyperMapperDSE(BaselineOptimizer):
    """Constrained BO: EI x product of per-constraint feasibility odds.

    Per constraint a GP regresses the log-utilization (value/bound in log
    domain); P(feasible) is the predictive probability of log-utilization
    below 0.  Unmappable designs clamp utilization to a large value.

    Args:
        initial_samples: Random evaluations before surrogates kick in.
        candidate_pool: Random candidates scored per acquisition.
        max_train_points: Most recent observations kept per surrogate.
    """

    name = "hypermapper"

    def __init__(
        self,
        *args,
        initial_samples: int = 10,
        candidate_pool: int = 256,
        max_train_points: int = 200,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.initial_samples = initial_samples
        self.candidate_pool = candidate_pool
        self.max_train_points = max_train_points

    def _features(self, point: DesignPoint) -> List[float]:
        out = []
        for param in self.space.parameters:
            idx = param.index_of(point[param.name])
            out.append(idx / max(param.cardinality - 1, 1))
        return out

    @staticmethod
    def _log_clamp(value: float, cap: float = 1e6) -> float:
        if not math.isfinite(value) or value <= 0:
            return math.log(cap)
        return math.log(min(value, cap))

    def _propose(self, initial_point: Optional[DesignPoint]):
        rng = random.Random(self.seed)
        xs: List[List[float]] = []
        objective_log: List[float] = []
        utilization_log: List[List[float]] = []  # per trial, per constraint
        feasible_objectives: List[float] = []
        points: List[DesignPoint] = []

        def observe(point: DesignPoint, evaluation) -> None:
            # Runs after the yield resumes: the trial is already in the
            # ledger (both drivers record before resuming), so the
            # feasibility read below is identical either way.
            xs.append(self._features(point))
            latency = evaluation.costs.get(self.objective, math.inf)
            objective_log.append(self._log_clamp(latency, cap=1e9))
            utilization_log.append(
                [
                    self._log_clamp(c.utilization(evaluation.costs))
                    for c in self.constraints
                ]
            )
            points.append(dict(point))
            if self._trials[-1].feasible:
                feasible_objectives.append(objective_log[-1])

        if initial_point is not None:
            observe(initial_point, (yield Proposal(initial_point, "initial")))
        for _ in range(self.initial_samples):
            if self.budget_left <= 0:
                return
            point = self.space.random_point(rng)
            observe(point, (yield Proposal(point, "hm-init")))

        while self.budget_left > 0:
            keep = min(len(xs), self.max_train_points)
            x_train = np.array(xs[-keep:])
            objective_gp = GaussianProcess().fit(
                x_train, np.array(objective_log[-keep:])
            )
            constraint_gps = []
            for ci in range(len(self.constraints)):
                y = np.array([row[ci] for row in utilization_log[-keep:]])
                constraint_gps.append(GaussianProcess().fit(x_train, y))

            candidates = [
                self.space.random_point(rng)
                for _ in range(self.candidate_pool)
            ]
            features = np.array([self._features(c) for c in candidates])
            mean, var = objective_gp.predict(features)
            if feasible_objectives:
                best = min(feasible_objectives)
                acquisition = expected_improvement(mean, var, best)
            else:
                # No feasible incumbent yet: chase feasibility probability
                # weighted by (mildly) better predicted objective.
                acquisition = np.exp(-0.1 * mean)
            for gp in constraint_gps:
                c_mean, c_var = gp.predict(features)
                # P(log-utilization < 0) == P(feasible).
                acquisition = acquisition * normal_cdf(
                    -c_mean / np.sqrt(c_var)
                )
            chosen = candidates[int(np.argmax(acquisition))]
            observe(chosen, (yield Proposal(chosen, "hm-ei")))
