"""Grid search (non-feedback baseline, e.g. [32, 49] in the paper).

Enumerates a stratified grid over the design space and strides through it
so the evaluation budget covers the whole grid rather than a corner: grid
enumeration varies the last axes fastest, so naive truncation would fix the
leading parameters at their first grid value.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.arch.design_space import DesignPoint
from repro.optim.base import BaselineOptimizer
from repro.optim.protocol import Proposal

__all__ = ["GridSearch"]


class GridSearch(BaselineOptimizer):
    """Strided stratified grid search."""

    name = "grid"

    def __init__(self, *args, points_per_axis: int = 3, **kwargs):
        super().__init__(*args, **kwargs)
        if points_per_axis < 1:
            raise ValueError("points_per_axis must be >= 1")
        self.points_per_axis = points_per_axis

    def _grid_size(self) -> int:
        size = 1
        for param in self.space.parameters:
            size *= min(self.points_per_axis, param.cardinality)
        return size

    def _propose(self, initial_point: Optional[DesignPoint]):
        # No loop budget check: the grid is bounded, and the evaluation
        # boundary (inline raise / ask budget gate) terminates the walk.
        total = self._grid_size()
        stride = max(1, total // self.max_evaluations)
        grid = self.space.grid(self.points_per_axis)
        for point in itertools.islice(grid, 0, None, stride):
            yield Proposal(point, "grid")
