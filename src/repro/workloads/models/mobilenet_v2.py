"""MobileNetV2 for 224x224 ImageNet classification (Sandler et al., 2018).

53 execution-critical layers: the 3x3 stem, one expansion-free inverted
residual (depthwise + pointwise), sixteen t=6 inverted residual blocks
(expand 1x1, depthwise 3x3, project 1x1), the 1x1 head convolution, and the
classifier.  Depthwise convolutions have very low arithmetic intensity and
exercise the NoC/bandwidth bottleneck paths of the cost model.
"""

from __future__ import annotations

from repro.workloads.layers import Workload, conv2d, depthwise_conv2d, gemm


def build() -> Workload:
    """Build the MobileNetV2 workload (53 execution-critical layers)."""
    layers = (
        conv2d("stem", 3, 32, (112, 112), stride=2),
        # Block 0 (t=1): depthwise + project, 32 -> 16 @112.
        depthwise_conv2d("b0_dw", 32, (112, 112)),
        conv2d("b0_project", 32, 16, (112, 112), kernel=(1, 1)),
        # Stage 1: 16 -> 24, two blocks, output 56x56.
        conv2d("s1_expand_first", 16, 96, (112, 112), kernel=(1, 1)),
        depthwise_conv2d("s1_dw_down", 96, (56, 56), stride=2),
        conv2d("s1_project", 96, 24, (56, 56), kernel=(1, 1), repeats=2),
        conv2d("s1_expand", 24, 144, (56, 56), kernel=(1, 1), repeats=2),
        depthwise_conv2d("s1_dw", 144, (56, 56)),
        # Stage 2: 24 -> 32, three blocks, output 28x28.
        depthwise_conv2d("s2_dw_down", 144, (28, 28), stride=2),
        conv2d("s2_project", 144, 32, (28, 28), kernel=(1, 1)),
        conv2d("s2_expand", 32, 192, (28, 28), kernel=(1, 1), repeats=3),
        depthwise_conv2d("s2_dw", 192, (28, 28), repeats=2),
        conv2d("s2_project_rest", 192, 32, (28, 28), kernel=(1, 1), repeats=2),
        # Stage 3: 32 -> 64, four blocks, output 14x14.
        depthwise_conv2d("s3_dw_down", 192, (14, 14), stride=2),
        conv2d("s3_project_first", 192, 64, (14, 14), kernel=(1, 1)),
        conv2d("s3_expand", 64, 384, (14, 14), kernel=(1, 1), repeats=4),
        depthwise_conv2d("s3_dw", 384, (14, 14), repeats=3),
        conv2d("s3_project", 384, 64, (14, 14), kernel=(1, 1), repeats=3),
        # Stage 4: 64 -> 96, three blocks, 14x14.
        depthwise_conv2d("s4_dw", 384, (14, 14)),
        conv2d("s4_project_first", 384, 96, (14, 14), kernel=(1, 1)),
        conv2d("s4_expand", 96, 576, (14, 14), kernel=(1, 1), repeats=3),
        depthwise_conv2d("s4_dw_rest", 576, (14, 14), repeats=2),
        conv2d("s4_project", 576, 96, (14, 14), kernel=(1, 1), repeats=2),
        # Stage 5: 96 -> 160, three blocks, output 7x7.
        depthwise_conv2d("s5_dw_down", 576, (7, 7), stride=2),
        conv2d("s5_project_first", 576, 160, (7, 7), kernel=(1, 1)),
        conv2d("s5_expand", 160, 960, (7, 7), kernel=(1, 1), repeats=3),
        depthwise_conv2d("s5_dw", 960, (7, 7), repeats=3),
        conv2d("s5_project", 960, 160, (7, 7), kernel=(1, 1), repeats=2),
        # Stage 6: 160 -> 320, one block, 7x7 (expand shared with s5_expand).
        conv2d("s6_project", 960, 320, (7, 7), kernel=(1, 1)),
        conv2d("head", 320, 1280, (7, 7), kernel=(1, 1)),
        gemm("fc", 1000, 1280, 1),
    )
    return Workload(
        name="mobilenetv2", layers=layers, total_layers=53, task="cv-light"
    )
