"""Faster R-CNN with a MobileNetV3-Large FPN backbone (320x320 input).

79 execution-critical layers: the MobileNetV3-Large backbone (stem, fifteen
inverted-residual blocks with hard-swish/squeeze-excite where the original
network has them, and the 960-wide last conv), the FPN lateral/output
convolutions, the RPN head, and the detection box head.  Shapes follow the
torchvision ``fasterrcnn_mobilenet_v3_large_320_fpn`` low-resolution variant.
"""

from __future__ import annotations

from repro.workloads.layers import Workload, conv2d, depthwise_conv2d, gemm


def build() -> Workload:
    """Build the FasterRCNN-MobileNetV3 workload (79 layers)."""
    layers = (
        # --- MobileNetV3-Large backbone (320x320 input) -------------------
        conv2d("stem", 3, 16, (160, 160), stride=2),
        depthwise_conv2d("b1_dw", 16, (160, 160)),
        conv2d("b1_project", 16, 16, (160, 160), kernel=(1, 1)),
        conv2d("b2_expand", 16, 64, (160, 160), kernel=(1, 1)),
        depthwise_conv2d("b2_dw_down", 64, (80, 80), stride=2),
        conv2d("b2_project", 64, 24, (80, 80), kernel=(1, 1)),
        conv2d("b3_expand", 24, 72, (80, 80), kernel=(1, 1), repeats=2),
        depthwise_conv2d("b3_dw", 72, (80, 80)),
        conv2d("b3_project", 72, 24, (80, 80), kernel=(1, 1)),
        depthwise_conv2d("b4_dw_down", 72, (40, 40), kernel=(5, 5), stride=2),
        gemm("b4_se_reduce", 18, 72, 1),
        gemm("b4_se_expand", 72, 18, 1),
        conv2d("b4_project", 72, 40, (40, 40), kernel=(1, 1)),
        conv2d("b5_expand", 40, 120, (40, 40), kernel=(1, 1), repeats=2),
        depthwise_conv2d("b5_dw", 120, (40, 40), kernel=(5, 5), repeats=2),
        gemm("b5_se_reduce", 30, 120, 1, repeats=2),
        gemm("b5_se_expand", 120, 30, 1, repeats=2),
        conv2d("b5_project", 120, 40, (40, 40), kernel=(1, 1), repeats=2),
        conv2d("b6_expand", 40, 240, (40, 40), kernel=(1, 1)),
        depthwise_conv2d("b6_dw_down", 240, (20, 20), stride=2),
        conv2d("b6_project", 240, 80, (20, 20), kernel=(1, 1)),
        conv2d("b7_expand", 80, 200, (20, 20), kernel=(1, 1)),
        depthwise_conv2d("b7_dw", 200, (20, 20)),
        conv2d("b7_project", 200, 80, (20, 20), kernel=(1, 1)),
        conv2d("b8_expand", 80, 184, (20, 20), kernel=(1, 1), repeats=2),
        depthwise_conv2d("b8_dw", 184, (20, 20), repeats=2),
        conv2d("b8_project", 184, 80, (20, 20), kernel=(1, 1), repeats=2),
        conv2d("b9_expand", 80, 480, (20, 20), kernel=(1, 1)),
        depthwise_conv2d("b9_dw", 480, (20, 20)),
        gemm("b9_se_reduce", 120, 480, 1),
        gemm("b9_se_expand", 480, 120, 1),
        conv2d("b9_project", 480, 112, (20, 20), kernel=(1, 1)),
        conv2d("b10_expand", 112, 672, (20, 20), kernel=(1, 1), repeats=2),
        depthwise_conv2d("b10_dw", 672, (20, 20)),
        gemm("b10_se_reduce", 168, 672, 1, repeats=3),
        gemm("b10_se_expand", 672, 168, 1, repeats=3),
        conv2d("b10_project", 672, 112, (20, 20), kernel=(1, 1)),
        depthwise_conv2d("b11_dw_down", 672, (10, 10), kernel=(5, 5), stride=2),
        conv2d("b11_project", 672, 160, (10, 10), kernel=(1, 1)),
        conv2d("b12_expand", 160, 960, (10, 10), kernel=(1, 1), repeats=2),
        depthwise_conv2d("b12_dw", 960, (10, 10), kernel=(5, 5), repeats=2),
        gemm("b12_se_reduce", 240, 960, 1, repeats=2),
        gemm("b12_se_expand", 960, 240, 1, repeats=2),
        conv2d("b12_project", 960, 160, (10, 10), kernel=(1, 1), repeats=2),
        conv2d("last_conv", 160, 960, (10, 10), kernel=(1, 1)),
        # --- FPN (256-wide) ------------------------------------------------
        conv2d("fpn_lateral_c4", 672, 256, (20, 20), kernel=(1, 1)),
        conv2d("fpn_lateral_c5", 960, 256, (10, 10), kernel=(1, 1)),
        conv2d("fpn_output", 256, 256, (20, 20), repeats=4),
        # --- RPN head --------------------------------------------------------
        conv2d("rpn_conv", 256, 256, (20, 20), repeats=3),
        conv2d("rpn_cls", 256, 15, (20, 20), kernel=(1, 1)),
        conv2d("rpn_reg", 256, 60, (20, 20), kernel=(1, 1)),
        # --- Box head (per 1000 proposals, 7x7 RoIAlign features) -----------
        gemm("box_fc1", 1024, 256 * 7 * 7, 1000),
        gemm("box_fc2", 1024, 1024, 1000),
        gemm("box_cls", 91, 1024, 1000),
        gemm("box_reg", 364, 1024, 1000),
    )
    return Workload(
        name="fasterrcnn_mobilenetv3", layers=layers, total_layers=79, task="cv-large"
    )
