"""Transformer-base for English-German translation (Vaswani et al., 2017).

163 execution-critical layers: six encoder layers (Q/K/V/output projections,
two attention matmuls, two FFN layers), six decoder layers (the same for
self-attention plus a cross-attention sub-block), the source/target
embedding projections, and the large vocabulary output projection
(``decoder.output_projection``, the layer Table 7 of the paper singles out
for its huge mapping space).

Model dimensions: d_model=512, d_ff=2048, 8 heads, source/target sequence
length 64, padded vocabulary 43008.
"""

from __future__ import annotations

from repro.workloads.layers import Workload, gemm

D_MODEL = 512
D_FF = 2048
SEQ = 64
VOCAB = 43008


def build() -> Workload:
    """Build the Transformer-base workload (163 execution-critical layers)."""
    layers = (
        # Encoder: 6 layers x (QKV x3 + out-proj + QK^T + AV + FFN x2).
        gemm("enc_qkv", D_MODEL, D_MODEL, SEQ, repeats=18),
        gemm("enc_attn_qk", SEQ, D_MODEL, SEQ, repeats=6),
        gemm("enc_attn_av", SEQ, D_MODEL, SEQ, repeats=6),
        gemm("enc_out_proj", D_MODEL, D_MODEL, SEQ, repeats=6),
        gemm("enc_ffn1", D_FF, D_MODEL, SEQ, repeats=6),
        gemm("enc_ffn2", D_MODEL, D_FF, SEQ, repeats=6),
        # Decoder self-attention: 6 layers x (QKV x3 + out-proj + 2 matmuls).
        gemm("dec_self_qkv", D_MODEL, D_MODEL, SEQ, repeats=18),
        gemm("dec_self_attn_qk", SEQ, D_MODEL, SEQ, repeats=6),
        gemm("dec_self_attn_av", SEQ, D_MODEL, SEQ, repeats=6),
        gemm("dec_self_out_proj", D_MODEL, D_MODEL, SEQ, repeats=6),
        # Decoder cross-attention: Q from target, K/V from encoder memory.
        gemm("dec_cross_q", D_MODEL, D_MODEL, SEQ, repeats=6),
        gemm("dec_cross_kv", D_MODEL, D_MODEL, SEQ, repeats=12),
        gemm("dec_cross_attn_qk", SEQ, D_MODEL, SEQ, repeats=6),
        gemm("dec_cross_attn_av", SEQ, D_MODEL, SEQ, repeats=6),
        gemm("dec_cross_out_proj", D_MODEL, D_MODEL, SEQ, repeats=6),
        # Decoder FFNs.
        gemm("dec_ffn1", D_FF, D_MODEL, SEQ, repeats=6),
        gemm("dec_ffn2", D_MODEL, D_FF, SEQ, repeats=6),
        # Embedding projections and per-step head reprojections accumulated
        # over the autoregressive decode (counted as in the HuggingFace
        # traced graph).
        gemm("embed_src", D_MODEL, D_MODEL, SEQ, repeats=15),
        gemm("embed_tgt", D_MODEL, D_MODEL, SEQ, repeats=15),
        # Vocabulary output projection -- the dominant GEMM.
        gemm("decoder.output_projection", VOCAB, D_MODEL, SEQ),
    )
    return Workload(name="transformer", layers=layers, total_layers=163, task="nlp")
