"""Per-model layer-shape definitions for the paper's 11 benchmark DNNs.

Each module exposes a ``build()`` function returning a
:class:`repro.workloads.layers.Workload` whose unique layer shapes carry
multiplicities (``repeats``) summing to the model's execution-critical layer
count.  Total layer counts match Section 5 of the paper:
18, 53, 82, 16, 54, 86, 79, 60, 163, 85, and 109 layers respectively.
"""

from repro.workloads.models import (  # noqa: F401
    bert,
    efficientnet_b0,
    fasterrcnn_mobilenetv3,
    mobilenet_v2,
    resnet18,
    resnet50,
    transformer,
    vgg16,
    vision_transformer,
    wav2vec2,
    yolov5,
)

__all__ = [
    "bert",
    "efficientnet_b0",
    "fasterrcnn_mobilenetv3",
    "mobilenet_v2",
    "resnet18",
    "resnet50",
    "transformer",
    "vgg16",
    "vision_transformer",
    "wav2vec2",
    "yolov5",
]
