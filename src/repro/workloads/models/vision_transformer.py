"""Vision Transformer (ViT-Base/16) for 224x224 ImageNet classification.

86 execution-critical layers: the 16x16 patch-embedding convolution, twelve
encoder layers with seven GEMM-shaped operators each (Q/K/V projections,
attention output projection, the two MLP layers, and the batched attention
matmuls folded into one shape of equal MAC count), plus the classifier head.

Sequence length is 197 (14x14 patches + CLS token); hidden width 768,
MLP width 3072, 12 heads.
"""

from __future__ import annotations

from repro.workloads.layers import Workload, conv2d, gemm

SEQ = 197
HIDDEN = 768
MLP = 3072


def build() -> Workload:
    """Build the ViT-Base/16 workload (86 execution-critical layers)."""
    layers = (
        conv2d(
            "patch_embed", 3, HIDDEN, (14, 14), kernel=(16, 16), stride=16
        ),
        # Q, K, V projections: 36 GEMMs of identical shape across 12 layers.
        gemm("qkv_proj", HIDDEN, HIDDEN, SEQ, repeats=36),
        # Batched QK^T and AV matmuls: per layer they each cost
        # heads * SEQ * 64 * SEQ = SEQ * HIDDEN * SEQ MACs; we fold the pair
        # into one operator of doubled column count.
        gemm("attn_matmul", SEQ, HIDDEN, 2 * SEQ, repeats=12),
        gemm("attn_out_proj", HIDDEN, HIDDEN, SEQ, repeats=12),
        gemm("mlp_fc1", MLP, HIDDEN, SEQ, repeats=12),
        gemm("mlp_fc2", HIDDEN, MLP, SEQ, repeats=12),
        gemm("classifier", 1000, HIDDEN, 1),
    )
    return Workload(
        name="vision_transformer", layers=layers, total_layers=86, task="cv-large"
    )
