"""YOLOv5-large object detector (640x640 input, Ultralytics).

60 execution-critical layers: the CSP-Darknet backbone (stem, strided
downsampling convolutions, C3 cross-stage-partial blocks), the SPPF module,
the PANet neck, and the three detection heads.  C3 blocks contribute three
1x1 convolutions plus two convolutions per internal bottleneck.
"""

from __future__ import annotations

from repro.workloads.layers import Workload, conv2d


def build() -> Workload:
    """Build the YOLOv5-large workload (60 execution-critical layers)."""
    layers = (
        # --- Backbone -------------------------------------------------------
        conv2d("stem", 3, 64, (320, 320), kernel=(6, 6), stride=2),
        conv2d("down1", 64, 128, (160, 160), stride=2),
        # C3 block @160, width 128, n=3 bottlenecks.
        conv2d("c3_1_cv", 128, 64, (160, 160), kernel=(1, 1), repeats=3),
        conv2d("c3_1_b1x1", 64, 64, (160, 160), kernel=(1, 1), repeats=3),
        conv2d("c3_1_b3x3", 64, 64, (160, 160), repeats=3),
        conv2d("down2", 128, 256, (80, 80), stride=2),
        # C3 block @80, width 256, n=6 bottlenecks (folded to 3 uniques).
        conv2d("c3_2_cv", 256, 128, (80, 80), kernel=(1, 1), repeats=3),
        conv2d("c3_2_b1x1", 128, 128, (80, 80), kernel=(1, 1), repeats=4),
        conv2d("c3_2_b3x3", 128, 128, (80, 80), repeats=4),
        conv2d("down3", 256, 512, (40, 40), stride=2),
        # C3 block @40, width 512, n=9 bottlenecks (folded).
        conv2d("c3_3_cv", 512, 256, (40, 40), kernel=(1, 1), repeats=3),
        conv2d("c3_3_b1x1", 256, 256, (40, 40), kernel=(1, 1), repeats=4),
        conv2d("c3_3_b3x3", 256, 256, (40, 40), repeats=5),
        conv2d("down4", 512, 1024, (20, 20), stride=2),
        # C3 block @20, width 1024, n=3.
        conv2d("c3_4_cv", 1024, 512, (20, 20), kernel=(1, 1), repeats=3),
        conv2d("c3_4_b3x3", 512, 512, (20, 20), repeats=3),
        # SPPF.
        conv2d("sppf_cv1", 1024, 512, (20, 20), kernel=(1, 1)),
        conv2d("sppf_cv2", 2048, 1024, (20, 20), kernel=(1, 1)),
        # --- PANet neck -------------------------------------------------------
        conv2d("neck_reduce1", 1024, 512, (20, 20), kernel=(1, 1)),
        conv2d("neck_c3_up1", 1024, 512, (40, 40), kernel=(1, 1), repeats=2),
        conv2d("neck_reduce2", 512, 256, (40, 40), kernel=(1, 1)),
        conv2d("neck_c3_up2", 512, 256, (80, 80), kernel=(1, 1), repeats=2),
        conv2d("neck_down1", 256, 256, (40, 40), stride=2),
        conv2d("neck_c3_down1", 512, 512, (40, 40), kernel=(1, 1), repeats=2),
        conv2d("neck_down2", 512, 512, (20, 20), stride=2),
        conv2d("neck_c3_down2", 1024, 1024, (20, 20), kernel=(1, 1), repeats=2),
        # --- Detection heads (255 = 3 anchors * 85 outputs) -----------------
        conv2d("detect_p3", 256, 255, (80, 80), kernel=(1, 1)),
        conv2d("detect_p4", 512, 255, (40, 40), kernel=(1, 1)),
        conv2d("detect_p5", 1024, 255, (20, 20), kernel=(1, 1)),
    )
    return Workload(name="yolov5", layers=layers, total_layers=60, task="cv-large")
