"""wav2vec 2.0 base for automatic speech recognition (Baevski et al., 2020).

109 execution-critical layers: the seven-layer 1-D convolutional feature
extractor, the feature projection, the grouped positional convolution,
twelve transformer encoder layers with eight GEMM-shaped operators each
(Q/K/V, output projection, two attention matmuls, two FFN layers), the
quantizer/context projections, and the CTC head.

Audio length is a four-second 16 kHz clip (64000 samples), giving 200
frames after the 320x-downsampling feature extractor; hidden 768, FFN 3072.
"""

from __future__ import annotations

from repro.workloads.layers import Workload, conv2d, gemm

HIDDEN = 768
FFN = 3072
FRAMES = 200


def _conv1d(name, in_ch, out_ch, out_len, kernel, stride, repeats=1):
    """1-D temporal convolution expressed as a (1 x T) 2-D convolution."""
    return conv2d(
        name,
        in_ch,
        out_ch,
        (1, out_len),
        kernel=(1, kernel),
        stride=stride,
        repeats=repeats,
    )


def build() -> Workload:
    """Build the wav2vec2-base workload (109 execution-critical layers)."""
    layers = (
        # Feature extractor: 7 conv1d layers, 512 channels.
        _conv1d("feat_conv0", 1, 512, 12800, kernel=10, stride=5),
        _conv1d("feat_conv_k3", 512, 512, 6400, kernel=3, stride=2),
        _conv1d("feat_conv_k3b", 512, 512, 3200, kernel=3, stride=2),
        _conv1d("feat_conv_k3c", 512, 512, 1600, kernel=3, stride=2),
        _conv1d("feat_conv_k3d", 512, 512, 800, kernel=3, stride=2),
        _conv1d("feat_conv_k2a", 512, 512, 400, kernel=2, stride=2),
        _conv1d("feat_conv_k2b", 512, 512, FRAMES, kernel=2, stride=2),
        # Feature projection 512 -> 768 and positional convolution.
        gemm("feature_projection", HIDDEN, 512, FRAMES),
        _conv1d("pos_conv", HIDDEN, HIDDEN // 16, FRAMES, kernel=128, stride=1),
        # Transformer encoder: 12 layers x 8 operators.
        gemm("encoder.qkv", HIDDEN, HIDDEN, FRAMES, repeats=36),
        gemm("encoder.attn_qk", FRAMES, HIDDEN, FRAMES, repeats=12),
        gemm("encoder.attn_av", FRAMES, HIDDEN, FRAMES, repeats=12),
        gemm("encoder.out_proj", HIDDEN, HIDDEN, FRAMES, repeats=12),
        gemm("encoder.layers.0.feed_forward", FFN, HIDDEN, FRAMES, repeats=12),
        gemm("encoder.ffn_out", HIDDEN, FFN, FRAMES, repeats=12),
        # Quantizer / context projections and CTC vocabulary head.
        gemm("quantizer_proj", 256, 512, FRAMES, repeats=2),
        gemm("context_proj", 256, HIDDEN, FRAMES),
        gemm("lm_head", 32, HIDDEN, FRAMES),
    )
    return Workload(name="wav2vec2", layers=layers, total_layers=109, task="nlp")
