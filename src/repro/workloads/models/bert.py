"""BERT-base-uncased for SQuAD question answering (Devlin et al., 2019).

85 execution-critical layers: twelve encoder layers with seven GEMM-shaped
operators each (Q, K, V, attention output projection, intermediate and
output FFN layers, and the batched attention matmuls folded into one shape
of equal MAC count), plus the span-prediction head.  Table 7 of the paper
singles out ``encoder.layer.0.output.dense`` for its mapping-space size.

Model dimensions: hidden 768, FFN 3072, 12 heads, sequence length 384.
"""

from __future__ import annotations

from repro.workloads.layers import Workload, gemm

HIDDEN = 768
FFN = 3072
SEQ = 384


def build() -> Workload:
    """Build the BERT-base workload (85 execution-critical layers)."""
    layers = (
        gemm("attention.self.qkv", HIDDEN, HIDDEN, SEQ, repeats=36),
        # QK^T and AV folded into one operator of doubled column count.
        gemm("attention.matmul", SEQ, HIDDEN, 2 * SEQ, repeats=12),
        gemm("attention.output.dense", HIDDEN, HIDDEN, SEQ, repeats=12),
        gemm("intermediate.dense", FFN, HIDDEN, SEQ, repeats=12),
        gemm("encoder.layer.0.output.dense", HIDDEN, FFN, SEQ, repeats=12),
        gemm("qa_outputs", 2, HIDDEN, SEQ),
    )
    return Workload(name="bert", layers=layers, total_layers=85, task="nlp")
