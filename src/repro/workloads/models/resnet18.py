"""ResNet-18 for 224x224 ImageNet classification (He et al., CVPR 2016).

18 weighted layers: the 7x7 stem, sixteen 3x3 convolutions in eight basic
blocks, and the final fully-connected classifier.  Downsampling 1x1
projections are folded into the strided 3x3 shapes they parallel (they are
never the execution bottleneck).
"""

from __future__ import annotations

from repro.workloads.layers import Workload, conv2d, gemm


def build() -> Workload:
    """Build the ResNet-18 workload (18 execution-critical layers)."""
    layers = (
        conv2d("conv1", 3, 64, (112, 112), kernel=(7, 7), stride=2),
        conv2d("conv2_x", 64, 64, (56, 56), repeats=4),
        conv2d("conv3_down", 64, 128, (28, 28), stride=2),
        conv2d("conv3_x", 128, 128, (28, 28), repeats=3),
        conv2d("conv4_down", 128, 256, (14, 14), stride=2),
        conv2d("conv4_x", 256, 256, (14, 14), repeats=3),
        conv2d("conv5_down", 256, 512, (7, 7), stride=2),
        conv2d("conv5_x", 512, 512, (7, 7), repeats=3),
        gemm("fc", 1000, 512, 1),
    )
    return Workload(name="resnet18", layers=layers, total_layers=18, task="cv-light")
