"""EfficientNet-B0 for 224x224 ImageNet classification (Tan & Le, 2019).

82 execution-critical layers: the 3x3 stem, sixteen MBConv blocks (expand
1x1 where t=6, depthwise kxk, squeeze-excite reduce/expand, project 1x1),
the 1x1 head convolution, and the classifier.  The mixture of tiny SE GEMMs,
low-intensity depthwise convolutions, and wide pointwise convolutions makes
EfficientNet the paper's running example for multi-bottleneck aggregation
(Fig. 3, Fig. 11a).
"""

from __future__ import annotations

from repro.workloads.layers import Workload, conv2d, depthwise_conv2d, gemm


def build() -> Workload:
    """Build the EfficientNet-B0 workload (82 execution-critical layers)."""
    layers = (
        conv2d("stem", 3, 32, (112, 112), stride=2),
        # Stage 1: MBConv1 k3, 32 -> 16 @112, one block (no expansion).
        depthwise_conv2d("s1_dw", 32, (112, 112)),
        gemm("s1_se_reduce", 8, 32, 1),
        gemm("s1_se_expand", 32, 8, 1),
        conv2d("s1_project", 32, 16, (112, 112), kernel=(1, 1)),
        # Stage 2: MBConv6 k3, 16 -> 24 @56, two blocks.
        conv2d("s2_expand_first", 16, 96, (112, 112), kernel=(1, 1)),
        depthwise_conv2d("s2_dw_down", 96, (56, 56), stride=2),
        gemm("s2_se_reduce", 4, 96, 1, repeats=2),
        gemm("s2_se_expand", 96, 4, 1, repeats=2),
        conv2d("s2_project", 96, 24, (56, 56), kernel=(1, 1)),
        conv2d("s2_expand", 24, 144, (56, 56), kernel=(1, 1)),
        depthwise_conv2d("s2_dw", 144, (56, 56)),
        conv2d("s2_project_rest", 144, 24, (56, 56), kernel=(1, 1)),
        # Stage 3: MBConv6 k5, 24 -> 40 @28, two blocks.
        conv2d("s3_expand_first", 24, 144, (56, 56), kernel=(1, 1)),
        depthwise_conv2d("s3_dw_down", 144, (28, 28), kernel=(5, 5), stride=2),
        gemm("s3_se_reduce", 6, 144, 1),
        gemm("s3_se_expand", 144, 6, 1),
        conv2d("s3_project", 144, 40, (28, 28), kernel=(1, 1)),
        conv2d("s3_expand", 40, 240, (28, 28), kernel=(1, 1)),
        depthwise_conv2d("s3_dw", 240, (28, 28), kernel=(5, 5)),
        gemm("s3_se_reduce_rest", 10, 240, 1),
        gemm("s3_se_expand_rest", 240, 10, 1),
        conv2d("s3_project_rest", 240, 40, (28, 28), kernel=(1, 1)),
        # Stage 4: MBConv6 k3, 40 -> 80 @14, three blocks.
        conv2d("s4_expand_first", 40, 240, (28, 28), kernel=(1, 1)),
        depthwise_conv2d("s4_dw_down", 240, (14, 14), stride=2),
        gemm("s4_se_reduce_first", 10, 240, 1),
        gemm("s4_se_expand_first", 240, 10, 1),
        conv2d("s4_project_first", 240, 80, (14, 14), kernel=(1, 1)),
        conv2d("s4_expand", 80, 480, (14, 14), kernel=(1, 1), repeats=2),
        depthwise_conv2d("s4_dw", 480, (14, 14), repeats=2),
        gemm("s4_se_reduce", 20, 480, 1, repeats=2),
        gemm("s4_se_expand", 480, 20, 1, repeats=2),
        conv2d("s4_project", 480, 80, (14, 14), kernel=(1, 1), repeats=2),
        # Stage 5: MBConv6 k5, 80 -> 112 @14, three blocks.
        conv2d("s5_expand_first", 80, 480, (14, 14), kernel=(1, 1)),
        depthwise_conv2d("s5_dw_first", 480, (14, 14), kernel=(5, 5)),
        conv2d("s5_project_first", 480, 112, (14, 14), kernel=(1, 1)),
        conv2d("s5_expand", 112, 672, (14, 14), kernel=(1, 1), repeats=2),
        depthwise_conv2d("s5_dw", 672, (14, 14), kernel=(5, 5), repeats=2),
        gemm("s5_se_reduce", 28, 672, 1, repeats=3),
        gemm("s5_se_expand", 672, 28, 1, repeats=3),
        conv2d("s5_project", 672, 112, (14, 14), kernel=(1, 1), repeats=2),
        # Stage 6: MBConv6 k5, 112 -> 192 @7, four blocks.
        conv2d("s6_expand_first", 112, 672, (14, 14), kernel=(1, 1)),
        depthwise_conv2d("s6_dw_down", 672, (7, 7), kernel=(5, 5), stride=2),
        conv2d("s6_project_first", 672, 192, (7, 7), kernel=(1, 1)),
        conv2d("s6_expand", 192, 1152, (7, 7), kernel=(1, 1), repeats=4),
        depthwise_conv2d("s6_dw", 1152, (7, 7), kernel=(5, 5), repeats=3),
        gemm("s6_se_reduce", 48, 1152, 1, repeats=4),
        gemm("s6_se_expand", 1152, 48, 1, repeats=4),
        conv2d("s6_project", 1152, 192, (7, 7), kernel=(1, 1), repeats=3),
        # Stage 7: MBConv6 k3, 192 -> 320 @7, one block
        # (expand 192->1152 shares the s6_expand shape).
        depthwise_conv2d("s7_dw", 1152, (7, 7)),
        gemm("s7_se_reduce", 80, 1152, 1),
        gemm("s7_se_expand", 1152, 80, 1),
        conv2d("s7_project", 1152, 320, (7, 7), kernel=(1, 1)),
        conv2d("head", 320, 1280, (7, 7), kernel=(1, 1)),
        gemm("fc", 1000, 1280, 1),
    )
    return Workload(
        name="efficientnetb0", layers=layers, total_layers=82, task="cv-light"
    )
