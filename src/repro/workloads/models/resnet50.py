"""ResNet-50 for 224x224 ImageNet classification (He et al., CVPR 2016).

54 execution-critical layers: the 7x7 stem, 48 convolutions in sixteen
bottleneck blocks (1x1 reduce, 3x3, 1x1 expand), four 1x1 downsampling
projections, and the fully-connected classifier.
"""

from __future__ import annotations

from repro.workloads.layers import Workload, conv2d, gemm


def build() -> Workload:
    """Build the ResNet-50 workload (54 execution-critical layers)."""
    layers = (
        conv2d("conv1", 3, 64, (112, 112), kernel=(7, 7), stride=2),
        # Stage 2 (56x56): 3 bottleneck blocks 64-64-256.
        conv2d("conv2_reduce_first", 64, 64, (56, 56), kernel=(1, 1)),
        conv2d("conv2_reduce", 256, 64, (56, 56), kernel=(1, 1), repeats=2),
        conv2d("conv2_3x3", 64, 64, (56, 56), repeats=3),
        conv2d("conv2_expand", 64, 256, (56, 56), kernel=(1, 1), repeats=3),
        conv2d("conv2_proj", 64, 256, (56, 56), kernel=(1, 1)),
        # Stage 3 (28x28): 4 bottleneck blocks 128-128-512.
        conv2d("conv3_reduce_first", 256, 128, (56, 56), kernel=(1, 1)),
        conv2d("conv3_reduce", 512, 128, (28, 28), kernel=(1, 1), repeats=3),
        conv2d("conv3_3x3_down", 128, 128, (28, 28), stride=2),
        conv2d("conv3_3x3", 128, 128, (28, 28), repeats=3),
        conv2d("conv3_expand", 128, 512, (28, 28), kernel=(1, 1), repeats=4),
        conv2d("conv3_proj", 256, 512, (28, 28), kernel=(1, 1), stride=2),
        # Stage 4 (14x14): 6 bottleneck blocks 256-256-1024.
        conv2d("conv4_reduce_first", 512, 256, (28, 28), kernel=(1, 1)),
        conv2d("conv4_reduce", 1024, 256, (14, 14), kernel=(1, 1), repeats=5),
        conv2d("conv4_3x3_down", 256, 256, (14, 14), stride=2),
        conv2d("conv4_3x3", 256, 256, (14, 14), repeats=5),
        conv2d("conv4_expand", 256, 1024, (14, 14), kernel=(1, 1), repeats=6),
        conv2d("conv4_proj", 512, 1024, (14, 14), kernel=(1, 1), stride=2),
        # Stage 5 (7x7): 3 bottleneck blocks 512-512-2048.
        conv2d("conv5_reduce_first", 1024, 512, (14, 14), kernel=(1, 1)),
        conv2d("conv5_reduce", 2048, 512, (7, 7), kernel=(1, 1), repeats=2),
        conv2d("conv5_3x3_down", 512, 512, (7, 7), stride=2),
        conv2d("conv5_3x3", 512, 512, (7, 7), repeats=2),
        conv2d("conv5_expand", 512, 2048, (7, 7), kernel=(1, 1), repeats=3),
        conv2d("conv5_proj", 1024, 2048, (7, 7), kernel=(1, 1), stride=2),
        gemm("fc", 1000, 2048, 1),
    )
    return Workload(name="resnet50", layers=layers, total_layers=54, task="cv-large")
