"""VGG-16 for 224x224 ImageNet classification (Simonyan & Zisserman, 2015).

16 weighted layers: thirteen 3x3 convolutions and three fully-connected
layers.  The largest model in the CV suite by MACs and weight footprint; its
FC layers (especially fc6 with a 25088-wide reduction) stress off-chip
bandwidth, making it a useful memory-bound counterpoint to the conv-heavy
early layers.
"""

from __future__ import annotations

from repro.workloads.layers import Workload, conv2d, gemm


def build() -> Workload:
    """Build the VGG-16 workload (16 execution-critical layers)."""
    layers = (
        conv2d("conv1_1", 3, 64, (224, 224)),
        conv2d("conv1_2", 64, 64, (224, 224)),
        conv2d("conv2_1", 64, 128, (112, 112)),
        conv2d("conv2_2", 128, 128, (112, 112)),
        conv2d("conv3_1", 128, 256, (56, 56)),
        conv2d("conv3_x", 256, 256, (56, 56), repeats=2),
        conv2d("conv4_1", 256, 512, (28, 28)),
        conv2d("conv4_x", 512, 512, (28, 28), repeats=2),
        conv2d("conv5_x", 512, 512, (14, 14), repeats=3),
        gemm("fc6", 4096, 25088, 1),
        gemm("fc7", 4096, 4096, 1),
        gemm("fc8", 1000, 4096, 1),
    )
    return Workload(name="vgg16", layers=layers, total_layers=16, task="cv-large")
