"""Workload representation: DNN layers as perfectly nested loops.

The execution-critical operators of the paper's benchmark DNNs (CONV,
depthwise CONV, and GEMM) are all expressible as a seven-deep perfectly
nested loop over the dimensions ``N, M, C, OY, OX, FY, FX`` (batch, output
channels, input channels, output rows, output columns, filter rows, filter
columns).  A GEMM of shape ``(M x K) @ (K x cols)`` is the special case
``C = K, OX = cols, OY = FY = FX = 1``.

Every mapping, cost-model, and bottleneck-analysis computation in this
repository starts from :class:`LayerShape`.
"""

from __future__ import annotations

import enum
import functools
import math
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Tuple

__all__ = [
    "Dim",
    "Operand",
    "OperatorType",
    "LayerShape",
    "conv2d",
    "depthwise_conv2d",
    "gemm",
    "LOOP_DIMS",
    "OPERANDS",
    "operand_dims",
]


class Dim(enum.Enum):
    """The seven loop dimensions of a DNN operator nest."""

    N = "N"
    M = "M"
    C = "C"
    OY = "OY"
    OX = "OX"
    FY = "FY"
    FX = "FX"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dim.{self.value}"


#: Canonical loop order used when serialising dimension vectors.
LOOP_DIMS: Tuple[Dim, ...] = (
    Dim.N,
    Dim.M,
    Dim.C,
    Dim.OY,
    Dim.OX,
    Dim.FY,
    Dim.FX,
)


class Operand(enum.Enum):
    """Data operands of a DNN operator.

    DNN accelerators (e.g. Eyeriss-like templates) use four dedicated NoCs
    for four read/write operands: input activations ``I``, weights ``W``,
    partial-sum reads ``PSUM`` and output writes ``O``.
    """

    I = "I"
    W = "W"
    O = "O"
    PSUM = "PSUM"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Operand.{self.value}"


#: All operands, in NoC order.
OPERANDS: Tuple[Operand, ...] = (Operand.I, Operand.W, Operand.O, Operand.PSUM)

#: Reduction dimensions: iterating them produces partial sums for outputs.
REDUCTION_DIMS: FrozenSet[Dim] = frozenset({Dim.C, Dim.FY, Dim.FX})


class OperatorType(enum.Enum):
    """Functional type of a layer's execution-critical operator."""

    CONV = "CONV"
    DWCONV = "DWCONV"
    GEMM = "GEMM"


@functools.lru_cache(maxsize=None)
def _operand_dim_table(operator: OperatorType) -> Dict[Operand, FrozenSet[Dim]]:
    """Index dimensions per operand for a given operator type.

    An operand is *indexed* by a dimension if changing the loop variable
    changes which data element of the operand is accessed.  Dimensions not
    in the set provide data reuse for that operand.
    """
    if operator is OperatorType.DWCONV:
        # Depthwise: one filter per channel; M enumerates channels, no C
        # reduction across channels.
        weight = frozenset({Dim.M, Dim.FY, Dim.FX})
        inp = frozenset({Dim.N, Dim.M, Dim.OY, Dim.OX, Dim.FY, Dim.FX})
    else:
        weight = frozenset({Dim.M, Dim.C, Dim.FY, Dim.FX})
        inp = frozenset({Dim.N, Dim.C, Dim.OY, Dim.OX, Dim.FY, Dim.FX})
    out = frozenset({Dim.N, Dim.M, Dim.OY, Dim.OX})
    return {
        Operand.I: inp,
        Operand.W: weight,
        Operand.O: out,
        Operand.PSUM: out,
    }


def operand_dims(operator: OperatorType, operand: Operand) -> FrozenSet[Dim]:
    """Return the dimensions that index ``operand`` for ``operator``."""
    return _operand_dim_table(operator)[operand]


@dataclass(frozen=True)
class LayerShape:
    """Shape of a single execution-critical DNN layer.

    Attributes:
        name: Human-readable layer name (unique inside a model).
        operator: CONV / DWCONV / GEMM.
        dims: Loop bound per :class:`Dim`.
        stride: Convolution stride (1 for GEMM).
        repeats: Number of layers in the model sharing this exact shape.
            The paper analyses layers with *unique* tensor shapes and weighs
            them by multiplicity; ``repeats`` carries that multiplicity.
        bytes_per_element: Data precision in bytes (int16 -> 2).
    """

    name: str
    operator: OperatorType
    dims: Tuple[int, int, int, int, int, int, int]
    stride: int = 1
    repeats: int = 1
    bytes_per_element: int = 2

    def __post_init__(self) -> None:
        if len(self.dims) != len(LOOP_DIMS):
            raise ValueError(
                f"dims must have {len(LOOP_DIMS)} entries, got {len(self.dims)}"
            )
        if any(d < 1 for d in self.dims):
            raise ValueError(f"loop bounds must be >= 1, got {self.dims}")
        if self.stride < 1:
            raise ValueError(f"stride must be >= 1, got {self.stride}")
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")

    # -- dimension accessors -------------------------------------------------

    def dim(self, d: Dim) -> int:
        """Loop bound of dimension ``d``."""
        return self.dims[LOOP_DIMS.index(d)]

    @property
    def dim_map(self) -> Dict[Dim, int]:
        """Loop bounds keyed by :class:`Dim`."""
        return dict(zip(LOOP_DIMS, self.dims))

    # -- derived sizes -------------------------------------------------------

    @property
    def macs(self) -> int:
        """Total multiply-accumulate operations for one invocation."""
        return math.prod(self.dims)

    @property
    def input_rows(self) -> int:
        return (self.dim(Dim.OY) - 1) * self.stride + self.dim(Dim.FY)

    @property
    def input_cols(self) -> int:
        return (self.dim(Dim.OX) - 1) * self.stride + self.dim(Dim.FX)

    def operand_dims(self, operand: Operand) -> FrozenSet[Dim]:
        """Dimensions indexing ``operand`` for this layer's operator."""
        return operand_dims(self.operator, operand)

    def tensor_elements(self, operand: Operand) -> int:
        """Total number of elements of ``operand`` touched by the layer."""
        d = self.dim_map
        if operand is Operand.W:
            channels = 1 if self.operator is OperatorType.DWCONV else d[Dim.C]
            return d[Dim.M] * channels * d[Dim.FY] * d[Dim.FX]
        if operand in (Operand.O, Operand.PSUM):
            return d[Dim.N] * d[Dim.M] * d[Dim.OY] * d[Dim.OX]
        # Input activations: halo-extended spatial extent.
        channels = d[Dim.M] if self.operator is OperatorType.DWCONV else d[Dim.C]
        return d[Dim.N] * channels * self.input_rows * self.input_cols

    def tensor_bytes(self, operand: Operand) -> int:
        """Footprint of ``operand`` in bytes."""
        return self.tensor_elements(operand) * self.bytes_per_element

    @property
    def total_footprint_bytes(self) -> int:
        """Combined I+W+O footprint (PSUM shares the O tensor)."""
        return sum(
            self.tensor_bytes(op) for op in (Operand.I, Operand.W, Operand.O)
        )

    def with_batch(self, batch: int) -> "LayerShape":
        """Return a copy with batch dimension ``N`` replaced."""
        dims = list(self.dims)
        dims[LOOP_DIMS.index(Dim.N)] = batch
        return replace(self, dims=tuple(dims))

    def describe(self) -> str:
        """One-line human readable description."""
        d = self.dim_map
        return (
            f"{self.name} [{self.operator.value}] "
            f"N={d[Dim.N]} M={d[Dim.M]} C={d[Dim.C]} "
            f"OY={d[Dim.OY]} OX={d[Dim.OX]} FY={d[Dim.FY]} FX={d[Dim.FX]} "
            f"stride={self.stride} x{self.repeats}"
        )


def conv2d(
    name: str,
    in_channels: int,
    out_channels: int,
    output_hw: Tuple[int, int],
    kernel: Tuple[int, int] = (3, 3),
    stride: int = 1,
    batch: int = 1,
    repeats: int = 1,
) -> LayerShape:
    """Build a standard convolution layer shape."""
    oy, ox = output_hw
    fy, fx = kernel
    return LayerShape(
        name=name,
        operator=OperatorType.CONV,
        dims=(batch, out_channels, in_channels, oy, ox, fy, fx),
        stride=stride,
        repeats=repeats,
    )


def depthwise_conv2d(
    name: str,
    channels: int,
    output_hw: Tuple[int, int],
    kernel: Tuple[int, int] = (3, 3),
    stride: int = 1,
    batch: int = 1,
    repeats: int = 1,
) -> LayerShape:
    """Build a depthwise convolution layer shape (C collapsed to 1)."""
    oy, ox = output_hw
    fy, fx = kernel
    return LayerShape(
        name=name,
        operator=OperatorType.DWCONV,
        dims=(batch, channels, 1, oy, ox, fy, fx),
        stride=stride,
        repeats=repeats,
    )


def gemm(
    name: str,
    rows: int,
    inner: int,
    cols: int,
    batch: int = 1,
    repeats: int = 1,
) -> LayerShape:
    """Build a GEMM layer shape: ``(rows x inner) @ (inner x cols)``.

    ``rows`` maps to M (weights' output dim), ``inner`` to C (reduction),
    ``cols`` to OX (independent output columns).
    """
    return LayerShape(
        name=name,
        operator=OperatorType.GEMM,
        dims=(batch, rows, inner, 1, cols, 1, 1),
        repeats=repeats,
    )


@dataclass(frozen=True)
class Workload:
    """A DNN model as an ordered list of execution-critical layer shapes.

    Attributes:
        name: Model name (e.g. ``"resnet18"``).
        layers: Unique layer shapes; each carries a ``repeats`` multiplicity.
        total_layers: Total layer count of the model as reported by the
            paper (including the repeated shapes).
        task: Short label for the task ("cv-light", "cv-large", "nlp", ...).
    """

    name: str
    layers: Tuple[LayerShape, ...]
    total_layers: int
    task: str = "cv"

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("workload needs at least one layer")
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate layer names in {self.name}")

    @property
    def unique_layer_count(self) -> int:
        return len(self.layers)

    @property
    def repeated_layer_count(self) -> int:
        """Sum of multiplicities (the model's execution-critical layers)."""
        return sum(layer.repeats for layer in self.layers)

    @property
    def total_macs(self) -> int:
        """MACs for one inference, accounting for repeated shapes."""
        return sum(layer.macs * layer.repeats for layer in self.layers)

    def layer(self, name: str) -> LayerShape:
        """Look a layer up by name."""
        for candidate in self.layers:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no layer named {name!r} in {self.name}")

    def scaled_latency(self, per_layer_latency: Dict[str, float]) -> float:
        """Combine per-unique-layer latencies into a model latency.

        Args:
            per_layer_latency: Latency (any unit) per unique layer name.

        Returns:
            Sum over layers of ``latency * repeats``.
        """
        missing = [l.name for l in self.layers if l.name not in per_layer_latency]
        if missing:
            raise KeyError(f"missing latencies for layers: {missing}")
        return sum(
            per_layer_latency[layer.name] * layer.repeats for layer in self.layers
        )


def validate_workload(workload: Workload) -> List[str]:
    """Return a list of consistency warnings for a workload (empty if clean)."""
    warnings: List[str] = []
    if workload.repeated_layer_count > workload.total_layers:
        warnings.append(
            f"{workload.name}: repeated execution-critical layers "
            f"({workload.repeated_layer_count}) exceed declared total layers "
            f"({workload.total_layers})"
        )
    for layer in workload.layers:
        if layer.operator is OperatorType.DWCONV and layer.dim(Dim.C) != 1:
            warnings.append(f"{layer.name}: DWCONV must have C == 1")
        if layer.operator is OperatorType.GEMM and (
            layer.dim(Dim.OY) != 1 or layer.dim(Dim.FY) != 1 or layer.dim(Dim.FX) != 1
        ):
            warnings.append(f"{layer.name}: GEMM must have OY=FY=FX=1")
    return warnings
