"""Registry of benchmark workloads.

The paper evaluates 11 DNNs (Section 5).  This module provides name-based
lookup, the canonical evaluation order, and the light/large/NLP grouping
used for constraint selection (Table 1's throughput requirements differ per
group).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.workloads.layers import Workload, validate_workload
from repro.workloads.models import (
    bert,
    efficientnet_b0,
    fasterrcnn_mobilenetv3,
    mobilenet_v2,
    resnet18,
    resnet50,
    transformer,
    vgg16,
    vision_transformer,
    wav2vec2,
    yolov5,
)

__all__ = [
    "MODEL_NAMES",
    "available_models",
    "load_workload",
    "load_all_workloads",
    "paper_layer_counts",
]

_BUILDERS: Dict[str, Callable[[], Workload]] = {
    "resnet18": resnet18.build,
    "mobilenetv2": mobilenet_v2.build,
    "efficientnetb0": efficientnet_b0.build,
    "vgg16": vgg16.build,
    "resnet50": resnet50.build,
    "vision_transformer": vision_transformer.build,
    "fasterrcnn_mobilenetv3": fasterrcnn_mobilenetv3.build,
    "yolov5": yolov5.build,
    "transformer": transformer.build,
    "bert": bert.build,
    "wav2vec2": wav2vec2.build,
}

#: Canonical evaluation order (paper's Fig. 9 / Table 2 column order).
MODEL_NAMES: Tuple[str, ...] = tuple(_BUILDERS)

#: Layer counts reported in Section 5 of the paper.
PAPER_LAYER_COUNTS: Dict[str, int] = {
    "resnet18": 18,
    "mobilenetv2": 53,
    "efficientnetb0": 82,
    "vgg16": 16,
    "resnet50": 54,
    "vision_transformer": 86,
    "fasterrcnn_mobilenetv3": 79,
    "yolov5": 60,
    "transformer": 163,
    "bert": 85,
    "wav2vec2": 109,
}

_CACHE: Dict[str, Workload] = {}


def available_models() -> List[str]:
    """Names of all registered benchmark models."""
    return list(MODEL_NAMES)


def load_workload(name: str) -> Workload:
    """Load (and cache) a benchmark workload by name.

    Raises:
        KeyError: if ``name`` is not a registered model.
        ValueError: if the built workload fails consistency validation.
    """
    key = name.lower()
    if key not in _BUILDERS:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(MODEL_NAMES)}"
        )
    if key not in _CACHE:
        workload = _BUILDERS[key]()
        problems = validate_workload(workload)
        if problems:
            raise ValueError(f"invalid workload {key}: {problems}")
        _CACHE[key] = workload
    return _CACHE[key]


def load_all_workloads() -> Dict[str, Workload]:
    """Load every benchmark workload, keyed by name."""
    return {name: load_workload(name) for name in MODEL_NAMES}


def paper_layer_counts() -> Dict[str, int]:
    """Layer counts as reported in the paper (for fidelity checks)."""
    return dict(PAPER_LAYER_COUNTS)
