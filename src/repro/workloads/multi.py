"""Multi-workload composition: one accelerator for several DNNs.

§4.4 of the paper generalizes bottleneck-driven DSE to "multi-functional
*or multiple-workload* executions": the aggregation machinery treats every
sub-function uniformly, so exploring one design for several DNNs only
requires presenting their layers as a single workload.  This module builds
that combined workload, weighting each model's layers so that every model
contributes its own inference latency to the combined objective.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.workloads.layers import LayerShape, Workload
from repro.workloads.registry import load_workload

__all__ = ["combine_workloads", "load_combined_workload"]


def combine_workloads(
    workloads: Sequence[Workload], name: Optional[str] = None
) -> Workload:
    """Concatenate several workloads into one multi-DNN workload.

    Layer names are prefixed with their model name so bottleneck analysis
    can attribute factors to the originating DNN; repeats are preserved so
    the combined latency is the sum of the models' inference latencies
    (the single-stream multi-model objective).
    """
    if not workloads:
        raise ValueError("need at least one workload to combine")
    if len({w.name for w in workloads}) != len(workloads):
        raise ValueError("duplicate workload names in combination")
    layers: List[LayerShape] = []
    for workload in workloads:
        for layer in workload.layers:
            layers.append(
                replace(layer, name=f"{workload.name}/{layer.name}")
            )
    return Workload(
        name=name or "+".join(w.name for w in workloads),
        layers=tuple(layers),
        total_layers=sum(w.total_layers for w in workloads),
        task="multi",
    )


def load_combined_workload(
    model_names: Sequence[str], name: Optional[str] = None
) -> Workload:
    """Combine registered benchmark models by name."""
    return combine_workloads(
        [load_workload(m) for m in model_names], name=name
    )


def per_model_latency(
    combined: Workload, per_layer_latency_cycles: Dict[str, float]
) -> Dict[str, float]:
    """Split a combined run's per-layer latencies back per model.

    Args:
        combined: A workload produced by :func:`combine_workloads`.
        per_layer_latency_cycles: Latency per (prefixed) unique layer.

    Returns:
        Summed (repeat-weighted) latency cycles per model prefix.
    """
    totals: Dict[str, float] = {}
    for layer in combined.layers:
        prefix, _, _ = layer.name.partition("/")
        totals[prefix] = (
            totals.get(prefix, 0.0)
            + per_layer_latency_cycles[layer.name] * layer.repeats
        )
    return totals
