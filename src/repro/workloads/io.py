"""Workload import/export: JSON specifications for custom DNNs.

Downstream users rarely want to hand-write :class:`LayerShape` tuples;
this module defines a small JSON schema for workloads so models extracted
from any framework can be dropped in:

```json
{
  "name": "my_model",
  "task": "cv",
  "total_layers": 3,
  "layers": [
    {"name": "conv1", "op": "conv", "in": 3, "out": 64,
     "output": [112, 112], "kernel": [7, 7], "stride": 2},
    {"name": "dw", "op": "dwconv", "channels": 64, "output": [56, 56]},
    {"name": "fc", "op": "gemm", "rows": 1000, "inner": 64, "cols": 1}
  ]
}
```

``repeats`` and ``batch`` are optional on every layer.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.workloads.layers import (
    LayerShape,
    OperatorType,
    Workload,
    conv2d,
    depthwise_conv2d,
    gemm,
)

__all__ = [
    "workload_from_dict",
    "workload_to_dict",
    "load_workload_json",
    "save_workload_json",
    "WorkloadSpecError",
]


class WorkloadSpecError(ValueError):
    """A malformed workload specification."""


def _require(entry: Dict[str, Any], *keys: str) -> None:
    missing = [k for k in keys if k not in entry]
    if missing:
        raise WorkloadSpecError(
            f"layer {entry.get('name', '?')!r} missing fields: {missing}"
        )


def _layer_from_dict(entry: Dict[str, Any]) -> LayerShape:
    if "name" not in entry or "op" not in entry:
        raise WorkloadSpecError(f"layer entry needs 'name' and 'op': {entry}")
    op = str(entry["op"]).lower()
    common = {
        "repeats": int(entry.get("repeats", 1)),
        "batch": int(entry.get("batch", 1)),
    }
    if op == "conv":
        _require(entry, "in", "out", "output")
        return conv2d(
            entry["name"],
            int(entry["in"]),
            int(entry["out"]),
            tuple(entry["output"]),
            kernel=tuple(entry.get("kernel", (3, 3))),
            stride=int(entry.get("stride", 1)),
            **common,
        )
    if op == "dwconv":
        _require(entry, "channels", "output")
        return depthwise_conv2d(
            entry["name"],
            int(entry["channels"]),
            tuple(entry["output"]),
            kernel=tuple(entry.get("kernel", (3, 3))),
            stride=int(entry.get("stride", 1)),
            **common,
        )
    if op == "gemm":
        _require(entry, "rows", "inner", "cols")
        return gemm(
            entry["name"],
            int(entry["rows"]),
            int(entry["inner"]),
            int(entry["cols"]),
            **common,
        )
    raise WorkloadSpecError(f"unknown operator {entry['op']!r}")


def workload_from_dict(spec: Dict[str, Any]) -> Workload:
    """Build a workload from a parsed JSON specification."""
    if "name" not in spec or "layers" not in spec:
        raise WorkloadSpecError("workload spec needs 'name' and 'layers'")
    if not spec["layers"]:
        raise WorkloadSpecError("workload spec has no layers")
    layers = tuple(_layer_from_dict(entry) for entry in spec["layers"])
    total = int(
        spec.get("total_layers", sum(layer.repeats for layer in layers))
    )
    return Workload(
        name=str(spec["name"]),
        layers=layers,
        total_layers=total,
        task=str(spec.get("task", "custom")),
    )


def workload_to_dict(workload: Workload) -> Dict[str, Any]:
    """Serialize a workload back to the JSON schema."""
    layers: List[Dict[str, Any]] = []
    for layer in workload.layers:
        d = layer.dim_map
        from repro.workloads.layers import Dim

        entry: Dict[str, Any] = {"name": layer.name}
        if layer.operator is OperatorType.GEMM:
            entry.update(
                op="gemm",
                rows=d[Dim.M],
                inner=d[Dim.C],
                cols=d[Dim.OX],
            )
        elif layer.operator is OperatorType.DWCONV:
            entry.update(
                op="dwconv",
                channels=d[Dim.M],
                output=[d[Dim.OY], d[Dim.OX]],
                kernel=[d[Dim.FY], d[Dim.FX]],
                stride=layer.stride,
            )
        else:
            entry.update(
                op="conv",
                **{"in": d[Dim.C], "out": d[Dim.M]},
                output=[d[Dim.OY], d[Dim.OX]],
                kernel=[d[Dim.FY], d[Dim.FX]],
                stride=layer.stride,
            )
        if layer.repeats != 1:
            entry["repeats"] = layer.repeats
        if d[Dim.N] != 1:
            entry["batch"] = d[Dim.N]
        layers.append(entry)
    return {
        "name": workload.name,
        "task": workload.task,
        "total_layers": workload.total_layers,
        "layers": layers,
    }


def load_workload_json(path: Union[str, Path]) -> Workload:
    """Load a workload from a JSON file."""
    with open(path) as handle:
        return workload_from_dict(json.load(handle))


def save_workload_json(workload: Workload, path: Union[str, Path]) -> None:
    """Write a workload to a JSON file."""
    with open(path, "w") as handle:
        json.dump(workload_to_dict(workload), handle, indent=2)
        handle.write("\n")
