"""DNN workload substrate: layer shapes and the 11-model benchmark zoo."""

from repro.workloads.layers import (
    Dim,
    LayerShape,
    Operand,
    OperatorType,
    Workload,
    conv2d,
    depthwise_conv2d,
    gemm,
)
from repro.workloads.io import (
    load_workload_json,
    save_workload_json,
    workload_from_dict,
    workload_to_dict,
)
from repro.workloads.multi import combine_workloads, load_combined_workload
from repro.workloads.registry import (
    MODEL_NAMES,
    available_models,
    load_all_workloads,
    load_workload,
)

__all__ = [
    "Dim",
    "LayerShape",
    "Operand",
    "OperatorType",
    "Workload",
    "conv2d",
    "depthwise_conv2d",
    "gemm",
    "MODEL_NAMES",
    "available_models",
    "combine_workloads",
    "load_combined_workload",
    "load_all_workloads",
    "load_workload",
    "load_workload_json",
    "save_workload_json",
    "workload_from_dict",
    "workload_to_dict",
]
