"""Worker supervision policy: retries, backoff, timeouts, circuit breaker.

The policy objects here are consumed by
:class:`repro.perf.parallel.WorkerPool` (per-task supervision),
:class:`repro.cost.evaluator.CostEvaluator` (whole-evaluation retries),
and :class:`repro.core.dse.explainable.ExplainableDSE` (campaign-level
circuit breaking).  Environment knobs:

* ``REPRO_TASK_TIMEOUT`` — per-task wall-clock budget in seconds
  (unset/``0`` disables timeouts).
* ``REPRO_MAX_RETRIES`` — retry budget per task/evaluation (default 3).
* ``REPRO_RETRY_BACKOFF`` — base backoff delay in seconds (default
  0.05); attempt ``n`` sleeps ``base * 2**(n-1)`` plus up to 25%
  deterministic jitter derived from the task signature, so re-runs of
  the same campaign back off identically.
* ``REPRO_MAX_FAILURE_RATE`` — quarantined-candidate fraction above
  which the campaign circuit breaker trips (default 0.5; ``>= 1``
  disables the breaker).
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass
from typing import Dict, Optional

from repro.resilience.errors import SystemicFaultError

__all__ = [
    "DEFAULT_MAX_RETRIES",
    "DEFAULT_BACKOFF_BASE",
    "DEFAULT_MAX_FAILURE_RATE",
    "RetryPolicy",
    "ShardSupervisor",
    "FailureRateBreaker",
    "resolve_task_timeout",
]

DEFAULT_MAX_RETRIES = 3
DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_MAX_FAILURE_RATE = 0.5
#: Minimum quarantined candidates before the breaker may trip, so one
#: early straggler cannot abort a long campaign.
BREAKER_MIN_FAILURES = 3


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def resolve_task_timeout(timeout: Optional[object] = None) -> Optional[float]:
    """Per-task timeout in seconds; None/0 (or unset env) disables it."""
    if timeout is None:
        timeout = _env_float("REPRO_TASK_TIMEOUT", 0.0)
    timeout = float(timeout)
    return timeout if timeout > 0 else None


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    Attributes:
        max_retries: Retries after the first attempt (0 = fail fast).
        backoff_base: First-retry delay in seconds; doubles per retry.
        task_timeout: Per-task wall-clock budget (None = unbounded).
    """

    max_retries: int = DEFAULT_MAX_RETRIES
    backoff_base: float = DEFAULT_BACKOFF_BASE
    task_timeout: Optional[float] = None

    @classmethod
    def from_env(
        cls,
        max_retries: Optional[int] = None,
        backoff_base: Optional[float] = None,
        task_timeout: Optional[object] = None,
    ) -> "RetryPolicy":
        return cls(
            max_retries=max(
                0,
                _env_int("REPRO_MAX_RETRIES", DEFAULT_MAX_RETRIES)
                if max_retries is None
                else int(max_retries),
            ),
            backoff_base=max(
                0.0,
                _env_float("REPRO_RETRY_BACKOFF", DEFAULT_BACKOFF_BASE)
                if backoff_base is None
                else float(backoff_base),
            ),
            task_timeout=resolve_task_timeout(task_timeout),
        )

    def backoff_seconds(self, signature: str, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based), with jitter seeded
        from the task signature so repeated runs back off identically."""
        if attempt <= 0 or self.backoff_base <= 0:
            return 0.0
        jitter = zlib.crc32(f"{signature}|{attempt}".encode()) / 2**32
        return self.backoff_base * 2 ** (attempt - 1) * (1.0 + 0.25 * jitter)

    def sleep_before_retry(self, signature: str, attempt: int) -> None:
        delay = self.backoff_seconds(signature, attempt)
        if delay > 0:
            time.sleep(delay)


class ShardSupervisor:
    """Per-shard attempt ledger for the shared-memory fleet.

    Each shard of a fused block gets its own retry budget from the
    shared :class:`RetryPolicy`.  On a worker crash or timeout the fleet
    asks :meth:`record_failure`; the answer is either ``"resubmit"``
    (the shard goes to a sibling worker after the policy's deterministic
    backoff) or ``"fallback"`` (the retry budget is spent — evaluate the
    shard serially in the parent, which can never crash the campaign).
    """

    RESUBMIT = "resubmit"
    FALLBACK = "fallback"

    def __init__(self, policy: RetryPolicy):
        self.policy = policy
        self._attempts: Dict[int, int] = {}

    def attempt(self, shard_index: int) -> int:
        """1-based attempt number the shard is currently on."""
        return self._attempts.get(shard_index, 0) + 1

    def record_failure(self, shard_index: int, signature: str) -> str:
        """Charge one failed attempt; decide resubmit vs serial fallback.

        Sleeps the policy's deterministic backoff before answering
        ``"resubmit"`` so a flapping worker does not get hammered.
        """
        attempts = self._attempts.get(shard_index, 0) + 1
        self._attempts[shard_index] = attempts
        if attempts > self.policy.max_retries:
            return self.FALLBACK
        self.policy.sleep_before_retry(signature, attempts)
        return self.RESUBMIT


class FailureRateBreaker:
    """Campaign-level circuit breaker over candidate-evaluation outcomes.

    Counts quarantined vs. successful evaluations; once at least
    ``BREAKER_MIN_FAILURES`` candidates failed *and* the failure fraction
    exceeds ``max_failure_rate``, :attr:`tripped` turns True and the DSE
    aborts cleanly through its checkpoint path (raising
    :class:`~repro.resilience.errors.SystemicFaultError`) instead of
    grinding through a systemically broken evaluator.
    """

    def __init__(self, max_failure_rate: Optional[float] = None):
        self.max_failure_rate = (
            _env_float("REPRO_MAX_FAILURE_RATE", DEFAULT_MAX_FAILURE_RATE)
            if max_failure_rate is None
            else float(max_failure_rate)
        )
        self.failures = 0
        self.successes = 0

    @property
    def total(self) -> int:
        return self.failures + self.successes

    @property
    def failure_rate(self) -> float:
        return self.failures / self.total if self.total else 0.0

    @property
    def enabled(self) -> bool:
        return self.max_failure_rate < 1.0

    @property
    def tripped(self) -> bool:
        return (
            self.enabled
            and self.failures >= BREAKER_MIN_FAILURES
            and self.failure_rate > self.max_failure_rate
        )

    def record_success(self) -> None:
        self.successes += 1

    def record_failure(self) -> None:
        self.failures += 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "failures": self.failures,
            "successes": self.successes,
            "failure_rate": self.failure_rate,
            "max_failure_rate": self.max_failure_rate,
            "tripped": self.tripped,
        }

    def systemic_fault(self, **context) -> SystemicFaultError:
        """The error to raise when tripped (context merged in)."""
        return SystemicFaultError(
            f"circuit breaker tripped: {self.failures} of {self.total} "
            f"candidate evaluations failed "
            f"(rate {self.failure_rate:.0%} > "
            f"limit {self.max_failure_rate:.0%})",
            failures=self.failures,
            evaluations=self.total,
            rate=round(self.failure_rate, 4),
            **context,
        )
