"""The fault taxonomy of the evaluation pipeline.

Every fault the pipeline can encounter is expressed as a
:class:`ReproError` subclass carrying structured context (design point,
layer, attempt count, ...) and a ``retryable`` flag, so callers
distinguish transient infrastructure faults (a crashed or hung worker —
retry) from deterministic failures (a mapper bug on one layer, a corrupt
cache file — quarantine and continue) without catching bare
``Exception``:

* :class:`EvaluationError` — a design-point evaluation failed.

  * :class:`WorkerCrashError` — a worker process/thread died mid-task
    (``BrokenProcessPool``, SIGKILL); retryable.
  * :class:`WorkerTimeoutError` — a task exceeded ``REPRO_TASK_TIMEOUT``;
    retryable until the retry budget runs out.
  * :class:`MapperFailureError` — the mapping search itself raised;
    deterministic, not retryable.
  * :class:`InfeasibleDesignError` — the design point cannot be
    instantiated/evaluated at all; deterministic, not retryable.

* :class:`CacheCorruptionError` — a persisted mapping-cache file is
  truncated/corrupt or could not be written.
* :class:`SystemicFaultError` — the campaign-level failure-rate circuit
  breaker tripped (``REPRO_MAX_FAILURE_RATE``); the campaign state was
  checkpointed before this was raised.

The exceptions are picklable (worker processes return them across the
pool boundary), and ``str()`` renders the context as a stable one-liner
for logs, warnings, and :class:`~repro.telemetry.events.CandidateFailed`
events.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = [
    "ReproError",
    "EvaluationError",
    "WorkerCrashError",
    "WorkerTimeoutError",
    "MapperFailureError",
    "InfeasibleDesignError",
    "CacheCorruptionError",
    "SystemicFaultError",
    "is_retryable",
    "as_repro_error",
]


class ReproError(Exception):
    """Base of the pipeline fault taxonomy.

    Args:
        message: Human-readable description of the fault.
        retryable: Whether retrying the same operation may succeed
            (transient infrastructure faults) or not (deterministic
            failures); subclasses set a default.
        context: Structured context (``point``, ``layer``, ``attempts``,
            ``path``, ...) for telemetry and quarantine records.
    """

    #: Subclass default for the ``retryable`` flag.
    default_retryable = False

    def __init__(
        self,
        message: str,
        *,
        retryable: Optional[bool] = None,
        **context: Any,
    ):
        super().__init__(message)
        self.message = message
        self.retryable = (
            self.default_retryable if retryable is None else retryable
        )
        self.context: Dict[str, Any] = {
            k: v for k, v in context.items() if v is not None
        }

    def __str__(self) -> str:
        if not self.context:
            return self.message
        detail = ", ".join(
            f"{key}={self.context[key]!r}" for key in sorted(self.context)
        )
        return f"{self.message} [{detail}]"

    def __reduce__(self):  # keep context across pickling (process pools)
        return (_rebuild_error, (type(self), self.message, self.retryable,
                                 self.context))

    def with_context(self, **context: Any) -> "ReproError":
        """Attach additional context in place (returns self)."""
        for key, value in context.items():
            if value is not None:
                self.context.setdefault(key, value)
        return self


def _rebuild_error(cls, message, retryable, context):
    error = cls(message, retryable=retryable)
    error.context = dict(context)
    return error


class EvaluationError(ReproError):
    """A design-point evaluation failed (context: ``point``, ``attempts``)."""


class WorkerCrashError(EvaluationError):
    """A worker died mid-task (broken pool, SIGKILL, injected crash)."""

    default_retryable = True


class WorkerTimeoutError(EvaluationError):
    """A task exceeded its ``REPRO_TASK_TIMEOUT`` budget."""

    default_retryable = True


class MapperFailureError(EvaluationError):
    """The per-layer mapping search raised (context: ``layer``)."""


class InfeasibleDesignError(EvaluationError):
    """A design point cannot be instantiated or evaluated at all."""


class CacheCorruptionError(ReproError):
    """A persisted cache file is corrupt or could not be written
    (context: ``path``)."""


class SystemicFaultError(ReproError):
    """The failure-rate circuit breaker tripped: faults are systemic, not
    isolated, so the campaign aborted through the checkpoint path
    (context: ``failures``, ``evaluations``, ``rate``, ``checkpoint``)."""


def is_retryable(exc: BaseException) -> bool:
    """Whether retrying the operation that raised ``exc`` may succeed.

    True for retryable :class:`ReproError` instances and for the stdlib
    executor-infrastructure faults (``BrokenExecutor``, future
    ``TimeoutError``); False for everything else — deterministic
    failures must surface, not burn the retry budget.
    """
    if isinstance(exc, ReproError):
        return exc.retryable
    from concurrent.futures import BrokenExecutor, TimeoutError as FutTimeout

    return isinstance(exc, (BrokenExecutor, FutTimeout))


def as_repro_error(
    exc: BaseException, default_message: str = "evaluation failed", **context
) -> ReproError:
    """Coerce any exception into the taxonomy (idempotent).

    A :class:`ReproError` passes through with ``context`` merged; any
    other exception becomes a non-retryable :class:`EvaluationError`
    recording the original type.
    """
    if isinstance(exc, ReproError):
        return exc.with_context(**context)
    return EvaluationError(
        f"{default_message}: {type(exc).__name__}: {exc}",
        retryable=False,
        cause=type(exc).__name__,
        **context,
    )
