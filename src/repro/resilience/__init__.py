"""Resilience layer: fault taxonomy, worker supervision, fault injection.

Makes long DSE campaigns survive the faults that previously aborted
them (see ``docs/resilience.md``):

* :mod:`.errors` — the :class:`ReproError` taxonomy with structured
  context and a ``retryable`` flag, so callers distinguish transient
  worker faults from deterministic failures;
* :mod:`.supervisor` — :class:`RetryPolicy` (bounded retries,
  deterministic exponential backoff, ``REPRO_TASK_TIMEOUT``) and the
  campaign :class:`FailureRateBreaker` (``REPRO_MAX_FAILURE_RATE``);
* :mod:`.fault_injection` — the deterministic ``REPRO_FAULT_INJECT``
  chaos harness (crash/hang/kill/corrupt at named sites) used by
  ``tests/test_resilience.py`` and ``benchmarks/chaos_smoke.py``.
"""

from repro.resilience.errors import (
    CacheCorruptionError,
    EvaluationError,
    InfeasibleDesignError,
    MapperFailureError,
    ReproError,
    SystemicFaultError,
    WorkerCrashError,
    WorkerTimeoutError,
    as_repro_error,
    is_retryable,
)
from repro.resilience.fault_injection import (
    FaultPlan,
    FaultSpec,
    FaultSpecError,
    InjectedCorruption,
    InjectedCrash,
    attempt_scope,
    current_attempt,
    inject,
    parse_fault_plan,
)
from repro.resilience.supervisor import (
    FailureRateBreaker,
    RetryPolicy,
    resolve_task_timeout,
)

__all__ = [
    "CacheCorruptionError",
    "EvaluationError",
    "FailureRateBreaker",
    "FaultPlan",
    "FaultSpec",
    "FaultSpecError",
    "InfeasibleDesignError",
    "InjectedCorruption",
    "InjectedCrash",
    "MapperFailureError",
    "ReproError",
    "RetryPolicy",
    "SystemicFaultError",
    "WorkerCrashError",
    "WorkerTimeoutError",
    "as_repro_error",
    "attempt_scope",
    "current_attempt",
    "inject",
    "is_retryable",
    "parse_fault_plan",
    "resolve_task_timeout",
]
