"""Deterministic fault injection for chaos-testing the evaluation stack.

``REPRO_FAULT_INJECT`` holds a comma-separated list of fault specs::

    kind:site[:rate][:key=value]...

    crash:evaluate:0.05:seed=7      # crash 5% of evaluate() calls
    hang:mapper:0.02:seed=11:for=5  # 2% of mapper searches sleep 5s
    kill:mapper:1.0:match=conv      # SIGKILL the worker on conv layers
    corrupt:cache-load:step=1       # 1st cache load sees a corrupt file
    crash:evaluate:1.0:match=pes=512  # every evaluation of pes=512 points

* ``kind`` — ``crash`` (raise :class:`InjectedCrash`, a retryable
  :class:`~repro.resilience.errors.WorkerCrashError`), ``hang``
  (``time.sleep(for)``, exercising ``REPRO_TASK_TIMEOUT``), ``kill``
  (SIGKILL the current process — only inside a process-pool worker;
  elsewhere it degrades to ``crash`` so injected faults can never kill
  the campaign parent), or ``corrupt`` (raise
  :class:`InjectedCorruption`, which cache load paths treat exactly like
  a truncated pickle).
* ``site`` — a named injection point: ``evaluate`` (the cost evaluator,
  keyed by the design point), ``mapper`` (the per-layer mapping search,
  keyed by the layer name), ``cache-load`` / ``cache-save`` (mapping
  cache persistence, keyed by the file path), ``shm`` (a shared-memory
  fleet worker evaluating one shard, keyed by
  ``shard-<start>-<stop>`` — ``kill`` faults here SIGKILL the persistent
  worker, exercising shard resubmission), plus the four *service-layer*
  sites wired into :mod:`repro.service`: ``submit`` (after the spooled
  submission record is written, keyed by the idempotency key / campaign
  id), ``slice`` (between scheduler slices, keyed by the campaign id),
  ``spool-write`` (per-campaign state persistence, keyed by the campaign
  id or ``tenants``), and ``http-response`` (just before an endpoint
  response is written, keyed by the request path).  Unlike the
  evaluation sites, the service sites run with ``allow_kill`` enabled:
  a ``kill`` fault there SIGKILLs the *server* process by design — the
  spool makes server death recoverable, and the torture harness
  (``benchmarks/service_torture.py``) exercises exactly that.  The
  ambient attempt at these sites is the server-side retry correlator
  (idempotent-submit replay count, per-campaign slice index, per-record
  persist count, per-process response count), so rate-based faults
  re-roll on client retries just like evaluation retries re-roll.
* ``rate`` — firing probability in ``[0, 1]``.  The decision is the
  deterministic hash of ``(seed, site, key, attempt)`` — no global RNG —
  so a given campaign always faults at the same calls regardless of
  worker count or scheduling, and a *retry* of the same call (higher
  ambient attempt, see :func:`attempt_scope`) re-rolls the hash and
  almost always succeeds.  ``rate=1.0`` fires on every attempt: the
  retry budget drains and the candidate is quarantined.
* params — ``seed=N`` (hash seed, default 0), ``match=S`` (fire only
  when the site key contains substring ``S``), ``for=SECONDS`` (hang
  duration, default 30), ``step=N`` (fire on exactly the Nth invocation
  of the site in this process, instead of hashing).

Injection is wired permanently into the hot path but costs one
environment lookup when ``REPRO_FAULT_INJECT`` is unset, and the
decisions never consult wall clock or ``random``, so fault-free runs
stay bit-identical.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.resilience.errors import CacheCorruptionError, WorkerCrashError

__all__ = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultSpec",
    "FaultPlan",
    "FaultSpecError",
    "InjectedCrash",
    "InjectedCorruption",
    "attempt_scope",
    "current_attempt",
    "inject",
    "parse_fault_plan",
]

#: Supported fault kinds and the injection sites wired into the pipeline.
FAULT_KINDS = ("crash", "hang", "kill", "corrupt")
FAULT_SITES = (
    "evaluate",
    "mapper",
    "cache-load",
    "cache-save",
    "shm",
    "submit",
    "slice",
    "spool-write",
    "http-response",
)

ENV_VAR = "REPRO_FAULT_INJECT"


class FaultSpecError(ValueError):
    """A ``REPRO_FAULT_INJECT`` spec could not be parsed."""


class InjectedCrash(WorkerCrashError):
    """A deterministically injected crash (retryable, like the real fault)."""


class InjectedCorruption(CacheCorruptionError):
    """A deterministically injected cache-corruption fault."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault directive."""

    kind: str
    site: str
    rate: float = 0.0
    seed: int = 0
    match: str = ""
    duration: float = 30.0
    step: Optional[int] = None

    def should_fire(self, key: str, attempt: int, invocation: int) -> bool:
        if self.match and self.match not in key:
            return False
        if self.step is not None:
            return invocation == self.step
        if self.rate <= 0.0:
            return False
        if self.rate >= 1.0:
            return True
        digest = zlib.crc32(
            f"{self.seed}|{self.site}|{key}|{attempt}".encode()
        )
        return digest / 2**32 < self.rate


@dataclass
class FaultPlan:
    """All parsed specs plus per-site invocation counters."""

    specs: Tuple[FaultSpec, ...] = ()
    _counters: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def sites(self) -> Tuple[str, ...]:
        return tuple(sorted({spec.site for spec in self.specs}))

    def _next_invocation(self, site: str) -> int:
        with self._lock:
            self._counters[site] = self._counters.get(site, 0) + 1
            return self._counters[site]

    def check(self, site: str, key: str, attempt: int) -> Optional[FaultSpec]:
        """The first spec firing at this call, or None."""
        relevant = [spec for spec in self.specs if spec.site == site]
        if not relevant:
            return None
        invocation = self._next_invocation(site)
        for spec in relevant:
            if spec.should_fire(key, attempt, invocation):
                return spec
        return None


def _parse_one(text: str) -> FaultSpec:
    tokens = text.strip().split(":")
    if len(tokens) < 2:
        raise FaultSpecError(
            f"fault spec {text!r} needs at least kind:site "
            f"(kinds: {', '.join(FAULT_KINDS)})"
        )
    kind, site, rest = tokens[0].strip(), tokens[1].strip(), tokens[2:]
    if kind not in FAULT_KINDS:
        raise FaultSpecError(
            f"unknown fault kind {kind!r} in {text!r}; "
            f"expected one of {', '.join(FAULT_KINDS)}"
        )
    if site not in FAULT_SITES:
        raise FaultSpecError(
            f"unknown fault site {site!r} in {text!r}; "
            f"expected one of {', '.join(FAULT_SITES)}"
        )
    rate = 0.0
    params = {}
    for token in rest:
        token = token.strip()
        if "=" in token:
            name, _, value = token.partition("=")
            params[name.strip()] = value.strip()
        else:
            try:
                rate = float(token)
            except ValueError:
                raise FaultSpecError(
                    f"bad rate {token!r} in fault spec {text!r}"
                ) from None
            if not 0.0 <= rate <= 1.0:
                raise FaultSpecError(
                    f"rate {rate!r} in {text!r} must be within [0, 1]"
                )
    try:
        seed = int(params.pop("seed", 0))
        duration = float(params.pop("for", 30.0))
        step = params.pop("step", None)
        step = int(step) if step is not None else None
    except ValueError as exc:
        raise FaultSpecError(f"bad parameter in {text!r}: {exc}") from None
    match = params.pop("match", "")
    if params:
        raise FaultSpecError(
            f"unknown parameter(s) {sorted(params)} in fault spec {text!r}"
        )
    if step is None and rate == 0.0:
        raise FaultSpecError(
            f"fault spec {text!r} never fires: give a rate or step=N"
        )
    return FaultSpec(
        kind=kind, site=site, rate=rate, seed=seed,
        match=match, duration=duration, step=step,
    )


def parse_fault_plan(text: str) -> FaultPlan:
    """Parse a full ``REPRO_FAULT_INJECT`` value (comma-separated specs)."""
    specs = tuple(
        _parse_one(part) for part in text.split(",") if part.strip()
    )
    return FaultPlan(specs=specs)


# -- ambient state -------------------------------------------------------------
#
# The plan is cached per (process, env value): worker processes inherit
# REPRO_FAULT_INJECT and build their own counters.  The retry attempt and
# the may-SIGKILL flag are ambient per-thread state set by the supervision
# wrappers, so injection sites deep in the pipeline need no plumbing.

_PLAN_CACHE: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)
_PLAN_LOCK = threading.Lock()
_STATE = threading.local()


def _active_plan() -> Optional[FaultPlan]:
    global _PLAN_CACHE
    text = os.environ.get(ENV_VAR)
    if not text:
        return None
    with _PLAN_LOCK:
        cached_text, cached_plan = _PLAN_CACHE
        if cached_text != text:
            _PLAN_CACHE = (text, parse_fault_plan(text))
        return _PLAN_CACHE[1]


def current_attempt() -> int:
    """The ambient retry attempt (0 on the first try)."""
    return getattr(_STATE, "attempt", 0)


@contextmanager
def attempt_scope(attempt: int, allow_kill: bool = False) -> Iterator[None]:
    """Set the ambient retry attempt (and whether ``kill`` faults may
    really SIGKILL this process) around one supervised call."""
    previous = (
        getattr(_STATE, "attempt", 0), getattr(_STATE, "allow_kill", False)
    )
    _STATE.attempt, _STATE.allow_kill = attempt, allow_kill
    try:
        yield
    finally:
        _STATE.attempt, _STATE.allow_kill = previous


def inject(site: str, key: str = "") -> None:
    """Fault-injection point; a no-op unless ``REPRO_FAULT_INJECT`` names
    this ``site`` and the deterministic decision fires."""
    plan = _active_plan()
    if plan is None:
        return
    spec = plan.check(site, key, current_attempt())
    if spec is None:
        return
    detail = f"injected {spec.kind} at {site}"
    if spec.kind == "hang":
        time.sleep(spec.duration)
        return
    if spec.kind == "kill" and getattr(_STATE, "allow_kill", False):
        os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover - dies
    if spec.kind == "corrupt":
        raise InjectedCorruption(detail, site=site, key=key)
    # crash, or kill outside a process-pool worker
    raise InjectedCrash(
        detail, site=site, key=key, attempt=current_attempt()
    )
