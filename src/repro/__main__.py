"""``python -m repro`` entry point (see :mod:`repro.experiments.cli`)."""

import sys

from repro.experiments.cli import main

sys.exit(main())
