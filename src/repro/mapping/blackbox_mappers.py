"""Black-box optimizers over the per-layer mapping space (paper Fig. 15).

The paper compares the quality of mappings obtained by random search,
simulated annealing, a genetic algorithm, and Bayesian optimization when
exploring the factorization-pruned mapping space of single DNN layers
(§F): random search wins on time-to-quality, SA fails to map some layers,
and GA is slow.  These mappers share one genome representation — the
per-dimension (RF, spatial, SPM, DRAM) divisor split plus the two
stationary-operand choices — and all return a :class:`MappingResult`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from repro.arch.accelerator import AcceleratorConfig
from repro.cost.execution_info import ExecutionInfo, InfeasibleMapping
import repro.cost.latency as _cost_latency
from repro.mapping.dataflow import SPATIAL_DIMS
from repro.mapping.factorization import divisors
from repro.mapping.mapper import MappingResult
from repro.mapping.mapping import (
    STATIONARY_CHOICES,
    Mapping,
    padded_bounds,
)
from repro.workloads.layers import LOOP_DIMS, LayerShape, Operand

__all__ = [
    "MappingGenome",
    "random_genome",
    "AnnealingMapper",
    "GeneticMapper",
    "BayesianMapper",
]


@dataclass(frozen=True)
class MappingGenome:
    """Genetic representation of one mapping.

    ``splits[dim] = (rf, spatial, spm, dram)`` factors multiplying to the
    padded bound of ``dim``.
    """

    splits: Tuple[Tuple[int, int, int, int], ...]  # indexed by LOOP_DIMS
    dram_stationary: Operand
    spm_stationary: Operand

    def to_mapping(self) -> Mapping:
        rf, spatial, spm, dram = {}, {}, {}, {}
        for d, (f_rf, f_sp, f_spm, f_dram) in zip(LOOP_DIMS, self.splits):
            rf[d], spatial[d], spm[d], dram[d] = f_rf, f_sp, f_spm, f_dram
        return Mapping.from_level_maps(
            dram=dram,
            spm=spm,
            spatial=spatial,
            rf=rf,
            dram_stationary=self.dram_stationary,
            spm_stationary=self.spm_stationary,
        )

    def features(self) -> List[float]:
        """Log2 factor vector for surrogate models (28 + 2 entries)."""
        out: List[float] = []
        for split in self.splits:
            out.extend(math.log2(f) for f in split)
        out.append(float(STATIONARY_CHOICES.index(self.dram_stationary)))
        out.append(float(STATIONARY_CHOICES.index(self.spm_stationary)))
        return out


def _random_split(bound: int, spatial_cap: int, rng: random.Random) -> Tuple[int, int, int, int]:
    """Random (rf, spatial, spm, dram) divisor split of ``bound``."""
    rest = bound
    rf = rng.choice(divisors(rest))
    rest //= rf
    spatial_options = [f for f in divisors(rest) if f <= spatial_cap] or [1]
    spatial = rng.choice(spatial_options)
    rest //= spatial
    spm = rng.choice(divisors(rest))
    dram = rest // spm
    return rf, spatial, spm, dram


def random_genome(
    layer: LayerShape, config: AcceleratorConfig, rng: random.Random
) -> MappingGenome:
    """Uniformly sample a genome respecting the PE budget."""
    bounds = padded_bounds(layer)
    splits: List[Tuple[int, int, int, int]] = []
    budget = config.pes
    for d in LOOP_DIMS:
        cap = budget if d in SPATIAL_DIMS else 1
        split = _random_split(bounds[d], cap, rng)
        budget //= split[1]
        splits.append(split)
    return MappingGenome(
        splits=tuple(splits),
        dram_stationary=rng.choice(STATIONARY_CHOICES),
        spm_stationary=rng.choice(STATIONARY_CHOICES),
    )


def _repair(genome: MappingGenome, config: AcceleratorConfig) -> MappingGenome:
    """Fold spatial factors into DRAM loops until the PE budget fits."""
    used = math.prod(split[1] for split in genome.splits)
    if used <= config.pes:
        return genome
    splits = [list(s) for s in genome.splits]
    for s in splits:
        if used <= config.pes:
            break
        rf, spatial, spm, dram = s
        if spatial > 1:
            used //= spatial
            s[3] = dram * spatial
            s[1] = 1
    return replace(genome, splits=tuple(tuple(s) for s in splits))


def _mutate(
    genome: MappingGenome,
    layer: LayerShape,
    config: AcceleratorConfig,
    rng: random.Random,
) -> MappingGenome:
    """Re-sample one dimension's split or one stationary choice."""
    bounds = padded_bounds(layer)
    roll = rng.random()
    if roll < 0.1:
        return replace(genome, dram_stationary=rng.choice(STATIONARY_CHOICES))
    if roll < 0.2:
        return replace(genome, spm_stationary=rng.choice(STATIONARY_CHOICES))
    i = rng.randrange(len(LOOP_DIMS))
    d = LOOP_DIMS[i]
    others = math.prod(s[1] for j, s in enumerate(genome.splits) if j != i)
    cap = max(1, config.pes // others) if d in SPATIAL_DIMS else 1
    splits = list(genome.splits)
    splits[i] = _random_split(bounds[d], cap, rng)
    return replace(genome, splits=tuple(splits))


class _BlackBoxMapperBase:
    """Shared evaluation bookkeeping for the Fig. 15 mappers."""

    def __init__(self, trials: int = 200, seed: int = 0):
        if trials < 1:
            raise ValueError("trials must be >= 1")
        self.trials = trials
        self.seed = seed

    def _check_budget(self) -> None:
        # Search-time guard: ``trials`` is a public attribute, so the
        # constructor check alone cannot prevent a degenerate budget from
        # silently producing a no-mapping result mid-campaign.
        if self.trials < 1:
            raise ValueError(
                f"{type(self).__name__}: trial budget must be >= 1 to "
                f"search, got {self.trials!r}"
            )

    def _rng(self, layer: LayerShape, config: AcceleratorConfig) -> random.Random:
        return random.Random(
            (self.seed, layer.name, config.pes, config.l2_kb).__hash__()
        )

    @staticmethod
    def _score(
        layer: LayerShape, genome: MappingGenome, config: AcceleratorConfig
    ) -> Tuple[float, Optional[ExecutionInfo], Mapping]:
        mapping = genome.to_mapping()
        outcome = _cost_latency.evaluate_layer_mapping(layer, mapping, config)
        if isinstance(outcome, InfeasibleMapping):
            return math.inf, None, mapping
        return outcome.latency, outcome, mapping


class AnnealingMapper(_BlackBoxMapperBase):
    """Simulated annealing over the mapping genome."""

    name = "sa-mapper"

    def __init__(self, trials: int = 200, seed: int = 0, cooling: float = 0.97):
        super().__init__(trials, seed)
        self.cooling = cooling

    def __call__(
        self, layer: LayerShape, config: AcceleratorConfig
    ) -> MappingResult:
        self._check_budget()
        rng = self._rng(layer, config)
        current = random_genome(layer, config, rng)
        current_score, best_exec, best_mapping = self._score(
            layer, current, config
        )
        best_score = current_score
        feasible = int(math.isfinite(current_score))
        temperature = 2.0
        for _ in range(self.trials - 1):
            candidate = _repair(
                _mutate(current, layer, config, rng), config
            )
            score, execution, mapping = self._score(layer, candidate, config)
            if math.isfinite(score):
                feasible += 1
            delta = (
                math.log(score) - math.log(current_score)
                if math.isfinite(score) and math.isfinite(current_score)
                else (1.0 if not math.isfinite(score) else -1.0)
            )
            if delta <= 0 or rng.random() < math.exp(
                -delta / max(temperature, 1e-9)
            ):
                current, current_score = candidate, score
            if score < best_score:
                best_score, best_exec, best_mapping = score, execution, mapping
            temperature *= self.cooling
        return MappingResult(
            mapping=best_mapping if best_exec else None,
            execution=best_exec,
            candidates_evaluated=self.trials,
            feasible_candidates=feasible,
        )


class GeneticMapper(_BlackBoxMapperBase):
    """Genetic algorithm over mapping genomes (GAMMA-like, but on the
    factorization-pruned space)."""

    name = "ga-mapper"

    def __init__(
        self,
        trials: int = 200,
        seed: int = 0,
        population_size: int = 16,
        mutation_rate: float = 0.3,
    ):
        super().__init__(trials, seed)
        self.population_size = population_size
        self.mutation_rate = mutation_rate

    def _crossover(
        self, a: MappingGenome, b: MappingGenome, rng: random.Random
    ) -> MappingGenome:
        splits = tuple(
            sa if rng.random() < 0.5 else sb
            for sa, sb in zip(a.splits, b.splits)
        )
        return MappingGenome(
            splits=splits,
            dram_stationary=rng.choice((a.dram_stationary, b.dram_stationary)),
            spm_stationary=rng.choice((a.spm_stationary, b.spm_stationary)),
        )

    def __call__(
        self, layer: LayerShape, config: AcceleratorConfig
    ) -> MappingResult:
        self._check_budget()
        rng = self._rng(layer, config)
        evaluated = 0
        feasible = 0
        best = (math.inf, None, None)

        def score(genome: MappingGenome):
            nonlocal evaluated, feasible, best
            evaluated += 1
            result = self._score(layer, genome, config)
            if math.isfinite(result[0]):
                feasible += 1
            if result[0] < best[0]:
                best = result
            return result[0]

        population = [
            random_genome(layer, config, rng)
            for _ in range(self.population_size)
        ]
        fitness = [score(g) for g in population]
        while evaluated < self.trials:
            ranked = sorted(range(len(population)), key=lambda i: fitness[i])
            parents = [population[i] for i in ranked[: max(2, len(ranked) // 2)]]
            next_population = parents[:2]
            while len(next_population) < self.population_size:
                child = self._crossover(
                    rng.choice(parents), rng.choice(parents), rng
                )
                if rng.random() < self.mutation_rate:
                    child = _mutate(child, layer, config, rng)
                next_population.append(_repair(child, config))
            population = next_population
            fitness = []
            for genome in population:
                if evaluated >= self.trials:
                    fitness.append(math.inf)
                    continue
                fitness.append(score(genome))
        return MappingResult(
            mapping=best[2] if best[1] else None,
            execution=best[1],
            candidates_evaluated=evaluated,
            feasible_candidates=feasible,
        )


class BayesianMapper(_BlackBoxMapperBase):
    """GP + EI Bayesian optimization over mapping genomes.

    Matches the paper's observation that BO's per-acquisition overhead is
    prohibitive for mapping spaces (§F) — the GP refit per trial dominates.
    """

    name = "bo-mapper"

    def __init__(
        self,
        trials: int = 60,
        seed: int = 0,
        initial_samples: int = 10,
        candidate_pool: int = 64,
    ):
        super().__init__(trials, seed)
        self.initial_samples = initial_samples
        self.candidate_pool = candidate_pool

    def __call__(
        self, layer: LayerShape, config: AcceleratorConfig
    ) -> MappingResult:
        from repro.optim.gaussian_process import (
            GaussianProcess,
            expected_improvement,
        )

        self._check_budget()
        rng = self._rng(layer, config)
        xs: List[List[float]] = []
        ys: List[float] = []
        feasible = 0
        best = (math.inf, None, None)

        def observe(genome: MappingGenome) -> None:
            nonlocal feasible, best
            result = self._score(layer, genome, config)
            latency = result[0]
            if math.isfinite(latency):
                feasible += 1
            if latency < best[0]:
                best = result
            xs.append(genome.features())
            ys.append(math.log(latency) if math.isfinite(latency) else 50.0)

        for _ in range(min(self.initial_samples, self.trials)):
            observe(random_genome(layer, config, rng))
        while len(ys) < self.trials:
            gp = GaussianProcess().fit(np.array(xs), np.array(ys))
            pool = [
                random_genome(layer, config, rng)
                for _ in range(self.candidate_pool)
            ]
            features = np.array([g.features() for g in pool])
            mean, var = gp.predict(features)
            ei = expected_improvement(mean, var, min(ys))
            observe(pool[int(np.argmax(ei))])
        return MappingResult(
            mapping=best[2] if best[1] else None,
            execution=best[1],
            candidates_evaluated=len(ys),
            feasible_candidates=feasible,
        )
