"""Structure-of-arrays materialization of mapping candidate sets.

The scalar mapping search scores candidates one at a time: each one is a
:class:`~repro.mapping.mapping.Mapping` holding four dict-of-dims factor
maps, and :func:`~repro.cost.latency.evaluate_layer_mapping` walks those
dicts per candidate.  For a top-N search that is O(N) Python interpreter
round-trips through the cost model.

This module provides the batched alternative:

* :class:`CandidateSpec` — a lightweight tuple-of-tuples candidate
  representation the generators can emit *without* constructing (and
  validating) a ``Mapping`` object per candidate; and
* :class:`CandidateBatch` — a whole candidate set as integer NumPy
  arrays (one ``(n, 7)`` array of per-dimension tiling factors per
  hierarchy level plus per-candidate stationarity codes), the layout the
  vectorized kernels in :mod:`repro.cost.batch` consume.

``Mapping`` objects are still materialized — lazily, per feasible
candidate — because search traces and mapping results carry them, but
the per-candidate dict bookkeeping disappears from the scoring loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping as MappingT, NamedTuple, Sequence, Tuple

import numpy as np

from repro.mapping.mapping import (
    STATIONARY_CHOICES,
    Level,
    Mapping,
)
from repro.workloads.layers import LOOP_DIMS, Dim, Operand

__all__ = ["CandidateSpec", "CandidateBatch"]

#: Stationary-operand code of each :data:`STATIONARY_CHOICES` member.
STATIONARY_CODES = {op: i for i, op in enumerate(STATIONARY_CHOICES)}


class CandidateSpec(NamedTuple):
    """One tiling candidate as raw factor tuples (``LOOP_DIMS`` order).

    ``dram``/``spm``/``spatial``/``rf`` are the per-level tile counts and
    ``dram_code``/``spm_code`` index :data:`STATIONARY_CHOICES`.  Specs
    are produced by generators that guarantee validity (factors >= 1,
    complete dims), so :meth:`to_mapping` can use the trusted ``Mapping``
    constructor.
    """

    dram: Tuple[int, ...]
    spm: Tuple[int, ...]
    spatial: Tuple[int, ...]
    rf: Tuple[int, ...]
    dram_code: int
    spm_code: int

    @classmethod
    def from_level_maps(
        cls,
        dram: MappingT[Dim, int],
        spm: MappingT[Dim, int],
        spatial: MappingT[Dim, int],
        rf: MappingT[Dim, int],
        dram_stationary: Operand = Operand.O,
        spm_stationary: Operand = Operand.O,
    ) -> "CandidateSpec":
        """Build a spec from per-level factor dicts (missing dims -> 1)."""
        return cls(
            dram=tuple(int(dram.get(d, 1)) for d in LOOP_DIMS),
            spm=tuple(int(spm.get(d, 1)) for d in LOOP_DIMS),
            spatial=tuple(int(spatial.get(d, 1)) for d in LOOP_DIMS),
            rf=tuple(int(rf.get(d, 1)) for d in LOOP_DIMS),
            dram_code=STATIONARY_CODES[dram_stationary],
            spm_code=STATIONARY_CODES[spm_stationary],
        )

    def to_mapping(self) -> Mapping:
        """Materialize the equivalent :class:`Mapping` object."""
        return Mapping._trusted(
            factors={
                Level.DRAM: dict(zip(LOOP_DIMS, self.dram)),
                Level.SPM: dict(zip(LOOP_DIMS, self.spm)),
                Level.SPATIAL: dict(zip(LOOP_DIMS, self.spatial)),
                Level.RF: dict(zip(LOOP_DIMS, self.rf)),
            },
            dram_stationary=STATIONARY_CHOICES[self.dram_code],
            spm_stationary=STATIONARY_CHOICES[self.spm_code],
        )


@dataclass(frozen=True)
class CandidateBatch:
    """A candidate set as structure-of-arrays.

    Attributes:
        dram/spm/spatial/rf: ``(n, 7)`` int64 factor arrays, columns in
            ``LOOP_DIMS`` order.
        dram_code/spm_code: ``(n,)`` stationary-operand codes indexing
            :data:`STATIONARY_CHOICES`.
        specs: The originating specs, kept so feasible candidates can be
            materialized back into ``Mapping`` objects without a copy of
            the factor data per candidate.
    """

    dram: np.ndarray
    spm: np.ndarray
    spatial: np.ndarray
    rf: np.ndarray
    dram_code: np.ndarray
    spm_code: np.ndarray
    specs: Tuple[CandidateSpec, ...]

    @classmethod
    def from_specs(cls, specs: Iterable[CandidateSpec]) -> "CandidateBatch":
        """Materialize a spec stream as SoA arrays (consumes the stream)."""
        specs = tuple(specs)
        n = len(specs)
        if n:
            dram = np.array([s.dram for s in specs], dtype=np.int64)
            spm = np.array([s.spm for s in specs], dtype=np.int64)
            spatial = np.array([s.spatial for s in specs], dtype=np.int64)
            rf = np.array([s.rf for s in specs], dtype=np.int64)
            dram_code = np.array([s.dram_code for s in specs], dtype=np.int64)
            spm_code = np.array([s.spm_code for s in specs], dtype=np.int64)
        else:
            dram = spm = spatial = rf = np.empty((0, len(LOOP_DIMS)), np.int64)
            dram_code = spm_code = np.empty(0, np.int64)
        return cls(
            dram=dram,
            spm=spm,
            spatial=spatial,
            rf=rf,
            dram_code=dram_code,
            spm_code=spm_code,
            specs=specs,
        )

    @classmethod
    def from_mappings(cls, mappings: Sequence[Mapping]) -> "CandidateBatch":
        """Materialize existing ``Mapping`` objects (convenience path)."""
        return cls.from_specs(
            CandidateSpec.from_level_maps(
                dram=m.factors[Level.DRAM],
                spm=m.factors[Level.SPM],
                spatial=m.factors[Level.SPATIAL],
                rf=m.factors[Level.RF],
                dram_stationary=m.dram_stationary,
                spm_stationary=m.spm_stationary,
            )
            for m in mappings
        )

    def __len__(self) -> int:
        return len(self.specs)

    def mapping(self, i: int) -> Mapping:
        """The :class:`Mapping` object of candidate ``i``."""
        return self.specs[i].to_mapping()
