"""Structure-of-arrays materialization of mapping candidate sets.

The scalar mapping search scores candidates one at a time: each one is a
:class:`~repro.mapping.mapping.Mapping` holding four dict-of-dims factor
maps, and :func:`~repro.cost.latency.evaluate_layer_mapping` walks those
dicts per candidate.  For a top-N search that is O(N) Python interpreter
round-trips through the cost model.

This module provides the batched alternative:

* :class:`CandidateSpec` — a lightweight tuple-of-tuples candidate
  representation the generators can emit *without* constructing (and
  validating) a ``Mapping`` object per candidate; and
* :class:`CandidateBatch` — a whole candidate set as integer NumPy
  arrays (one ``(n, 7)`` array of per-dimension tiling factors per
  hierarchy level plus per-candidate stationarity codes), the layout the
  vectorized kernels in :mod:`repro.cost.batch` consume.

``Mapping`` objects are still materialized — lazily, per feasible
candidate — because search traces and mapping results carry them, but
the per-candidate dict bookkeeping disappears from the scoring loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping as MappingT, NamedTuple, Sequence, Tuple

import numpy as np

from repro.mapping.mapping import (
    STATIONARY_CHOICES,
    Level,
    Mapping,
)
from repro.workloads.layers import (
    LOOP_DIMS,
    Dim,
    LayerShape,
    Operand,
    OperatorType,
)

__all__ = ["CandidateSpec", "CandidateBatch", "FusedCandidateBlock"]

#: Stationary-operand code of each :data:`STATIONARY_CHOICES` member.
STATIONARY_CODES = {op: i for i, op in enumerate(STATIONARY_CHOICES)}


class CandidateSpec(NamedTuple):
    """One tiling candidate as raw factor tuples (``LOOP_DIMS`` order).

    ``dram``/``spm``/``spatial``/``rf`` are the per-level tile counts and
    ``dram_code``/``spm_code`` index :data:`STATIONARY_CHOICES`.  Specs
    are produced by generators that guarantee validity (factors >= 1,
    complete dims), so :meth:`to_mapping` can use the trusted ``Mapping``
    constructor.
    """

    dram: Tuple[int, ...]
    spm: Tuple[int, ...]
    spatial: Tuple[int, ...]
    rf: Tuple[int, ...]
    dram_code: int
    spm_code: int

    @classmethod
    def from_level_maps(
        cls,
        dram: MappingT[Dim, int],
        spm: MappingT[Dim, int],
        spatial: MappingT[Dim, int],
        rf: MappingT[Dim, int],
        dram_stationary: Operand = Operand.O,
        spm_stationary: Operand = Operand.O,
    ) -> "CandidateSpec":
        """Build a spec from per-level factor dicts (missing dims -> 1)."""
        return cls(
            dram=tuple(int(dram.get(d, 1)) for d in LOOP_DIMS),
            spm=tuple(int(spm.get(d, 1)) for d in LOOP_DIMS),
            spatial=tuple(int(spatial.get(d, 1)) for d in LOOP_DIMS),
            rf=tuple(int(rf.get(d, 1)) for d in LOOP_DIMS),
            dram_code=STATIONARY_CODES[dram_stationary],
            spm_code=STATIONARY_CODES[spm_stationary],
        )

    def to_mapping(self) -> Mapping:
        """Materialize the equivalent :class:`Mapping` object."""
        return Mapping._trusted(
            factors={
                Level.DRAM: dict(zip(LOOP_DIMS, self.dram)),
                Level.SPM: dict(zip(LOOP_DIMS, self.spm)),
                Level.SPATIAL: dict(zip(LOOP_DIMS, self.spatial)),
                Level.RF: dict(zip(LOOP_DIMS, self.rf)),
            },
            dram_stationary=STATIONARY_CHOICES[self.dram_code],
            spm_stationary=STATIONARY_CHOICES[self.spm_code],
        )


@dataclass(frozen=True)
class CandidateBatch:
    """A candidate set as structure-of-arrays.

    Attributes:
        dram/spm/spatial/rf: ``(n, 7)`` int64 factor arrays, columns in
            ``LOOP_DIMS`` order.
        dram_code/spm_code: ``(n,)`` stationary-operand codes indexing
            :data:`STATIONARY_CHOICES`.
        specs: The originating specs, kept so feasible candidates can be
            materialized back into ``Mapping`` objects without a copy of
            the factor data per candidate.
    """

    dram: np.ndarray
    spm: np.ndarray
    spatial: np.ndarray
    rf: np.ndarray
    dram_code: np.ndarray
    spm_code: np.ndarray
    specs: Tuple[CandidateSpec, ...]

    @classmethod
    def from_specs(cls, specs: Iterable[CandidateSpec]) -> "CandidateBatch":
        """Materialize a spec stream as SoA arrays (consumes the stream)."""
        specs = tuple(specs)
        n = len(specs)
        if n:
            dram = np.array([s.dram for s in specs], dtype=np.int64)
            spm = np.array([s.spm for s in specs], dtype=np.int64)
            spatial = np.array([s.spatial for s in specs], dtype=np.int64)
            rf = np.array([s.rf for s in specs], dtype=np.int64)
            dram_code = np.array([s.dram_code for s in specs], dtype=np.int64)
            spm_code = np.array([s.spm_code for s in specs], dtype=np.int64)
        else:
            dram = spm = spatial = rf = np.empty((0, len(LOOP_DIMS)), np.int64)
            dram_code = spm_code = np.empty(0, np.int64)
        return cls(
            dram=dram,
            spm=spm,
            spatial=spatial,
            rf=rf,
            dram_code=dram_code,
            spm_code=spm_code,
            specs=specs,
        )

    @classmethod
    def from_mappings(cls, mappings: Sequence[Mapping]) -> "CandidateBatch":
        """Materialize existing ``Mapping`` objects (convenience path)."""
        return cls.from_specs(
            CandidateSpec.from_level_maps(
                dram=m.factors[Level.DRAM],
                spm=m.factors[Level.SPM],
                spatial=m.factors[Level.SPATIAL],
                rf=m.factors[Level.RF],
                dram_stationary=m.dram_stationary,
                spm_stationary=m.spm_stationary,
            )
            for m in mappings
        )

    def __len__(self) -> int:
        return len(self.specs)

    def mapping(self, i: int) -> Mapping:
        """The :class:`Mapping` object of candidate ``i``."""
        return self.specs[i].to_mapping()


@dataclass(frozen=True)
class FusedCandidateBlock:
    """Every layer's candidate set of one design point, as one SoA block.

    Concatenates per-layer :class:`CandidateBatch` arrays row-wise and
    broadcasts each layer's shape attributes (stride, depthwise flag,
    operator, MAC count) to per-row arrays, so the fused kernels in
    :mod:`repro.cost.fused` evaluate the whole campaign step —
    ``sum(candidates over layers)`` rows — in single array passes instead
    of one kernel invocation per layer.

    Attributes:
        layers: The fused layers, in evaluation order.
        batches: The originating per-layer batches (winner mappings are
            materialized back through them).
        offsets: Row-range bounds; layer ``k`` owns rows
            ``offsets[k]:offsets[k + 1]``.
        dram/spm/spatial/rf: ``(n, 7)`` int64 factor arrays (``LOOP_DIMS``
            columns), ``n`` summed over layers.
        dram_code/spm_code: ``(n,)`` stationary-operand codes.
        stride: ``(n,)`` int64 per-row layer stride.
        dwise: ``(n,)`` bool per-row depthwise flag.
        opcode: ``(n,)`` int64 index into :attr:`operators`.
        macs: ``(n,)`` int64 per-row layer MAC count.
        operators: Distinct :class:`OperatorType` members present, in
            first-appearance order (the fused kernels mask rows by code).
    """

    layers: Tuple[LayerShape, ...]
    batches: Tuple[CandidateBatch, ...]
    offsets: Tuple[int, ...]
    dram: np.ndarray
    spm: np.ndarray
    spatial: np.ndarray
    rf: np.ndarray
    dram_code: np.ndarray
    spm_code: np.ndarray
    stride: np.ndarray
    dwise: np.ndarray
    opcode: np.ndarray
    macs: np.ndarray
    operators: Tuple[OperatorType, ...]

    @classmethod
    def from_layer_batches(
        cls,
        layers: Sequence[LayerShape],
        batches: Sequence[CandidateBatch],
    ) -> "FusedCandidateBlock":
        """Concatenate per-layer batches into one block (row counts may
        differ per layer; empty batches contribute an empty row range)."""
        if len(layers) != len(batches):
            raise ValueError(
                f"layer/batch count mismatch: {len(layers)} layers, "
                f"{len(batches)} batches"
            )
        counts = [len(b) for b in batches]
        offsets = [0]
        for count in counts:
            offsets.append(offsets[-1] + count)
        operators: list = []
        codes = []
        for layer in layers:
            if layer.operator not in operators:
                operators.append(layer.operator)
            codes.append(operators.index(layer.operator))
        counts_arr = np.asarray(counts, dtype=np.int64)

        def _concat(field: str) -> np.ndarray:
            return np.concatenate([getattr(b, field) for b in batches])

        return cls(
            layers=tuple(layers),
            batches=tuple(batches),
            offsets=tuple(offsets),
            dram=_concat("dram"),
            spm=_concat("spm"),
            spatial=_concat("spatial"),
            rf=_concat("rf"),
            dram_code=_concat("dram_code"),
            spm_code=_concat("spm_code"),
            stride=np.repeat(
                np.asarray([l.stride for l in layers], dtype=np.int64),
                counts_arr,
            ),
            dwise=np.repeat(
                np.asarray(
                    [l.operator is OperatorType.DWCONV for l in layers],
                    dtype=bool,
                ),
                counts_arr,
            ),
            opcode=np.repeat(np.asarray(codes, dtype=np.int64), counts_arr),
            macs=np.repeat(
                np.asarray([l.macs for l in layers], dtype=np.int64),
                counts_arr,
            ),
            operators=tuple(operators),
        )

    def __len__(self) -> int:
        return self.offsets[-1]

    def rows(self, layer_index: int) -> slice:
        """Row range owned by layer ``layer_index``."""
        return slice(self.offsets[layer_index], self.offsets[layer_index + 1])
