"""Integer factorization utilities for loop tiling.

Loop tilings are valid only when the per-level tile counts of a dimension
multiply to the (possibly padded) loop bound, so everything downstream —
tiling enumeration, mapping-space size analysis (Table 7), and the top-N
mapper — rests on these helpers.
"""

from __future__ import annotations

import functools
import math
from typing import Iterator, List, Tuple

__all__ = [
    "divisors",
    "prime_factorization",
    "ordered_factorizations",
    "count_ordered_factorizations",
    "smooth_pad",
]


@functools.lru_cache(maxsize=65536)
def divisors(n: int) -> Tuple[int, ...]:
    """All positive divisors of ``n``, ascending."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    small, large = [], []
    i = 1
    while i * i <= n:
        if n % i == 0:
            small.append(i)
            if i != n // i:
                large.append(n // i)
        i += 1
    return tuple(small + large[::-1])


@functools.lru_cache(maxsize=65536)
def prime_factorization(n: int) -> Tuple[Tuple[int, int], ...]:
    """Prime factorization as ``((prime, exponent), ...)``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    factors: List[Tuple[int, int]] = []
    remaining = n
    p = 2
    while p * p <= remaining:
        if remaining % p == 0:
            exp = 0
            while remaining % p == 0:
                remaining //= p
                exp += 1
            factors.append((p, exp))
        p += 1 if p == 2 else 2
    if remaining > 1:
        factors.append((remaining, 1))
    return tuple(factors)


def ordered_factorizations(n: int, parts: int) -> Iterator[Tuple[int, ...]]:
    """All ordered ``parts``-tuples of positive ints whose product is ``n``.

    These are the valid per-level tile-count assignments of a loop with
    bound ``n`` across ``parts`` levels of the processing hierarchy.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if parts == 1:
        yield (n,)
        return
    for d in divisors(n):
        for rest in ordered_factorizations(n // d, parts - 1):
            yield (d,) + rest


@functools.lru_cache(maxsize=65536)
def count_ordered_factorizations(n: int, parts: int) -> int:
    """Number of ordered factorizations of ``n`` into ``parts`` factors.

    Multiplicative over prime powers: for ``p^e`` the count is the number
    of weak compositions ``C(e + parts - 1, parts - 1)``.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    total = 1
    for _, exp in prime_factorization(n):
        total *= math.comb(exp + parts - 1, parts - 1)
    return total


@functools.lru_cache(maxsize=65536)
def smooth_pad(n: int, max_prime: int = 7) -> int:
    """Smallest integer >= ``n`` with no prime factor above ``max_prime``.

    Mappers pad awkward loop bounds (e.g. the prime 197 of ViT's sequence
    length) so that tilings with useful parallelism exist; padded iterations
    execute as idle work.  dMazeRunner and Timeloop both support padding.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    candidate = n
    while True:
        remaining = candidate
        for p in (2, 3, 5, 7, 11, 13):
            if p > max_prime:
                break
            while remaining % p == 0:
                remaining //= p
        if remaining == 1:
            return candidate
        candidate += 1
