"""Mapping substrate: tilings, orderings, dataflows, and mappers."""

from repro.mapping.batch_candidates import CandidateBatch, CandidateSpec
from repro.mapping.dataflow import build_output_stationary_mapping
from repro.mapping.factorization import (
    count_ordered_factorizations,
    divisors,
    ordered_factorizations,
    prime_factorization,
    smooth_pad,
)
from repro.mapping.mapper import (
    FixedDataflowMapper,
    MappingResult,
    RandomSearchMapper,
    TopNMapper,
)
from repro.mapping.mapping import (
    Level,
    Mapping,
    MappingError,
    operand_tile_elements,
    padded_bounds,
    padded_bounds_tuple,
)
from repro.mapping.ordering import (
    count_unique_reuse_orderings,
    maximal_reuse_orderings,
    reuse_signature,
    unique_reuse_signatures,
)
from repro.mapping.space_size import MappingSpaceSize, analyze_mapping_space

__all__ = [
    "CandidateBatch",
    "CandidateSpec",
    "FixedDataflowMapper",
    "Level",
    "Mapping",
    "MappingError",
    "MappingResult",
    "MappingSpaceSize",
    "RandomSearchMapper",
    "TopNMapper",
    "analyze_mapping_space",
    "build_output_stationary_mapping",
    "count_ordered_factorizations",
    "count_unique_reuse_orderings",
    "divisors",
    "maximal_reuse_orderings",
    "reuse_signature",
    "unique_reuse_signatures",
    "operand_tile_elements",
    "ordered_factorizations",
    "padded_bounds",
    "padded_bounds_tuple",
    "prime_factorization",
    "smooth_pad",
]
