"""Loop-ordering analysis: deriving the unique-reuse ordering counts.

dMazeRunner's key pruning insight (paper §F, Table 7 column E) is that of
the thousands of loop orderings at a memory level, only a handful produce
*unique data reuse*: what matters to the cost of an ordering is, for each
operand, the run of innermost loops irrelevant to it (those provide
temporal reuse of the operand's tile).  Orderings inducing the same
(reuse-dims per operand) signature are cost-equivalent.

This module enumerates orderings, computes their reuse signatures, and
counts the equivalence classes — reproducing the paper's "15 orderings
with unique data reuse for convolutions, 3 for GEMMs" numbers from first
principles rather than as constants.  It also identifies the *maximal*
reuse orderings (one per operand), which are the ones the cost model's
``stationary`` choice exposes.
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.workloads.layers import (
    LOOP_DIMS,
    Dim,
    Operand,
    OperatorType,
    operand_dims,
)

__all__ = [
    "ReuseSignature",
    "reuse_signature",
    "unique_reuse_signatures",
    "count_unique_reuse_orderings",
    "maximal_reuse_orderings",
]

#: Operands with distinct storage (PSUM aliases O for reuse purposes).
_REUSE_OPERANDS = (Operand.I, Operand.W, Operand.O)

#: The canonical nest dimensions per operator type.  Convolutions use the
#: full 7-deep nest (the paper's 28-deep nest = 7 dims x 4 levels); GEMMs
#: use the 3-dim nest (the paper's 12-deep nest).  Depthwise convolutions
#: execute inside the convolutional nest, so dMazeRunner counts them with
#: the convolution orderings (see ``count_unique_reuse_orderings``).
_ACTIVE_DIMS: Dict[OperatorType, Tuple[Dim, ...]] = {
    OperatorType.CONV: LOOP_DIMS,
    OperatorType.DWCONV: LOOP_DIMS,
    OperatorType.GEMM: (Dim.M, Dim.C, Dim.OX),
}

#: A reuse signature: per operand, the set of dims whose loops sit in the
#: innermost contiguous run of loops irrelevant to the operand.
ReuseSignature = Tuple[FrozenSet[Dim], ...]


def reuse_signature(
    ordering: Sequence[Dim], operator: OperatorType
) -> ReuseSignature:
    """Reuse signature of one loop ordering (outermost first).

    For each operand, walk the ordering from the innermost loop outward,
    collecting dimensions until the first loop *relevant* to the operand:
    those innermost irrelevant loops reuse the operand's tile.
    """
    signature: List[FrozenSet[Dim]] = []
    for operand in _REUSE_OPERANDS:
        relevant = operand_dims(operator, operand)
        reused: Set[Dim] = set()
        for dim in reversed(list(ordering)):
            if dim in relevant:
                break
            reused.add(dim)
        signature.append(frozenset(reused))
    return tuple(signature)


@functools.lru_cache(maxsize=None)
def unique_reuse_signatures(
    operator: OperatorType,
) -> Tuple[ReuseSignature, ...]:
    """All distinct reuse signatures over the operator's nest dims.

    Depthwise convolutions delegate to the convolutional nest: they are
    invoked inside it, so the ordering space is the convolution's.
    """
    if operator is OperatorType.DWCONV:
        return unique_reuse_signatures(OperatorType.CONV)
    dims = _ACTIVE_DIMS[operator]
    signatures: Set[ReuseSignature] = set()
    for ordering in itertools.permutations(dims):
        signatures.add(reuse_signature(ordering, operator))
    return tuple(sorted(signatures, key=repr))


def count_unique_reuse_orderings(operator: OperatorType) -> int:
    """Number of cost-distinct loop orderings at one memory level.

    Derives the paper's Table 7 column E from first principles:
    15 for (depthwise) convolutions, 3 for GEMMs.
    """
    return len(unique_reuse_signatures(operator))


@dataclass(frozen=True)
class MaximalReuseOrdering:
    """One maximal-reuse ordering: the operand it keeps stationary and a
    representative loop order realizing it."""

    stationary: Operand
    ordering: Tuple[Dim, ...]
    reuse_dims: FrozenSet[Dim]


def maximal_reuse_orderings(
    operator: OperatorType,
) -> Tuple[MaximalReuseOrdering, ...]:
    """The per-operand maximal-reuse orderings (3 per level).

    For each operand, the ordering placing *all* of its irrelevant dims
    innermost maximizes its temporal reuse; these are the orderings the
    cost model's ``stationary`` parameter selects among (the "few with
    maximum reuse of various tensors" the paper keeps).
    """
    dims = _ACTIVE_DIMS[operator]
    out = []
    for operand in _REUSE_OPERANDS:
        relevant = operand_dims(operator, operand)
        inner = tuple(d for d in dims if d not in relevant)
        outer = tuple(d for d in dims if d in relevant)
        out.append(
            MaximalReuseOrdering(
                stationary=operand,
                ordering=outer + inner,
                reuse_dims=frozenset(inner),
            )
        )
    return tuple(out)
