"""Mapping optimizers: dMazeRunner-style top-N search and a Timeloop-like
random mapper.

The top-N mapper (paper §4.8) formulates a pruned mapping space —
utilization-pruned spatial unrollings, reuse-maximal loop orderings, and a
small catalog of greedy tile-growth strategies per buffer level — then
evaluates up to N candidates linearly and returns the latency-optimal one.
The random mapper samples the same pruned tiling structure at random, which
is how the paper configures black-box codesign baselines (§F: "Timeloop-like
random search").
"""

from __future__ import annotations

import functools
import itertools
import random
import time
import zlib
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.arch.accelerator import AcceleratorConfig
from repro.cost.execution_info import ExecutionInfo, InfeasibleMapping
import repro.cost.batch as _cost_batch
import repro.cost.energy as _cost_energy
import repro.cost.latency as _cost_latency
from repro.mapping.batch_candidates import CandidateBatch, CandidateSpec
from repro.mapping.dataflow import (
    SPATIAL_DIMS,
    build_output_stationary_mapping,
    greedy_tile_counts,
)
from repro.mapping.factorization import divisors
from repro.mapping.mapping import (
    STATIONARY_CHOICES,
    Mapping,
    padded_bounds,
    padded_bounds_tuple,
)
from repro.perf.instrumentation import BatchEvalStats
from repro.workloads.layers import LOOP_DIMS, Dim, LayerShape

__all__ = [
    "MappingResult",
    "SearchTrace",
    "rescore_trace",
    "FixedDataflowMapper",
    "TopNMapper",
    "RandomSearchMapper",
]

#: Greedy RF tile-growth orders (different strategies reach different
#: corners of the tiling space; reduction-first is output-stationary-like,
#: output-first is weight-stationary-like).
RF_GROWTH_ORDERS: Tuple[Tuple[Dim, ...], ...] = (
    (Dim.FY, Dim.FX, Dim.C, Dim.OX),
    (Dim.OX, Dim.OY, Dim.M),
    (Dim.C, Dim.M),
    (Dim.M, Dim.OX, Dim.C),
)

#: Greedy SPM tile-growth orders.
SPM_GROWTH_ORDERS: Tuple[Tuple[Dim, ...], ...] = (
    (Dim.C, Dim.OY, Dim.OX, Dim.M, Dim.N),
    (Dim.M, Dim.C, Dim.FY, Dim.FX),
    (Dim.OY, Dim.OX, Dim.N, Dim.M),
)


@dataclass(frozen=True)
class MappingResult:
    """Outcome of optimizing a layer's mapping on one hardware config.

    ``execution`` is ``None`` when no feasible mapping exists — the
    hardware is incompatible with every candidate (paper §6.2's infeasible-
    by-incompatibility case).
    """

    mapping: Optional[Mapping]
    execution: Optional[ExecutionInfo]
    candidates_evaluated: int
    feasible_candidates: int

    @property
    def feasible(self) -> bool:
        return self.execution is not None

    @property
    def latency(self) -> float:
        return self.execution.latency if self.execution else float("inf")


@dataclass(frozen=True)
class SearchTrace:
    """Re-scorable record of one mapping search.

    Holds every *feasible* ``(mapping, execution)`` pair in evaluation
    order plus the total number of candidates the search consumed.  A
    candidate's feasibility and every :class:`ExecutionInfo` field except
    ``t_dma`` are independent of the off-chip bandwidth and clock, so a
    trace recorded on one hardware configuration can be exactly re-scored
    (:func:`rescore_trace`) on any configuration that differs only in
    ``offchip_bw_mbps`` / ``freq_mhz`` — the layer-level mapping cache
    relies on this to turn bandwidth sweeps into re-scores instead of
    re-searches.
    """

    feasible: Tuple[Tuple[Mapping, ExecutionInfo], ...]
    candidates_evaluated: int


def rescore_trace(
    layer: LayerShape,
    config: AcceleratorConfig,
    trace: SearchTrace,
    objective: str = "latency",
) -> MappingResult:
    """Re-pick the best candidate of a recorded search on new hardware.

    Only ``t_dma`` (and therefore latency/EDP) depends on the off-chip
    bandwidth and clock; it is re-derived from the recorded off-chip
    traffic with the same expression the latency model uses, so the
    returned result is bit-identical to a cold search on ``config``
    (provided ``config`` matches the traced one on every other field).
    """
    scorer = _resolve_objective(objective)
    dram_bpc = config.dram_bytes_per_cycle
    best_exec: Optional[ExecutionInfo] = None
    best_mapping: Optional[Mapping] = None
    best_score = float("inf")
    for mapping, execution in trace.feasible:
        rescored = replace(
            execution, t_dma=sum(execution.data_offchip.values()) / dram_bpc
        )
        score = scorer(layer, rescored, config)
        if score < best_score:
            best_exec = rescored
            best_mapping = mapping
            best_score = score
    return MappingResult(
        mapping=best_mapping,
        execution=best_exec,
        candidates_evaluated=trace.candidates_evaluated,
        feasible_candidates=len(trace.feasible),
    )


def _stable_seed(*parts: object) -> int:
    """Order-sensitive integer digest of ``parts``, stable across
    processes and ``PYTHONHASHSEED`` values (unlike ``tuple.__hash__``,
    which randomizes any ``str`` member)."""
    canonical = "|".join(repr(p) for p in parts)
    return zlib.crc32(canonical.encode("utf-8"))


def _log_spaced(values: Sequence[int], keep: int) -> Tuple[int, ...]:
    """Thin an ascending sequence to ~``keep`` log-spaced entries,
    always keeping the first and last.

    Degenerate budgets are clamped rather than rejected: an empty
    ``values`` yields ``()`` and ``keep <= 1`` keeps only the last
    (largest) entry.
    """
    if not values:
        return ()
    if len(values) <= keep:
        return tuple(values)
    if keep <= 1:
        return (values[-1],)
    picks = {0, len(values) - 1}
    step = (len(values) - 1) / (keep - 1)
    for i in range(1, keep - 1):
        picks.add(round(i * step))
    return tuple(values[i] for i in sorted(picks))


#: ``LOOP_DIMS`` column of each spatially unrollable dim.
_SPATIAL_COLS = tuple(LOOP_DIMS.index(d) for d in SPATIAL_DIMS)


@functools.lru_cache(maxsize=4096)
def _spatial_unrollings_cached(
    spatial_bounds: Tuple[int, ...],
    pes: int,
    max_options_per_dim: int,
    max_combos: int,
) -> Tuple[Tuple[int, ...], ...]:
    """Tuple-domain core of :func:`enumerate_spatial_unrollings`, memoized.

    The pruned unrolling set depends only on the padded spatial bounds
    and the PE budget, and a campaign re-enumerates the same handful of
    layer shapes for every design point — the same repetition hazard the
    ``padded_bounds`` memoization addresses.  Returned tuples are in
    ``LOOP_DIMS`` order.
    """
    options = []
    for bound in spatial_bounds:
        divs = [f for f in divisors(bound) if f <= pes]
        options.append(_log_spaced(divs, max_options_per_dim))

    combos: List[Tuple[int, Tuple[int, ...]]] = []
    for picks in itertools.product(*options):
        used = 1
        for f in picks:
            used *= f
        if used > pes:
            continue
        spatial = [1] * len(LOOP_DIMS)
        for col, f in zip(_SPATIAL_COLS, picks):
            spatial[col] = f
        combos.append((used, tuple(spatial)))

    combos.sort(key=lambda item: -item[0])
    # Keep a spread across utilization tiers (power-of-two buckets of PEs
    # used), preferring high occupancy but retaining mid/low unrollings:
    # NoC link limits often rule out the widest unrollings, and adaptive
    # threshold adjustment (paper §4.8) must still find executable ones.
    buckets: Dict[int, int] = {}
    per_bucket = max(2, max_combos // 8)
    kept: List[Tuple[int, ...]] = []
    for used, spatial in combos:
        if used < 2:
            continue
        bucket = used.bit_length()
        if buckets.get(bucket, 0) >= per_bucket:
            continue
        buckets[bucket] = buckets.get(bucket, 0) + 1
        kept.append(spatial)
        if len(kept) >= max_combos - 1:
            break
    # The purely temporal mapping is always NoC-compatible; keep it as a
    # fallback so adaptive mapping can execute on any hardware (fixed
    # dataflows lack this escape hatch — paper §6.2).
    kept.append((1,) * len(LOOP_DIMS))
    return tuple(kept)


def enumerate_spatial_unrollings(
    layer: LayerShape,
    config: AcceleratorConfig,
    max_options_per_dim: int = 8,
    max_combos: int = 24,
    min_utilization: float = 0.25,
) -> List[Dict[Dim, int]]:
    """Utilization-pruned spatial unrollings over independent output dims.

    Enumerates divisor combinations over (M, OY, OX, N) with total PE use
    <= the PE count, discards combos below ``min_utilization`` of the PEs
    (relaxing the threshold when that empties the space, as the paper's
    adaptive hyperparameter adjustment does), and keeps the
    ``max_combos`` highest-occupancy ones.
    """
    bounds = padded_bounds(layer)
    kept = _spatial_unrollings_cached(
        tuple(bounds[d] for d in SPATIAL_DIMS),
        config.pes,
        max_options_per_dim,
        max_combos,
    )
    return [dict(zip(LOOP_DIMS, spatial)) for spatial in kept]


def _tiling_candidates(
    layer: LayerShape,
    config: AcceleratorConfig,
    spatial_choices: Iterable[Dict[Dim, int]],
) -> Iterable[CandidateSpec]:
    """Yield candidate specs from the pruned (spatial x RF x SPM x
    ordering) space, round-robining across spatial unrollings so a bounded
    evaluation budget still touches every spatial option (including the
    compatibility fallback) before exhausting one unrolling's tiling
    variants."""
    generators = [
        _candidates_for_spatial(layer, config, spatial)
        for spatial in spatial_choices
    ]
    seen = set()
    while generators:
        for generator in list(generators):
            emitted = False
            for structure_key, spec in generator:
                if structure_key in seen:
                    continue
                seen.add(structure_key)
                yield spec
                emitted = True
                break
            if not emitted:
                generators.remove(generator)


#: ``LOOP_DIMS`` indices of the greedy growth orders (tuple-domain loop).
_RF_ORDER_COLS = tuple(
    tuple(LOOP_DIMS.index(d) for d in order) for order in RF_GROWTH_ORDERS
)
_SPM_ORDER_COLS = tuple(
    tuple(LOOP_DIMS.index(d) for d in order) for order in SPM_GROWTH_ORDERS
)
_UNIT_TILE = (1,) * len(LOOP_DIMS)


def _candidates_for_spatial(
    layer: LayerShape,
    config: AcceleratorConfig,
    spatial: Dict[Dim, int],
) -> Iterable[Tuple[tuple, CandidateSpec]]:
    """All (structure-key, candidate-spec) pairs for one spatial unrolling.

    Runs entirely in the tuple domain (factors in ``LOOP_DIMS`` order):
    candidate generation sits on the cold-search critical path alongside
    the scoring kernels, and dict-of-enum bookkeeping used to dominate it.
    """
    bounds = padded_bounds_tuple(layer)
    bpe = config.bytes_per_element
    spatial_t = tuple(spatial[d] for d in LOOP_DIMS)
    remaining0 = tuple(b // s for b, s in zip(bounds, spatial_t))
    for rf_order in _RF_ORDER_COLS:
        rf = greedy_tile_counts(
            layer,
            remaining0,
            order=rf_order,
            byte_budget=config.l1_bytes,
            base_tile=_UNIT_TILE,
            bytes_per_element=bpe,
        )
        remaining1 = tuple(r // f for r, f in zip(remaining0, rf))
        base = tuple(f * s for f, s in zip(rf, spatial_t))
        for spm_order in _SPM_ORDER_COLS:
            spm = greedy_tile_counts(
                layer,
                remaining1,
                order=spm_order,
                byte_budget=config.l2_bytes // 2,
                base_tile=base,
                bytes_per_element=bpe,
            )
            dram = tuple(r // f for r, f in zip(remaining1, spm))
            structure = (spatial_t, rf, spm)
            # Dedup keys carry the int stationary codes, not the Operand
            # members: the codes are bijective with the choices, and enum
            # hashing dominated the structure-dedup set at scale.
            for dram_code in range(len(STATIONARY_CHOICES)):
                for spm_code in range(len(STATIONARY_CHOICES)):
                    key = structure + (dram_code, spm_code)
                    yield key, CandidateSpec(
                        dram=dram,
                        spm=spm,
                        spatial=spatial_t,
                        rf=rf,
                        dram_code=dram_code,
                        spm_code=spm_code,
                    )


#: Mapping-objective scorers: map an execution to the value minimized by
#: the mapper.  ``edp`` is the energy-delay product — dMazeRunner-class
#: mappers commonly optimize either metric.
def _score_latency(
    layer: LayerShape, execution: ExecutionInfo, config: AcceleratorConfig
) -> float:
    return execution.latency


def _score_energy(
    layer: LayerShape, execution: ExecutionInfo, config: AcceleratorConfig
) -> float:
    return _cost_energy.layer_energy(execution, config).total_pj


def _score_edp(
    layer: LayerShape, execution: ExecutionInfo, config: AcceleratorConfig
) -> float:
    return execution.latency * _cost_energy.layer_energy(
        execution, config
    ).total_pj


MAPPING_OBJECTIVES = {
    "latency": _score_latency,
    "energy": _score_energy,
    "edp": _score_edp,
}


def _resolve_objective(objective: str):
    """The scorer of ``objective``, or a helpful error for unknown names."""
    try:
        return MAPPING_OBJECTIVES[objective]
    except KeyError:
        raise ValueError(
            f"unknown mapping objective {objective!r}; "
            f"available: {sorted(MAPPING_OBJECTIVES)}"
        ) from None


def _select_best(
    layer: LayerShape,
    config: AcceleratorConfig,
    outcomes: Sequence[Tuple[Mapping, ExecutionInfo]],
    scorer,
) -> Tuple[Optional[Mapping], Optional[ExecutionInfo]]:
    """First strictly-best feasible candidate (the scalar tie-breaking)."""
    best_exec: Optional[ExecutionInfo] = None
    best_mapping: Optional[Mapping] = None
    best_score = float("inf")
    for mapping, execution in outcomes:
        score = scorer(layer, execution, config)
        if score < best_score:
            best_exec = execution
            best_mapping = mapping
            best_score = score
    return best_mapping, best_exec


def _best_of_traced_batch(
    layer: LayerShape,
    config: AcceleratorConfig,
    batch: CandidateBatch,
    scorer,
    stats: Optional[BatchEvalStats],
) -> Tuple[MappingResult, SearchTrace]:
    """Batched twin of the scalar loop in :func:`_best_of_traced`.

    Scores the whole materialized candidate set through the vectorized
    kernels, then reconstructs ``Mapping``/``ExecutionInfo`` objects for
    the feasible candidates only (in candidate order, so the trace and
    the first-strictly-best selection are bit-identical to the scalar
    reference).
    """
    started = time.perf_counter()
    evaluation = _cost_batch.evaluate_layer_batch(layer, batch, config)
    feasible = evaluation.feasible_indices.tolist()
    outcomes: List[Tuple[Mapping, ExecutionInfo]] = list(
        zip(
            (batch.mapping(i) for i in feasible),
            evaluation.execution_infos(feasible),
        )
    )
    best_mapping, best_exec = _select_best(layer, config, outcomes, scorer)
    if stats is not None:
        stats.record_batch(
            len(batch), len(outcomes), time.perf_counter() - started
        )
    result = MappingResult(
        mapping=best_mapping,
        execution=best_exec,
        candidates_evaluated=len(batch),
        feasible_candidates=len(outcomes),
    )
    return result, SearchTrace(tuple(outcomes), len(batch))


def _best_of_traced(
    layer: LayerShape,
    config: AcceleratorConfig,
    candidates: Iterable[CandidateSpec],
    budget: int,
    objective: str = "latency",
    batch_eval: Optional[bool] = None,
    stats: Optional[BatchEvalStats] = None,
) -> Tuple[MappingResult, SearchTrace]:
    """Evaluate up to ``budget`` candidate specs; return the
    objective-optimal result together with the re-scorable
    :class:`SearchTrace`.

    ``batch_eval`` selects the vectorized kernels explicitly; ``None``
    defers to ``REPRO_BATCH_EVAL`` (default on).  Both paths produce
    bit-identical results; the batch path additionally requires the
    candidate set to be int64-safe and falls back to the scalar
    reference otherwise.
    """
    scorer = _resolve_objective(objective)
    if _cost_batch.batch_eval_enabled(batch_eval):
        batch = CandidateBatch.from_specs(
            itertools.islice(candidates, budget)
        )
        if _cost_batch.int64_safe(batch, config):
            return _best_of_traced_batch(layer, config, batch, scorer, stats)
        if stats is not None:
            stats.record_fallback()
        candidates = iter(batch.specs)

    started = time.perf_counter()
    best_exec: Optional[ExecutionInfo] = None
    best_mapping: Optional[Mapping] = None
    best_score = float("inf")
    evaluated = 0
    outcomes: List[Tuple[Mapping, ExecutionInfo]] = []
    for spec in candidates:
        if evaluated >= budget:
            break
        evaluated += 1
        mapping = spec.to_mapping()
        outcome = _cost_latency.evaluate_layer_mapping(layer, mapping, config)
        if isinstance(outcome, InfeasibleMapping):
            continue
        outcomes.append((mapping, outcome))
        score = scorer(layer, outcome, config)
        if score < best_score:
            best_exec = outcome
            best_mapping = mapping
            best_score = score
    if stats is not None:
        stats.record_scalar(evaluated, time.perf_counter() - started)
    result = MappingResult(
        mapping=best_mapping,
        execution=best_exec,
        candidates_evaluated=evaluated,
        feasible_candidates=len(outcomes),
    )
    return result, SearchTrace(tuple(outcomes), evaluated)


def _best_of(
    layer: LayerShape,
    config: AcceleratorConfig,
    candidates: Iterable[CandidateSpec],
    budget: int,
    objective: str = "latency",
) -> MappingResult:
    """Evaluate up to ``budget`` candidates, returning the objective-optimal."""
    result, _ = _best_of_traced(layer, config, candidates, budget, objective)
    return result


class FixedDataflowMapper:
    """One deterministic output-stationary mapping per (layer, hardware)."""

    name = "fixed-dataflow"
    #: The search stream never reads ``layer.name`` (see ``signature``).
    cache_layer_name_relevant = False
    objective = "latency"

    def signature(self) -> Tuple:
        """Cache identity of this mapper (see ``repro.perf.signature``)."""
        return (self.name,)

    def search_with_trace(
        self, layer: LayerShape, config: AcceleratorConfig
    ) -> Tuple[MappingResult, SearchTrace]:
        mapping = build_output_stationary_mapping(layer, config)
        if mapping is None:
            return MappingResult(None, None, 0, 0), SearchTrace((), 0)
        outcome = _cost_latency.evaluate_layer_mapping(layer, mapping, config)
        if isinstance(outcome, InfeasibleMapping):
            return MappingResult(None, None, 1, 0), SearchTrace((), 1)
        return (
            MappingResult(mapping, outcome, 1, 1),
            SearchTrace(((mapping, outcome),), 1),
        )

    def __call__(
        self, layer: LayerShape, config: AcceleratorConfig
    ) -> MappingResult:
        result, _ = self.search_with_trace(layer, config)
        return result


class TopNMapper:
    """dMazeRunner-style pruned-space mapper with a top-N budget.

    Args:
        top_n: Maximum mappings evaluated per (layer, hardware) pair.
        max_spatial: Spatial-unrolling combinations retained after
            utilization pruning.
        objective: Mapping metric minimized: ``"latency"`` (default),
            ``"energy"``, or ``"edp"``.
        batch_eval: Score candidates through the vectorized batch kernels
            (``repro.cost.batch``).  ``None`` (default) defers to the
            ``REPRO_BATCH_EVAL`` environment variable at search time;
            results are bit-identical either way, so the choice is not
            part of the cache :meth:`signature`.
    """

    name = "top-n"

    def __init__(
        self,
        top_n: int = 200,
        max_spatial: int = 16,
        objective: str = "latency",
        batch_eval: Optional[bool] = None,
    ):
        if top_n < 1:
            raise ValueError("top_n must be >= 1")
        _resolve_objective(objective)
        self.top_n = top_n
        self.max_spatial = max_spatial
        self.objective = objective
        self.batch_eval = batch_eval
        self.batch_stats = BatchEvalStats()

    cache_layer_name_relevant = False

    def signature(self) -> Tuple:
        """Cache identity of this mapper (see ``repro.perf.signature``)."""
        return (self.name, self.top_n, self.max_spatial, self.objective)

    def candidate_plan(
        self, layer: LayerShape, config: AcceleratorConfig
    ) -> Tuple[Iterable[CandidateSpec], int]:
        """The candidate stream and evaluation budget of one search.

        This is the fused-evaluation protocol (``repro.cost.fused``): a
        caller may materialize up to ``budget`` specs from the stream and
        score them itself; consuming the plan is exactly equivalent to
        :meth:`search_with_trace`'s own candidate enumeration.
        """
        spatial_choices = enumerate_spatial_unrollings(
            layer, config, max_combos=self.max_spatial
        )
        return _tiling_candidates(layer, config, spatial_choices), self.top_n

    def search_with_trace(
        self, layer: LayerShape, config: AcceleratorConfig
    ) -> Tuple[MappingResult, SearchTrace]:
        candidates, budget = self.candidate_plan(layer, config)
        return _best_of_traced(
            layer,
            config,
            candidates,
            budget=budget,
            objective=self.objective,
            batch_eval=self.batch_eval,
            stats=self.batch_stats,
        )

    def __call__(
        self, layer: LayerShape, config: AcceleratorConfig
    ) -> MappingResult:
        result, _ = self.search_with_trace(layer, config)
        return result


class RandomSearchMapper:
    """Timeloop-like random mapper over the factorization-pruned space.

    Samples random per-dimension divisor splits (DRAM/SPM/SPATIAL/RF) and
    random stationary choices, evaluating ``trials`` candidates.  This is
    the mapping optimizer the paper gives the black-box codesign baselines.
    """

    name = "random"

    def __init__(
        self,
        trials: int = 200,
        seed: int = 0,
        objective: str = "latency",
        batch_eval: Optional[bool] = None,
    ):
        if trials < 1:
            raise ValueError("trials must be >= 1")
        _resolve_objective(objective)
        self.trials = trials
        self.seed = seed
        self.objective = objective
        self.batch_eval = batch_eval
        self.batch_stats = BatchEvalStats()

    def _random_candidate(
        self,
        layer: LayerShape,
        config: AcceleratorConfig,
        rng: random.Random,
    ) -> CandidateSpec:
        bounds = padded_bounds(layer)
        spatial: Dict[Dim, int] = {d: 1 for d in LOOP_DIMS}
        budget = config.pes
        for d in SPATIAL_DIMS:
            opts = [f for f in divisors(bounds[d]) if f <= budget]
            spatial[d] = rng.choice(opts)
            budget //= spatial[d]
        rf: Dict[Dim, int] = {}
        spm: Dict[Dim, int] = {}
        dram: Dict[Dim, int] = {}
        for d in LOOP_DIMS:
            rest = bounds[d] // spatial[d]
            rf[d] = rng.choice(divisors(rest))
            rest //= rf[d]
            spm[d] = rng.choice(divisors(rest))
            dram[d] = rest // spm[d]
        return CandidateSpec.from_level_maps(
            dram=dram,
            spm=spm,
            spatial=spatial,
            rf=rf,
            dram_stationary=rng.choice(STATIONARY_CHOICES),
            spm_stationary=rng.choice(STATIONARY_CHOICES),
        )

    #: The candidate stream is seeded by ``layer.name``, so the mapping
    #: cache must key on it (unlike the shape-only deterministic mappers).
    cache_layer_name_relevant = True

    def signature(self) -> Tuple:
        """Cache identity of this mapper (see ``repro.perf.signature``)."""
        return (self.name, self.trials, self.seed, self.objective)

    def candidate_plan(
        self, layer: LayerShape, config: AcceleratorConfig
    ) -> Tuple[Iterable[CandidateSpec], int]:
        """The candidate stream and trial budget of one search (the
        fused-evaluation protocol; see ``TopNMapper.candidate_plan``).

        Deterministic per (layer, config) stream so evaluations cache.
        The seed is a stable digest, not ``tuple.__hash__``: hashes of str
        members vary per process under PYTHONHASHSEED randomization,
        which would make the "deterministic" stream differ across
        worker processes and runs.
        """
        # Re-validate at plan time: the constructor check can be bypassed
        # by mutating ``trials`` afterwards, and an exhausted budget must be
        # a loud error, not a silent empty MappingResult.
        if self.trials < 1:
            raise ValueError(
                f"RandomSearchMapper: trial budget must be >= 1 to search, "
                f"got {self.trials!r}"
            )
        rng = random.Random(
            _stable_seed(self.seed, layer.name, config.pes, config.l1_bytes)
        )
        candidates = (
            self._random_candidate(layer, config, rng)
            for _ in range(self.trials)
        )
        return candidates, self.trials

    def search_with_trace(
        self, layer: LayerShape, config: AcceleratorConfig
    ) -> Tuple[MappingResult, SearchTrace]:
        candidates, budget = self.candidate_plan(layer, config)
        return _best_of_traced(
            layer,
            config,
            candidates,
            budget=budget,
            objective=self.objective,
            batch_eval=self.batch_eval,
            stats=self.batch_stats,
        )

    def __call__(
        self, layer: LayerShape, config: AcceleratorConfig
    ) -> MappingResult:
        result, _ = self.search_with_trace(layer, config)
        return result
