"""Mapping-space size analysis (reproduces the structure of Table 7).

The paper quantifies how pruning shrinks the per-layer mapping space:

=====  ===========================================================
col A  tile sizings with arbitrary (non-factor) per-level sizes
col B  tile sizings restricted to valid factorizations
col C  valid tilings w.r.t. a hardware configuration (resources fit)
col D  loop orderings at one memory level (7! orders, ~O(10^4))
col E  orderings with unique / maximal data reuse (15/3 conv, 3/3 gemm)
col F  full mapping space               A * D^2
col G  factorization-constrained space  B * D^2
col H  factorization + reuse-aware      B * E^2
=====  ===========================================================

Columns A/B/D/E/F/G/H are closed-form; column C is estimated by sampling
random valid factorizations and measuring the feasible fraction on the
given hardware configuration.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.arch.accelerator import AcceleratorConfig
from repro.cost.execution_info import InfeasibleMapping
import repro.cost.latency as _cost_latency
from repro.mapping.factorization import (
    count_ordered_factorizations,
    divisors,
)
from repro.mapping.mapping import Mapping, padded_bounds
from repro.workloads.layers import LOOP_DIMS, Dim, LayerShape, OperatorType

__all__ = ["MappingSpaceSize", "analyze_mapping_space"]

#: Levels across which each loop dimension is tiled.
TILING_LEVELS = 4

#: Unique-reuse ordering counts (dMazeRunner [15]): 15 for convolutions,
#: 3 for GEMMs.  Derived from first principles by
#: :func:`repro.mapping.ordering.count_unique_reuse_orderings`; kept here
#: as constants for cheap table generation and cross-checked in tests.
UNIQUE_REUSE_ORDERINGS = {
    OperatorType.CONV: 15,
    OperatorType.DWCONV: 15,
    OperatorType.GEMM: 3,
}


@dataclass(frozen=True)
class MappingSpaceSize:
    """Log10 sizes of the mapping space under successive prunings."""

    layer_name: str
    tile_sizings_log10: float  # A
    valid_factor_tilings_log10: float  # B
    hw_valid_tilings_log10: Optional[float]  # C (None if not estimated)
    orderings_per_level_log10: float  # D
    unique_reuse_orderings: int  # E
    full_space_log10: float  # F = A * D^2
    factor_space_log10: float  # G = B * D^2
    reuse_aware_space_log10: float  # H = B * E^2


def _nontrivial_dims(layer: LayerShape) -> int:
    """Loop dims with bound > 1 (orderings permute only these)."""
    bounds = padded_bounds(layer)
    return sum(1 for d in LOOP_DIMS if bounds[d] > 1)


def analyze_mapping_space(
    layer: LayerShape,
    config: Optional[AcceleratorConfig] = None,
    samples: int = 200,
    seed: int = 0,
) -> MappingSpaceSize:
    """Compute the Table 7 row for one layer.

    Args:
        layer: The layer to analyze.
        config: Optional hardware configuration; when given, column C is
            estimated by Monte-Carlo sampling ``samples`` random valid
            factorizations and scaling column B by the feasible fraction.
        samples: Sample count for the column-C estimate.
        seed: RNG seed for the column-C estimate.
    """
    bounds = padded_bounds(layer)

    # A: arbitrary per-level tile sizes (three free levels per dim).
    tile_sizings = sum(
        (TILING_LEVELS - 1) * math.log10(bounds[d])
        for d in LOOP_DIMS
        if bounds[d] > 1
    )

    # B: valid ordered factorizations across the four levels.
    valid_factor = sum(
        math.log10(count_ordered_factorizations(bounds[d], TILING_LEVELS))
        for d in LOOP_DIMS
    )

    # D: orderings at one memory level: permutations of non-trivial loops.
    orderings = math.log10(max(math.factorial(_nontrivial_dims(layer)), 1))

    # E: unique-reuse orderings kept after dMazeRunner-style pruning.
    unique = UNIQUE_REUSE_ORDERINGS[layer.operator]

    # C: hardware-valid fraction, Monte-Carlo over valid factorizations.
    hw_valid: Optional[float] = None
    if config is not None and samples > 0:
        rng = random.Random(seed)
        feasible = 0
        for _ in range(samples):
            mapping = _random_factorized_mapping(layer, rng)
            outcome = _cost_latency.evaluate_layer_mapping(layer, mapping, config)
            if not isinstance(outcome, InfeasibleMapping):
                feasible += 1
        fraction = feasible / samples
        if fraction > 0:
            hw_valid = valid_factor + math.log10(fraction)
        else:
            # All samples infeasible: report an upper bound one sample deep.
            hw_valid = valid_factor - math.log10(samples)

    return MappingSpaceSize(
        layer_name=layer.name,
        tile_sizings_log10=tile_sizings,
        valid_factor_tilings_log10=valid_factor,
        hw_valid_tilings_log10=hw_valid,
        orderings_per_level_log10=orderings,
        unique_reuse_orderings=unique,
        full_space_log10=tile_sizings + 2 * orderings,
        factor_space_log10=valid_factor + 2 * orderings,
        reuse_aware_space_log10=valid_factor + 2 * math.log10(unique),
    )


def _random_factorized_mapping(
    layer: LayerShape, rng: random.Random
) -> Mapping:
    """Uniformly sample per-dimension divisor splits (no pruning)."""
    bounds = padded_bounds(layer)
    rf: Dict[Dim, int] = {}
    spatial: Dict[Dim, int] = {}
    spm: Dict[Dim, int] = {}
    dram: Dict[Dim, int] = {}
    for d in LOOP_DIMS:
        rest = bounds[d]
        rf[d] = rng.choice(divisors(rest))
        rest //= rf[d]
        spatial[d] = rng.choice(divisors(rest))
        rest //= spatial[d]
        spm[d] = rng.choice(divisors(rest))
        dram[d] = rest // spm[d]
    return Mapping.from_level_maps(dram=dram, spm=spm, spatial=spatial, rf=rf)
