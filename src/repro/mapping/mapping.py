"""Mapping representation: loop tiling + ordering across the hierarchy.

A mapping distributes each of the seven loop dimensions across four levels
of the accelerator's processing hierarchy:

* ``DRAM``    — outer temporal loops iterating over scratchpad (L2) tiles;
* ``SPM``     — temporal loops iterating over register-file tiles;
* ``SPATIAL`` — unrolling across the PE array;
* ``RF``      — innermost temporal loops executed inside each PE.

Per dimension, the four tile counts multiply to the *padded* loop bound.
Loop *ordering* is captured by the stationary operand chosen at each
temporal level: dMazeRunner/ZigZag-style pruning keeps only orderings with
unique maximal reuse, which (per memory level) reduce to the choice of the
operand whose irrelevant loops are placed innermost.
"""

from __future__ import annotations

import enum
import functools
import math
from dataclasses import dataclass
from types import MappingProxyType
from typing import Dict, Mapping as MappingT, Tuple

from repro.mapping.factorization import smooth_pad
from repro.workloads.layers import (
    LOOP_DIMS,
    Dim,
    LayerShape,
    Operand,
    OperatorType,
)

__all__ = [
    "Level",
    "Mapping",
    "MappingError",
    "padded_bounds",
    "padded_bounds_tuple",
    "operand_tile_elements",
    "STATIONARY_CHOICES",
]

#: Operands eligible as the stationary choice of a temporal level.
STATIONARY_CHOICES: Tuple[Operand, ...] = (Operand.O, Operand.W, Operand.I)


class Level(enum.Enum):
    """Processing-hierarchy levels, outermost first."""

    DRAM = "DRAM"
    SPM = "SPM"
    SPATIAL = "SPATIAL"
    RF = "RF"


class MappingError(ValueError):
    """A structurally invalid mapping (bad factors, unknown dims, ...)."""


@functools.lru_cache(maxsize=None)
def _free_dims(
    operator: "OperatorType", stationary: Operand, operand: Operand
) -> Tuple[Dim, ...]:
    """Dims irrelevant to both ``stationary`` and ``operand`` (cached)."""
    from repro.workloads.layers import operand_dims

    blocked = operand_dims(operator, stationary) | operand_dims(operator, operand)
    return tuple(d for d in LOOP_DIMS if d not in blocked)


@functools.lru_cache(maxsize=None)
def _relevant_dims(operator: "OperatorType", operand: Operand) -> Tuple[Dim, ...]:
    """Dims indexing ``operand`` (cached tuple for hot loops)."""
    from repro.workloads.layers import operand_dims

    relevant = operand_dims(operator, operand)
    return tuple(d for d in LOOP_DIMS if d in relevant)


@functools.lru_cache(maxsize=4096)
def _padded_bounds_cached(layer: LayerShape) -> Tuple[int, ...]:
    return tuple(smooth_pad(layer.dim(d)) for d in LOOP_DIMS)


@functools.lru_cache(maxsize=4096)
def _padded_bounds_view(layer: LayerShape) -> MappingT[Dim, int]:
    return MappingProxyType(dict(zip(LOOP_DIMS, _padded_bounds_cached(layer))))


def padded_bounds(layer: LayerShape) -> MappingT[Dim, int]:
    """Loop bounds padded to 7-smooth integers (see ``smooth_pad``).

    Memoized on the frozen :class:`LayerShape` (like
    ``factorization.divisors``): candidate generators call this once per
    candidate per level, so the returned mapping is a shared read-only
    view — copy it (``dict(padded_bounds(layer))``) before mutating.
    """
    return _padded_bounds_view(layer)


def padded_bounds_tuple(layer: LayerShape) -> Tuple[int, ...]:
    """Padded loop bounds in ``LOOP_DIMS`` order (memoized tuple)."""
    return _padded_bounds_cached(layer)


def operand_tile_elements(
    layer: LayerShape, tile: MappingT[Dim, int], operand: Operand
) -> int:
    """Elements of ``operand`` covered by a tile with the given extents.

    Input activations use halo-extended spatial extents derived from the
    tile's output and filter extents and the layer stride.
    """
    dwise = layer.operator is OperatorType.DWCONV
    if operand is Operand.W:
        channels = 1 if dwise else tile[Dim.C]
        return tile[Dim.M] * channels * tile[Dim.FY] * tile[Dim.FX]
    if operand in (Operand.O, Operand.PSUM):
        return tile[Dim.N] * tile[Dim.M] * tile[Dim.OY] * tile[Dim.OX]
    # Input activations.
    channels = tile[Dim.M] if dwise else tile[Dim.C]
    rows = (tile[Dim.OY] - 1) * layer.stride + tile[Dim.FY]
    cols = (tile[Dim.OX] - 1) * layer.stride + tile[Dim.FX]
    return tile[Dim.N] * channels * rows * cols


@dataclass(frozen=True)
class Mapping:
    """A complete mapping of one layer onto the accelerator template.

    Attributes:
        factors: ``factors[level][dim]`` tile count of ``dim`` at ``level``.
        dram_stationary: Operand whose irrelevant loops are innermost at the
            DRAM level (maximal off-chip reuse for that operand).
        spm_stationary: Same choice for the SPM->RF (NoC) level.
    """

    factors: MappingT[Level, MappingT[Dim, int]]
    dram_stationary: Operand = Operand.O
    spm_stationary: Operand = Operand.O

    def __post_init__(self) -> None:
        for level in Level:
            if level not in self.factors:
                raise MappingError(f"missing factors for level {level}")
            for d in LOOP_DIMS:
                f = self.factors[level].get(d, None)
                if f is None or f < 1:
                    raise MappingError(
                        f"invalid factor for {d} at {level}: {f!r}"
                    )
        if self.dram_stationary not in STATIONARY_CHOICES:
            raise MappingError(
                f"dram_stationary must be one of {STATIONARY_CHOICES}"
            )
        if self.spm_stationary not in STATIONARY_CHOICES:
            raise MappingError(
                f"spm_stationary must be one of {STATIONARY_CHOICES}"
            )

    # -- construction ---------------------------------------------------------

    @classmethod
    def _trusted(
        cls,
        factors: MappingT[Level, MappingT[Dim, int]],
        dram_stationary: Operand,
        spm_stationary: Operand,
    ) -> "Mapping":
        """Internal fast constructor for pre-validated factor maps.

        Skips ``__post_init__`` validation, so ``factors`` must be complete
        (all four levels, all seven dims, factors >= 1) and the stationary
        operands members of :data:`STATIONARY_CHOICES`.  Used by the
        candidate generators, which produce valid factors by construction;
        external callers should use :meth:`from_level_maps`.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "factors", factors)
        object.__setattr__(self, "dram_stationary", dram_stationary)
        object.__setattr__(self, "spm_stationary", spm_stationary)
        return self

    @staticmethod
    def from_level_maps(
        dram: MappingT[Dim, int],
        spm: MappingT[Dim, int],
        spatial: MappingT[Dim, int],
        rf: MappingT[Dim, int],
        dram_stationary: Operand = Operand.O,
        spm_stationary: Operand = Operand.O,
    ) -> "Mapping":
        """Build a mapping from per-level factor dictionaries.

        Missing dimensions default to factor 1.
        """

        def _complete(partial: MappingT[Dim, int]) -> Dict[Dim, int]:
            return {d: int(partial.get(d, 1)) for d in LOOP_DIMS}

        return Mapping(
            factors={
                Level.DRAM: _complete(dram),
                Level.SPM: _complete(spm),
                Level.SPATIAL: _complete(spatial),
                Level.RF: _complete(rf),
            },
            dram_stationary=dram_stationary,
            spm_stationary=spm_stationary,
        )

    # -- validation ------------------------------------------------------------

    def validate_for(self, layer: LayerShape) -> None:
        """Raise :class:`MappingError` unless factors cover the padded bounds."""
        bounds = padded_bounds(layer)
        for d in LOOP_DIMS:
            product = math.prod(self.factors[level][d] for level in Level)
            if product != bounds[d]:
                raise MappingError(
                    f"factors of {d} multiply to {product}, "
                    f"expected padded bound {bounds[d]}"
                )

    # -- geometry ---------------------------------------------------------------

    def level_factor(self, level: Level, dim: Dim) -> int:
        return self.factors[level][dim]

    def tile_dims(self, *levels: Level) -> Dict[Dim, int]:
        """Tile extents covered by the given (inner) levels combined."""
        return {
            d: math.prod(self.factors[level][d] for level in levels)
            for d in LOOP_DIMS
        }

    @property
    def rf_tile(self) -> Dict[Dim, int]:
        """Per-PE innermost tile extents."""
        return self.tile_dims(Level.RF)

    @property
    def spatial_tile(self) -> Dict[Dim, int]:
        """Extents covered by one full PE-array pass (RF x SPATIAL)."""
        return self.tile_dims(Level.RF, Level.SPATIAL)

    @property
    def spm_tile(self) -> Dict[Dim, int]:
        """Extents resident in the scratchpad (RF x SPATIAL x SPM)."""
        return self.tile_dims(Level.RF, Level.SPATIAL, Level.SPM)

    @property
    def pes_used(self) -> int:
        """PEs occupied by the spatial unrolling."""
        return math.prod(self.factors[Level.SPATIAL][d] for d in LOOP_DIMS)

    def temporal_iterations(self, level: Level) -> int:
        """Number of iterations of the temporal loops at ``level``."""
        if level is Level.SPATIAL:
            raise MappingError("SPATIAL is not a temporal level")
        return math.prod(self.factors[level][d] for d in LOOP_DIMS)

    # -- reuse ------------------------------------------------------------------

    def reuse_at(self, level: Level, layer: LayerShape, operand: Operand) -> int:
        """Temporal reuse of ``operand``'s tile across ``level``'s loops.

        With stationary operand ``s`` at the level, the innermost contiguous
        loop run irrelevant to both ``s`` and ``operand`` provides reuse:
        ``reuse = prod(factors[d] for d not in D_s | D_op)``.
        """
        if level is Level.DRAM:
            stationary = self.dram_stationary
        elif level is Level.SPM:
            stationary = self.spm_stationary
        else:
            raise MappingError(f"reuse defined only for temporal levels, not {level}")
        free = _free_dims(layer.operator, stationary, operand)
        factors = self.factors[level]
        reuse = 1
        for d in free:
            reuse *= factors[d]
        return reuse

    def fetches_at(self, level: Level, layer: LayerShape, operand: Operand) -> int:
        """Tile fetch events of ``operand`` caused by ``level``'s loops."""
        total = self.temporal_iterations(level)
        reuse = self.reuse_at(level, layer, operand)
        return total // reuse

    def spatial_groups(self, layer: LayerShape, operand: Operand) -> int:
        """PE groups needing *distinct* data of ``operand`` per array pass.

        This is the paper's ``NoC_groups_needed`` execution characteristic:
        spatially-unrolled dimensions relevant to the operand multiply the
        number of simultaneously-needed unique data streams; irrelevant
        spatial dimensions are served by broadcast.
        """
        factors = self.factors[Level.SPATIAL]
        groups = 1
        for d in _relevant_dims(layer.operator, operand):
            groups *= factors[d]
        return groups

    def describe(self) -> str:
        """Compact multi-line rendering for logs and explanations."""
        lines = []
        for level in Level:
            nontrivial = {
                d.value: f
                for d, f in self.factors[level].items()
                if f > 1
            }
            lines.append(f"{level.value:8s} {nontrivial or '{}'}")
        lines.append(
            f"stationary: DRAM={self.dram_stationary.value} "
            f"SPM={self.spm_stationary.value}"
        )
        return "\n".join(lines)
