"""Fixed output-stationary dataflow (SOC-MOP schema).

The paper's fixed-dataflow experiments give every DSE technique the same
optimized output-stationary mapping schema [7]: outputs stay resident in
the PE register files while reduction loops stream past, spatial unrolling
parallelises independent output dimensions, and scratchpad tiles grow
greedily to exploit reuse.  Unlike the top-N mapper this produces exactly
one mapping per (layer, hardware) pair — adapted to fit capacities, but not
searched.
"""

from __future__ import annotations

import functools
from typing import Dict, Optional, Sequence, Tuple

from repro.arch.accelerator import AcceleratorConfig
from repro.mapping.factorization import divisors
from repro.mapping.mapping import Mapping, operand_tile_elements, padded_bounds
from repro.workloads.layers import (
    LOOP_DIMS,
    Dim,
    LayerShape,
    Operand,
    OperatorType,
)

__all__ = [
    "build_output_stationary_mapping",
    "greedy_tile",
    "greedy_tile_counts",
]

#: Dimensions eligible for spatial unrolling.  The architecture template
#: supports spatial *data distribution* only (no cross-PE reduction), so
#: reduction dimensions (C, FY, FX) stay temporal (paper Table 4).
SPATIAL_DIMS = (Dim.M, Dim.OY, Dim.OX, Dim.N)


def _largest_divisor_leq(n: int, cap: int) -> int:
    """Largest divisor of ``n`` that is <= ``cap`` (at least 1)."""
    best = 1
    for d in divisors(n):
        if d > cap:
            break
        best = d
    return best


#: ``LOOP_DIMS`` position of each dimension (tuple-domain fast paths).
_DIM_INDEX = {d: i for i, d in enumerate(LOOP_DIMS)}


def greedy_tile_counts(
    layer: LayerShape,
    remaining: Sequence[int],
    order: Sequence[int],
    byte_budget: int,
    base_tile: Sequence[int],
    bytes_per_element: int,
) -> Tuple[int, ...]:
    """Tuple-domain core of :func:`greedy_tile`.

    ``remaining``/``base_tile`` are extents in ``LOOP_DIMS`` order and
    ``order`` holds ``LOOP_DIMS`` *indices*.  Same greedy algorithm and
    bit-identical factor choices as the dict API, with the I+W+O
    footprint inlined on local ints so the candidate generators (which
    call this hundreds of times per layer search) stay off the
    dict-of-enums hot path.
    """
    # The layer enters the footprint only via its stride and whether it
    # is depthwise, so the whole computation lives in hashable-scalar
    # domain and memoizes across the campaign (layers repeat shapes and
    # the greedy growth revisits the same (remaining, budget) states for
    # every spatial unrolling).
    return _greedy_tile_counts_cached(
        layer.stride,
        layer.operator is OperatorType.DWCONV,
        tuple(remaining),
        tuple(order),
        byte_budget,
        tuple(base_tile),
        bytes_per_element,
    )


@functools.lru_cache(maxsize=65536)
def _greedy_tile_counts_cached(
    stride: int,
    dwise: bool,
    remaining: Tuple[int, ...],
    order: Tuple[int, ...],
    byte_budget: int,
    base_tile: Tuple[int, ...],
    bytes_per_element: int,
) -> Tuple[int, ...]:
    chosen = [1] * len(LOOP_DIMS)
    ext = list(base_tile)

    def _footprint() -> int:
        n, m, c, oy, ox, fy, fx = ext
        w = m * (1 if dwise else c) * fy * fx
        o = n * m * oy * ox
        i = (
            n
            * (m if dwise else c)
            * ((oy - 1) * stride + fy)
            * ((ox - 1) * stride + fx)
        )
        return (i + w + o) * bytes_per_element

    if _footprint() > byte_budget:
        return tuple(chosen)  # even the unit tile overflows; caller rejects.
    for col in order:
        base = base_tile[col]
        best = 1
        for f in divisors(remaining[col]):
            ext[col] = base * f
            if _footprint() <= byte_budget:
                best = f
            else:
                break
        chosen[col] = best
        ext[col] = base * best
    return tuple(chosen)


def greedy_tile(
    layer: LayerShape,
    remaining: Dict[Dim, int],
    order: Sequence[Dim],
    byte_budget: int,
    base_tile: Dict[Dim, int],
    bytes_per_element: int,
) -> Dict[Dim, int]:
    """Greedily grow tile factors along ``order`` within a byte budget.

    Starting from factor 1 per dimension, each dimension in ``order`` is
    grown to the largest divisor of its remaining bound such that the
    I+W+O tile footprint (``base_tile`` extents scaled by the chosen
    factors) still fits ``byte_budget``.

    Returns:
        The chosen per-dimension factors (1 for dims not in ``order``).
    """
    counts = greedy_tile_counts(
        layer,
        tuple(remaining[d] for d in LOOP_DIMS),
        tuple(_DIM_INDEX[d] for d in order),
        byte_budget,
        tuple(base_tile[d] for d in LOOP_DIMS),
        bytes_per_element,
    )
    return dict(zip(LOOP_DIMS, counts))


def build_output_stationary_mapping(
    layer: LayerShape, config: AcceleratorConfig
) -> Optional[Mapping]:
    """Construct the SOC-MOP output-stationary mapping for a layer.

    Steps:
      1. spatially unroll independent output dims (M, then OY, OX) up to
         the PE count;
      2. keep outputs stationary in the RF: grow the RF tile along the
         reduction dims (FY, FX, C) within the register-file budget;
      3. grow the scratchpad tile along (C, OY, OX, M, N) within half the
         scratchpad (double buffering);
      4. leave the remainder to DRAM-level loops, outputs stationary at
         both temporal levels.

    Returns ``None`` when even the unit tile cannot fit the register file
    (the hardware is too small for the schema).
    """
    bounds = padded_bounds(layer)
    bpe = config.bytes_per_element

    # 1. Spatial unrolling over independent output dimensions.
    spatial: Dict[Dim, int] = {d: 1 for d in LOOP_DIMS}
    budget = config.pes
    for d in SPATIAL_DIMS:
        f = _largest_divisor_leq(bounds[d], budget)
        spatial[d] = f
        budget //= f
        if budget <= 1:
            break

    remaining = {d: bounds[d] // spatial[d] for d in LOOP_DIMS}

    # 2. RF tile: output-stationary accumulation over reduction dims.
    rf = greedy_tile(
        layer,
        remaining,
        order=(Dim.FY, Dim.FX, Dim.C, Dim.OX),
        byte_budget=config.l1_bytes,
        base_tile={d: 1 for d in LOOP_DIMS},
        bytes_per_element=bpe,
    )
    base_after_rf = {d: rf[d] * spatial[d] for d in LOOP_DIMS}
    unit_tile_bytes = sum(
        operand_tile_elements(layer, {d: 1 for d in LOOP_DIMS}, op) * bpe
        for op in (Operand.I, Operand.W, Operand.O)
    )
    if unit_tile_bytes > config.l1_bytes:
        return None
    remaining = {d: remaining[d] // rf[d] for d in LOOP_DIMS}

    # 3. SPM tile with double buffering.
    spm = greedy_tile(
        layer,
        remaining,
        order=(Dim.C, Dim.OY, Dim.OX, Dim.M, Dim.N),
        byte_budget=config.l2_bytes // 2,
        base_tile=base_after_rf,
        bytes_per_element=bpe,
    )
    remaining = {d: remaining[d] // spm[d] for d in LOOP_DIMS}

    # 4. Remainder to DRAM; outputs stationary at both temporal levels.
    mapping = Mapping.from_level_maps(
        dram=remaining,
        spm=spm,
        spatial=spatial,
        rf=rf,
        dram_stationary=Operand.O,
        spm_stationary=Operand.O,
    )
    mapping.validate_for(layer)
    return mapping
