"""Fixed output-stationary dataflow (SOC-MOP schema).

The paper's fixed-dataflow experiments give every DSE technique the same
optimized output-stationary mapping schema [7]: outputs stay resident in
the PE register files while reduction loops stream past, spatial unrolling
parallelises independent output dimensions, and scratchpad tiles grow
greedily to exploit reuse.  Unlike the top-N mapper this produces exactly
one mapping per (layer, hardware) pair — adapted to fit capacities, but not
searched.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.arch.accelerator import AcceleratorConfig
from repro.mapping.factorization import divisors
from repro.mapping.mapping import Mapping, operand_tile_elements, padded_bounds
from repro.workloads.layers import LOOP_DIMS, Dim, LayerShape, Operand

__all__ = ["build_output_stationary_mapping", "greedy_tile"]

#: Dimensions eligible for spatial unrolling.  The architecture template
#: supports spatial *data distribution* only (no cross-PE reduction), so
#: reduction dimensions (C, FY, FX) stay temporal (paper Table 4).
SPATIAL_DIMS = (Dim.M, Dim.OY, Dim.OX, Dim.N)


def _largest_divisor_leq(n: int, cap: int) -> int:
    """Largest divisor of ``n`` that is <= ``cap`` (at least 1)."""
    best = 1
    for d in divisors(n):
        if d > cap:
            break
        best = d
    return best


def greedy_tile(
    layer: LayerShape,
    remaining: Dict[Dim, int],
    order: Sequence[Dim],
    byte_budget: int,
    base_tile: Dict[Dim, int],
    bytes_per_element: int,
) -> Dict[Dim, int]:
    """Greedily grow tile factors along ``order`` within a byte budget.

    Starting from factor 1 per dimension, each dimension in ``order`` is
    grown to the largest divisor of its remaining bound such that the
    I+W+O tile footprint (``base_tile`` extents scaled by the chosen
    factors) still fits ``byte_budget``.

    Returns:
        The chosen per-dimension factors (1 for dims not in ``order``).
    """
    chosen: Dict[Dim, int] = {d: 1 for d in LOOP_DIMS}

    def _footprint(candidate: Dict[Dim, int]) -> int:
        tile = {d: base_tile[d] * candidate[d] for d in LOOP_DIMS}
        return sum(
            operand_tile_elements(layer, tile, op) * bytes_per_element
            for op in (Operand.I, Operand.W, Operand.O)
        )

    if _footprint(chosen) > byte_budget:
        return chosen  # even the unit tile overflows; caller will reject.
    for d in order:
        options = [f for f in divisors(remaining[d])]
        best = 1
        for f in options:
            trial = dict(chosen)
            trial[d] = f
            if _footprint(trial) <= byte_budget:
                best = f
            else:
                break
        chosen[d] = best
    return chosen


def build_output_stationary_mapping(
    layer: LayerShape, config: AcceleratorConfig
) -> Optional[Mapping]:
    """Construct the SOC-MOP output-stationary mapping for a layer.

    Steps:
      1. spatially unroll independent output dims (M, then OY, OX) up to
         the PE count;
      2. keep outputs stationary in the RF: grow the RF tile along the
         reduction dims (FY, FX, C) within the register-file budget;
      3. grow the scratchpad tile along (C, OY, OX, M, N) within half the
         scratchpad (double buffering);
      4. leave the remainder to DRAM-level loops, outputs stationary at
         both temporal levels.

    Returns ``None`` when even the unit tile cannot fit the register file
    (the hardware is too small for the schema).
    """
    bounds = padded_bounds(layer)
    bpe = config.bytes_per_element

    # 1. Spatial unrolling over independent output dimensions.
    spatial: Dict[Dim, int] = {d: 1 for d in LOOP_DIMS}
    budget = config.pes
    for d in SPATIAL_DIMS:
        f = _largest_divisor_leq(bounds[d], budget)
        spatial[d] = f
        budget //= f
        if budget <= 1:
            break

    remaining = {d: bounds[d] // spatial[d] for d in LOOP_DIMS}

    # 2. RF tile: output-stationary accumulation over reduction dims.
    rf = greedy_tile(
        layer,
        remaining,
        order=(Dim.FY, Dim.FX, Dim.C, Dim.OX),
        byte_budget=config.l1_bytes,
        base_tile={d: 1 for d in LOOP_DIMS},
        bytes_per_element=bpe,
    )
    base_after_rf = {d: rf[d] * spatial[d] for d in LOOP_DIMS}
    unit_tile_bytes = sum(
        operand_tile_elements(layer, {d: 1 for d in LOOP_DIMS}, op) * bpe
        for op in (Operand.I, Operand.W, Operand.O)
    )
    if unit_tile_bytes > config.l1_bytes:
        return None
    remaining = {d: remaining[d] // rf[d] for d in LOOP_DIMS}

    # 3. SPM tile with double buffering.
    spm = greedy_tile(
        layer,
        remaining,
        order=(Dim.C, Dim.OY, Dim.OX, Dim.M, Dim.N),
        byte_budget=config.l2_bytes // 2,
        base_tile=base_after_rf,
        bytes_per_element=bpe,
    )
    remaining = {d: remaining[d] // spm[d] for d in LOOP_DIMS}

    # 4. Remainder to DRAM; outputs stationary at both temporal levels.
    mapping = Mapping.from_level_maps(
        dram=remaining,
        spm=spm,
        spatial=spatial,
        rf=rf,
        dram_stationary=Operand.O,
        spm_stationary=Operand.O,
    )
    mapping.validate_for(layer)
    return mapping
