"""Typed, schema-versioned DSE trace events.

Every acquisition step of :class:`~repro.core.dse.explainable.ExplainableDSE`
computes an explanation — the critical cost, the dominant bottleneck
sub-functions, a needed scaling factor, and mitigating (parameter, value)
predictions (paper §4.3–4.6) — and every baseline optimizer evaluates
candidates the same cost model scores.  These dataclasses are the
machine-readable form of that information: a journal of them is sufficient
to re-render the paper's Fig. 7/8-style narratives (:mod:`.report`), to
verify a campaign checkpoint (:mod:`.checkpoint`), and to compare traces
across search algorithms.

Design rules:

* **Deterministic payloads only.**  Events never carry wall-clock times,
  worker counts, or rates, so a serial (``REPRO_JOBS=1``) and a parallel
  run of the same campaign emit byte-identical journals.  Wall-clock
  lives in :attr:`~repro.telemetry.tracer.Tracer.timings` (span timers)
  and in ``perf_summary()`` / ``--perf``, never in the journal.
* **JSON-native field types.**  Fields are ints, floats, bools, strings,
  lists, and string-keyed dicts, so ``event == decode_event(encode_event
  (event))`` holds exactly.  Non-finite floats are encoded as tagged
  objects (``{"$f": "inf"}``) because JSON has no ``inf``/``nan``.
* **Ordering tags.**  Every event carries ``(step, candidate_index)``;
  sinks sort on :func:`sort_key` at flush so any parallel interleaving
  collapses back to the canonical serial order.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Type

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_TYPES",
    "TraceEventError",
    "StepStarted",
    "BottleneckIdentified",
    "MitigationPredicted",
    "CandidateGenerated",
    "CandidateEvaluated",
    "CandidateFailed",
    "IncumbentUpdated",
    "BudgetExhausted",
    "RunSummary",
    "AskIssued",
    "TellRecorded",
    "encode_event",
    "decode_event",
    "sort_key",
    "deterministic_perf_counters",
]

#: Version of the journal record layout; bump on incompatible change.
SCHEMA_VERSION = 1


class TraceEventError(ValueError):
    """A journal record could not be decoded (schema/kind/field mismatch)."""


# -- the event model ----------------------------------------------------------
#
# ``_phase`` ranks events within a step for the canonical ordering:
# 0 = step-leading (analysis), 1 = candidate-scoped, 2 = step-trailing
# (decision/terminal).  It is a class attribute, not a serialized field.


@dataclass(frozen=True)
class StepStarted:
    """An acquisition attempt begins from the current incumbent."""

    step: int
    incumbent: Dict[str, Any]
    objective: float
    feasible: bool
    candidate_index: int = -1

    _phase = 0


@dataclass(frozen=True)
class BottleneckIdentified:
    """The critical cost and its dominant bottleneck for one step.

    Attributes:
        critical_cost: Cost key driving this step (objective key, violated
            constraint key, or ``"mappability"``).
        kind: ``"objective"`` | ``"constraint"`` | ``"incompatibility"``.
        model: Bottleneck model consulted (e.g. ``dnn-accel-latency``).
        dominant: ``[{"name": ..., "share": ...}]`` — the bottleneck
            sub-functions (layers) or the violated constraint, with their
            fractional cost contribution.
        scaling: Needed improvement factor (e.g. 2.3 = latency must shrink
            2.3x to meet throughput; area overshoot ratio), when known.
        detail: The human-readable explanation line.
    """

    step: int
    critical_cost: str
    kind: str
    model: str
    dominant: List[Dict[str, Any]]
    detail: str
    scaling: Optional[float] = None
    candidate_index: int = -1

    _phase = 0


@dataclass(frozen=True)
class MitigationPredicted:
    """One aggregated (parameter, value) mitigation prediction (§4.4)."""

    step: int
    parameter: str
    value: float
    subfunctions: List[str]
    candidate_index: int = -1

    _phase = 0


@dataclass(frozen=True)
class CandidateGenerated:
    """A candidate acquired from a prediction (rounded into the space)."""

    step: int
    candidate_index: int
    parameter: str
    value: Any
    reason: str

    _phase = 1


@dataclass(frozen=True)
class CandidateEvaluated:
    """A candidate's cost-model outcome."""

    step: int
    candidate_index: int
    point: Dict[str, Any]
    costs: Dict[str, float]
    feasible: bool
    mappable: bool
    note: str = ""

    _phase = 1


@dataclass(frozen=True)
class CandidateFailed:
    """A candidate evaluation was quarantined after exhausting retries.

    Emitted *instead of* :class:`CandidateEvaluated` when the cost model
    could not produce costs for a candidate (worker crashes, timeouts,
    mapper failures — see :mod:`repro.resilience`).  The trial ledger
    records the candidate as infeasible with infinite costs and the
    campaign continues; fault-free journals never contain this event.

    Attributes:
        point: The quarantined design point.
        error: The :class:`~repro.resilience.errors.ReproError` subclass
            name (e.g. ``WorkerTimeoutError``).
        message: The error's human-readable message (context included).
        attempts: Evaluation attempts consumed before quarantine.
        retryable: Whether the final error was still marked transient.
    """

    step: int
    candidate_index: int
    point: Dict[str, Any]
    error: str
    message: str
    attempts: int
    retryable: bool = False
    note: str = ""

    _phase = 1


@dataclass(frozen=True)
class IncumbentUpdated:
    """The step's update decision (§4.6); ``improved`` is False when the
    incumbent was kept."""

    step: int
    point: Dict[str, Any]
    objective: float
    decision: str
    improved: bool
    candidate_index: int = -1

    _phase = 2


@dataclass(frozen=True)
class BudgetExhausted:
    """The evaluation budget ran out."""

    step: int
    consumed: int
    budget: int
    candidate_index: int = -1

    _phase = 2


@dataclass(frozen=True)
class RunSummary:
    """End-of-run record: outcome plus deterministic pipeline counters.

    ``counters`` is the stable subset of
    :meth:`repro.cost.evaluator.CostEvaluator.perf_summary` (see
    :func:`deterministic_perf_counters`); the ``--perf`` stdout path is
    unchanged and remains the home of wall-clock rates.
    """

    step: int
    technique: str
    model: str
    evaluations: int
    best_objective: float
    found_feasible: bool
    counters: Dict[str, Any] = field(default_factory=dict)
    candidate_index: int = -1

    _phase = 2


@dataclass(frozen=True)
class AskIssued:
    """A driver asked an ask/tell engine for candidates (protocol-level).

    Emitted by :class:`repro.optim.protocol.DriverLoop` before each batch
    of evaluations.  ``requested`` is the driver's batch size; ``returned``
    is how many points the engine actually served (budget-capped, possibly
    zero on the terminal ask).  Protocol events describe the *driving* of
    a search, not the search itself, so canonical journal comparisons
    strip them (see ``repro.verify.differential``).
    """

    step: int
    requested: int
    returned: int
    candidate_index: int = -1

    _phase = 0


@dataclass(frozen=True)
class TellRecorded:
    """A driver told evaluation results back to an ask/tell engine.

    ``count`` is the number of results delivered; ``failures`` counts the
    results that carried an evaluation error instead of costs (only
    engines with ``captures_failures`` ever see a nonzero value).
    """

    step: int
    count: int
    failures: int = 0
    candidate_index: int = -1

    _phase = 2


EVENT_TYPES: Tuple[type, ...] = (
    StepStarted,
    BottleneckIdentified,
    MitigationPredicted,
    CandidateGenerated,
    CandidateEvaluated,
    CandidateFailed,
    IncumbentUpdated,
    BudgetExhausted,
    RunSummary,
    AskIssued,
    TellRecorded,
)

_REGISTRY: Dict[str, Type] = {cls.__name__: cls for cls in EVENT_TYPES}


# -- ordering -----------------------------------------------------------------


def sort_key(seq: int, event: Any) -> Tuple[int, int, int, int]:
    """Canonical journal order: ``(step, phase, candidate_index, seq)``.

    ``candidate_index`` disambiguates events of parallel candidate
    evaluations within a step; ``seq`` (emission order) breaks the
    remaining ties, so sorting is a stable no-op for serial runs.
    """
    return (
        getattr(event, "step", 0),
        getattr(event, "_phase", 1),
        getattr(event, "candidate_index", -1),
        seq,
    )


# -- JSON codec ---------------------------------------------------------------


def _encode_value(value: Any) -> Any:
    if isinstance(value, float) and not math.isfinite(value):
        return {"$f": repr(value)}  # 'inf', '-inf', 'nan'
    if isinstance(value, dict):
        return {str(k): _encode_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"$f"}:
            return float(value["$f"])
        return {k: _decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def encode_event(event: Any) -> Dict[str, Any]:
    """Serialize an event to a JSON-compatible record (lossless).

    The payload nests under ``"data"`` so event field names can never
    collide with the ``schema``/``kind`` envelope.
    """
    kind = type(event).__name__
    if kind not in _REGISTRY:
        raise TraceEventError(f"not a trace event: {type(event)!r}")
    return {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "data": {
            f.name: _encode_value(getattr(event, f.name))
            for f in dataclasses.fields(event)
        },
    }


def decode_event(record: Dict[str, Any]) -> Any:
    """Rebuild an event from its record; raises :class:`TraceEventError`."""
    schema = record.get("schema")
    if schema != SCHEMA_VERSION:
        raise TraceEventError(
            f"unsupported event schema {schema!r}; expected {SCHEMA_VERSION}"
        )
    kind = record.get("kind")
    cls = _REGISTRY.get(kind)
    if cls is None:
        raise TraceEventError(f"unknown event kind {kind!r}")
    data = record.get("data")
    if not isinstance(data, dict):
        raise TraceEventError(f"malformed {kind} record: no data payload")
    try:
        return cls(
            **{
                f.name: _decode_value(data[f.name])
                for f in dataclasses.fields(cls)
                if f.name in data
            }
        )
    except TypeError as exc:  # missing required field
        raise TraceEventError(f"malformed {kind} record: {exc}") from exc


# -- perf-counter sampling ----------------------------------------------------

#: perf_summary() keys that vary run-to-run (wall clock, worker config)
#: and therefore must not enter the journal.  ``tree_compile`` counters
#: are process-global (the program memo outlives any one campaign) and
#: ``plane`` counters depend on which processes warmed the shared cache
#: plane first, so neither is run-deterministic.
_VOLATILE_KEYS = frozenset({"jobs", "executor", "stages", "tree_compile", "plane"})


def deterministic_perf_counters(summary: Dict[str, Any]) -> Dict[str, Any]:
    """The run-invariant subset of ``CostEvaluator.perf_summary()``.

    Drops every timing-derived entry (keys containing ``"second"``) and
    the worker-pool configuration, keeping the cache/batch-eval counters
    that are bit-identical between serial and parallel runs.
    """
    out: Dict[str, Any] = {}
    for key, value in summary.items():
        if key in _VOLATILE_KEYS or "second" in key:
            continue
        if isinstance(value, dict):
            out[key] = deterministic_perf_counters(value)
        else:
            out[key] = value
    return out
